//! Renders benchmark scenes to PPM images with the functional path tracer
//! (and optionally through the cycle simulator, which produces the
//! bit-identical image while measuring cycles).
//!
//! ```text
//! cargo run --release --example render [SCENE ...]      # functional
//! SMS_RENDER_SIM=1 cargo run --release --example render # via the simulator
//! ```
//!
//! Images are written to `target/renders/<scene>.ppm`.

use sms_sim::config::{RenderConfig, SimConfig};
use sms_sim::render::{render, write_ppm, PreparedScene, RenderOutput};
use sms_sim::rtunit::StackConfig;
use sms_sim::scene::SceneId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<SceneId> =
        std::env::args().skip(1).map(|s| s.parse().expect("unknown scene name")).collect();
    let scenes = if args.is_empty() {
        vec![SceneId::Wknd, SceneId::Ship, SceneId::Ref, SceneId::Bunny]
    } else {
        args
    };
    let via_sim = std::env::var("SMS_RENDER_SIM").map(|v| v == "1").unwrap_or(false);
    let cfg = RenderConfig::from_env();

    let dir = std::path::Path::new("target/renders");
    std::fs::create_dir_all(dir)?;

    for id in scenes {
        let t0 = std::time::Instant::now();
        let prepared = PreparedScene::build(id, &cfg);
        let out: RenderOutput = if via_sim {
            let sim = sms_sim::sim::run_to_image(
                &prepared,
                &SimConfig::with_stack(StackConfig::sms_default(), cfg),
            );
            println!("{id}: simulated {} cycles at IPC {:.2}", sim.stats.cycles, sim.stats.ipc());
            RenderOutput {
                image: sim.image,
                width: sim.width,
                height: sim.height,
                depths: sim.depths,
                rays: sim.stats.rays_traced,
                shadow_rays: sim.stats.shadow_rays,
            }
        } else {
            render(&prepared, &cfg)
        };
        let path = dir.join(format!("{}.ppm", id.name().to_lowercase()));
        write_ppm(&out, &path)?;
        println!(
            "{id}: {}x{}, {} rays ({} shadow), max stack depth {} -> {} [{:?}]",
            out.width,
            out.height,
            out.rays,
            out.shadow_rays,
            out.depths.max(),
            path.display(),
            t0.elapsed(),
        );
    }
    Ok(())
}
