//! Quickstart: simulate one scene under the baseline and the SMS
//! architecture and print the headline comparison.
//!
//! ```text
//! cargo run --release --example quickstart [SCENE]
//! ```

use sms_sim::config::RenderConfig;
use sms_sim::experiments::{run_prepared, RunResult};
use sms_sim::render::PreparedScene;
use sms_sim::report::{fmt_improvement, Table};
use sms_sim::rtunit::StackConfig;
use sms_sim::scene::SceneId;

fn main() {
    let scene: SceneId = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("unknown scene name"))
        .unwrap_or(SceneId::Chsnt);
    let render = RenderConfig::from_env();

    println!("Building {scene} and its BVH6...");
    let prepared = PreparedScene::build(scene, &render);
    println!(
        "  {} primitives, {} BVH nodes, image {}x{}",
        prepared.scene.prims.len(),
        prepared.bvh.nodes.len(),
        prepared.scene.camera.width,
        prepared.scene.camera.height,
    );

    let gpu = sms_sim::gpu::GpuConfig::default();
    let configs = [StackConfig::baseline8(), StackConfig::sms_default(), StackConfig::FullOnChip];
    let mut results: Vec<RunResult> = Vec::new();
    for stack in configs {
        println!("Simulating {stack}...");
        results.push(run_prepared(&prepared, stack, gpu, &render));
    }

    let base = &results[0];
    let mut table = Table::new(["config", "cycles", "IPC", "vs RB_8", "off-chip accesses"]);
    for r in &results {
        table.row([
            r.stack.label(),
            r.stats.cycles.to_string(),
            format!("{:.3}", r.ipc()),
            fmt_improvement(r.normalized_ipc(base)),
            r.stats.mem.offchip_accesses().to_string(),
        ]);
    }
    println!("\n{table}");
    println!(
        "SMS removed {} of {} baseline off-chip stack transactions.",
        base.stats.mem.stack_transactions.saturating_sub(results[1].stats.mem.stack_transactions),
        base.stats.mem.stack_transactions,
    );
}
