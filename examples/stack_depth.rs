//! Stack-depth analysis across the benchmark suite — the data behind the
//! paper's motivation (Figs. 4 and 5).
//!
//! ```text
//! cargo run --release --example stack_depth
//! SMS_SCENES=SHIP,PARTY cargo run --release --example stack_depth
//! ```

use sms_sim::analyze::{depth_buckets, measure_all};
use sms_sim::config::RenderConfig;
use sms_sim::experiments::scene_list;
use sms_sim::report::{fmt_pct, Table};

fn main() {
    let cfg = RenderConfig::from_env();
    let scenes = scene_list();
    println!("Measuring traversal-stack depths on {} scenes...\n", scenes.len());
    let (rows, total) = measure_all(&cfg, &scenes);

    let mut table =
        Table::new(["scene", "ops", "max", "mean", "median", "<=4", "5-8", "9-16", ">16"]);
    for r in &rows {
        let b = depth_buckets(&r.recorder);
        table.row([
            r.id.name().to_owned(),
            r.recorder.count().to_string(),
            r.recorder.max().to_string(),
            format!("{:.2}", r.recorder.mean()),
            r.recorder.quantile(0.5).to_string(),
            fmt_pct(b[0]),
            fmt_pct(b[1]),
            fmt_pct(b[2]),
            fmt_pct(b[3]),
        ]);
    }
    let b = depth_buckets(&total);
    table.row([
        "ALL".to_owned(),
        total.count().to_string(),
        total.max().to_string(),
        format!("{:.2}", total.mean()),
        total.quantile(0.5).to_string(),
        fmt_pct(b[0]),
        fmt_pct(b[1]),
        fmt_pct(b[2]),
        fmt_pct(b[3]),
    ]);
    println!("{table}");
    println!(
        "Paper reference (Figs. 4-5): mean 4-5, max ~30; 17% of steps need 9-16 \
         entries, 1.9% exceed 16."
    );
}
