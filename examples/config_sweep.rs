//! Sweeps RB/SH stack sizes on one scene, printing the full design space —
//! a combined view of the paper's Figs. 6a, 8 and 15.
//!
//! The sweep runs as one deduplicated `sms-harness` batch: configs fan out
//! across the worker pool and a re-run of the same sweep is served entirely
//! from the on-disk result cache (`SMS_JOBS`, `SMS_NO_CACHE`, `SMS_JOURNAL`
//! apply, see DESIGN.md).
//!
//! ```text
//! cargo run --release --example config_sweep [SCENE]
//! ```

use sms_harness::{Harness, RunRequest};
use sms_sim::config::RenderConfig;
use sms_sim::report::{fmt_improvement, Table};
use sms_sim::rtunit::{SmsParams, StackConfig};
use sms_sim::scene::SceneId;

fn main() {
    let scene: SceneId = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("unknown scene name"))
        .unwrap_or(SceneId::Party);
    let render = RenderConfig::from_env();
    println!("Sweeping stack configurations on {scene}...\n");

    let mut configs = vec![
        StackConfig::Baseline { rb_entries: 2 },
        StackConfig::Baseline { rb_entries: 4 },
        StackConfig::baseline8(),
        StackConfig::Baseline { rb_entries: 16 },
        StackConfig::Baseline { rb_entries: 32 },
    ];
    for rb in [2, 4, 8] {
        for sh in [4, 8, 16] {
            configs.push(StackConfig::Sms(
                SmsParams { rb_entries: rb, sh_entries: sh, ..SmsParams::default() }
                    .with_skewed(true)
                    .with_realloc(true),
            ));
        }
    }
    configs.push(StackConfig::FullOnChip);

    let harness = Harness::from_env();
    let requests: Vec<RunRequest> =
        configs.iter().map(|&stack| RunRequest::new(scene, stack, render)).collect();
    let (outcomes, summary) = harness.try_run_batch(&requests);
    eprintln!("{summary}");

    // Failed configs are reported and dropped from the table; the rest of
    // the sweep is still printed (unless the baseline itself died).
    let mut results = Vec::with_capacity(outcomes.len());
    let mut failed = 0usize;
    for (cfg, outcome) in configs.iter().zip(outcomes) {
        match outcome {
            Ok(r) => results.push(r),
            Err(e) => {
                failed += 1;
                eprintln!("FAILED {}: {e}", cfg.label());
            }
        }
    }
    let Some(base) = results.iter().find(|r| r.stack == StackConfig::baseline8()) else {
        eprintln!("baseline RB_8 run failed; nothing to normalize against");
        std::process::exit(2);
    };
    let mut table = Table::new(["config", "cycles", "norm. IPC", "off-chip", "spills"]);
    for r in &results {
        table.row([
            r.stack.label(),
            r.stats.cycles.to_string(),
            fmt_improvement(r.normalized_ipc(base)),
            r.stats.mem.offchip_accesses().to_string(),
            (r.stats.rb_spills + r.stats.sh_spills).to_string(),
        ]);
    }
    println!("\n{table}");
    if failed > 0 {
        eprintln!("{failed} config(s) failed; sweep is partial");
        std::process::exit(2);
    }
}
