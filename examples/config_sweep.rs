//! Sweeps RB/SH stack sizes on one scene, printing the full design space —
//! a combined view of the paper's Figs. 6a, 8 and 15.
//!
//! ```text
//! cargo run --release --example config_sweep [SCENE]
//! ```

use sms_sim::config::RenderConfig;
use sms_sim::experiments::run_prepared;
use sms_sim::gpu::GpuConfig;
use sms_sim::render::PreparedScene;
use sms_sim::report::{fmt_improvement, Table};
use sms_sim::rtunit::{SmsParams, StackConfig};
use sms_sim::scene::SceneId;

fn main() {
    let scene: SceneId = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("unknown scene name"))
        .unwrap_or(SceneId::Party);
    let render = RenderConfig::from_env();
    println!("Sweeping stack configurations on {scene}...\n");
    let prepared = PreparedScene::build(scene, &render);
    let gpu = GpuConfig::default();

    let mut configs = vec![
        StackConfig::Baseline { rb_entries: 2 },
        StackConfig::Baseline { rb_entries: 4 },
        StackConfig::baseline8(),
        StackConfig::Baseline { rb_entries: 16 },
        StackConfig::Baseline { rb_entries: 32 },
    ];
    for rb in [2, 4, 8] {
        for sh in [4, 8, 16] {
            configs.push(StackConfig::Sms(
                SmsParams { rb_entries: rb, sh_entries: sh, ..SmsParams::default() }
                    .with_skewed(true)
                    .with_realloc(true),
            ));
        }
    }
    configs.push(StackConfig::FullOnChip);

    let base = run_prepared(&prepared, StackConfig::baseline8(), gpu, &render);
    let mut table = Table::new(["config", "cycles", "norm. IPC", "off-chip", "spills"]);
    for stack in configs {
        let r = if stack == StackConfig::baseline8() {
            base.clone()
        } else {
            run_prepared(&prepared, stack, gpu, &render)
        };
        table.row([
            r.stack.label(),
            r.stats.cycles.to_string(),
            fmt_improvement(r.normalized_ipc(&base)),
            r.stats.mem.offchip_accesses().to_string(),
            (r.stats.rb_spills + r.stats.sh_spills).to_string(),
        ]);
        println!("finished {}", r.stack);
    }
    println!("\n{table}");
}
