//! Workspace-level integration tests spanning every crate: scene
//! generation → BVH → functional render → cycle simulation → experiment
//! plumbing, checking the end-to-end invariants the reproduction rests on.

use sms_sim::bvh::{BuildParams, BvhStats, WideBvh};
use sms_sim::config::{RenderConfig, SimConfig};
use sms_sim::experiments::{run_prepared, scene_list};
use sms_sim::gpu::GpuConfig;
use sms_sim::render::{render, PreparedScene};
use sms_sim::rtunit::{SmsParams, StackConfig};
use sms_sim::scene::{Scene, SceneId};

/// Every scene builds, has a valid BVH, and renders non-trivially.
#[test]
fn all_scenes_build_and_render() {
    let cfg = RenderConfig::tiny();
    for id in SceneId::ALL {
        let prepared = PreparedScene::build(id, &cfg);
        let stats = BvhStats::measure(&prepared.bvh);
        assert!(stats.nodes > 0, "{id}: empty BVH");
        assert!(stats.depth < 64, "{id}: runaway BVH depth {}", stats.depth);
        let out = render(&prepared, &cfg);
        assert!(out.rays >= (16 * 16) as u64, "{id}: no rays traced");
        assert!(out.image.iter().all(|p| p.is_finite()), "{id}: NaN radiance");
    }
}

/// The documented Table II relative ordering survives workload scaling.
#[test]
fn scene_sizes_ordering() {
    let count = |id| Scene::build(id).triangle_count();
    assert!(count(SceneId::Robot) > count(SceneId::Car));
    assert!(count(SceneId::Car) > count(SceneId::Party));
    assert!(count(SceneId::Ship) < count(SceneId::Spnza));
    assert_eq!(count(SceneId::Wknd), 0, "WKND is the sphere scene");
}

/// The headline experiment (Fig. 13 shape) on one deep-stack scene:
/// baseline < SMS <= full, with identical traversal work.
#[test]
fn headline_ordering_chsnt() {
    let render_cfg = RenderConfig::tiny();
    let prepared = PreparedScene::build(SceneId::Chsnt, &render_cfg);
    let gpu = GpuConfig::default();
    let base = run_prepared(&prepared, StackConfig::baseline8(), gpu, &render_cfg);
    let sms = run_prepared(&prepared, StackConfig::sms_default(), gpu, &render_cfg);
    let full = run_prepared(&prepared, StackConfig::FullOnChip, gpu, &render_cfg);

    assert_eq!(base.stats.node_visits, sms.stats.node_visits);
    assert_eq!(base.stats.node_visits, full.stats.node_visits);
    assert!(base.stats.rb_spills > 0, "workload must spill");
    assert!(
        sms.stats.cycles < base.stats.cycles,
        "SMS ({}) must beat baseline ({})",
        sms.stats.cycles,
        base.stats.cycles
    );
    assert!(full.stats.cycles <= sms.stats.cycles, "full stack is the bound");
    // SMS moves stack traffic on-chip: off-chip accesses drop.
    assert!(sms.stats.mem.offchip_accesses() < base.stats.mem.offchip_accesses());
    assert!(sms.stats.mem.shared_accesses > 0);
}

/// Smaller RB stacks hurt the baseline but SMS recovers them (Fig. 15a).
#[test]
fn rb2_with_sms_beats_plain_rb2() {
    let render_cfg = RenderConfig::tiny();
    let prepared = PreparedScene::build(SceneId::Ship, &render_cfg);
    let gpu = GpuConfig::default();
    let rb2 = run_prepared(&prepared, StackConfig::Baseline { rb_entries: 2 }, gpu, &render_cfg);
    let rb8 = run_prepared(&prepared, StackConfig::baseline8(), gpu, &render_cfg);
    let rb2_sms = run_prepared(
        &prepared,
        StackConfig::Sms(
            SmsParams { rb_entries: 2, ..SmsParams::default() }
                .with_skewed(true)
                .with_realloc(true),
        ),
        gpu,
        &render_cfg,
    );
    assert!(rb2.stats.cycles > rb8.stats.cycles, "RB_2 must be slower than RB_8");
    assert!(rb2_sms.stats.cycles < rb2.stats.cycles, "SMS must rescue RB_2");
    assert!(
        rb2.stats.mem.offchip_accesses() > rb8.stats.mem.offchip_accesses(),
        "RB_2 must raise off-chip traffic (Fig. 15b)"
    );
}

/// Skewed bank access reduces conflict delay cycles (Fig. 14).
#[test]
fn skew_reduces_conflicts_end_to_end() {
    let render_cfg = RenderConfig::tiny();
    let prepared = PreparedScene::build(SceneId::Party, &render_cfg);
    let gpu = GpuConfig::default();
    let plain = run_prepared(&prepared, StackConfig::Sms(SmsParams::default()), gpu, &render_cfg);
    let skewed = run_prepared(
        &prepared,
        StackConfig::Sms(SmsParams::default().with_skewed(true)),
        gpu,
        &render_cfg,
    );
    assert!(plain.stats.mem.bank_conflict_cycles > 0);
    assert!(
        skewed.stats.mem.bank_conflict_cycles < plain.stats.mem.bank_conflict_cycles,
        "skew: {} -> {}",
        plain.stats.mem.bank_conflict_cycles,
        skewed.stats.mem.bank_conflict_cycles
    );
}

/// The BVH-quality ablation knob works end to end and SAH produces
/// cheaper traversal.
#[test]
fn sah_builder_traverses_fewer_nodes() {
    let cfg = RenderConfig::tiny();
    let scene = cfg.apply(Scene::build(SceneId::Bunny));
    let median = WideBvh::build(&scene.prims, &BuildParams::default());
    let sah = WideBvh::build(&scene.prims, &BuildParams::sah());
    let visits = |bvh: &WideBvh| {
        let flat = sms_sim::bvh::FlatBvh::from_wide(bvh);
        let prepared = PreparedScene { scene: scene.clone(), bvh: bvh.clone(), flat, build_us: 0 };
        render(&prepared, &cfg).depths.count()
    };
    let vm = visits(&median);
    let vs = visits(&sah);
    assert!(vs < vm, "SAH stack ops {vs} should undercut median {vm}");
}

/// The paper-size configuration plumbs through (without running a full
/// simulation): workloads and spp match §VII-A.
#[test]
fn paper_workload_sizes() {
    let cfg = RenderConfig::paper();
    assert_eq!(cfg.workload(SceneId::Party), (128, 128, 2));
    assert_eq!(cfg.workload(SceneId::Park), (32, 32, 1));
    let sim = SimConfig::with_stack(StackConfig::sms_default(), cfg);
    assert_eq!(sim.gpu.l1.size_bytes, 56 * 1024);
}

/// `scene_list` returns the full Table II suite by default.
#[test]
fn default_scene_list_is_full_suite() {
    // (Environment-dependent only if SMS_SCENES is set, which tests don't.)
    if std::env::var("SMS_SCENES").is_err() {
        assert_eq!(scene_list().len(), 16);
    }
}
