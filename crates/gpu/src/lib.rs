//! SM-level GPU modelling: configuration (Table I), the greedy-then-oldest
//! warp scheduler, and simulation statistics.
//!
//! The full cycle loop lives in the `sms-sim` crate (it couples the SIMT
//! compute model, the RT unit and the memory system); this crate holds the
//! pieces that are meaningful on their own and shared by both sides:
//!
//! * [`GpuConfig`] — the baseline GPU parameters of the paper's Table I,
//!   with the L1D/shared-memory split knob the SMS architecture turns.
//! * [`GtoScheduler`] — greedy-then-oldest warp selection, used by both the
//!   SM compute scheduler and the RT unit's warp buffer (paper §II-B).
//! * [`SimStats`] — cycle/instruction/traversal counters and the IPC
//!   quantity every figure normalizes.
//! * [`StallBreakdown`] — the opt-in cycle-attribution taxonomy: every
//!   simulated warp/lane cycle charged to exactly one stall bucket.

pub mod breakdown;
pub mod config;
pub mod sched;
pub mod stats;

pub use breakdown::StallBreakdown;
pub use config::GpuConfig;
pub use sched::GtoScheduler;
pub use stats::SimStats;

/// Index of a warp within the whole launch (launch order = age).
pub type WarpId = u32;

/// Number of threads per warp (fixed at 32, as in Table I).
pub const WARP_SIZE: usize = 32;
