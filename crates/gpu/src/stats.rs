//! Whole-simulation statistics.

use sms_mem::MemStats;

/// Counters accumulated over one simulation run.
///
/// `thread_instructions + node_visits` is the committed-instruction count
/// used for IPC. Traversal work (`node_visits`, per-thread) is identical
/// across stack configurations by construction, so normalized IPC between
/// two configurations reduces to their inverse cycle ratio — the paper's
/// methodology for Figs. 6, 8, 13 and 15.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Thread-level compute instructions committed by the SIMT core model.
    pub thread_instructions: u64,
    /// BVH node visits committed by RT units (thread-level).
    pub node_visits: u64,
    /// Rays fully traced (nearest-hit queries).
    pub rays_traced: u64,
    /// Shadow/occlusion rays traced.
    pub shadow_rays: u64,
    /// Traversal-stack spills from the RB stack to the level below.
    pub rb_spills: u64,
    /// Traversal-stack reloads into the RB stack from the level below.
    pub rb_reloads: u64,
    /// Spills from shared memory to global memory (SMS only).
    pub sh_spills: u64,
    /// Reloads from global memory into shared memory (SMS only).
    pub sh_reloads: u64,
    /// Whole-stack flushes performed by intra-warp reallocation.
    pub ra_flushes: u64,
    /// SH stacks borrowed by intra-warp reallocation.
    pub ra_borrows: u64,
    /// Ray-path predictor probes that confirmed (predicted leaf hit).
    /// Zero unless a `PRED_*` stack configuration is in use.
    pub pred_hits: u64,
    /// Ray-path predictor probes that mispredicted (fell back to the full
    /// stacked traversal). Zero unless a `PRED_*` configuration is in use.
    pub pred_misses: u64,
    /// Aggregated memory-system counters.
    pub mem: MemStats,
}

impl SimStats {
    /// Committed instructions (compute + traversal).
    pub fn instructions(&self) -> u64 {
        self.thread_instructions + self.node_visits
    }

    /// Instructions per cycle; `0` for an empty run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions() as f64 / self.cycles as f64
        }
    }

    /// Accumulates `other` (e.g. per-SM partial stats) into `self`.
    /// `cycles` takes the maximum rather than the sum.
    pub fn merge(&mut self, other: &SimStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.thread_instructions += other.thread_instructions;
        self.node_visits += other.node_visits;
        self.rays_traced += other.rays_traced;
        self.shadow_rays += other.shadow_rays;
        self.rb_spills += other.rb_spills;
        self.rb_reloads += other.rb_reloads;
        self.sh_spills += other.sh_spills;
        self.sh_reloads += other.sh_reloads;
        self.ra_flushes += other.ra_flushes;
        self.ra_borrows += other.ra_borrows;
        self.pred_hits += other.pred_hits;
        self.pred_misses += other.pred_misses;
        self.mem.merge(&other.mem);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_zero_cycles() {
        assert_eq!(SimStats::default().ipc(), 0.0);
    }

    #[test]
    fn ipc_counts_compute_and_traversal() {
        let s = SimStats {
            cycles: 100,
            thread_instructions: 300,
            node_visits: 200,
            ..Default::default()
        };
        assert_eq!(s.instructions(), 500);
        assert_eq!(s.ipc(), 5.0);
    }

    #[test]
    fn merge_maxes_cycles_sums_work() {
        let mut a = SimStats { cycles: 10, node_visits: 1, ..Default::default() };
        let b = SimStats { cycles: 25, node_visits: 2, rb_spills: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.cycles, 25);
        assert_eq!(a.node_visits, 3);
        assert_eq!(a.rb_spills, 3);
    }
}
