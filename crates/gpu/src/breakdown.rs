//! Cycle-attribution taxonomy: where every simulated cycle goes.
//!
//! [`StallBreakdown`] is the pure-observation companion to [`SimStats`]:
//! when attribution is armed, the simulator charges every resident cycle of
//! every warp to exactly one *warp-level* bucket, and every cycle of every
//! lane of an RT-resident warp to exactly one *lane-level* bucket. The two
//! conservation laws are checked by the accounting code itself
//! ([`StallBreakdown::warp_sum`] / [`StallBreakdown::lane_sum`] against the
//! recorded totals), so a bucket that silently leaks cycles is a loud
//! failure rather than a skewed table.
//!
//! Units differ between the two levels on purpose:
//!
//! * warp-level buckets count **warp-cycles** (one per warp per cycle the
//!   warp is resident on an SM) — this is the SM scheduler's view and the
//!   level at which IPC differences between stack configurations appear;
//! * lane-level buckets count **lane-cycles** (one per lane per cycle the
//!   warp sits in an RT-unit slot, 32 per warp-cycle) — this is where the
//!   paper's stack traffic, bank conflicts and memory latencies live.
//!
//! All counters are additive under [`StallBreakdown::merge`], so per-SM and
//! per-run instances aggregate the same way [`SimStats`] does.
//!
//! [`SimStats`]: crate::SimStats

/// Per-run stall/attribution counters. Observation-only: arming the
/// attribution layer changes no scheduling decision and no [`SimStats`]
/// counter (asserted by `crates/core/tests/` and the fig13 sweep check).
///
/// [`SimStats`]: crate::SimStats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    // --- Warp-level buckets (warp-cycles, SM view). ---
    /// Cycles in a compute phase (ray-gen / shade / accumulate), including
    /// cycles lost to issue-width arbitration between compute warps.
    pub compute: u64,
    /// Cycles waiting on non-stack memory (material-record loads).
    pub mem_wait: u64,
    /// Cycles holding a trace request while the RT unit's warp buffer is
    /// full (admission wait).
    pub rt_admit: u64,
    /// Cycles resident in an RT-unit warp slot.
    pub in_rt: u64,
    /// Total warp-resident cycles: launch-to-retire per warp, summed.
    /// Invariant: `warp_sum() == warp_cycles`.
    pub warp_cycles: u64,

    // --- Lane-level buckets (lane-cycles, RT-unit view). ---
    /// Issuable (node fetch or stack op pending) but not yet picked by the
    /// RT unit's GTO scheduler.
    pub rt_sched_wait: u64,
    /// Node/primitive fetch in flight, served by the L1.
    pub fetch_wait_l1: u64,
    /// Node/primitive fetch in flight, served by the L2.
    pub fetch_wait_l2: u64,
    /// Node/primitive fetch in flight, served by DRAM.
    pub fetch_wait_dram: u64,
    /// Ray-box / ray-triangle operation unit busy.
    pub op_wait: u64,
    /// Blocking stack micro-op between the RB stack and the SH level
    /// (shared-memory refill reads), minus bank-conflict replay cycles.
    pub stack_wait_rb_sh: u64,
    /// Blocking stack micro-op between the SH level (or the RB stack in
    /// baseline configurations) and global memory: spill reloads.
    pub stack_wait_sh_global: u64,
    /// Blocking phase of an intra-warp reallocation flush (the warp-wide
    /// shared-memory burst read; the global burst store is posted).
    pub stack_wait_flush: u64,
    /// Shared-memory bank-conflict replay cycles charged to blocked lanes
    /// (carved out of the stack-wait buckets above).
    pub bank_conflict_replay: u64,
    /// Lane-cycles spent on ray-path-predictor probes: the fetch and
    /// operation waits of the speculative predicted-leaf visit, confirmed
    /// or mispredicted (`SimStats::pred_hits` / `pred_misses` split the
    /// two). Zero unless a `PRED_*` configuration is in use.
    pub predictor_wait: u64,
    /// Lane idle inside a resident warp: traversal finished early, or the
    /// lane was inactive in the trace request.
    pub rt_idle: u64,
    /// Total lane-cycles of RT residency (`32 ×` the warp-level `in_rt`).
    /// Invariant: `lane_sum() == rt_lane_cycles`.
    pub rt_lane_cycles: u64,
}

impl StallBreakdown {
    /// Sum of the warp-level buckets; equals [`StallBreakdown::warp_cycles`]
    /// on any complete run (every resident cycle attributed exactly once).
    pub fn warp_sum(&self) -> u64 {
        self.compute + self.mem_wait + self.rt_admit + self.in_rt
    }

    /// Sum of the lane-level buckets; equals
    /// [`StallBreakdown::rt_lane_cycles`] on any complete run.
    pub fn lane_sum(&self) -> u64 {
        self.rt_sched_wait
            + self.fetch_wait_l1
            + self.fetch_wait_l2
            + self.fetch_wait_dram
            + self.op_wait
            + self.stack_wait_rb_sh
            + self.stack_wait_sh_global
            + self.stack_wait_flush
            + self.bank_conflict_replay
            + self.predictor_wait
            + self.rt_idle
    }

    /// All blocking stack-wait lane-cycles (all levels + conflict replay).
    pub fn stack_wait_total(&self) -> u64 {
        self.stack_wait_rb_sh
            + self.stack_wait_sh_global
            + self.stack_wait_flush
            + self.bank_conflict_replay
    }

    /// All node/primitive fetch-wait lane-cycles.
    pub fn fetch_wait_total(&self) -> u64 {
        self.fetch_wait_l1 + self.fetch_wait_l2 + self.fetch_wait_dram
    }

    /// `true` when both conservation laws hold.
    pub fn is_conserved(&self) -> bool {
        self.warp_sum() == self.warp_cycles && self.lane_sum() == self.rt_lane_cycles
    }

    /// Accumulates `other` into `self` (all fields are additive).
    pub fn merge(&mut self, other: &StallBreakdown) {
        let StallBreakdown {
            compute,
            mem_wait,
            rt_admit,
            in_rt,
            warp_cycles,
            rt_sched_wait,
            fetch_wait_l1,
            fetch_wait_l2,
            fetch_wait_dram,
            op_wait,
            stack_wait_rb_sh,
            stack_wait_sh_global,
            stack_wait_flush,
            bank_conflict_replay,
            predictor_wait,
            rt_idle,
            rt_lane_cycles,
        } = *other;
        self.compute += compute;
        self.mem_wait += mem_wait;
        self.rt_admit += rt_admit;
        self.in_rt += in_rt;
        self.warp_cycles += warp_cycles;
        self.rt_sched_wait += rt_sched_wait;
        self.fetch_wait_l1 += fetch_wait_l1;
        self.fetch_wait_l2 += fetch_wait_l2;
        self.fetch_wait_dram += fetch_wait_dram;
        self.op_wait += op_wait;
        self.stack_wait_rb_sh += stack_wait_rb_sh;
        self.stack_wait_sh_global += stack_wait_sh_global;
        self.stack_wait_flush += stack_wait_flush;
        self.bank_conflict_replay += bank_conflict_replay;
        self.predictor_wait += predictor_wait;
        self.rt_idle += rt_idle;
        self.rt_lane_cycles += rt_lane_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_cover_every_bucket() {
        // Fill every field with a distinct value; the sums must see each
        // bucket exactly once and the totals not at all.
        let b = StallBreakdown {
            compute: 1,
            mem_wait: 2,
            rt_admit: 4,
            in_rt: 8,
            warp_cycles: 15,
            rt_sched_wait: 16,
            fetch_wait_l1: 32,
            fetch_wait_l2: 64,
            fetch_wait_dram: 128,
            op_wait: 256,
            stack_wait_rb_sh: 512,
            stack_wait_sh_global: 1024,
            stack_wait_flush: 2048,
            bank_conflict_replay: 4096,
            predictor_wait: 8192,
            rt_idle: 16384,
            rt_lane_cycles: 32752,
        };
        assert_eq!(b.warp_sum(), 15);
        assert_eq!(b.lane_sum(), 32752);
        assert!(b.is_conserved());
        assert_eq!(b.stack_wait_total(), 512 + 1024 + 2048 + 4096);
        assert_eq!(b.fetch_wait_total(), 32 + 64 + 128);
    }

    #[test]
    fn merge_is_fieldwise_addition() {
        let mut a = StallBreakdown { compute: 1, rt_idle: 2, ..Default::default() };
        let b = StallBreakdown { compute: 10, bank_conflict_replay: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.compute, 11);
        assert_eq!(a.rt_idle, 2);
        assert_eq!(a.bank_conflict_replay, 3);
    }

    #[test]
    fn default_is_conserved() {
        assert!(StallBreakdown::default().is_conserved());
    }
}
