//! Greedy-then-oldest (GTO) warp scheduling (paper §II-B).

use crate::WarpId;

/// A greedy-then-oldest warp scheduler.
///
/// GTO keeps issuing from the same warp until it stalls, then falls back to
/// the *oldest* ready warp (smallest [`WarpId`], since warps are numbered in
/// launch order). Both the SM compute scheduler and the RT unit use this
/// policy in the paper's baseline.
///
/// # Example
///
/// ```
/// use sms_gpu::GtoScheduler;
/// let mut s = GtoScheduler::new();
/// assert_eq!(s.pick([3, 1, 2]), Some(1));   // oldest first
/// assert_eq!(s.pick([3, 1, 2]), Some(1));   // greedy: stick with 1
/// assert_eq!(s.pick([3, 2]), Some(2));      // 1 stalled -> oldest ready
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GtoScheduler {
    last: Option<WarpId>,
}

impl GtoScheduler {
    /// Creates a scheduler with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Picks a warp from `ready` (warps able to issue this cycle):
    /// the previously scheduled warp if still ready, else the oldest.
    /// Returns `None` when nothing is ready.
    pub fn pick(&mut self, ready: impl IntoIterator<Item = WarpId>) -> Option<WarpId> {
        let mut oldest: Option<WarpId> = None;
        let mut greedy = false;
        for w in ready {
            if Some(w) == self.last {
                greedy = true;
            }
            if oldest.is_none_or(|o| w < o) {
                oldest = Some(w);
            }
        }
        let choice = if greedy { self.last } else { oldest };
        self.last = choice.or(self.last);
        choice
    }

    /// Forgets the greedy warp (e.g. when it retired).
    pub fn evict(&mut self, warp: WarpId) {
        if self.last == Some(warp) {
            self.last = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ready_set_yields_none() {
        let mut s = GtoScheduler::new();
        assert_eq!(s.pick([]), None);
    }

    #[test]
    fn prefers_oldest_initially() {
        let mut s = GtoScheduler::new();
        assert_eq!(s.pick([5, 9, 2]), Some(2));
    }

    #[test]
    fn greedy_until_stall() {
        let mut s = GtoScheduler::new();
        assert_eq!(s.pick([2, 5]), Some(2));
        assert_eq!(s.pick([5, 2]), Some(2));
        // 2 stalls.
        assert_eq!(s.pick([5, 9]), Some(5));
        // 2 comes back ready, but greedy now sticks to 5.
        assert_eq!(s.pick([2, 5, 9]), Some(5));
    }

    #[test]
    fn evict_clears_greedy_preference() {
        let mut s = GtoScheduler::new();
        assert_eq!(s.pick([4, 7]), Some(4));
        s.evict(4);
        assert_eq!(s.pick([7, 4]), Some(4), "falls back to oldest, not stale greedy");
    }

    #[test]
    fn stall_preserves_greedy_warp() {
        let mut s = GtoScheduler::new();
        assert_eq!(s.pick([3]), Some(3));
        assert_eq!(s.pick([]), None);
        // After a fully stalled cycle, the greedy warp is still preferred.
        assert_eq!(s.pick([1, 3]), Some(3));
    }
}
