//! Baseline GPU parameters (paper Table I) and the L1D/shared split.

use sms_mem::{GlobalMemoryConfig, L1Config, SharedMemConfig};
use std::fmt;

/// Full GPU configuration.
///
/// Defaults transcribe the paper's Table I (the original Vulkan-Sim mobile
/// SoC configuration). The unified 64 KB L1/shared array is split by
/// [`GpuConfig::with_shared_carveout`]: dedicating bytes to shared-memory
/// SH stacks shrinks the L1D, exactly as in the paper's §IV-B.
///
/// # Example
///
/// ```
/// use sms_gpu::GpuConfig;
/// let base = GpuConfig::default();
/// assert_eq!(base.num_sms, 8);
/// assert_eq!(base.l1.size_bytes, 64 * 1024);
/// // SMS default: 8KB of SH stacks leaves a 56KB L1D.
/// let sms = base.with_shared_carveout(8 * 1024);
/// assert_eq!(sms.l1.size_bytes, 56 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors (Table I: 8).
    pub num_sms: usize,
    /// Registers per SM (Table I: 32768; used for occupancy accounting).
    pub registers_per_sm: u32,
    /// RT units per SM (Table I: 1).
    pub rt_units_per_sm: usize,
    /// Maximum warps resident in one RT unit (Table I: 4).
    pub max_warps_per_rt_unit: usize,
    /// Warps resident per SM for the compute side (latency hiding).
    pub resident_warps_per_sm: usize,
    /// Warp compute instructions issued per SM per cycle (sub-cores).
    pub issue_width: usize,
    /// Unified-array capacity in bytes (L1D + shared = 64 KB).
    pub unified_bytes: u64,
    /// L1D slice of the unified array.
    pub l1: L1Config,
    /// Shared-memory timing/geometry.
    pub shared: SharedMemConfig,
    /// L2 + DRAM configuration.
    pub global: GlobalMemoryConfig,
    /// Ray-box operation unit latency (cycles per node visit).
    pub box_latency: u64,
    /// Ray-triangle operation unit latency (cycles per leaf visit).
    pub tri_latency: u64,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            num_sms: 8,
            registers_per_sm: 32_768,
            rt_units_per_sm: 1,
            max_warps_per_rt_unit: 4,
            resident_warps_per_sm: 8,
            issue_width: 4,
            unified_bytes: 64 * 1024,
            l1: L1Config::default(),
            shared: SharedMemConfig::default(),
            global: GlobalMemoryConfig::default(),
            box_latency: 10,
            tri_latency: 20,
        }
    }
}

impl GpuConfig {
    /// Returns a copy whose L1D gives up `shared_bytes` of the unified
    /// array to shared memory (the SMS trade).
    ///
    /// # Panics
    ///
    /// Panics if `shared_bytes` does not leave at least one L1 line.
    pub fn with_shared_carveout(mut self, shared_bytes: u64) -> Self {
        assert!(
            shared_bytes + 128 <= self.unified_bytes,
            "carving {shared_bytes}B out of a {}B unified array leaves no L1D",
            self.unified_bytes
        );
        self.l1.size_bytes = self.unified_bytes - shared_bytes;
        self
    }

    /// Returns a copy with the given L1D size (Fig. 6b sweep): models a
    /// physically different unified array, so later shared-memory carveouts
    /// subtract from this size.
    pub fn with_l1_size(mut self, bytes: u64) -> Self {
        assert!(bytes >= 128, "L1D must hold at least one line");
        self.l1.size_bytes = bytes;
        self.unified_bytes = bytes;
        self
    }

    /// Total threads resident in all RT units at once.
    pub fn rt_threads(&self) -> usize {
        self.num_sms * self.rt_units_per_sm * self.max_warps_per_rt_unit * crate::WARP_SIZE
    }
}

impl fmt::Display for GpuConfig {
    /// Renders the Table I parameter block.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# SMs                 {}", self.num_sms)?;
        writeln!(f, "warp size             {}", crate::WARP_SIZE)?;
        writeln!(f, "warp scheduler        GTO")?;
        writeln!(f, "# registers per SM    {}", self.registers_per_sm)?;
        writeln!(f, "# RT units per SM     {}", self.rt_units_per_sm)?;
        writeln!(f, "max # warps per RT    {}", self.max_warps_per_rt_unit)?;
        writeln!(
            f,
            "L1D/shared memory     {}KB, fully associative, LRU, {} cycles",
            self.l1.size_bytes / 1024,
            self.l1.latency
        )?;
        write!(
            f,
            "L2 unified cache      {}MB, {}-way associative, LRU, {} cycles",
            self.global.l2.size_bytes / (1024 * 1024),
            self.global.l2.assoc,
            self.global.l2_latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let c = GpuConfig::default();
        assert_eq!(c.num_sms, 8);
        assert_eq!(c.registers_per_sm, 32_768);
        assert_eq!(c.rt_units_per_sm, 1);
        assert_eq!(c.max_warps_per_rt_unit, 4);
        assert_eq!(c.l1.size_bytes, 64 * 1024);
        assert_eq!(c.l1.latency, 20);
        assert_eq!(c.global.l2.size_bytes, 3 * 1024 * 1024);
        assert_eq!(c.global.l2.assoc, 16);
        assert_eq!(c.global.l2_latency, 160);
    }

    #[test]
    fn carveout_shrinks_l1() {
        let c = GpuConfig::default().with_shared_carveout(8 * 1024);
        assert_eq!(c.l1.size_bytes, 56 * 1024);
        assert_eq!(c.unified_bytes, 64 * 1024);
    }

    #[test]
    #[should_panic(expected = "leaves no L1D")]
    fn full_carveout_rejected() {
        let _ = GpuConfig::default().with_shared_carveout(64 * 1024);
    }

    #[test]
    fn table1_render_mentions_key_values() {
        let s = GpuConfig::default().to_string();
        assert!(s.contains("GTO"));
        assert!(s.contains("64KB"));
        assert!(s.contains("3MB"));
        assert!(s.contains("160 cycles"));
    }

    #[test]
    fn rt_thread_capacity() {
        assert_eq!(GpuConfig::default().rt_threads(), 8 * 4 * 32);
    }
}
