//! The typed metric registry and its Prometheus text rendering.

use crate::fmt_f64;
use crate::hist::Histogram;

/// One registered metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotonically accumulated count.
    Counter(u64),
    /// An instantaneous (last-written) value.
    Gauge(f64),
    /// A value distribution.
    Histogram(Histogram),
}

impl Metric {
    /// The Prometheus `# TYPE` keyword for this metric.
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    name: String,
    help: String,
    /// Pre-rendered `key="value",...` label pairs (may be empty).
    labels: String,
    metric: Metric,
}

/// An ordered collection of named metrics.
///
/// Registration order is preserved in the rendered output, so exports are
/// deterministic and golden-testable. Names must match the Prometheus
/// metric-name grammar; label values are escaped on registration.
///
/// # Example
///
/// ```
/// use sms_metrics::{Histogram, Metric, Registry};
///
/// let mut reg = Registry::new();
/// reg.counter("sms_rays_traced_total", "Primary rays traced", 42);
/// reg.gauge("sms_ipc", "Instructions per cycle", 1.5);
/// let mut h = Histogram::new();
/// h.record(3);
/// reg.histogram("sms_stack_depth", "Depth at push", h);
/// let text = reg.render_prometheus();
/// assert!(text.contains("sms_rays_traced_total 42"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    entries: Vec<Entry>,
    /// Labels applied to every subsequently registered metric.
    base_labels: String,
}

/// `true` iff `name` matches `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else { return false };
    let head = |c: char| c.is_ascii_alphabetic() || c == '_' || c == ':';
    head(first) && chars.all(|c| head(c) || c.is_ascii_digit())
}

impl Registry {
    /// An empty registry with no base labels.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Sets label pairs stamped onto every metric registered afterwards
    /// (e.g. `scene="SHIP"`, `config="RB_8+SH_8+SK+RA"`).
    pub fn set_base_labels(&mut self, pairs: &[(&str, &str)]) {
        self.base_labels = pairs
            .iter()
            .map(|(k, v)| {
                assert!(valid_metric_name(k), "invalid label name `{k}`");
                format!("{k}=\"{}\"", escape_label(v))
            })
            .collect::<Vec<_>>()
            .join(",");
    }

    fn push(&mut self, name: &str, help: &str, metric: Metric) {
        assert!(valid_metric_name(name), "invalid metric name `{name}`");
        assert!(self.entries.iter().all(|e| e.name != name), "metric `{name}` registered twice");
        self.entries.push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            labels: self.base_labels.clone(),
            metric,
        });
    }

    /// Registers a counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.push(name, help, Metric::Counter(value));
    }

    /// Registers a gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.push(name, help, Metric::Gauge(value));
    }

    /// Registers a histogram.
    pub fn histogram(&mut self, name: &str, help: &str, hist: Histogram) {
        self.push(name, help, Metric::Histogram(hist));
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.entries.iter().find(|e| e.name == name).map(|e| &e.metric)
    }

    /// Renders the registry in Prometheus text exposition format
    /// (`# HELP` / `# TYPE` headers, then samples, in registration order).
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
            let _ = writeln!(out, "# TYPE {} {}", e.name, e.metric.type_name());
            let braces =
                if e.labels.is_empty() { String::new() } else { format!("{{{}}}", e.labels) };
            match &e.metric {
                Metric::Counter(v) => {
                    let _ = writeln!(out, "{}{braces} {v}", e.name);
                }
                Metric::Gauge(v) => {
                    let _ = writeln!(out, "{}{braces} {}", e.name, fmt_f64(*v));
                }
                Metric::Histogram(h) => h.render_prometheus(&e.name, &e.labels, &mut out),
            }
        }
        out
    }
}

/// Escapes a label value per the exposition format (`\`, `"`, newline).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_in_registration_order_with_labels() {
        let mut reg = Registry::new();
        reg.set_base_labels(&[("scene", "SHIP"), ("config", "RB_8+SH_8")]);
        reg.counter("sms_spills_total", "Global spills", 7);
        reg.gauge("sms_ipc", "IPC", 0.5);
        let text = reg.render_prometheus();
        let expected = "# HELP sms_spills_total Global spills\n\
                        # TYPE sms_spills_total counter\n\
                        sms_spills_total{scene=\"SHIP\",config=\"RB_8+SH_8\"} 7\n\
                        # HELP sms_ipc IPC\n\
                        # TYPE sms_ipc gauge\n\
                        sms_ipc{scene=\"SHIP\",config=\"RB_8+SH_8\"} 0.5\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let mut reg = Registry::new();
        let mut h = Histogram::new();
        h.record_n(2, 3);
        h.record(5);
        reg.histogram("sms_depth", "Depth", h);
        let text = reg.render_prometheus();
        let expected = "# HELP sms_depth Depth\n\
                        # TYPE sms_depth histogram\n\
                        sms_depth_bucket{le=\"2\"} 3\n\
                        sms_depth_bucket{le=\"5\"} 4\n\
                        sms_depth_bucket{le=\"+Inf\"} 4\n\
                        sms_depth_sum 11\n\
                        sms_depth_count 4\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn name_validation() {
        assert!(valid_metric_name("sms_ipc"));
        assert!(valid_metric_name("_x:y9"));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("9x"));
        assert!(!valid_metric_name("a-b"));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_rejected() {
        let mut reg = Registry::new();
        reg.counter("x", "one", 1);
        reg.counter("x", "two", 2);
    }
}
