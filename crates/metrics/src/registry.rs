//! The typed metric registry and its Prometheus text rendering.

use crate::fmt_f64;
use crate::hist::Histogram;

/// One registered metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotonically accumulated count.
    Counter(u64),
    /// An instantaneous (last-written) value.
    Gauge(f64),
    /// A value distribution.
    Histogram(Histogram),
}

impl Metric {
    /// The Prometheus `# TYPE` keyword for this metric.
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    name: String,
    help: String,
    /// Pre-rendered `key="value",...` label pairs (may be empty).
    labels: String,
    metric: Metric,
}

/// An ordered collection of named metrics.
///
/// Registration order is preserved in the rendered output, so exports are
/// deterministic and golden-testable. Names must match the Prometheus
/// metric-name grammar; label values are escaped on registration.
///
/// # Example
///
/// ```
/// use sms_metrics::{Histogram, Metric, Registry};
///
/// let mut reg = Registry::new();
/// reg.counter("sms_rays_traced_total", "Primary rays traced", 42);
/// reg.gauge("sms_ipc", "Instructions per cycle", 1.5);
/// let mut h = Histogram::new();
/// h.record(3);
/// reg.histogram("sms_stack_depth", "Depth at push", h);
/// let text = reg.render_prometheus();
/// assert!(text.contains("sms_rays_traced_total 42"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    entries: Vec<Entry>,
    /// Labels applied to every subsequently registered metric.
    base_labels: String,
}

/// `true` iff `name` matches `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else { return false };
    let head = |c: char| c.is_ascii_alphabetic() || c == '_' || c == ':';
    head(first) && chars.all(|c| head(c) || c.is_ascii_digit())
}

impl Registry {
    /// An empty registry with no base labels.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Sets label pairs stamped onto every metric registered afterwards
    /// (e.g. `scene="SHIP"`, `config="RB_8+SH_8+SK+RA"`).
    pub fn set_base_labels(&mut self, pairs: &[(&str, &str)]) {
        self.base_labels = pairs
            .iter()
            .map(|(k, v)| {
                assert!(valid_metric_name(k), "invalid label name `{k}`");
                format!("{k}=\"{}\"", escape_label(v))
            })
            .collect::<Vec<_>>()
            .join(",");
    }

    fn push(&mut self, name: &str, help: &str, metric: Metric) {
        assert!(valid_metric_name(name), "invalid metric name `{name}`");
        assert!(self.entries.iter().all(|e| e.name != name), "metric `{name}` registered twice");
        self.entries.push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            labels: self.base_labels.clone(),
            metric,
        });
    }

    /// Registers one sample of a *labeled family*: the same name may be
    /// registered repeatedly with distinct label sets (e.g. one sample per
    /// backend), as long as every sample agrees on the metric type.
    /// Rendering emits the family's `# HELP`/`# TYPE` header once; new
    /// samples are inserted directly after their family so a family's
    /// samples stay contiguous no matter when they were registered.
    fn push_labeled(&mut self, name: &str, help: &str, extra: &[(&str, &str)], metric: Metric) {
        assert!(valid_metric_name(name), "invalid metric name `{name}`");
        let mut labels = self.base_labels.clone();
        for (k, v) in extra {
            assert!(valid_metric_name(k), "invalid label name `{k}`");
            if !labels.is_empty() {
                labels.push(',');
            }
            labels.push_str(&format!("{k}=\"{}\"", escape_label(v)));
        }
        let mut insert_at = self.entries.len();
        for (i, e) in self.entries.iter().enumerate() {
            if e.name == name {
                assert!(
                    e.metric.type_name() == metric.type_name(),
                    "metric `{name}` re-registered as a {} (was a {})",
                    metric.type_name(),
                    e.metric.type_name()
                );
                assert!(
                    e.labels != labels,
                    "metric `{name}` with labels `{{{labels}}}` registered twice"
                );
                insert_at = i + 1;
            }
        }
        self.entries.insert(
            insert_at,
            Entry { name: name.to_owned(), help: help.to_owned(), labels, metric },
        );
    }

    /// Registers a counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.push(name, help, Metric::Counter(value));
    }

    /// Registers a gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.push(name, help, Metric::Gauge(value));
    }

    /// Registers one labeled counter sample (see [`Registry::push_labeled`]).
    pub fn labeled_counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.push_labeled(name, help, labels, Metric::Counter(value));
    }

    /// Registers one labeled gauge sample (see [`Registry::push_labeled`]).
    pub fn labeled_gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push_labeled(name, help, labels, Metric::Gauge(value));
    }

    /// Registers a histogram.
    pub fn histogram(&mut self, name: &str, help: &str, hist: Histogram) {
        self.push(name, help, Metric::Histogram(hist));
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.entries.iter().find(|e| e.name == name).map(|e| &e.metric)
    }

    /// Renders the registry in Prometheus text exposition format
    /// (`# HELP` / `# TYPE` headers, then samples, in registration order).
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, e) in self.entries.iter().enumerate() {
            // One HELP/TYPE header per family: labeled samples after the
            // first reuse the header (duplicate TYPE lines are invalid).
            if self.entries[..i].iter().all(|p| p.name != e.name) {
                let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
                let _ = writeln!(out, "# TYPE {} {}", e.name, e.metric.type_name());
            }
            let braces =
                if e.labels.is_empty() { String::new() } else { format!("{{{}}}", e.labels) };
            match &e.metric {
                Metric::Counter(v) => {
                    let _ = writeln!(out, "{}{braces} {v}", e.name);
                }
                Metric::Gauge(v) => {
                    let _ = writeln!(out, "{}{braces} {}", e.name, fmt_f64(*v));
                }
                Metric::Histogram(h) => h.render_prometheus(&e.name, &e.labels, &mut out),
            }
        }
        out
    }
}

/// Escapes a label value per the exposition format (`\`, `"`, newline).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_in_registration_order_with_labels() {
        let mut reg = Registry::new();
        reg.set_base_labels(&[("scene", "SHIP"), ("config", "RB_8+SH_8")]);
        reg.counter("sms_spills_total", "Global spills", 7);
        reg.gauge("sms_ipc", "IPC", 0.5);
        let text = reg.render_prometheus();
        let expected = "# HELP sms_spills_total Global spills\n\
                        # TYPE sms_spills_total counter\n\
                        sms_spills_total{scene=\"SHIP\",config=\"RB_8+SH_8\"} 7\n\
                        # HELP sms_ipc IPC\n\
                        # TYPE sms_ipc gauge\n\
                        sms_ipc{scene=\"SHIP\",config=\"RB_8+SH_8\"} 0.5\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let mut reg = Registry::new();
        let mut h = Histogram::new();
        h.record_n(2, 3);
        h.record(5);
        reg.histogram("sms_depth", "Depth", h);
        let text = reg.render_prometheus();
        let expected = "# HELP sms_depth Depth\n\
                        # TYPE sms_depth histogram\n\
                        sms_depth_bucket{le=\"2\"} 3\n\
                        sms_depth_bucket{le=\"5\"} 4\n\
                        sms_depth_bucket{le=\"+Inf\"} 4\n\
                        sms_depth_sum 11\n\
                        sms_depth_count 4\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn name_validation() {
        assert!(valid_metric_name("sms_ipc"));
        assert!(valid_metric_name("_x:y9"));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("9x"));
        assert!(!valid_metric_name("a-b"));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_rejected() {
        let mut reg = Registry::new();
        reg.counter("x", "one", 1);
        reg.counter("x", "two", 2);
    }

    #[test]
    fn labeled_family_renders_one_header_and_groups_samples() {
        let mut reg = Registry::new();
        reg.labeled_gauge("sms_up", "Backend liveness", &[("backend", "a")], 1.0);
        reg.counter("sms_other_total", "Unrelated", 9);
        // Registered after the unrelated metric, but rendered inside the
        // family block.
        reg.labeled_gauge("sms_up", "Backend liveness", &[("backend", "b")], 0.0);
        let text = reg.render_prometheus();
        let expected = "# HELP sms_up Backend liveness\n\
                        # TYPE sms_up gauge\n\
                        sms_up{backend=\"a\"} 1\n\
                        sms_up{backend=\"b\"} 0\n\
                        # HELP sms_other_total Unrelated\n\
                        # TYPE sms_other_total counter\n\
                        sms_other_total 9\n";
        assert_eq!(text, expected);
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn labeled_family_composes_with_base_labels() {
        let mut reg = Registry::new();
        reg.set_base_labels(&[("cluster", "fleet0")]);
        reg.labeled_counter("sms_retries_total", "Retries", &[("backend", "a:1")], 4);
        let text = reg.render_prometheus();
        assert!(text.contains("sms_retries_total{cluster=\"fleet0\",backend=\"a:1\"} 4\n"));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn labeled_duplicate_label_sets_rejected() {
        let mut reg = Registry::new();
        reg.labeled_counter("x_total", "x", &[("backend", "a")], 1);
        reg.labeled_counter("x_total", "x", &[("backend", "a")], 2);
    }

    #[test]
    #[should_panic(expected = "re-registered as a gauge")]
    fn labeled_type_conflicts_rejected() {
        let mut reg = Registry::new();
        reg.labeled_counter("x_total", "x", &[("backend", "a")], 1);
        reg.labeled_gauge("x_total", "x", &[("backend", "b")], 2.0);
    }
}
