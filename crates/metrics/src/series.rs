//! Time-series recording and CSV export.

use crate::fmt_f64;

/// A fixed-column time series: one row per sampling period, keyed by the
/// simulated cycle the sample was taken at.
///
/// # Example
///
/// ```
/// use sms_metrics::SeriesRecorder;
///
/// let mut s = SeriesRecorder::new(&["ipc", "rt_busy"]);
/// s.push(0, &[0.0, 0.0]);
/// s.push(1024, &[1.5, 3.0]);
/// assert_eq!(s.to_csv(), "cycle,ipc,rt_busy\n0,0,0\n1024,1.5,3\n");
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesRecorder {
    columns: Vec<String>,
    rows: Vec<(u64, Vec<f64>)>,
}

impl SeriesRecorder {
    /// A recorder with the given value columns (the `cycle` key column is
    /// implicit).
    pub fn new(columns: &[&str]) -> Self {
        SeriesRecorder {
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one sample row taken at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the column count.
    pub fn push(&mut self, cycle: u64, values: &[f64]) {
        assert_eq!(values.len(), self.columns.len(), "sample arity mismatch");
        self.rows.push((cycle, values.to_vec()));
    }

    /// The value column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The recorded `(cycle, values)` rows, oldest first.
    pub fn rows(&self) -> &[(u64, Vec<f64>)] {
        &self.rows
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The value of column `name` in row `idx`, if both exist.
    pub fn value(&self, idx: usize, name: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == name)?;
        self.rows.get(idx).map(|(_, v)| v[col])
    }

    /// Integrates column `name` as a step function over `[t0, t_end]`: each
    /// sample's value holds from its cycle until the next sample (the last
    /// until `t_end`). This matches how the simulator's sampled gauges
    /// behave between samples — state only changes on loop iterations, and
    /// every iteration at or past the sampling period boundary samples.
    pub fn integrate(&self, name: &str, t_end: u64) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == name)?;
        let mut acc = 0.0;
        for (i, (t, v)) in self.rows.iter().enumerate() {
            let next = self.rows.get(i + 1).map_or(t_end, |(t2, _)| *t2).min(t_end);
            if next > *t {
                acc += v[col] * (next - *t) as f64;
            }
        }
        Some(acc)
    }

    /// Renders the series as CSV: a `cycle,<columns...>` header, then one
    /// row per sample.
    pub fn to_csv(&self) -> String {
        let mut t =
            Table::new(std::iter::once("cycle").chain(self.columns.iter().map(String::as_str)));
        for (cycle, values) in &self.rows {
            t.row(std::iter::once(cycle.to_string()).chain(values.iter().map(|v| fmt_f64(*v))));
        }
        t.to_csv()
    }
}

/// A generic rectangular table with CSV rendering — the shared writer
/// behind every CSV the project emits (metrics series, fig10 thread
/// traces), so the quoting and row-shape rules live in exactly one place.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given header columns.
    pub fn new<'a>(columns: impl IntoIterator<Item = &'a str>) -> Self {
        Table { columns: columns.into_iter().map(str::to_owned).collect(), rows: Vec::new() }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header.
    pub fn row(&mut self, cells: impl IntoIterator<Item = String>) {
        let row: Vec<String> = cells.into_iter().collect();
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders header + rows. Cells containing `,`, `"` or a newline are
    /// double-quoted with `""` escaping (RFC 4180).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        render_row(&mut out, self.columns.iter().map(String::as_str));
        for row in &self.rows {
            render_row(&mut out, row.iter().map(String::as_str));
        }
        out
    }
}

fn render_row<'a>(out: &mut String, cells: impl Iterator<Item = &'a str>) {
    let mut first = true;
    for cell in cells {
        if !first {
            out.push(',');
        }
        first = false;
        if cell.contains(['"', ',', '\n']) {
            out.push('"');
            out.push_str(&cell.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(cell);
        }
    }
    out.push('\n');
}

/// Strictly parses CSV text produced by [`Table::to_csv`] /
/// [`SeriesRecorder::to_csv`]: a non-empty header and every row with
/// exactly the header's column count. Returns `(columns, data rows)`.
pub fn validate_csv(text: &str) -> Result<(usize, usize), String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty CSV")?;
    let cols = parse_csv_row(header, 1)?.len();
    if cols == 0 || header.is_empty() {
        return Err("CSV header has no columns".to_owned());
    }
    let mut rows = 0usize;
    for (i, line) in lines.enumerate() {
        let cells = parse_csv_row(line, i + 2)?;
        if cells.len() != cols {
            return Err(format!("row {}: {} cells, header has {cols}", i + 2, cells.len()));
        }
        rows += 1;
    }
    Ok((cols, rows))
}

/// Parses one CSV record (no embedded newlines — the writer never quotes
/// them into a single `lines()` entry anyway, so a stray one is an error).
fn parse_csv_row(line: &str, lineno: usize) -> Result<Vec<String>, String> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    loop {
        match chars.peek() {
            Some('"') => {
                chars.next();
                loop {
                    match chars.next() {
                        Some('"') if chars.peek() == Some(&'"') => {
                            chars.next();
                            cur.push('"');
                        }
                        Some('"') => break,
                        Some(c) => cur.push(c),
                        None => return Err(format!("row {lineno}: unterminated quote")),
                    }
                }
            }
            _ => {
                while let Some(&c) = chars.peek() {
                    if c == ',' {
                        break;
                    }
                    if c == '"' {
                        return Err(format!("row {lineno}: quote inside unquoted cell"));
                    }
                    cur.push(c);
                    chars.next();
                }
            }
        }
        match chars.next() {
            Some(',') => cells.push(std::mem::take(&mut cur)),
            None => {
                cells.push(cur);
                return Ok(cells);
            }
            Some(c) => return Err(format!("row {lineno}: unexpected `{c}` after cell")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_csv_round_trips() {
        let mut s = SeriesRecorder::new(&["occupancy", "ipc"]);
        s.push(0, &[32.0, 0.0]);
        s.push(1024, &[31.5, 1.75]);
        let csv = s.to_csv();
        assert_eq!(csv, "cycle,occupancy,ipc\n0,32,0\n1024,31.5,1.75\n");
        assert_eq!(validate_csv(&csv), Ok((3, 2)));
    }

    #[test]
    fn table_quotes_special_cells() {
        let mut t = Table::new(["name", "note"]);
        t.row(["a,b".to_owned(), "say \"hi\"".to_owned()]);
        let csv = t.to_csv();
        assert_eq!(csv, "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
        assert_eq!(validate_csv(&csv), Ok((2, 1)));
    }

    #[test]
    fn validate_rejects_ragged_rows() {
        assert!(validate_csv("a,b\n1\n").is_err());
        assert!(validate_csv("").is_err());
        assert!(validate_csv("a,b\n1,\"x\n").is_err());
    }

    #[test]
    fn integrate_step_function() {
        let mut s = SeriesRecorder::new(&["busy"]);
        s.push(0, &[2.0]);
        s.push(10, &[4.0]);
        s.push(30, &[0.0]);
        // 2*10 + 4*20 + 0*70 = 100 over [0, 100].
        assert_eq!(s.integrate("busy", 100), Some(100.0));
        assert_eq!(s.integrate("nope", 100), None);
    }
}
