//! Zero-dependency telemetry: histograms, counters, gauges, time series.
//!
//! The simulator's end-of-run [`SimStats`]-style scalars answer *how much*;
//! this crate answers *how distributed* and *when*. It provides:
//!
//! * [`Histogram`] — a log-bucketed (HDR-style) value histogram: exact
//!   unit-width buckets below [`hist::LINEAR_CUTOFF`] (stack depths,
//!   occupancies and chain lengths land here and stay exact), eight
//!   sub-buckets per power-of-two octave above it (latencies). Mergeable,
//!   with exact count/sum/min/max and quantiles.
//! * [`Registry`] — an ordered, typed registry of named counters, gauges
//!   and histograms, rendered to Prometheus text format by
//!   [`Registry::render_prometheus`] and strict-parsed back by
//!   [`prom::validate`].
//! * [`SeriesRecorder`] — a fixed-column time series (one row per sampling
//!   period) with CSV export, plus the generic [`series::Table`] CSV writer
//!   and [`series::validate_csv`] strict parser.
//!
//! The crate deliberately depends on nothing — not even the workspace's own
//! simulator crates — so every layer (bvh, rtunit, core, harness, bench)
//! can record into it without dependency cycles, and the export formats can
//! be golden-tested in isolation.
//!
//! [`SimStats`]: https://en.wikipedia.org/wiki/Hardware_performance_counter

pub mod hist;
pub mod prom;
pub mod registry;
pub mod series;

pub use hist::{HistSummary, Histogram};
pub use registry::{Metric, Registry};
pub use series::{SeriesRecorder, Table};

/// Deterministic shortest-roundtrip rendering for exported floats; the one
/// formatting used by both the Prometheus and CSV writers so goldens cannot
/// drift between them. Non-finite values render as `NaN` (accepted by the
/// strict parsers), never as `inf` spellings that differ across platforms.
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "NaN".to_owned()
    }
}
