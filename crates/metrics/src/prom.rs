//! Strict parser for the Prometheus text exposition format.
//!
//! Used by the golden schema tests and the CI smoke step: a dump produced
//! by [`crate::Registry::render_prometheus`] must round-trip through
//! [`validate`] with zero diagnostics. The parser is deliberately strict —
//! unknown line shapes, samples without a preceding `# TYPE`, non-monotone
//! histogram buckets or a `+Inf` bucket disagreeing with `_count` are all
//! hard errors, so a malformed export fails CI instead of silently
//! producing an unusable dump.

use crate::registry::valid_metric_name;
use std::collections::HashMap;

/// Per-histogram accumulation while scanning samples.
#[derive(Debug, Default)]
struct HistCheck {
    /// `(le, cumulative count)` in file order.
    buckets: Vec<(f64, f64)>,
    sum: Option<f64>,
    count: Option<f64>,
}

/// Strictly parses a text-format dump; returns the number of sample lines.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut hists: HashMap<String, HistCheck> = HashMap::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, _help) =
                rest.split_once(' ').ok_or_else(|| format!("line {n}: HELP without text"))?;
            if !valid_metric_name(name) {
                return Err(format!("line {n}: invalid metric name `{name}` in HELP"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, ty) =
                rest.split_once(' ').ok_or_else(|| format!("line {n}: TYPE without a type"))?;
            if !valid_metric_name(name) {
                return Err(format!("line {n}: invalid metric name `{name}` in TYPE"));
            }
            if !matches!(ty, "counter" | "gauge" | "histogram") {
                return Err(format!("line {n}: unsupported metric type `{ty}`"));
            }
            if types.insert(name.to_owned(), ty.to_owned()).is_some() {
                return Err(format!("line {n}: duplicate TYPE for `{name}`"));
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {n}: unknown comment directive"));
        }
        // A sample line: name[{labels}] value
        let (name_labels, value) =
            line.rsplit_once(' ').ok_or_else(|| format!("line {n}: sample without a value"))?;
        let value: f64 =
            value.parse().map_err(|_| format!("line {n}: unparseable sample value `{value}`"))?;
        let (name, labels) = split_labels(name_labels, n)?;
        if !valid_metric_name(name) {
            return Err(format!("line {n}: invalid metric name `{name}`"));
        }
        let base = base_name(name, &types);
        let Some(ty) = base.and_then(|b| types.get(b)) else {
            return Err(format!("line {n}: sample `{name}` has no preceding # TYPE"));
        };
        let base = base.expect("checked above");
        if ty == "histogram" {
            let check = hists.entry(base.to_owned()).or_default();
            if name.ends_with("_bucket") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .ok_or_else(|| format!("line {n}: histogram bucket without `le`"))?;
                let le = parse_le(&le.1)
                    .ok_or_else(|| format!("line {n}: unparseable le `{}`", le.1))?;
                check.buckets.push((le, value));
            } else if name.ends_with("_sum") {
                if check.sum.replace(value).is_some() {
                    return Err(format!("line {n}: duplicate `{name}`"));
                }
            } else if name.ends_with("_count") {
                if check.count.replace(value).is_some() {
                    return Err(format!("line {n}: duplicate `{name}`"));
                }
            } else {
                return Err(format!("line {n}: bare sample `{name}` for a histogram"));
            }
        } else if name != base {
            return Err(format!("line {n}: suffixed sample `{name}` for a {ty}"));
        }
        samples += 1;
    }
    for (name, check) in &hists {
        let mut last_le = f64::NEG_INFINITY;
        let mut last_cum = 0.0f64;
        if check.buckets.is_empty() {
            return Err(format!("histogram `{name}` has no buckets"));
        }
        for &(le, cum) in &check.buckets {
            if le <= last_le {
                return Err(format!("histogram `{name}`: le bounds not increasing"));
            }
            if cum < last_cum {
                return Err(format!("histogram `{name}`: cumulative counts decrease"));
            }
            last_le = le;
            last_cum = cum;
        }
        let (inf_le, inf_cum) = *check.buckets.last().expect("non-empty");
        if inf_le != f64::INFINITY {
            return Err(format!("histogram `{name}`: last bucket must be le=\"+Inf\""));
        }
        let count = check.count.ok_or_else(|| format!("histogram `{name}` missing _count"))?;
        if check.sum.is_none() {
            return Err(format!("histogram `{name}` missing _sum"));
        }
        if inf_cum != count {
            return Err(format!("histogram `{name}`: +Inf bucket {inf_cum} != _count {count}"));
        }
    }
    Ok(samples)
}

/// `name_bucket`/`name_sum`/`name_count` resolve to `name` when that base
/// is a declared histogram; otherwise the sample name is its own base.
fn base_name<'a>(name: &'a str, types: &HashMap<String, String>) -> Option<&'a str> {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).is_some_and(|t| t == "histogram") {
                return Some(base);
            }
        }
    }
    if types.contains_key(name) {
        Some(name)
    } else {
        None
    }
}

/// Parses a bucket bound: a float or the canonical `+Inf`.
fn parse_le(s: &str) -> Option<f64> {
    if s == "+Inf" {
        Some(f64::INFINITY)
    } else {
        s.parse().ok()
    }
}

/// Splits `name{k="v",...}` into the name and decoded label pairs.
#[allow(clippy::type_complexity)]
fn split_labels(s: &str, lineno: usize) -> Result<(&str, Vec<(String, String)>), String> {
    let Some(open) = s.find('{') else {
        return Ok((s, Vec::new()));
    };
    let name = &s[..open];
    let rest = &s[open + 1..];
    let body =
        rest.strip_suffix('}').ok_or_else(|| format!("line {lineno}: unterminated label block"))?;
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if !valid_metric_name(&key) {
            return Err(format!("line {lineno}: invalid label name `{key}`"));
        }
        if chars.next() != Some('"') {
            return Err(format!("line {lineno}: label value must be quoted"));
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '"' => {
                    closed = true;
                    break;
                }
                '\\' => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    _ => return Err(format!("line {lineno}: bad escape in label value")),
                },
                _ => value.push(c),
            }
        }
        if !closed {
            return Err(format!("line {lineno}: unterminated label value"));
        }
        labels.push((key, value));
        match chars.next() {
            None => break,
            Some(',') => continue,
            Some(c) => return Err(format!("line {lineno}: unexpected `{c}` after label")),
        }
    }
    Ok((name, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Histogram, Registry};

    #[test]
    fn rendered_registry_round_trips() {
        let mut reg = Registry::new();
        reg.set_base_labels(&[("scene", "SHIP"), ("config", "RB_8+SH_8+SK+RA")]);
        reg.counter("sms_spills_total", "Global spills", 7);
        reg.gauge("sms_ipc", "IPC", 1.25);
        let mut h = Histogram::new();
        for v in [1u64, 1, 4, 90] {
            h.record(v);
        }
        reg.histogram("sms_stack_depth", "Depth at push", h);
        let text = reg.render_prometheus();
        // 2 scalar samples + 3 non-empty buckets + Inf + sum + count.
        assert_eq!(validate(&text), Ok(8));
    }

    #[test]
    fn rejects_sample_without_type() {
        assert!(validate("orphan 1\n").is_err());
    }

    #[test]
    fn rejects_non_monotone_buckets() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 5\n\
                    h_bucket{le=\"2\"} 3\n\
                    h_bucket{le=\"+Inf\"} 3\n\
                    h_sum 4\n\
                    h_count 3\n";
        assert!(validate(text).unwrap_err().contains("cumulative counts decrease"));
    }

    #[test]
    fn rejects_inf_count_mismatch() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"+Inf\"} 3\n\
                    h_sum 4\n\
                    h_count 4\n";
        assert!(validate(text).unwrap_err().contains("+Inf bucket"));
    }

    #[test]
    fn rejects_garbage_lines() {
        assert!(validate("!!!\n").is_err());
        assert!(validate("# FROB x y\n").is_err());
        assert!(validate("# TYPE x sparkline\n").is_err());
    }
}
