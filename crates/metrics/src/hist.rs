//! Log-bucketed (HDR-style) value histogram.
//!
//! Bucket layout (see DESIGN.md §15):
//!
//! * values `0..LINEAR_CUTOFF` get one bucket each (exact);
//! * values `>= LINEAR_CUTOFF` fall into power-of-two octaves
//!   `[2^m, 2^(m+1))`, each split into [`SUB_BUCKETS`] equal-width
//!   sub-buckets — relative bucket width is bounded by `1/SUB_BUCKETS`
//!   (12.5%), the classic HDR trade of precision for fixed memory.
//!
//! The layout is total over `u64`: every value maps to exactly one of the
//! [`NUM_BUCKETS`] buckets, so [`Histogram::merge`] is a plain
//! element-wise add and is associative and commutative (property-tested in
//! `crates/proptests`). Count, sum, min and max are tracked exactly on the
//! side, so `mean()` never suffers bucket quantization.

use crate::fmt_f64;

/// Values below this are their own (exact, unit-width) bucket.
///
/// Chosen so every distribution the simulator cares about bucket-exactly:
/// logical stack depths (≤ ~40 on the paper's scenes), SH occupancies
/// (≤ 8 entries × 5 chained stacks) and chain lengths (≤ 5) all sit below
/// it; only cycle-valued distributions (latencies) reach the log region.
pub const LINEAR_CUTOFF: u64 = 64;

/// Sub-buckets per power-of-two octave above the linear region.
pub const SUB_BUCKETS: usize = 8;

/// log2 of [`LINEAR_CUTOFF`].
const LINEAR_BITS: u32 = 6;

/// Total bucket count: the linear region plus 8 sub-buckets for each of the
/// `64 - LINEAR_BITS` octaves a `u64` value can fall in.
pub const NUM_BUCKETS: usize = LINEAR_CUTOFF as usize + (64 - LINEAR_BITS as usize) * SUB_BUCKETS;

/// A mergeable log-bucketed histogram over `u64` values.
///
/// # Example
///
/// ```
/// use sms_metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for d in [3u64, 3, 7, 12, 12, 12] {
///     h.record(d);
/// }
/// assert_eq!(h.count(), 6);
/// assert_eq!(h.sum(), 49);
/// assert_eq!(h.max(), 12);
/// assert_eq!(h.quantile(0.5), 7);
/// assert_eq!(h.count_at(12), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { counts: vec![0; NUM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// The bucket index `value` falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value < LINEAR_CUTOFF {
            return value as usize;
        }
        let m = 63 - value.leading_zeros(); // value >= 64, so m >= LINEAR_BITS
        let sub = (value >> (m - 3)) & (SUB_BUCKETS as u64 - 1);
        LINEAR_CUTOFF as usize + (m - LINEAR_BITS) as usize * SUB_BUCKETS + sub as usize
    }

    /// The inclusive `[lower, upper]` value range of bucket `idx`.
    pub fn bucket_bounds(idx: usize) -> (u64, u64) {
        assert!(idx < NUM_BUCKETS, "bucket index out of range");
        if (idx as u64) < LINEAR_CUTOFF {
            return (idx as u64, idx as u64);
        }
        let rel = idx - LINEAR_CUTOFF as usize;
        let m = LINEAR_BITS + (rel / SUB_BUCKETS) as u32;
        let sub = (rel % SUB_BUCKETS) as u64;
        let width = 1u64 << (m - 3);
        let lower = (1u64 << m) + sub * width;
        (lower, lower + (width - 1))
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::bucket_index(value)] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded values (not bucket-quantized).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact minimum recorded value; 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`): a representative of the first
    /// bucket whose cumulative count reaches `ceil(q * count)` — the
    /// bucket's upper bound, clamped to the exact observed maximum. Exact
    /// for values below [`LINEAR_CUTOFF`] (unit-width buckets), where
    /// `quantile(0.5)` equals the textbook "smallest value with cumulative
    /// count ≥ half" median. In the log region the representative sits at
    /// most one bucket width (≤ 1/8 relative) above the true quantile,
    /// honouring the two-sided relative-error contract — the bucket *lower*
    /// bound would systematically under-report by up to 12.5% instead.
    /// Returns 0 when empty; `quantile(1.0)` equals [`Histogram::max`].
    /// Monotone in `q` by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let threshold = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut acc = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= threshold {
                return Self::bucket_bounds(idx).1.min(self.max);
            }
        }
        self.max
    }

    /// Observations with value exactly `v` (requires `v < LINEAR_CUTOFF`,
    /// where buckets are unit-width).
    pub fn count_at(&self, v: u64) -> u64 {
        assert!(v < LINEAR_CUTOFF, "count_at is exact only in the linear region");
        self.counts[v as usize]
    }

    /// Observations in the inclusive value range `[lo, hi]`, counted by
    /// bucket lower bound. Exact when `hi < LINEAR_CUTOFF`.
    pub fn count_in_range(&self, lo: u64, hi: u64) -> u64 {
        let (a, b) = (Self::bucket_index(lo), Self::bucket_index(hi));
        self.counts[a..=b].iter().sum()
    }

    /// Observations strictly above `v` (exact when `v < LINEAR_CUTOFF`).
    pub fn count_above(&self, v: u64) -> u64 {
        self.count - self.count_in_range(0, v)
    }

    /// Element-wise merge: afterwards `self` reports the union of both
    /// observation sets. Associative and commutative.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Compact fixed-width digest: count, sum and key percentiles. This is
    /// what aggregation layers embed in `Copy` summary structs and JSON
    /// lines when shipping the full bucket vector is too heavy.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: u64::try_from(self.sum).unwrap_or(u64::MAX),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }

    /// Iterates the non-empty buckets as `(lower, upper, count)`.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(idx, &c)| {
            let (lo, hi) = Self::bucket_bounds(idx);
            (lo, hi, c)
        })
    }

    /// Renders the Prometheus `_bucket`/`_sum`/`_count` sample lines for a
    /// histogram named `name` with pre-rendered label pairs `labels`
    /// (`""` or `key="v",...`). Cumulative `le` bounds use each non-empty
    /// bucket's inclusive upper bound, closing with `+Inf`.
    pub(crate) fn render_prometheus(&self, name: &str, labels: &str, out: &mut String) {
        use std::fmt::Write as _;
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cum = 0u64;
        for (_, hi, c) in self.buckets() {
            cum += c;
            let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"{hi}\"}} {cum}");
        }
        let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}", self.count);
        let braces = if labels.is_empty() { String::new() } else { format!("{{{labels}}}") };
        let _ = writeln!(out, "{name}_sum{braces} {}", fmt_f64(self.sum as f64));
        let _ = writeln!(out, "{name}_count{braces} {}", self.count);
    }
}

/// Fixed-width digest of a [`Histogram`] — all integral so containing
/// structs can stay `Copy + Eq`. `sum` saturates at `u64::MAX` (the exact
/// sum is `u128`; stack-shaped distributions never get close).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, saturated to `u64`.
    pub sum: u64,
    /// Median ([`Histogram::quantile`]`(0.5)`); 0 when empty.
    pub p50: u64,
    /// 95th percentile; 0 when empty.
    pub p95: u64,
    /// 99th percentile; 0 when empty.
    pub p99: u64,
    /// Exact maximum observed value; 0 when empty.
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_digest_matches_accessors() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.p50, h.quantile(0.5));
        assert_eq!(s.p99, h.quantile(0.99));
        assert_eq!(s.max, 100);
        assert_eq!(Histogram::new().summary(), HistSummary::default());
    }

    #[test]
    fn linear_region_is_exact() {
        for v in 0..LINEAR_CUTOFF {
            assert_eq!(Histogram::bucket_index(v), v as usize);
            assert_eq!(Histogram::bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bucket_bounds_partition_u64() {
        // Consecutive buckets tile the value space with no gaps or overlap.
        let mut expected_lo = 0u64;
        for idx in 0..NUM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(idx);
            assert_eq!(lo, expected_lo, "bucket {idx} must start where the previous ended");
            assert!(hi >= lo);
            if idx + 1 == NUM_BUCKETS {
                assert_eq!(hi, u64::MAX);
                break;
            }
            expected_lo = hi + 1;
        }
    }

    #[test]
    fn every_value_lands_in_its_bucket() {
        for v in [0, 1, 63, 64, 65, 100, 127, 128, 1000, 1 << 20, u64::MAX / 3, u64::MAX] {
            let idx = Histogram::bucket_index(v);
            let (lo, hi) = Histogram::bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "{v} not inside bucket {idx} [{lo}, {hi}]");
        }
    }

    #[test]
    fn relative_error_bounded_in_log_region() {
        for v in [64u64, 100, 999, 12345, 1 << 30] {
            let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_index(v));
            assert!((hi - lo + 1) as f64 / lo as f64 <= 1.0 / SUB_BUCKETS as f64);
        }
    }

    #[test]
    fn quantiles_match_reference_on_linear_data() {
        let mut h = Histogram::new();
        let data = [1u64, 2, 2, 3, 3, 3, 10, 10, 40, 41];
        for &v in &data {
            h.record(v);
        }
        // Reference median: smallest value with cumulative count >= ceil(n/2).
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 41);
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), data.iter().sum::<u64>() as u128);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 41);
    }

    #[test]
    fn quantile_is_monotone() {
        let mut h = Histogram::new();
        for v in [5u64, 80, 80, 900, 7, 7, 7, 1_000_000] {
            h.record(v);
        }
        let mut last = 0;
        for i in 0..=100 {
            let q = h.quantile(i as f64 / 100.0);
            assert!(q >= last, "quantile must be monotone in q");
            last = q;
        }
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let data_a = [0u64, 5, 63, 64, 200, 200];
        let data_b = [3u64, 64, 1 << 22, u64::MAX];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for &v in &data_a {
            a.record(v);
            all.record(v);
        }
        for &v in &data_b {
            b.record(v);
            all.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, all);
        assert_eq!(ba, all, "merge must be commutative");
    }

    #[test]
    fn range_counts_are_exact_below_cutoff() {
        let mut h = Histogram::new();
        for v in 0..50u64 {
            h.record_n(v, v + 1);
        }
        assert_eq!(h.count_in_range(0, 4), 1 + 2 + 3 + 4 + 5);
        assert_eq!(h.count_at(10), 11);
        assert_eq!(h.count_above(48), 50);
        assert_eq!(h.count_above(49), 0);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.buckets().count(), 0);
    }
}
