//! Plain-text table rendering for the per-figure bench harnesses.

use std::fmt::Write as _;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use sms_sim::report::Table;
/// let mut t = Table::new(["scene", "IPC"]);
/// t.row(["SHIP", "1.23"]);
/// let s = t.to_string();
/// assert!(s.contains("SHIP"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut line = String::new();
        for (c, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", h, w = widths[c]);
        }
        writeln!(f, "{}", line.trim_end())?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            let mut line = String::new();
            for c in 0..cols {
                let _ = write!(line, "{:<w$}  ", row[c], w = widths[c]);
            }
            writeln!(f, "{}", line.trim_end())?;
        }
        Ok(())
    }
}

/// Formats a ratio as a `+x.x%` / `-x.x%` improvement over 1.0.
pub fn fmt_improvement(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

/// Formats a fraction (0..1) as a percentage.
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

/// Geometric mean of a non-empty slice.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(["a", "longheader"]);
        t.row(["xxxx", "1"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("longheader"));
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn improvement_formatting() {
        assert_eq!(fmt_improvement(1.232), "+23.2%");
        assert_eq!(fmt_improvement(0.816), "-18.4%");
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }
}
