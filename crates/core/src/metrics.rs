//! Opt-in run metrics: stack/traversal distributions plus a sampled
//! time series, with Prometheus and CSV export.
//!
//! Setting `SMS_METRICS=1` (or [`crate::sim::RunLimits::metrics`]) arms
//! the layer: the RT units record the distributions described in
//! [`sms_rtunit::StackMetrics`], and the simulator's main loop samples a
//! fleet-wide time series every `SMS_METRICS_PERIOD` cycles (default
//! 1024). The run returns a [`MetricsReport`] on
//! [`crate::sim::SimRun::metrics`]; the experiment entry points export it:
//!
//! * `SMS_METRICS_OUT=metrics.prom` — Prometheus text dump (strictly
//!   parseable by `sms_metrics::prom::validate`);
//! * `SMS_METRICS_CSV=metrics.csv` — the sampled series as CSV;
//! * with `SMS_TRACE` also set, the series rides along as a counter track
//!   in the Chrome-trace file.
//!
//! Like the validator, the stall-attribution taxonomy and the tracer, the
//! whole layer is **pure observation**: armed or not, `SimStats` and the
//! rendered image are byte-identical (asserted by
//! `crates/core/tests/metrics_observation.rs`).

use sms_gpu::SimStats;
use sms_mem::Cycle;
use sms_metrics::{Registry, SeriesRecorder};
use sms_rtunit::StackMetrics;
use std::path::PathBuf;

/// Default time-series sampling period in cycles.
pub const DEFAULT_PERIOD: Cycle = 1024;

/// Metrics output configuration, parsed from the environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSpec {
    /// Prometheus text-dump path (`SMS_METRICS_OUT`), if any.
    pub prom_out: Option<PathBuf>,
    /// Time-series CSV path (`SMS_METRICS_CSV`), if any.
    pub csv_out: Option<PathBuf>,
    /// Sampling period in cycles (`SMS_METRICS_PERIOD`).
    pub period: Cycle,
}

impl Default for MetricsSpec {
    fn default() -> Self {
        MetricsSpec { prom_out: None, csv_out: None, period: DEFAULT_PERIOD }
    }
}

impl MetricsSpec {
    /// Reads `SMS_METRICS_OUT`, `SMS_METRICS_CSV` and `SMS_METRICS_PERIOD`
    /// from the environment. Absent or empty paths stay `None`; an
    /// unparseable period is reported on stderr and falls back to
    /// [`DEFAULT_PERIOD`].
    pub fn from_env() -> Self {
        let path = |var: &str| {
            std::env::var(var)
                .ok()
                .map(|p| p.trim().to_owned())
                .filter(|p| !p.is_empty())
                .map(PathBuf::from)
        };
        let period = match std::env::var("SMS_METRICS_PERIOD") {
            Ok(p) => match p.trim().parse::<Cycle>() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!(
                        "warning: SMS_METRICS_PERIOD: expected a positive integer, got `{p}` — \
                         using {DEFAULT_PERIOD}"
                    );
                    DEFAULT_PERIOD
                }
            },
            Err(_) => DEFAULT_PERIOD,
        };
        MetricsSpec { prom_out: path("SMS_METRICS_OUT"), csv_out: path("SMS_METRICS_CSV"), period }
    }

    /// A copy of this spec with every output path suffixed
    /// `<stem>.<suffix>.<ext>` — used by sweeps so parallel
    /// `(scene, config)` jobs don't clobber one file. Unlike the trace
    /// spec's variant this preserves each path's own extension
    /// (`metrics.prom` → `metrics.SHIP.RB_8.prom`). The suffix is
    /// sanitized to `[A-Za-z0-9._-]`.
    pub fn for_job(&self, suffix: &str) -> MetricsSpec {
        let clean: String = suffix
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '.' || c == '-' { c } else { '_' })
            .collect();
        let suffixed = |p: &PathBuf| {
            let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("metrics");
            let file = match p.extension().and_then(|e| e.to_str()) {
                Some(ext) => format!("{stem}.{clean}.{ext}"),
                None => format!("{stem}.{clean}"),
            };
            p.with_file_name(file)
        };
        MetricsSpec {
            prom_out: self.prom_out.as_ref().map(suffixed),
            csv_out: self.csv_out.as_ref().map(suffixed),
            period: self.period,
        }
    }
}

/// The fleet-wide counters one time-series sample is computed from.
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleCounts {
    /// Warps resident on all SMs (compute side).
    pub resident_warps: usize,
    /// Occupied RT-unit warp slots across all SMs.
    pub rt_busy: usize,
    /// Pending entries across all SMs' memory completion heaps.
    pub mem_queue: usize,
    /// Cumulative committed instructions (compute + traversal).
    pub instructions: u64,
    /// Cumulative L1 hits / misses across all SMs.
    pub l1_hits: u64,
    /// Cumulative L1 misses.
    pub l1_misses: u64,
    /// Cumulative L2 hits.
    pub l2_hits: u64,
    /// Cumulative L2 misses.
    pub l2_misses: u64,
}

/// The columns of the sampled series, in order.
pub const SERIES_COLUMNS: [&str; 6] =
    ["resident_warps", "rt_busy", "mem_queue", "l1_hit_rate", "l2_hit_rate", "ipc"];

/// Samples the fleet-wide time series at period boundaries, turning the
/// cumulative counters into per-window rates (hit rates, IPC) against the
/// previous sample's snapshot.
#[derive(Debug)]
pub struct SeriesSampler {
    period: Cycle,
    next_sample: Cycle,
    series: SeriesRecorder,
    prev_cycle: Cycle,
    prev: SampleCounts,
}

impl SeriesSampler {
    /// A sampler with the given period; the first sample is due at cycle 0.
    pub fn new(period: Cycle) -> Self {
        SeriesSampler {
            period,
            next_sample: 0,
            series: SeriesRecorder::new(&SERIES_COLUMNS),
            prev_cycle: 0,
            prev: SampleCounts::default(),
        }
    }

    /// `true` when `now` has reached the next sampling boundary (same
    /// jump-tolerant re-arming as the trace recorder's counter sampler).
    pub fn sample_due(&self, now: Cycle) -> bool {
        now >= self.next_sample
    }

    /// Appends one sample row at `now` and re-arms the boundary past it.
    pub fn sample(&mut self, now: Cycle, c: SampleCounts) {
        let rate = |hits: u64, misses: u64, ph: u64, pm: u64| {
            let (h, m) = (hits - ph, misses - pm);
            if h + m == 0 {
                0.0
            } else {
                h as f64 / (h + m) as f64
            }
        };
        let ipc = if now > self.prev_cycle {
            (c.instructions - self.prev.instructions) as f64 / (now - self.prev_cycle) as f64
        } else {
            0.0
        };
        self.series.push(
            now,
            &[
                c.resident_warps as f64,
                c.rt_busy as f64,
                c.mem_queue as f64,
                rate(c.l1_hits, c.l1_misses, self.prev.l1_hits, self.prev.l1_misses),
                rate(c.l2_hits, c.l2_misses, self.prev.l2_hits, self.prev.l2_misses),
                ipc,
            ],
        );
        self.prev_cycle = now;
        self.prev = c;
        self.next_sample = (now / self.period + 1) * self.period;
    }

    /// The recorded series.
    pub fn into_series(self) -> SeriesRecorder {
        self.series
    }
}

/// Everything the metrics layer recorded during one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// Stack/traversal distributions, merged across all RT units.
    pub stacks: StackMetrics,
    /// The sampled fleet-wide time series.
    pub series: SeriesRecorder,
    /// The sampling period the series was recorded with.
    pub period: Cycle,
}

impl MetricsReport {
    /// Builds the full metric registry for this run: end-of-run counters
    /// and gauges from `stats`, plus every recorded distribution, labelled
    /// `scene`/`config`. Registration order is fixed, so the Prometheus
    /// rendering is deterministic and golden-testable.
    pub fn registry(&self, scene: &str, config: &str, stats: &SimStats) -> Registry {
        let mut reg = Registry::new();
        reg.set_base_labels(&[("scene", scene), ("config", config)]);
        reg.counter("sms_cycles_total", "Simulated cycles", stats.cycles);
        reg.counter(
            "sms_instructions_total",
            "Committed instructions (compute + traversal)",
            stats.instructions(),
        );
        reg.counter("sms_rays_traced_total", "Nearest-hit rays traced", stats.rays_traced);
        reg.counter("sms_shadow_rays_total", "Occlusion rays traced", stats.shadow_rays);
        reg.counter("sms_node_visits_total", "BVH node visits", stats.node_visits);
        reg.counter(
            "sms_stack_spills_total",
            "Traversal-stack entries spilled to global memory",
            stats.rb_spills + stats.sh_spills,
        );
        reg.counter(
            "sms_stack_reloads_total",
            "Traversal-stack entries reloaded from global memory",
            stats.rb_reloads + stats.sh_reloads,
        );
        reg.counter("sms_ra_flushes_total", "Reallocation whole-stack flushes", stats.ra_flushes);
        reg.counter("sms_ra_borrows_total", "Reallocation SH-stack borrows", stats.ra_borrows);
        reg.gauge("sms_ipc", "Instructions per cycle", stats.ipc());
        reg.histogram(
            "sms_stack_depth",
            "Logical stack depth after every push",
            self.stacks.depth_at_push.clone(),
        );
        reg.histogram(
            "sms_sh_occupancy",
            "SH-level entries of the pushing lane, after every push",
            self.stacks.sh_occupancy.clone(),
        );
        reg.histogram(
            "sms_borrow_chain",
            "SH stacks linked into the pushing lane's chain",
            self.stacks.borrow_chain.clone(),
        );
        reg.histogram(
            "sms_flush_run",
            "Consecutive-flush counter of reallocation-flushed segments",
            self.stacks.flush_runs.clone(),
        );
        reg.histogram(
            "sms_ray_latency_cycles",
            "Per-ray traversal latency (admission to lane completion)",
            self.stacks.ray_latency.clone(),
        );
        reg.histogram(
            "sms_ray_spills",
            "Per-ray entries spilled to global memory",
            self.stacks.ray_spills.clone(),
        );
        reg.histogram(
            "sms_ray_reloads",
            "Per-ray entries reloaded from global memory",
            self.stacks.ray_reloads.clone(),
        );
        reg
    }

    /// One-line distributional summary for logs: count, p50/p95/p99, max.
    pub fn summary_line(&self) -> String {
        let h = &self.stacks.depth_at_push;
        format!(
            "stack depth p50/p95/p99 {}/{}/{} max {} over {} pushes; \
             ray latency p50/p95 {}/{} cycles over {} rays; {} samples",
            h.quantile(0.5),
            h.quantile(0.95),
            h.quantile(0.99),
            h.max(),
            h.count(),
            self.stacks.ray_latency.quantile(0.5),
            self.stacks.ray_latency.quantile(0.95),
            self.stacks.ray_latency.count(),
            self.series.len(),
        )
    }
}

/// Formats a sample value for the Chrome-trace counter track: plain `{}`
/// for finite values (shortest round-trip, valid JSON), `0` otherwise.
pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_suffix_preserves_extension() {
        let spec = MetricsSpec {
            prom_out: Some(PathBuf::from("/tmp/m/metrics.prom")),
            csv_out: Some(PathBuf::from("series.csv")),
            period: 64,
        };
        let job = spec.for_job("SHIP.SMS_8+SK");
        assert_eq!(job.prom_out.unwrap(), PathBuf::from("/tmp/m/metrics.SHIP.SMS_8_SK.prom"));
        assert_eq!(job.csv_out.unwrap(), PathBuf::from("series.SHIP.SMS_8_SK.csv"));
        assert_eq!(job.period, 64);
    }

    #[test]
    fn sampler_computes_window_rates() {
        let mut s = SeriesSampler::new(100);
        assert!(s.sample_due(0));
        s.sample(0, SampleCounts::default());
        assert!(!s.sample_due(99));
        assert!(s.sample_due(100));
        s.sample(
            250,
            SampleCounts {
                resident_warps: 8,
                rt_busy: 3,
                mem_queue: 2,
                instructions: 500,
                l1_hits: 30,
                l1_misses: 10,
                l2_hits: 5,
                l2_misses: 5,
            },
        );
        // Jumped past two boundaries: one sample, re-armed past now.
        assert!(!s.sample_due(299));
        assert!(s.sample_due(300));
        let series = s.into_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series.value(1, "l1_hit_rate"), Some(0.75));
        assert_eq!(series.value(1, "l2_hit_rate"), Some(0.5));
        assert_eq!(series.value(1, "ipc"), Some(2.0));
        assert_eq!(series.value(1, "rt_busy"), Some(3.0));
    }

    #[test]
    fn registry_renders_and_validates() {
        let mut report = MetricsReport::default();
        report.stacks.depth_at_push.record(3);
        report.stacks.ray_latency.record(900);
        let stats = SimStats { cycles: 100, node_visits: 50, ..SimStats::default() };
        let reg = report.registry("SHIP", "RB_8+SH_8", &stats);
        let text = reg.render_prometheus();
        assert!(text.contains("sms_cycles_total{scene=\"SHIP\",config=\"RB_8+SH_8\"} 100"));
        sms_metrics::prom::validate(&text).expect("dump must parse strictly");
    }
}
