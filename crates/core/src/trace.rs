//! Opt-in time-series trace export (Chrome trace-event / Perfetto JSON).
//!
//! Setting `SMS_TRACE=out.json` arms the cycle-attribution layer and makes
//! the simulator emit a trace file loadable in Perfetto or
//! `chrome://tracing`:
//!
//! * one *process* per SM with one *thread* per RT-unit warp slot, carrying
//!   a `ph:"X"` slice for every warp residency (admission → retirement);
//! * `ph:"C"` counter tracks per SM sampled every `SMS_TRACE_PERIOD` cycles
//!   (default 1024): resident warps, busy RT slots, memory event-queue
//!   depth, and cumulative shared-memory bank-conflict cycles;
//! * top-level `cycles` and `stallBreakdown` keys (extra keys are tolerated
//!   by both viewers) so one file carries the whole diagnosis.
//!
//! Timestamps are simulated cycles, written as microseconds — absolute
//! units are meaningless for a simulator trace; relative spans are what the
//! viewer is for.
//!
//! The recorder is pure observation layered on the attribution plumbing:
//! it reads counters and the RT units' residency slices but never feeds
//! anything back, so `SimStats` are bit-identical with tracing on or off
//! (asserted by `crates/core/tests/attribution.rs`).

use sms_gpu::StallBreakdown;
use sms_mem::Cycle;
use sms_rtunit::RtSlice;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Default counter-sampling period in cycles.
pub const DEFAULT_PERIOD: Cycle = 1024;

/// Where and how often to trace, parsed from the environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpec {
    /// Output path (`SMS_TRACE`).
    pub path: PathBuf,
    /// Counter-sampling period in cycles (`SMS_TRACE_PERIOD`).
    pub period: Cycle,
}

impl TraceSpec {
    /// Reads `SMS_TRACE` (the output path) and `SMS_TRACE_PERIOD` from the
    /// environment. Returns `None` when `SMS_TRACE` is unset or empty; an
    /// unparseable period is reported on stderr and falls back to
    /// [`DEFAULT_PERIOD`].
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("SMS_TRACE").ok()?;
        let path = raw.trim();
        if path.is_empty() {
            return None;
        }
        let period = match std::env::var("SMS_TRACE_PERIOD") {
            Ok(p) => match p.trim().parse::<Cycle>() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!(
                        "warning: SMS_TRACE_PERIOD: expected a positive integer, got `{p}` — \
                         using {DEFAULT_PERIOD}"
                    );
                    DEFAULT_PERIOD
                }
            },
            Err(_) => DEFAULT_PERIOD,
        };
        Some(TraceSpec { path: PathBuf::from(path), period })
    }

    /// A copy of this spec writing to `<stem>.<suffix>.json` next to the
    /// configured path — used by sweeps so parallel `(scene, config)` jobs
    /// don't clobber one file. The suffix is sanitized to `[A-Za-z0-9._-]`.
    pub fn for_job(&self, suffix: &str) -> TraceSpec {
        let clean: String = suffix
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '.' || c == '-' { c } else { '_' })
            .collect();
        let stem = self.path.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
        let file = format!("{stem}.{clean}.json");
        TraceSpec { path: self.path.with_file_name(file), period: self.period }
    }
}

/// One SM's counter snapshot, read by the sampler at each period boundary.
#[derive(Debug, Clone, Copy)]
pub struct SmCounters {
    /// Warps resident on the SM (compute side).
    pub resident_warps: usize,
    /// Occupied RT-unit warp slots.
    pub rt_busy: usize,
    /// Pending entries in the SM's memory completion heap.
    pub mem_queue: usize,
    /// Cumulative shared-memory bank-conflict replay cycles.
    pub conflict_cycles: u64,
}

/// Accumulates trace events during a run and writes the JSON file at the
/// end. Events are kept pre-serialized (one JSON object string each) — the
/// recorder never builds a document tree.
#[derive(Debug)]
pub struct TraceRecorder {
    spec: TraceSpec,
    events: Vec<String>,
    next_sample: Cycle,
}

impl TraceRecorder {
    /// Creates a recorder and emits the metadata events naming one process
    /// per SM and one thread per RT-unit warp slot.
    pub fn new(spec: TraceSpec, num_sms: usize, rt_slots: usize) -> Self {
        let mut events = Vec::new();
        for sm in 0..num_sms {
            events.push(format!(
                r#"{{"name":"process_name","ph":"M","pid":{sm},"tid":0,"args":{{"name":"SM{sm}"}}}}"#
            ));
            for slot in 0..rt_slots {
                events.push(format!(
                    r#"{{"name":"thread_name","ph":"M","pid":{sm},"tid":{slot},"args":{{"name":"RT slot {slot}"}}}}"#
                ));
            }
        }
        TraceRecorder { spec, events, next_sample: 0 }
    }

    /// The sampling period in cycles.
    pub fn period(&self) -> Cycle {
        self.spec.period
    }

    /// `true` when `now` has reached the next sampling boundary. The main
    /// loop skips idle stretches, so boundaries may be crossed in jumps;
    /// one sample is taken per call and the boundary re-armed *past* `now`.
    pub fn sample_due(&self, now: Cycle) -> bool {
        now >= self.next_sample
    }

    /// Records one `ph:"C"` counter event per SM at cycle `now` and re-arms
    /// the sampling boundary.
    pub fn sample<'c>(&mut self, now: Cycle, sms: impl Iterator<Item = SmCounters> + 'c) {
        for (sm, c) in sms.enumerate() {
            self.events.push(format!(
                r#"{{"name":"SM{sm} queues","ph":"C","ts":{now},"pid":{sm},"args":{{"resident_warps":{},"rt_busy":{},"mem_queue":{}}}}}"#,
                c.resident_warps, c.rt_busy, c.mem_queue
            ));
            self.events.push(format!(
                r#"{{"name":"SM{sm} conflict cycles","ph":"C","ts":{now},"pid":{sm},"args":{{"cycles":{}}}}}"#,
                c.conflict_cycles
            ));
        }
        self.next_sample = (now / self.spec.period + 1) * self.spec.period;
    }

    /// Merges the metrics layer's sampled fleet-wide series as one
    /// `ph:"C"` counter track (one event per sample, all columns as args),
    /// so a trace taken with `SMS_METRICS` armed carries the occupancy /
    /// hit-rate / IPC series alongside the per-SM queue counters.
    pub fn add_counter_series(&mut self, series: &sms_metrics::SeriesRecorder) {
        for (cycle, values) in series.rows() {
            let args: Vec<String> = series
                .columns()
                .iter()
                .zip(values)
                .map(|(c, v)| format!("\"{c}\":{}", crate::metrics::json_num(*v)))
                .collect();
            self.events.push(format!(
                r#"{{"name":"GPU metrics","ph":"C","ts":{cycle},"pid":0,"tid":0,"args":{{{}}}}}"#,
                args.join(",")
            ));
        }
    }

    /// Records one `ph:"X"` residency slice per retired warp of SM `sm`.
    pub fn add_slices(&mut self, sm: usize, slices: &[RtSlice]) {
        for s in slices {
            let dur = s.end - s.start;
            self.events.push(format!(
                r#"{{"name":"warp {}","cat":"rt","ph":"X","ts":{},"dur":{dur},"pid":{sm},"tid":{}}}"#,
                s.warp, s.start, s.slot
            ));
        }
    }

    /// Writes the trace file: the event array plus top-level `cycles` and
    /// `stallBreakdown` keys. Returns the path written.
    ///
    /// When the process runs with a distributed-tracing context armed
    /// (`SMS_TRACE_CTX=<trace>-<span>`, the serving tier's request
    /// correlation), the file also carries a top-level `"traceId"` key —
    /// extra keys are tolerated by both viewers — so the `sms-trace`
    /// merger can link a request's spans to its per-warp timeline.
    pub fn finish(self, cycles: Cycle, breakdown: &StallBreakdown) -> std::io::Result<PathBuf> {
        let mut out = String::with_capacity(self.events.len() * 96 + 1024);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(ev);
        }
        out.push_str("\n],\n\"cycles\":");
        let _ = write!(out, "{cycles}");
        if let Some(trace) = trace_ctx_id() {
            out.push_str(",\n\"traceId\":\"");
            out.push_str(&trace);
            out.push('"');
        }
        out.push_str(",\n\"stallBreakdown\":");
        out.push_str(&breakdown_json(breakdown));
        out.push_str("\n}\n");
        std::fs::write(&self.spec.path, out)?;
        Ok(self.spec.path)
    }

    /// The configured output path.
    pub fn path(&self) -> &Path {
        &self.spec.path
    }
}

/// The trace id half of `SMS_TRACE_CTX` (`<trace>-<span>`, 16 lowercase
/// hex digits each), when set and well-formed. The simulator only *reads*
/// the context to stamp trace files — span generation and propagation live
/// in the harness/serving layers, which own the wire format.
fn trace_ctx_id() -> Option<String> {
    let raw = std::env::var("SMS_TRACE_CTX").ok()?;
    let (t, s) = raw.trim().split_once('-')?;
    if t.len() != 16 || s.len() != 16 {
        return None;
    }
    if !t.bytes().all(|b| b.is_ascii_hexdigit()) || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    Some(t.to_ascii_lowercase())
}

/// Serializes a [`StallBreakdown`] as a flat JSON object (snake_case keys,
/// one per bucket plus the two totals). Field-exhaustive: adding a bucket
/// without extending this function is a compile error.
pub fn breakdown_json(b: &StallBreakdown) -> String {
    let StallBreakdown {
        compute,
        mem_wait,
        rt_admit,
        in_rt,
        warp_cycles,
        rt_sched_wait,
        fetch_wait_l1,
        fetch_wait_l2,
        fetch_wait_dram,
        op_wait,
        stack_wait_rb_sh,
        stack_wait_sh_global,
        stack_wait_flush,
        bank_conflict_replay,
        predictor_wait,
        rt_idle,
        rt_lane_cycles,
    } = *b;
    format!(
        "{{\"compute\":{compute},\"mem_wait\":{mem_wait},\"rt_admit\":{rt_admit},\
         \"in_rt\":{in_rt},\"warp_cycles\":{warp_cycles},\"rt_sched_wait\":{rt_sched_wait},\
         \"fetch_wait_l1\":{fetch_wait_l1},\"fetch_wait_l2\":{fetch_wait_l2},\
         \"fetch_wait_dram\":{fetch_wait_dram},\"op_wait\":{op_wait},\
         \"stack_wait_rb_sh\":{stack_wait_rb_sh},\"stack_wait_sh_global\":{stack_wait_sh_global},\
         \"stack_wait_flush\":{stack_wait_flush},\"bank_conflict_replay\":{bank_conflict_replay},\
         \"predictor_wait\":{predictor_wait},\
         \"rt_idle\":{rt_idle},\"rt_lane_cycles\":{rt_lane_cycles}}}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_suffix_is_sanitized_and_keeps_directory() {
        let spec = TraceSpec { path: PathBuf::from("/tmp/traces/run.json"), period: 64 };
        let job = spec.for_job("SHIP/SMS_8+SK");
        assert_eq!(job.path, PathBuf::from("/tmp/traces/run.SHIP_SMS_8_SK.json"));
        assert_eq!(job.period, 64);
    }

    #[test]
    fn sampling_boundary_rearms_past_now() {
        let spec = TraceSpec { path: PathBuf::from("t.json"), period: 100 };
        let mut rec = TraceRecorder::new(spec, 1, 1);
        assert!(rec.sample_due(0));
        rec.sample(
            0,
            std::iter::once(SmCounters {
                resident_warps: 3,
                rt_busy: 1,
                mem_queue: 0,
                conflict_cycles: 0,
            }),
        );
        assert!(!rec.sample_due(99));
        assert!(rec.sample_due(100));
        // A jump over several boundaries takes one sample and re-arms past.
        rec.sample(
            517,
            std::iter::once(SmCounters {
                resident_warps: 2,
                rt_busy: 0,
                mem_queue: 1,
                conflict_cycles: 8,
            }),
        );
        assert!(!rec.sample_due(599));
        assert!(rec.sample_due(600));
    }

    #[test]
    fn breakdown_json_lists_every_bucket() {
        let j = breakdown_json(&StallBreakdown::default());
        for key in [
            "compute",
            "mem_wait",
            "rt_admit",
            "in_rt",
            "warp_cycles",
            "rt_sched_wait",
            "fetch_wait_l1",
            "fetch_wait_l2",
            "fetch_wait_dram",
            "op_wait",
            "stack_wait_rb_sh",
            "stack_wait_sh_global",
            "stack_wait_flush",
            "bank_conflict_replay",
            "predictor_wait",
            "rt_idle",
            "rt_lane_cycles",
        ] {
            assert!(j.contains(&format!("\"{key}\":0")), "missing {key} in {j}");
        }
    }
}
