//! The cycle-level GPU simulator.
//!
//! [`GpuSim`] launches one thread per `(pixel, sample)` path, groups
//! threads into warps, distributes warps round-robin over the SMs of
//! Table I, and advances everything cycle by cycle:
//!
//! * the SIMT compute model issues warp instructions (ray generation,
//!   shading, accumulation phases of the PT kernel) at `issue_width` warps
//!   per SM per cycle, oldest-first;
//! * trace-ray instructions enter the SM's RT unit (≤4 warps resident),
//!   which performs the actual BVH traversal with the configured stack
//!   architecture (see `sms-rtunit`);
//! * all memory traffic — node/primitive fetches, stack spills, material
//!   loads, framebuffer stores — flows through the per-SM L1D and shared
//!   memory and the device-wide L2/DRAM.
//!
//! Idle stretches (every warp waiting on memory) are skipped by jumping to
//! the next completion event; the result is cycle-exact with respect to the
//! non-skipping loop.
//!
//! The simulator's shading is *functionally exact*: it reuses
//! [`crate::driver`], so the image it produces is bit-identical to the
//! functional renderer's — asserted by integration tests.

use crate::config::SimConfig;
use crate::driver::{self, PathState, ACCUM_COST, RAYGEN_COST, SHADE_COST};
use crate::metrics::{MetricsReport, SampleCounts, SeriesSampler};
use crate::render::PreparedScene;
use crate::trace::{SmCounters, TraceRecorder, TraceSpec};
use sms_bvh::TraverseBvh;
use sms_geom::{Ray, Vec3};
use sms_gpu::{SimStats, StallBreakdown, WarpId, WARP_SIZE};
use sms_mem::{coalesce_lines, AccessKind, Cycle, GlobalMemory, SharedMem, SmL1, SHADE_BASE_ADDR};
use sms_metrics::Histogram;
use sms_rtunit::{
    RayQuery, RtUnit, RtUnitConfig, StackConfig, StackViolation, ThreadTraceRecorder, TraceRequest,
    TraceResult,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

/// Base address of the framebuffer (radiance accumulation) region.
const FRAMEBUFFER_BASE: u64 = 0xE000_0000;

/// Hard ceiling on simulated cycles — a runaway-model backstop far above
/// any real workload, applied even when no explicit budget is configured.
const HARD_CYCLE_CAP: Cycle = 1 << 40;

/// Why a simulation run was aborted. Every variant carries enough context
/// to diagnose the run post-mortem without re-running it; the harness
/// journals these as structured `run_failed` / `run_timeout` events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimFault {
    /// The run exceeded its configured (or the hard) cycle budget.
    CycleBudget {
        /// The budget in effect.
        limit: Cycle,
        /// Cycle at which the breach was detected.
        at_cycle: Cycle,
        /// Warp/stack state dump taken at abort time.
        snapshot: String,
    },
    /// No warp retired any work for the configured number of cycles.
    Stalled {
        /// The forward-progress window in effect.
        stall_cycles: Cycle,
        /// Cycle at which the detector fired.
        at_cycle: Cycle,
        /// Warp/stack state dump taken at abort time.
        snapshot: String,
    },
    /// Nothing is issuable and no completion event is pending (a model bug).
    Deadlock {
        /// Cycle at which the simulator wedged.
        at_cycle: Cycle,
        /// Warp/stack state dump taken at abort time.
        snapshot: String,
    },
    /// The stack validator latched an invariant violation.
    Invariant {
        /// The first violation observed.
        violation: StackViolation,
    },
}

impl SimFault {
    /// Stable snake_case tag (used in journal events).
    pub fn kind(&self) -> &'static str {
        match self {
            SimFault::CycleBudget { .. } => "cycle_budget",
            SimFault::Stalled { .. } => "stalled",
            SimFault::Deadlock { .. } => "deadlock",
            SimFault::Invariant { .. } => "invariant",
        }
    }

    /// `true` for the watchdog faults (budget/stall) that a resume should
    /// not blindly retry with the same limits.
    pub fn is_timeout(&self) -> bool {
        matches!(self, SimFault::CycleBudget { .. } | SimFault::Stalled { .. })
    }
}

impl fmt::Display for SimFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimFault::CycleBudget { limit, at_cycle, snapshot } => {
                write!(f, "cycle budget of {limit} exceeded at cycle {at_cycle}\n{snapshot}")
            }
            SimFault::Stalled { stall_cycles, at_cycle, snapshot } => {
                write!(
                    f,
                    "no warp retired work for {stall_cycles} cycles (detected at cycle \
                     {at_cycle})\n{snapshot}"
                )
            }
            SimFault::Deadlock { at_cycle, snapshot } => {
                write!(f, "simulator deadlock at cycle {at_cycle}\n{snapshot}")
            }
            SimFault::Invariant { violation } => write!(f, "{violation}"),
        }
    }
}

/// Per-run watchdog limits and validation switch.
///
/// All fields default to off; the simulation behaves exactly as before and
/// produces bit-identical [`SimStats`] whether or not limits are armed
/// (the watchdog only observes, it never changes scheduling).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunLimits {
    /// Abort when the simulated cycle count exceeds this budget.
    pub max_cycles: Option<Cycle>,
    /// Abort when no warp retires a trace (and no warp finishes) for this
    /// many consecutive cycles. Set it well above the worst memory latency:
    /// idle-stretch skipping can legitimately jump hundreds of cycles.
    pub stall_cycles: Option<Cycle>,
    /// Attach a `StackValidator` to every warp's stacks and abort with
    /// [`SimFault::Invariant`] on the first violation.
    pub validate: bool,
    /// Arm the cycle-attribution layer: charge every resident warp/lane
    /// cycle to a [`StallBreakdown`] bucket (returned on
    /// [`SimRun::breakdown`]). Pure observation like `validate`: no
    /// scheduling decision or [`SimStats`] counter changes.
    pub breakdown: bool,
    /// Arm the metrics layer: stack/traversal distributions plus a
    /// periodic time-series sampler (returned on [`SimRun::metrics`]).
    /// Pure observation like `validate` and `breakdown`.
    pub metrics: bool,
}

impl RunLimits {
    /// No limits, no validation (the default).
    pub fn none() -> Self {
        RunLimits::default()
    }

    /// Reads `SMS_MAX_CYCLES`, `SMS_STALL_CYCLES`, `SMS_VALIDATE`,
    /// `SMS_BREAKDOWN` and `SMS_METRICS` from the environment. Unparseable
    /// values are reported on stderr (naming the variable and the
    /// offending value) and treated as unset.
    pub fn from_env() -> Self {
        RunLimits {
            max_cycles: env_cycles("SMS_MAX_CYCLES"),
            stall_cycles: env_cycles("SMS_STALL_CYCLES"),
            validate: env_flag("SMS_VALIDATE"),
            breakdown: env_flag("SMS_BREAKDOWN"),
            metrics: env_flag("SMS_METRICS"),
        }
    }

    /// Per-field fallback: `self` where set, else `fallback`.
    pub fn or(self, fallback: RunLimits) -> Self {
        RunLimits {
            max_cycles: self.max_cycles.or(fallback.max_cycles),
            stall_cycles: self.stall_cycles.or(fallback.stall_cycles),
            validate: self.validate || fallback.validate,
            breakdown: self.breakdown || fallback.breakdown,
            metrics: self.metrics || fallback.metrics,
        }
    }
}

/// Parses a positive cycle count from an env var; warns and ignores junk.
fn env_cycles(var: &str) -> Option<Cycle> {
    let raw = std::env::var(var).ok()?;
    match raw.trim().parse::<Cycle>() {
        Ok(n) if n > 0 => Some(n),
        _ => {
            eprintln!("warning: {var}: expected a positive integer, got `{raw}` — ignoring");
            None
        }
    }
}

/// A boolean env flag: set and not `0`/`false`/empty means on.
fn env_flag(var: &str) -> bool {
    std::env::var(var).is_ok_and(|v| {
        let v = v.trim();
        !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false")
    })
}

/// Where a warp is in the PT kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// Ray-generation compute phase.
    GenCompute,
    /// Main (nearest-hit) trace in the RT unit.
    MainTrace,
    /// Shading compute phase.
    ShadeCompute,
    /// Material loads in flight.
    ShadeMem,
    /// Shadow (occlusion) trace in the RT unit.
    ShadowTrace,
    /// Accumulation compute phase.
    AccumCompute,
    /// Kernel complete.
    Finished,
}

#[derive(Debug, Clone)]
enum Phase {
    Compute { remaining: u32 },
    WaitMem { done: Cycle },
    TraceWait,
    InRt,
    Done,
}

/// Warp-level cycle attribution (armed by [`RunLimits::breakdown`]).
///
/// Charges the half-open interval `[since, now)` to the bucket of the
/// *outgoing* phase at every phase change, so each resident warp-cycle
/// lands in exactly one bucket. The per-warp invariant
/// `warp_sum() == warp_cycles` holds by construction (every flush adds the
/// same `dt` to one bucket and to the total); the run-level aggregate is
/// asserted at the end of the run.
#[derive(Debug, Default)]
struct WarpAttr {
    /// Start of the interval the current phase will be charged for.
    since: Cycle,
    /// Buckets accumulated by this warp (warp-level fields only).
    b: StallBreakdown,
}

impl WarpAttr {
    /// Charges `[since, now)` to `phase`'s bucket and restarts the interval.
    fn flush(&mut self, now: Cycle, phase: &Phase) {
        let dt = now - self.since;
        self.since = now;
        if dt == 0 {
            return;
        }
        match phase {
            Phase::Compute { .. } => self.b.compute += dt,
            Phase::WaitMem { .. } => self.b.mem_wait += dt,
            Phase::TraceWait => self.b.rt_admit += dt,
            Phase::InRt => self.b.in_rt += dt,
            // `Done` is assigned and retired within one cycle (step 4 then
            // step 5 of the same iteration), so its interval is empty.
            Phase::Done => unreachable!("Done phase retired with a non-empty interval"),
        }
        self.b.warp_cycles += dt;
    }
}

#[derive(Debug)]
struct WarpCtx {
    id: WarpId,
    paths: Vec<PathState>,
    /// Current radiance ray per lane.
    rays: [Option<Ray>; WARP_SIZE],
    /// Pending shadow query and its gated contribution per lane.
    shadow: [Option<(RayQuery, Vec3)>; WARP_SIZE],
    /// Next bounce ray per lane.
    bounce: [Option<Ray>; WARP_SIZE],
    /// Material record addresses to load during `ShadeMem`.
    mat_loads: Vec<u64>,
    /// Which lanes are real threads (the last warp may be partial).
    real: [bool; WARP_SIZE],
    step: Step,
    phase: Phase,
    /// Lanes participating in the current phase (instruction accounting).
    active: u32,
    pending_req: Option<TraceRequest>,
    /// Warp-level stall attribution (present iff attribution is armed).
    attr: Option<Box<WarpAttr>>,
}

struct Sm {
    l1: SmL1,
    shared: SharedMem,
    rt: RtUnit,
    warps: Vec<WarpCtx>,
    pending: VecDeque<WarpCtx>,
    done_warps: u64,
    total_warps: u64,
    /// Completion events of warps in `Phase::WaitMem` (min-heap on
    /// `(cycle, warp)`): warps leave that phase only at their recorded
    /// cycle, so the per-cycle wait scan reduces to a heap peek.
    mem_events: BinaryHeap<Reverse<(Cycle, WarpId)>>,
    /// `warps` needs re-sorting by id (perturbed by retire/refill).
    warps_dirty: bool,
}

/// Result of one cycle-level run.
#[derive(Debug, Clone)]
pub struct SimRun {
    /// Aggregated counters (cycles, instructions, traffic, stack events).
    pub stats: SimStats,
    /// The rendered image (bit-identical to the functional renderer).
    pub image: Vec<Vec3>,
    /// Image width.
    pub width: u32,
    /// Image height.
    pub height: u32,
    /// Stack-depth histogram (when `config.record_depths`).
    pub depths: Histogram,
    /// Per-thread stack traces (when `config.trace_warp_limit > 0`).
    pub thread_traces: Vec<(WarpId, u8, u32, u16)>,
    /// Cycle attribution (when [`RunLimits::breakdown`] or a trace spec is
    /// armed): every resident warp/lane cycle charged to one bucket, with
    /// both conservation laws asserted before this is returned.
    pub breakdown: Option<StallBreakdown>,
    /// Stack distributions and the sampled time series (when
    /// [`RunLimits::metrics`] is armed).
    pub metrics: Option<Box<MetricsReport>>,
}

/// The cycle-level GPU model.
pub struct GpuSim<'a> {
    prepared: &'a PreparedScene,
    config: SimConfig,
    record_depths: bool,
    trace_warp_limit: u32,
    use_flat: bool,
    limits: RunLimits,
    trace: Option<TraceSpec>,
    metrics_period: Cycle,
}

impl<'a> GpuSim<'a> {
    /// Creates a simulator for a prepared scene.
    pub fn new(prepared: &'a PreparedScene, config: SimConfig) -> Self {
        GpuSim {
            prepared,
            config,
            record_depths: false,
            trace_warp_limit: 0,
            use_flat: true,
            limits: RunLimits::none(),
            trace: None,
            metrics_period: crate::metrics::DEFAULT_PERIOD,
        }
    }

    /// Arms the per-run watchdog and/or the stack validator.
    pub fn with_limits(mut self, limits: RunLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Arms the time-series trace export (implies cycle attribution): the
    /// run writes a Chrome trace-event JSON file to `spec.path`.
    pub fn with_trace(mut self, spec: TraceSpec) -> Self {
        self.trace = Some(spec);
        self
    }

    /// Sets the metrics time-series sampling period (cycles). Only
    /// consulted when [`RunLimits::metrics`] is armed.
    pub fn with_metrics_period(mut self, period: Cycle) -> Self {
        assert!(period > 0, "sampling period must be positive");
        self.metrics_period = period;
        self
    }

    /// Records stack depths at every push/pop (Figs. 4/5, slight overhead).
    pub fn record_depths(mut self, on: bool) -> Self {
        self.record_depths = on;
        self
    }

    /// Records per-thread depth traces for warps below `limit` (Fig. 10).
    pub fn trace_warps(mut self, limit: u32) -> Self {
        self.trace_warp_limit = limit;
        self
    }

    /// Selects the host-side BVH layout: the flattened layout (default) or
    /// the original wide representation. Both traverse the same tree with
    /// identical node numbering, so every statistic and image is
    /// bit-identical — the knob exists for regression tests and timing
    /// comparisons.
    pub fn use_flat(mut self, on: bool) -> Self {
        self.use_flat = on;
        self
    }

    /// Runs the workload to completion.
    ///
    /// # Panics
    ///
    /// Panics if the model deadlocks (a bug), exceeds a cycle budget, or —
    /// when validation is armed — violates a stack invariant. Fault-aware
    /// callers should use [`GpuSim::try_run`] instead.
    pub fn run(self) -> SimRun {
        self.try_run().unwrap_or_else(|fault| panic!("{fault}"))
    }

    /// Runs the workload to completion, returning a structured
    /// [`SimFault`] instead of panicking when the run must be aborted.
    pub fn try_run(self) -> Result<SimRun, SimFault> {
        // Stackless traversal follows the escape links only the flattened
        // layout carries, so it overrides the layout knob.
        if self.use_flat || matches!(self.config.stack, StackConfig::Stackless) {
            self.run_on(&self.prepared.flat)
        } else {
            self.run_on(&self.prepared.bvh)
        }
    }

    fn run_on<B: TraverseBvh>(&self, bvh: &B) -> Result<SimRun, SimFault> {
        let scene = &self.prepared.scene;
        let (w, h, spp) = self.config.render.workload(scene.id);
        let total_threads = (w * h * spp) as usize;
        let num_warps = total_threads.div_ceil(WARP_SIZE);
        let gpu = &self.config.gpu;
        // Tracing implies attribution (slices and counters reuse its
        // timestamps); either way the simulation itself is unchanged.
        let attribute = self.limits.breakdown || self.trace.is_some();
        let mut recorder = self
            .trace
            .as_ref()
            .map(|spec| TraceRecorder::new(spec.clone(), gpu.num_sms, gpu.max_warps_per_rt_unit));
        let mut msampler = self.limits.metrics.then(|| SeriesSampler::new(self.metrics_period));

        // Build all warps and distribute round-robin over SMs.
        let mut sms: Vec<Sm> = (0..gpu.num_sms)
            .map(|_| {
                let mut rt_cfg = RtUnitConfig::new(self.config.stack);
                rt_cfg.max_warps = gpu.max_warps_per_rt_unit;
                rt_cfg.box_latency = gpu.box_latency;
                rt_cfg.tri_latency = gpu.tri_latency;
                rt_cfg.record_depths = self.record_depths;
                rt_cfg.validate = self.limits.validate;
                rt_cfg.attribute = attribute;
                rt_cfg.metrics = self.limits.metrics;
                let mut rt = RtUnit::new(rt_cfg);
                if recorder.is_some() {
                    rt.record_slices();
                }
                if self.trace_warp_limit > 0 {
                    rt.thread_traces = Some(ThreadTraceRecorder::new(self.trace_warp_limit));
                }
                Sm {
                    l1: SmL1::new(gpu.l1),
                    shared: SharedMem::new(gpu.shared),
                    rt,
                    warps: Vec::new(),
                    pending: VecDeque::new(),
                    done_warps: 0,
                    total_warps: 0,
                    mem_events: BinaryHeap::new(),
                    warps_dirty: false,
                }
            })
            .collect();

        for wid in 0..num_warps {
            let mut paths = Vec::with_capacity(WARP_SIZE);
            for lane in 0..WARP_SIZE {
                let t = wid * WARP_SIZE + lane;
                if t < total_threads {
                    let pixel = (t as u32) / spp;
                    let sample = (t as u32) % spp;
                    paths.push(PathState::new(
                        pixel % w,
                        pixel / w,
                        sample,
                        self.config.render.seed,
                    ));
                } else {
                    let mut dead = PathState::new(0, 0, 0, self.config.render.seed);
                    dead.alive = false;
                    paths.push(dead);
                }
            }
            let real: [bool; WARP_SIZE] = std::array::from_fn(|l| paths[l].alive);
            let active = real.iter().filter(|&&r| r).count() as u32;
            let ctx = WarpCtx {
                id: wid as WarpId,
                paths,
                real,
                rays: [None; WARP_SIZE],
                shadow: [None; WARP_SIZE],
                bounce: [None; WARP_SIZE],
                mat_loads: Vec::new(),
                step: Step::GenCompute,
                phase: Phase::Compute { remaining: RAYGEN_COST },
                active,
                pending_req: None,
                attr: None,
            };
            sms[wid % gpu.num_sms].pending.push_back(ctx);
        }
        for sm in &mut sms {
            sm.total_warps = sm.pending.len() as u64;
            while sm.warps.len() < gpu.resident_warps_per_sm {
                match sm.pending.pop_front() {
                    Some(mut wc) => {
                        if attribute {
                            wc.attr = Some(Box::default());
                        }
                        sm.warps.push(wc);
                    }
                    None => break,
                }
            }
        }

        let mut global = GlobalMemory::new(gpu.global);
        let mut stats = SimStats::default();
        let mut image = vec![Vec3::ZERO; (w * h) as usize];
        let mut now: Cycle = 0;
        let prims = self.prepared.prims();
        let max_depth = self.config.render.max_depth;
        let shadow_on = self.config.render.shadow_rays;
        let resident_cap = gpu.resident_warps_per_sm;
        let issue_width = gpu.issue_width;

        // Watchdog state: the effective cycle budget and a forward-progress
        // counter (traces retired by RT units + warps fully finished +
        // completed RT micro-events — fetch responses, node-op commits and
        // stack micro-ops — so a long-but-live traversal is not mistaken
        // for a stall just because no full trace retired in the window).
        let budget = self.limits.max_cycles.map_or(HARD_CYCLE_CAP, |m| m.min(HARD_CYCLE_CAP));
        let mut retired_traces: u64 = 0;
        let mut last_progress: u64 = 0;
        let mut last_progress_cycle: Cycle = 0;

        // Run-level stall attribution: warp-level buckets flushed at retire,
        // lane-level buckets merged from the RT units at the end.
        let mut breakdown = StallBreakdown::default();

        loop {
            for sm in &mut sms {
                // 1. RT unit cycle; process retiring traces.
                let results = sm.rt.tick(
                    now,
                    bvh,
                    prims,
                    &mut sm.l1,
                    &mut sm.shared,
                    &mut global,
                    &mut stats,
                );
                retired_traces += results.len() as u64;
                for res in results {
                    let warp = sm
                        .warps
                        .iter_mut()
                        .find(|wc| wc.id == res.warp)
                        .expect("retired warp resident");
                    if let Some(a) = warp.attr.as_deref_mut() {
                        a.flush(now, &warp.phase); // charge InRt
                    }
                    Self::on_trace_result(warp, &res, scene, max_depth, shadow_on);
                    Self::advance_after_trace(warp, scene);
                }
                if self.limits.validate {
                    if let Some(violation) = sm.rt.take_violation() {
                        return Err(SimFault::Invariant { violation });
                    }
                }

                // 2. Memory-wait completions (event-driven: a warp leaves
                //    `WaitMem` only at its recorded completion cycle).
                while sm.mem_events.peek().is_some_and(|&Reverse((c, _))| c <= now) {
                    let Reverse((_, wid)) = sm.mem_events.pop().expect("peeked above");
                    let warp =
                        sm.warps.iter_mut().find(|wc| wc.id == wid).expect("waiting warp resident");
                    debug_assert!(matches!(warp.phase, Phase::WaitMem { done } if done <= now));
                    if let Some(a) = warp.attr.as_deref_mut() {
                        a.flush(now, &warp.phase); // charge WaitMem
                    }
                    Self::after_shade_mem(warp, scene);
                }

                // 3. Trace admission (oldest first).
                if sm.warps_dirty {
                    sm.warps.sort_by_key(|wc| wc.id);
                    sm.warps_dirty = false;
                }
                for warp in &mut sm.warps {
                    if matches!(warp.phase, Phase::TraceWait) && sm.rt.has_free_slot() {
                        if let Some(a) = warp.attr.as_deref_mut() {
                            a.flush(now, &warp.phase); // charge TraceWait
                        }
                        let req = warp.pending_req.take().expect("TraceWait has a request");
                        sm.rt.try_admit(now, req, &mut stats).expect("slot checked free");
                        warp.phase = Phase::InRt;
                    }
                }

                // 4. Compute issue: up to issue_width warps, oldest first.
                let mut issued = 0;
                for warp in &mut sm.warps {
                    if issued >= issue_width {
                        break;
                    }
                    if let Phase::Compute { remaining } = &mut warp.phase {
                        *remaining -= 1;
                        stats.thread_instructions += warp.active as u64;
                        issued += 1;
                        if *remaining == 0 {
                            if let Some(a) = warp.attr.as_deref_mut() {
                                a.flush(now, &warp.phase); // charge Compute
                            }
                            Self::on_compute_done(
                                warp,
                                scene,
                                now,
                                &mut sm.l1,
                                &mut global,
                                &mut image,
                                &mut sm.mem_events,
                            );
                        }
                    }
                }

                // 5. Retire finished warps; pull in pending ones.
                let mut i = 0;
                while i < sm.warps.len() {
                    if matches!(sm.warps[i].phase, Phase::Done) {
                        let mut wc = sm.warps.swap_remove(i);
                        if let Some(mut a) = wc.attr.take() {
                            a.flush(now, &wc.phase); // empty interval: Done is same-cycle
                            debug_assert_eq!(a.b.warp_sum(), a.b.warp_cycles);
                            breakdown.merge(&a.b);
                        }
                        sm.done_warps += 1;
                        sm.warps_dirty = true;
                    } else {
                        i += 1;
                    }
                }
                while sm.warps.len() < resident_cap {
                    match sm.pending.pop_front() {
                        Some(mut wc) => {
                            if attribute {
                                wc.attr = Some(Box::new(WarpAttr {
                                    since: now,
                                    b: StallBreakdown::default(),
                                }));
                            }
                            sm.warps.push(wc);
                            sm.warps_dirty = true;
                        }
                        None => break,
                    }
                }
            }
            // Time-series sampler (pure observation; see `crate::trace`).
            if let Some(rec) = recorder.as_mut() {
                if rec.sample_due(now) {
                    rec.sample(
                        now,
                        sms.iter().map(|sm| SmCounters {
                            resident_warps: sm.warps.len(),
                            rt_busy: sm.rt.busy_warps(),
                            mem_queue: sm.mem_events.len(),
                            conflict_cycles: sm.shared.conflict_cycles,
                        }),
                    );
                }
            }
            // Metrics time-series sampler: same pure-observation contract
            // and jump-tolerant re-arming as the trace sampler above.
            if let Some(s) = msampler.as_mut() {
                if s.sample_due(now) {
                    let l1: (u64, u64) = sms.iter().fold((0, 0), |(h, m), sm| {
                        (h + sm.l1.stats.l1_hits, m + sm.l1.stats.l1_misses)
                    });
                    s.sample(
                        now,
                        SampleCounts {
                            resident_warps: sms.iter().map(|sm| sm.warps.len()).sum(),
                            rt_busy: sms.iter().map(|sm| sm.rt.busy_warps()).sum(),
                            mem_queue: sms.iter().map(|sm| sm.mem_events.len()).sum(),
                            instructions: stats.instructions(),
                            l1_hits: l1.0,
                            l1_misses: l1.1,
                            l2_hits: global.stats.l2_hits,
                            l2_misses: global.stats.l2_misses,
                        },
                    );
                }
            }
            if sms.iter().all(|sm| sm.done_warps == sm.total_warps) {
                break;
            }

            // Forward-progress watchdog: nothing completed since the last
            // productive cycle, for longer than the configured window. The
            // RT units' micro-event counters keep slow traversals alive.
            let progress =
                retired_traces + sms.iter().map(|sm| sm.done_warps + sm.rt.progress()).sum::<u64>();
            if progress != last_progress {
                last_progress = progress;
                last_progress_cycle = now;
            } else if let Some(stall) = self.limits.stall_cycles {
                if now - last_progress_cycle >= stall {
                    return Err(SimFault::Stalled {
                        stall_cycles: stall,
                        at_cycle: now,
                        snapshot: snapshot(&sms, now),
                    });
                }
            }

            // Advance time: step by one while anything is issuable, else
            // jump to the next completion event. Completion cycles come
            // from the RT units' and SMs' event heaps; only the (small)
            // resident-warp lists are scanned for issuable compute phases,
            // and only until the first hit.
            let mut issuable = false;
            let mut next: Option<Cycle> = None;
            for sm in &sms {
                if let Some(c) = sm.rt.next_completion() {
                    next = Some(next.map_or(c, |n: Cycle| n.min(c)));
                }
                if let Some(&Reverse((c, _))) = sm.mem_events.peek() {
                    next = Some(next.map_or(c, |n: Cycle| n.min(c)));
                }
                if issuable {
                    continue;
                }
                if sm.rt.has_issuable() {
                    issuable = true;
                    continue;
                }
                for warp in &sm.warps {
                    match &warp.phase {
                        Phase::Compute { .. } => {
                            issuable = true;
                            break;
                        }
                        Phase::TraceWait if sm.rt.has_free_slot() => {
                            issuable = true;
                            break;
                        }
                        _ => {}
                    }
                }
            }
            now = if issuable {
                now + 1
            } else {
                match next {
                    Some(c) => c.max(now + 1),
                    None => {
                        return Err(SimFault::Deadlock {
                            at_cycle: now,
                            snapshot: snapshot(&sms, now),
                        })
                    }
                }
            };
            if now >= budget {
                return Err(SimFault::CycleBudget {
                    limit: budget,
                    at_cycle: now,
                    snapshot: snapshot(&sms, now),
                });
            }
        }

        stats.cycles = now;
        let mut depths = Histogram::new();
        let mut thread_traces = Vec::new();
        let mut stack_metrics = sms_rtunit::StackMetrics::default();
        for (i, mut sm) in sms.into_iter().enumerate() {
            stats.mem.merge(&sm.l1.stats);
            depths.merge(&sm.rt.depth_recorder);
            if attribute {
                breakdown.merge(sm.rt.breakdown());
            }
            if let Some(m) = &sm.rt.stack_metrics {
                stack_metrics.merge(m);
            }
            if let Some(rec) = recorder.as_mut() {
                rec.add_slices(i, &sm.rt.take_slices());
            }
            if let Some(tr) = sm.rt.thread_traces {
                thread_traces.extend(tr.samples);
            }
        }
        stats.mem.merge(&global.stats);
        let breakdown = attribute.then(|| {
            // The taxonomy's conservation laws: every resident warp-cycle
            // and every RT-resident lane-cycle attributed exactly once, and
            // the two levels agree on RT residency.
            assert_eq!(
                breakdown.warp_sum(),
                breakdown.warp_cycles,
                "warp-level stall buckets must sum to resident warp-cycles"
            );
            assert_eq!(
                breakdown.lane_sum(),
                breakdown.rt_lane_cycles,
                "lane-level stall buckets must sum to RT-resident lane-cycles"
            );
            assert_eq!(
                breakdown.in_rt * WARP_SIZE as u64,
                breakdown.rt_lane_cycles,
                "warp-level and lane-level views must agree on RT residency"
            );
            breakdown
        });
        let metrics = self.limits.metrics.then(|| {
            Box::new(MetricsReport {
                stacks: stack_metrics,
                series: msampler.map(SeriesSampler::into_series).unwrap_or_default(),
                period: self.metrics_period,
            })
        });
        if let Some(mut rec) = recorder {
            // With both layers armed, the sampled metrics series rides
            // along as a counter track in the trace file.
            if let Some(m) = &metrics {
                rec.add_counter_series(&m.series);
            }
            let b = breakdown.expect("tracing arms attribution");
            match rec.finish(now, &b) {
                Ok(path) => eprintln!("SMS_TRACE: wrote {}", path.display()),
                Err(e) => eprintln!("warning: SMS_TRACE: failed to write trace: {e}"),
            }
        }
        Ok(SimRun { stats, image, width: w, height: h, depths, thread_traces, breakdown, metrics })
    }

    /// Consumes a trace result: shading (main) or shadow application.
    fn on_trace_result(
        warp: &mut WarpCtx,
        res: &TraceResult,
        scene: &sms_scene::Scene,
        max_depth: u32,
        shadow_on: bool,
    ) {
        match warp.step {
            Step::MainTrace => {
                warp.mat_loads.clear();
                for lane in 0..WARP_SIZE {
                    let Some(ray) = warp.rays[lane] else { continue };
                    let hit = res.hits[lane];
                    if let Some(h) = hit {
                        // Fetch the hit primitive's shading record (normals,
                        // uvs, material id): divergent per-lane addresses,
                        // as in a real PT hit shader.
                        warp.mat_loads.push(SHADE_BASE_ADDR + h.prim as u64 * 64);
                    }
                    let path = &mut warp.paths[lane];
                    let out = driver::shade(scene, path, &ray, hit, max_depth, shadow_on);
                    warp.shadow[lane] = out.shadow;
                    warp.bounce[lane] = out.bounce;
                }
            }
            Step::ShadowTrace => {
                for lane in 0..WARP_SIZE {
                    if let Some((_, contrib)) = warp.shadow[lane].take() {
                        driver::apply_shadow(&mut warp.paths[lane], contrib, res.occluded[lane]);
                    }
                }
            }
            _ => unreachable!("trace result in step {:?}", warp.step),
        }
    }

    /// Decides what follows a completed trace.
    fn advance_after_trace(warp: &mut WarpCtx, _scene: &sms_scene::Scene) {
        match warp.step {
            Step::MainTrace => {
                warp.step = Step::ShadeCompute;
                warp.phase = Phase::Compute { remaining: SHADE_COST };
            }
            Step::ShadowTrace => {
                warp.step = Step::AccumCompute;
                warp.phase = Phase::Compute { remaining: ACCUM_COST };
            }
            _ => unreachable!(),
        }
    }

    /// A compute phase finished: issue follow-up memory or traces.
    #[allow(clippy::too_many_arguments)]
    fn on_compute_done(
        warp: &mut WarpCtx,
        scene: &sms_scene::Scene,
        now: Cycle,
        l1: &mut SmL1,
        global: &mut GlobalMemory,
        image: &mut [Vec3],
        mem_events: &mut BinaryHeap<Reverse<(Cycle, WarpId)>>,
    ) {
        match warp.step {
            Step::GenCompute => {
                for lane in 0..WARP_SIZE {
                    warp.rays[lane] = if warp.paths[lane].alive {
                        Some(warp.paths[lane].primary_ray(scene))
                    } else {
                        None
                    };
                }
                Self::request_main_trace(warp);
            }
            Step::ShadeCompute => {
                if warp.mat_loads.is_empty() {
                    Self::after_shade_mem(warp, scene);
                } else {
                    let mut done = now + 1;
                    for line in coalesce_lines(warp.mat_loads.iter().map(|&a| (a, 64))) {
                        done = done.max(l1.access_line(global, line, AccessKind::Load, now, false));
                    }
                    warp.step = Step::ShadeMem;
                    warp.phase = Phase::WaitMem { done };
                    mem_events.push(Reverse((done, warp.id)));
                }
            }
            Step::AccumCompute => {
                Self::after_accum(warp, scene, now, l1, global, image);
            }
            _ => unreachable!("compute completion in step {:?}", warp.step),
        }
    }

    /// Material loads returned (or were skipped): shadow trace or accumulate.
    fn after_shade_mem(warp: &mut WarpCtx, _scene: &sms_scene::Scene) {
        let any_shadow = warp.shadow.iter().any(Option::is_some);
        if any_shadow {
            let rays: [Option<RayQuery>; WARP_SIZE] =
                std::array::from_fn(|l| warp.shadow[l].map(|(q, _)| q));
            warp.active = rays.iter().filter(|r| r.is_some()).count() as u32;
            warp.pending_req = Some(TraceRequest::new(warp.id, rays));
            warp.step = Step::ShadowTrace;
            warp.phase = Phase::TraceWait;
        } else {
            warp.step = Step::AccumCompute;
            warp.phase = Phase::Compute { remaining: ACCUM_COST };
        }
    }

    /// Accumulation finished: bounce or retire the warp.
    fn after_accum(
        warp: &mut WarpCtx,
        scene: &sms_scene::Scene,
        now: Cycle,
        l1: &mut SmL1,
        global: &mut GlobalMemory,
        image: &mut [Vec3],
    ) {
        let mut any = false;
        for lane in 0..WARP_SIZE {
            warp.rays[lane] = warp.bounce[lane].take();
            any |= warp.rays[lane].is_some();
        }
        if any {
            Self::request_main_trace(warp);
        } else {
            // Write radiance to the framebuffer (posted stores) and retire.
            let w = scene.camera.width;
            let stores = warp
                .paths
                .iter()
                .zip(&warp.real)
                .filter(|(_, &real)| real)
                .map(|(p, _)| (FRAMEBUFFER_BASE + (p.py * w + p.px) as u64 * 16, 16u32));
            for line in coalesce_lines(stores) {
                let _ = l1.access_line(global, line, AccessKind::Store, now, false);
            }
            for (p, &real) in warp.paths.iter().zip(&warp.real) {
                if real {
                    image[(p.py * w + p.px) as usize] += p.radiance;
                }
            }
            warp.step = Step::Finished;
            warp.phase = Phase::Done;
        }
    }

    fn request_main_trace(warp: &mut WarpCtx) {
        let rays: [Option<RayQuery>; WARP_SIZE] =
            std::array::from_fn(|l| warp.rays[l].map(|ray| RayQuery::nearest(ray, 0.0)));
        warp.active = rays.iter().filter(|r| r.is_some()).count() as u32;
        warp.pending_req = Some(TraceRequest::new(warp.id, rays));
        warp.step = Step::MainTrace;
        warp.phase = Phase::TraceWait;
    }
}

/// Formats the per-SM warp/RT-unit state dump attached to watchdog and
/// deadlock faults, so an aborted run can be diagnosed from its journal
/// entry alone.
fn snapshot(sms: &[Sm], now: Cycle) -> String {
    use std::fmt::Write as _;
    let mut out = format!("  state at cycle {now}:\n");
    for (i, sm) in sms.iter().enumerate() {
        let _ = writeln!(
            out,
            "  SM{i}: done {}/{}, pending {}, rt busy {}, rt issuable {}, rt next {:?}",
            sm.done_warps,
            sm.total_warps,
            sm.pending.len(),
            sm.rt.busy_warps(),
            sm.rt.has_issuable(),
            sm.rt.next_completion()
        );
        for warp in &sm.warps {
            let _ =
                writeln!(out, "    warp {} step {:?} phase {:?}", warp.id, warp.step, warp.phase);
        }
        out.push_str(&sm.rt.slot_summary());
    }
    out
}

/// Runs the workload and divides the framebuffer by the sample count,
/// yielding the same image as [`crate::render::render`].
pub fn run_to_image(prepared: &PreparedScene, config: &SimConfig) -> SimRun {
    let mut run = GpuSim::new(prepared, *config).run();
    let spp = config.render.spp(prepared.scene.id) as f32;
    for px in &mut run.image {
        *px /= spp;
    }
    run
}
