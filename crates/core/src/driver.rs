//! The path-tracing kernel logic (Lumibench PT shader stand-in).
//!
//! This module is the single source of truth for *what each thread does*:
//! ray generation, shading, shadow rays, bounces and termination. Both the
//! functional renderer ([`crate::render`]) and the cycle simulator
//! ([`crate::sim`]) drive these functions, consuming randomness from the
//! same per-path RNG stream in the same order — which guarantees both trace
//! identical rays and the cycle model's traversal work equals the
//! reference.

use sms_bvh::Hit;
use sms_geom::{Ray, SplitMix64, Vec3, RAY_EPSILON};
use sms_rtunit::RayQuery;
use sms_scene::{Light, Scene};

/// Compute-instruction budget of the ray-generation phase (per thread).
pub const RAYGEN_COST: u32 = 24;
/// Compute-instruction budget of the shading phase (per thread).
pub const SHADE_COST: u32 = 32;
/// Compute-instruction budget of the accumulate/bookkeeping phase.
pub const ACCUM_COST: u32 = 12;
/// Path depth after which Russian roulette starts.
pub const RR_START_DEPTH: u32 = 2;

/// One thread's path state.
#[derive(Debug, Clone)]
pub struct PathState {
    /// Pixel x.
    pub px: u32,
    /// Pixel y.
    pub py: u32,
    /// Sample index within the pixel.
    pub sample: u32,
    /// Current path throughput.
    pub throughput: Vec3,
    /// Accumulated radiance.
    pub radiance: Vec3,
    /// Current bounce depth (0 = primary).
    pub depth: u32,
    /// The path's RNG stream.
    pub rng: SplitMix64,
    /// `false` once the path terminated.
    pub alive: bool,
}

impl PathState {
    /// Creates the path for `(px, py, sample)`.
    pub fn new(px: u32, py: u32, sample: u32, seed: u64) -> Self {
        PathState {
            px,
            py,
            sample,
            throughput: Vec3::ONE,
            radiance: Vec3::ZERO,
            depth: 0,
            rng: SplitMix64::from_key(seed ^ 0x50_41_54_48, px as u64, py as u64, sample as u64),
            alive: true,
        }
    }

    /// The primary ray for this path.
    pub fn primary_ray(&self, scene: &Scene) -> Ray {
        scene.camera.primary_ray(self.px, self.py, self.sample)
    }
}

/// What a path does after shading one trace result.
#[derive(Debug, Clone)]
pub struct ShadeOutcome {
    /// Shadow-ray query plus the radiance it gates, if a shadow ray is cast.
    pub shadow: Option<(RayQuery, Vec3)>,
    /// The next bounce ray, if the path continues.
    pub bounce: Option<Ray>,
}

/// Shades one trace result, mutating the path (radiance, throughput,
/// depth, liveness) and returning the follow-up rays.
///
/// Consumes RNG in a fixed order: scatter sample, then light sample (none),
/// then Russian roulette — identical in the functional and cycle drivers.
pub fn shade(
    scene: &Scene,
    path: &mut PathState,
    ray: &Ray,
    hit: Option<Hit>,
    max_depth: u32,
    shadow_rays: bool,
) -> ShadeOutcome {
    let none = ShadeOutcome { shadow: None, bounce: None };
    let Some(h) = hit else {
        // Escaped: add sky and terminate.
        path.radiance += path.throughput.mul_elem(scene.sky(ray.dir));
        path.alive = false;
        return none;
    };

    let prim = &scene.prims[h.prim as usize];
    let material = scene.materials[prim.material as usize];
    let point = ray.at(h.t);
    let normal = prim.normal_at(point);

    // Emission terminates the path.
    let emitted = material.emitted();
    if emitted.length_squared() > 0.0 {
        path.radiance += path.throughput.mul_elem(emitted);
        path.alive = false;
        return none;
    }

    let Some(scatter) = material.scatter(ray, point, normal, &mut path.rng) else {
        path.alive = false;
        return none;
    };

    // Next-event estimation: one shadow ray toward the light for
    // diffuse-ish surfaces.
    let shadow = if shadow_rays && material.casts_shadow_rays() {
        let outward = if ray.dir.dot(normal) < 0.0 { normal } else { -normal };
        let origin = point + outward * RAY_EPSILON;
        match scene.light {
            Light::Point { position, intensity } => {
                let to_light = position - origin;
                let dist = to_light.length();
                if dist > RAY_EPSILON {
                    let dir = to_light / dist;
                    let cos = dir.dot(outward).max(0.0);
                    if cos > 0.0 {
                        let contrib =
                            path.throughput.mul_elem(scatter.attenuation).mul_elem(intensity)
                                * (cos / (dist * dist))
                                * std::f32::consts::FRAC_1_PI;
                        Some((
                            RayQuery::occlusion(Ray::new(origin, dir), 0.0, dist - RAY_EPSILON),
                            contrib,
                        ))
                    } else {
                        None
                    }
                } else {
                    None
                }
            }
            Light::Directional { direction, radiance } => {
                let cos = direction.dot(outward).max(0.0);
                if cos > 0.0 {
                    let contrib = path.throughput.mul_elem(scatter.attenuation).mul_elem(radiance)
                        * cos
                        * std::f32::consts::FRAC_1_PI;
                    Some((RayQuery::occlusion(Ray::new(origin, direction), 0.0, 1.0e6), contrib))
                } else {
                    None
                }
            }
        }
    } else {
        None
    };

    // Continue the path.
    path.throughput = path.throughput.mul_elem(scatter.attenuation);
    path.depth += 1;
    if path.depth >= max_depth {
        path.alive = false;
        return ShadeOutcome { shadow, bounce: None };
    }
    // Russian roulette.
    if path.depth >= RR_START_DEPTH {
        let q = path.throughput.max_component().clamp(0.05, 0.95);
        if path.rng.next_f32() >= q {
            path.alive = false;
            return ShadeOutcome { shadow, bounce: None };
        }
        path.throughput /= q;
    }
    ShadeOutcome { shadow, bounce: Some(scatter.ray) }
}

/// Applies a shadow-ray result: unoccluded shadow rays add their gated
/// contribution.
pub fn apply_shadow(path: &mut PathState, contrib: Vec3, occluded: bool) {
    if !occluded {
        path.radiance += contrib;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RenderConfig;
    use crate::render::PreparedScene;
    use sms_scene::SceneId;

    fn prepared() -> PreparedScene {
        PreparedScene::build(SceneId::Ship, &RenderConfig::tiny())
    }

    #[test]
    fn miss_adds_sky_and_terminates() {
        let s = prepared().scene;
        let mut p = PathState::new(0, 0, 0, 1);
        let ray = Ray::new(Vec3::new(0.0, 100.0, 0.0), Vec3::new(0.0, 1.0, 0.0));
        let out = shade(&s, &mut p, &ray, None, 4, true);
        assert!(!p.alive);
        assert!(out.bounce.is_none() && out.shadow.is_none());
        assert!(p.radiance.length_squared() > 0.0, "sky contributes");
    }

    #[test]
    fn paths_are_deterministic() {
        let ps = prepared();
        let s = &ps.scene;
        let r = s.camera.primary_ray(4, 4, 0);
        let hit = ps.trace(&r);
        let mut a = PathState::new(4, 4, 0, 1);
        let mut b = PathState::new(4, 4, 0, 1);
        let oa = shade(s, &mut a, &r, hit, 4, true);
        let ob = shade(s, &mut b, &r, hit, 4, true);
        assert_eq!(oa.bounce, ob.bounce);
        assert_eq!(a.radiance, b.radiance);
    }

    #[test]
    fn max_depth_stops_bounces() {
        let ps = prepared();
        let s = &ps.scene;
        let r = s.camera.primary_ray(8, 14, 0);
        if let Some(hit) = ps.trace(&r) {
            let mut p = PathState::new(8, 14, 0, 1);
            let out = shade(s, &mut p, &r, Some(hit), 1, false);
            assert!(out.bounce.is_none(), "depth 1 means no secondary bounce");
        }
    }

    #[test]
    fn shadow_applies_only_when_unoccluded() {
        let mut p = PathState::new(0, 0, 0, 1);
        let c = Vec3::splat(0.5);
        apply_shadow(&mut p, c, true);
        assert_eq!(p.radiance, Vec3::ZERO);
        apply_shadow(&mut p, c, false);
        assert_eq!(p.radiance, c);
    }
}
