//! SMS: cycle-level reproduction of *"Hierarchical Traversal Stack Design
//! Using Shared Memory for GPU Ray Tracing"* (ISPASS 2025).
//!
//! This is the top-level crate tying the substrates together:
//!
//! * [`config`] — [`SimConfig`]: GPU (Table I), stack architecture, and
//!   render workload configuration.
//! * [`driver`] — the path-tracing kernel logic (Lumibench PT shader stand-
//!   in) shared verbatim between the functional renderer and the cycle
//!   simulator, so both trace *identical* rays.
//! * [`render`] — the functional renderer: images, reference hit results
//!   and stack-depth statistics without timing.
//! * [`sim`] — [`GpuSim`]: the cycle-level model (SMs, GTO-scheduled SIMT
//!   compute, RT units, L1/shared/L2/DRAM) that produces the paper's IPC
//!   and traffic numbers.
//! * [`experiments`] — one entry point per paper table/figure.
//! * [`report`] — plain-text table rendering used by the bench harnesses.
//!
//! # Quickstart
//!
//! ```
//! use sms_sim::{config::RenderConfig, experiments};
//! use sms_rtunit::StackConfig;
//! use sms_scene::SceneId;
//!
//! let render = RenderConfig::tiny();
//! let base = experiments::run_scene(SceneId::Ship, StackConfig::baseline8(), &render);
//! let sms = experiments::run_scene(SceneId::Ship, StackConfig::sms_default(), &render);
//! // Identical traversal work, different cycle counts:
//! assert_eq!(base.stats.node_visits, sms.stats.node_visits);
//! assert!(sms.stats.cycles > 0);
//! ```

pub mod analyze;
pub mod config;
pub mod driver;
pub mod experiments;
pub mod metrics;
pub mod render;
pub mod report;
pub mod sim;
pub mod trace;

pub use config::{RenderConfig, SimConfig};
pub use experiments::RunResult;
pub use metrics::{MetricsReport, MetricsSpec};
pub use sim::{GpuSim, RunLimits, SimFault};
pub use trace::TraceSpec;

// Re-export the component crates so downstream users need one dependency.
pub use sms_bvh as bvh;
pub use sms_geom as geom;
pub use sms_gpu as gpu;
pub use sms_mem as mem;
pub use sms_rtunit as rtunit;
pub use sms_scene as scene;
