//! Simulation and workload configuration.

use sms_gpu::GpuConfig;
use sms_rtunit::StackConfig;
use sms_scene::{Scene, SceneId};

/// How much of the paper's render workload to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolutionMode {
    /// The paper's §VII-A workloads: 128×128 at 2 spp, except CHSNT, ROBOT
    /// and PARK at 32×32, 1 spp. Slow — full evaluation runs.
    Paper,
    /// 32×32 at 1 spp for every scene: the default for the bench harnesses
    /// (performance *trends* are resolution-stable, as the paper itself
    /// argues citing its refs. \[13\], \[27\]).
    Fast,
    /// 16×16 at 1 spp: unit/integration-test sized.
    Tiny,
    /// An explicit resolution and sample count for every scene.
    Custom {
        /// Image width in pixels.
        width: u32,
        /// Image height in pixels.
        height: u32,
        /// Samples per pixel.
        spp: u32,
    },
}

/// Path-tracing workload configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderConfig {
    /// Resolution/sample-count mode.
    pub mode: ResolutionMode,
    /// Maximum path depth (bounces).
    pub max_depth: u32,
    /// Trace shadow rays toward the scene light at diffuse hits.
    pub shadow_rays: bool,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for RenderConfig {
    fn default() -> Self {
        RenderConfig::fast()
    }
}

impl RenderConfig {
    /// The paper's full workload sizes.
    pub fn paper() -> Self {
        RenderConfig { mode: ResolutionMode::Paper, max_depth: 4, shadow_rays: true, seed: 7 }
    }

    /// Reduced-size workloads for bench harnesses (same trends).
    pub fn fast() -> Self {
        RenderConfig { mode: ResolutionMode::Fast, max_depth: 4, shadow_rays: true, seed: 7 }
    }

    /// Tiny workloads for tests.
    pub fn tiny() -> Self {
        RenderConfig { mode: ResolutionMode::Tiny, max_depth: 3, shadow_rays: true, seed: 7 }
    }

    /// An explicit workload size for every scene.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the sample count is zero.
    pub fn custom(width: u32, height: u32, spp: u32) -> Self {
        assert!(width > 0 && height > 0 && spp > 0, "degenerate workload");
        RenderConfig {
            mode: ResolutionMode::Custom { width, height, spp },
            max_depth: 4,
            shadow_rays: true,
            seed: 7,
        }
    }

    /// Reads `SMS_PAPER=1` from the environment to select paper-sized
    /// workloads in bench harnesses; `fast()` otherwise.
    pub fn from_env() -> Self {
        match std::env::var("SMS_PAPER") {
            Ok(v) if v == "1" => RenderConfig::paper(),
            _ => RenderConfig::fast(),
        }
    }

    /// The image size and sample count this configuration renders
    /// `scene_id` at.
    pub fn workload(&self, scene_id: SceneId) -> (u32, u32, u32) {
        match self.mode {
            ResolutionMode::Paper => {
                if scene_id.is_reduced_resolution() {
                    (32, 32, 1)
                } else {
                    (128, 128, 2)
                }
            }
            ResolutionMode::Fast => (32, 32, 1),
            ResolutionMode::Tiny => (16, 16, 1),
            ResolutionMode::Custom { width, height, spp } => (width, height, spp),
        }
    }

    /// Applies this workload's resolution to a built scene.
    pub fn apply(&self, mut scene: Scene) -> Scene {
        let (w, h, _) = self.workload(scene.id);
        scene.camera = scene.camera.with_resolution(w, h);
        scene
    }

    /// Samples per pixel for `scene_id`.
    pub fn spp(&self, scene_id: SceneId) -> u32 {
        self.workload(scene_id).2
    }
}

/// Everything one cycle-level run needs besides the scene itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// GPU parameters (Table I defaults).
    pub gpu: GpuConfig,
    /// Traversal-stack architecture under test.
    pub stack: StackConfig,
    /// Workload sizing.
    pub render: RenderConfig,
}

impl SimConfig {
    /// Builds a configuration, carving the stack's shared-memory demand out
    /// of the unified L1/shared array (the §IV-B trade: `SH_8` on 4 warps
    /// costs 8 KB, leaving a 56 KB L1D).
    pub fn new(gpu: GpuConfig, stack: StackConfig, render: RenderConfig) -> Self {
        let carve = stack.shared_carveout(gpu.max_warps_per_rt_unit);
        let gpu = gpu.with_shared_carveout(carve);
        SimConfig { gpu, stack, render }
    }

    /// Table I GPU with the given stack architecture.
    pub fn with_stack(stack: StackConfig, render: RenderConfig) -> Self {
        SimConfig::new(GpuConfig::default(), stack, render)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mode_respects_reduced_scenes() {
        let r = RenderConfig::paper();
        assert_eq!(r.workload(SceneId::Bunny), (128, 128, 2));
        assert_eq!(r.workload(SceneId::Robot), (32, 32, 1));
    }

    #[test]
    fn fast_mode_uniform() {
        let r = RenderConfig::fast();
        for id in SceneId::ALL {
            assert_eq!(r.workload(id), (32, 32, 1));
        }
    }

    #[test]
    fn carveout_applied_for_sms() {
        let c = SimConfig::with_stack(StackConfig::sms_default(), RenderConfig::fast());
        assert_eq!(c.gpu.l1.size_bytes, 56 * 1024);
        let b = SimConfig::with_stack(StackConfig::baseline8(), RenderConfig::fast());
        assert_eq!(b.gpu.l1.size_bytes, 64 * 1024);
    }

    #[test]
    fn apply_resizes_camera() {
        let scene = Scene::build(SceneId::Ship);
        let scene = RenderConfig::tiny().apply(scene);
        assert_eq!((scene.camera.width, scene.camera.height), (16, 16));
    }
}
