//! The functional (untimed) renderer.
//!
//! Runs the same kernel logic as the cycle simulator but without timing:
//! useful for producing images, reference hit results, and the stack-depth
//! statistics of Figs. 4/5 at full speed.

use crate::config::RenderConfig;
use crate::driver::{self, PathState};
use sms_bvh::{BuildParams, FlatBvh, Hit, TraversalScratch, WideBvh};
use sms_geom::{Ray, Vec3};
use sms_metrics::Histogram;
use sms_scene::{Scene, SceneId, ScenePrimitive};
use std::io::Write;

/// A scene with its wide BVH built, sized for a render configuration.
#[derive(Debug, Clone)]
pub struct PreparedScene {
    /// The scene (camera already resized per the render config).
    pub scene: Scene,
    /// The BVH6 over the scene's primitives.
    pub bvh: WideBvh,
    /// The same tree flattened to the cache-friendly layout hot host
    /// paths traverse (identical node numbering and visit order).
    pub flat: FlatBvh,
    /// Wall time of the BVH build (binary build + collapse + flatten) in
    /// microseconds — pure observation for build-throughput reporting.
    pub build_us: u64,
}

impl PreparedScene {
    /// Builds the named scene and its BVH with the default (median-split)
    /// build parameters — the bit-identical legacy path.
    pub fn build(id: SceneId, render: &RenderConfig) -> Self {
        Self::build_with(id, render, &BuildParams::default())
    }

    /// Builds the named scene and its BVH with explicit build parameters —
    /// the harness routes `SMS_HLBVH=1` here with
    /// [`sms_bvh::SplitMethod::Hlbvh`] and its worker count.
    pub fn build_with(id: SceneId, render: &RenderConfig, params: &BuildParams) -> Self {
        let scene = render.apply(Scene::build(id));
        let start = std::time::Instant::now();
        let bvh = WideBvh::build(&scene.prims, params);
        let flat = FlatBvh::from_wide(&bvh);
        let build_us = start.elapsed().as_micros() as u64;
        PreparedScene { scene, bvh, flat, build_us }
    }

    /// The scene's primitives.
    pub fn prims(&self) -> &[ScenePrimitive] {
        &self.scene.prims
    }

    /// Reference nearest-hit trace.
    pub fn trace(&self, ray: &Ray) -> Option<Hit> {
        sms_bvh::intersect_nearest(&self.flat, self.prims(), ray, 0.0, f32::INFINITY, &mut ())
    }

    /// Reference occlusion trace.
    pub fn occluded(&self, ray: &Ray, t_min: f32, t_max: f32) -> bool {
        sms_bvh::intersect_any(&self.flat, self.prims(), ray, t_min, t_max, &mut ())
    }
}

/// Reference nearest-hit used by driver unit tests (builds nothing).
pub fn trace_reference(prepared: &PreparedScene, ray: &Ray) -> Option<Hit> {
    prepared.trace(ray)
}

/// Output of a functional render.
#[derive(Debug, Clone)]
pub struct RenderOutput {
    /// Linear radiance per pixel (row-major).
    pub image: Vec<Vec3>,
    /// Image width.
    pub width: u32,
    /// Image height.
    pub height: u32,
    /// Stack depths recorded at every push/pop across all rays (Figs. 4/5).
    pub depths: Histogram,
    /// Nearest-hit rays traced.
    pub rays: u64,
    /// Shadow rays traced.
    pub shadow_rays: u64,
}

/// Renders the scene functionally, recording stack-depth statistics.
pub fn render(prepared: &PreparedScene, config: &RenderConfig) -> RenderOutput {
    let scene = &prepared.scene;
    let (w, h, spp) = config.workload(scene.id);
    let mut image = vec![Vec3::ZERO; (w * h) as usize];
    let mut depths = Histogram::new();
    let mut rays = 0u64;
    let mut shadow_rays = 0u64;
    let mut scratch = TraversalScratch::new();

    for py in 0..h {
        for px in 0..w {
            let mut acc = Vec3::ZERO;
            for sample in 0..spp {
                let mut path = PathState::new(px, py, sample, config.seed);
                let mut ray = path.primary_ray(scene);
                while path.alive {
                    rays += 1;
                    let hit = sms_bvh::intersect_nearest_with(
                        &prepared.flat,
                        prepared.prims(),
                        &ray,
                        0.0,
                        f32::INFINITY,
                        &mut depths,
                        &mut scratch,
                    );
                    let out = driver::shade(
                        scene,
                        &mut path,
                        &ray,
                        hit,
                        config.max_depth,
                        config.shadow_rays,
                    );
                    if let Some((query, contrib)) = out.shadow {
                        shadow_rays += 1;
                        let occ = sms_bvh::intersect_any_with(
                            &prepared.flat,
                            prepared.prims(),
                            &query.ray,
                            query.t_min,
                            query.t_max,
                            &mut depths,
                            &mut scratch,
                        );
                        driver::apply_shadow(&mut path, contrib, occ);
                    }
                    match out.bounce {
                        Some(b) => ray = b,
                        None => break,
                    }
                }
                acc += path.radiance;
            }
            image[(py * w + px) as usize] = acc / spp as f32;
        }
    }
    RenderOutput { image, width: w, height: h, depths, rays, shadow_rays }
}

/// Writes a render to a binary PPM file with simple tone mapping.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_ppm(output: &RenderOutput, path: &std::path::Path) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "P6\n{} {}\n255", output.width, output.height)?;
    for px in &output.image {
        let tone = |v: f32| {
            // Reinhard + gamma 2.2.
            let t = (v / (1.0 + v)).powf(1.0 / 2.2);
            (t.clamp(0.0, 1.0) * 255.0) as u8
        };
        f.write_all(&[tone(px.x), tone(px.y), tone(px.z)])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_ship_tiny_produces_signal() {
        let prepared = PreparedScene::build(SceneId::Ship, &RenderConfig::tiny());
        let out = render(&prepared, &RenderConfig::tiny());
        assert_eq!(out.image.len(), 16 * 16);
        assert!(out.rays > 256, "at least one ray per pixel");
        assert!(out.depths.count() > 0, "traversal must exercise the stack");
        // Some pixel must be non-black (sky at minimum).
        assert!(out.image.iter().any(|p| p.length_squared() > 0.0));
        // All radiance finite.
        assert!(out.image.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn render_is_deterministic() {
        let cfg = RenderConfig::tiny();
        let prepared = PreparedScene::build(SceneId::Bunny, &cfg);
        let a = render(&prepared, &cfg);
        let b = render(&prepared, &cfg);
        assert_eq!(a.image, b.image);
        assert_eq!(a.rays, b.rays);
        assert_eq!(a.depths, b.depths);
    }

    #[test]
    fn shadow_rays_can_be_disabled() {
        let mut cfg = RenderConfig::tiny();
        cfg.shadow_rays = false;
        let prepared = PreparedScene::build(SceneId::Bunny, &cfg);
        let out = render(&prepared, &cfg);
        assert_eq!(out.shadow_rays, 0);
    }

    #[test]
    fn ppm_written() {
        let cfg = RenderConfig::tiny();
        let prepared = PreparedScene::build(SceneId::Wknd, &cfg);
        let out = render(&prepared, &cfg);
        let dir = std::env::temp_dir().join("sms_test_ppm");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("wknd.ppm");
        write_ppm(&out, &p).unwrap();
        let meta = std::fs::metadata(&p).unwrap();
        assert!(meta.len() > (16 * 16 * 3) as u64);
    }
}
