//! Reusable experiment entry points for the paper's tables and figures.
//!
//! These are the *serial* primitives: one `(scene, config)` run at a time,
//! in call order. Production sweeps (the `crates/bench` harnesses and
//! `examples/config_sweep.rs`) go through the `sms-harness` crate instead,
//! which layers deduplication, a worker pool and an on-disk result cache on
//! top of [`run_prepared`] — the simulator is deterministic, so both paths
//! produce identical `SimStats` (asserted by
//! `crates/harness/tests/parallel_vs_serial.rs`, which uses [`run_suite`]
//! as its reference). See `DESIGN.md` for the experiment index.

use crate::config::{RenderConfig, SimConfig};
use crate::metrics::{MetricsReport, MetricsSpec};
use crate::render::PreparedScene;
use crate::report::geomean;
use crate::sim::{GpuSim, RunLimits, SimFault};
use crate::trace::TraceSpec;
use sms_gpu::{GpuConfig, SimStats, StallBreakdown};
use sms_rtunit::StackConfig;
use sms_scene::SceneId;

/// The outcome of one `(scene, configuration)` cycle-level run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The scene simulated.
    pub scene: SceneId,
    /// The stack architecture simulated.
    pub stack: StackConfig,
    /// All counters.
    pub stats: SimStats,
    /// Stall attribution (when [`RunLimits::breakdown`] or `SMS_TRACE` was
    /// armed for the run; `None` otherwise).
    pub breakdown: Option<StallBreakdown>,
    /// Metrics report (when [`RunLimits::metrics`] or `SMS_METRICS` was
    /// armed for the run; `None` otherwise).
    pub metrics: Option<Box<MetricsReport>>,
}

impl RunResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// This run's speedup over a baseline run of the same scene (the
    /// inverse cycle ratio: both runs trace the same rays).
    ///
    /// For the stack-architecture configurations traversal work is also
    /// identical instruction-for-instruction, making this exactly the
    /// normalized IPC of the paper's figures; the traversal-changing
    /// competitors (`SL`, `PRED_*`) revisit or probe extra nodes by
    /// design, so for them the instruction-equality check is skipped and
    /// this stays a per-ray-workload speedup (extra node visits are
    /// overhead, not useful work).
    pub fn normalized_ipc(&self, baseline: &RunResult) -> f64 {
        assert_eq!(self.scene, baseline.scene, "normalize within one scene");
        if self.stack.preserves_traversal_work() && baseline.stack.preserves_traversal_work() {
            debug_assert_eq!(
                self.stats.instructions(),
                baseline.stats.instructions(),
                "work must be configuration-independent"
            );
        }
        baseline.stats.cycles as f64 / self.stats.cycles as f64
    }
}

/// Runs one scene under one stack configuration on the Table I GPU.
pub fn run_scene(id: SceneId, stack: StackConfig, render: &RenderConfig) -> RunResult {
    run_scene_on(id, stack, GpuConfig::default(), render)
}

/// Runs one scene with an explicit GPU configuration (L1 sweeps etc.).
/// The stack's shared-memory carveout is applied on top of `gpu`.
pub fn run_scene_on(
    id: SceneId,
    stack: StackConfig,
    gpu: GpuConfig,
    render: &RenderConfig,
) -> RunResult {
    let prepared = PreparedScene::build(id, render);
    run_prepared(&prepared, stack, gpu, render)
}

/// Runs an already-prepared scene (reuse the BVH across configurations).
pub fn run_prepared(
    prepared: &PreparedScene,
    stack: StackConfig,
    gpu: GpuConfig,
    render: &RenderConfig,
) -> RunResult {
    try_run_prepared(prepared, stack, gpu, render, &RunLimits::none())
        .unwrap_or_else(|fault| panic!("{fault}"))
}

/// Fault-aware variant of [`run_prepared`]: runs with the given watchdog
/// limits and surfaces aborts as structured [`SimFault`]s instead of
/// panicking. With `RunLimits::none()` the statistics are bit-identical to
/// [`run_prepared`] — the watchdog only observes.
///
/// When `SMS_TRACE` is set, every run through this entry point also writes
/// a Chrome trace-event file; the configured path is suffixed with the
/// scene and stack-config labels (`<stem>.<SCENE>.<CONFIG>.json`) so sweep
/// jobs — possibly running in parallel — never clobber each other. The
/// metrics exports (`SMS_METRICS_OUT`, `SMS_METRICS_CSV`) get the same
/// per-job suffix, inserted before each path's own extension.
pub fn try_run_prepared(
    prepared: &PreparedScene,
    stack: StackConfig,
    gpu: GpuConfig,
    render: &RenderConfig,
    limits: &RunLimits,
) -> Result<RunResult, SimFault> {
    let config = SimConfig::new(gpu, stack, *render);
    let mspec = MetricsSpec::from_env();
    let mut sim =
        GpuSim::new(prepared, config).with_limits(*limits).with_metrics_period(mspec.period);
    if let Some(spec) = TraceSpec::from_env() {
        sim = sim.with_trace(spec.for_job(&format!("{}.{}", prepared.scene.id, stack.label())));
    }
    let run = sim.try_run()?;
    if let Some(m) = &run.metrics {
        let job = mspec.for_job(&format!("{}.{}", prepared.scene.id, stack.label()));
        let write =
            |path: &std::path::Path, text: String, var: &str| match std::fs::write(path, text) {
                Ok(()) => eprintln!("{var}: wrote {}", path.display()),
                Err(e) => eprintln!("warning: {var}: failed to write {}: {e}", path.display()),
            };
        if let Some(p) = &job.prom_out {
            let reg = m.registry(&prepared.scene.id.to_string(), &stack.label(), &run.stats);
            write(p, reg.render_prometheus(), "SMS_METRICS_OUT");
        }
        if let Some(p) = &job.csv_out {
            write(p, m.series.to_csv(), "SMS_METRICS_CSV");
        }
    }
    Ok(RunResult {
        scene: prepared.scene.id,
        stack,
        stats: run.stats,
        breakdown: run.breakdown,
        metrics: run.metrics,
    })
}

/// The scene list a harness should evaluate: all 16 by default, or the
/// comma-separated subset in `SMS_SCENES` (e.g. `SMS_SCENES=SHIP,BUNNY`).
pub fn scene_list() -> Vec<SceneId> {
    match std::env::var("SMS_SCENES") {
        Ok(s) if !s.trim().is_empty() => s
            .split(',')
            .map(|name| {
                name.trim().parse::<SceneId>().unwrap_or_else(|e| panic!("SMS_SCENES: {e}"))
            })
            .collect(),
        _ => SceneId::ALL.to_vec(),
    }
}

/// Runs every `(scene, config)` pair serially, reusing each scene's BVH.
/// Results are grouped per scene in the order given.
///
/// This is the reference implementation the parallel harness is checked
/// against; sweeps that want caching/parallelism should prefer
/// `sms_harness::Harness::run_suite`, which returns identical results.
pub fn run_suite(
    scenes: &[SceneId],
    configs: &[StackConfig],
    render: &RenderConfig,
) -> Vec<Vec<RunResult>> {
    scenes
        .iter()
        .map(|&id| {
            let prepared = PreparedScene::build(id, render);
            configs
                .iter()
                .map(|&stack| run_prepared(&prepared, stack, GpuConfig::default(), render))
                .collect()
        })
        .collect()
}

/// Geometric-mean normalized IPC of `runs` against `baselines`
/// (elementwise by scene).
pub fn gmean_normalized_ipc(runs: &[RunResult], baselines: &[RunResult]) -> f64 {
    assert_eq!(runs.len(), baselines.len());
    let ratios: Vec<f64> = runs.iter().zip(baselines).map(|(r, b)| r.normalized_ipc(b)).collect();
    geomean(&ratios)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_scene_produces_cycles_and_work() {
        let r = run_scene(SceneId::Ship, StackConfig::baseline8(), &RenderConfig::tiny());
        assert!(r.stats.cycles > 0);
        assert!(r.stats.node_visits > 0);
        assert!(r.stats.rays_traced >= 256);
        assert!(r.ipc() > 0.0);
    }

    #[test]
    fn normalized_ipc_is_inverse_cycle_ratio() {
        let render = RenderConfig::tiny();
        let prepared = PreparedScene::build(SceneId::Ship, &render);
        let base = run_prepared(&prepared, StackConfig::baseline8(), GpuConfig::default(), &render);
        let full = run_prepared(&prepared, StackConfig::FullOnChip, GpuConfig::default(), &render);
        let n = full.normalized_ipc(&base);
        let expected = base.stats.cycles as f64 / full.stats.cycles as f64;
        assert!((n - expected).abs() < 1e-12);
    }

    #[test]
    fn scene_list_env_parsing() {
        // Uses the default path (no env var set in tests).
        let all = scene_list();
        assert!(all.len() == 16 || !all.is_empty());
    }

    #[test]
    fn determinism_across_runs() {
        let render = RenderConfig::tiny();
        let a = run_scene(SceneId::Bunny, StackConfig::sms_default(), &render);
        let b = run_scene(SceneId::Bunny, StackConfig::sms_default(), &render);
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.stats.node_visits, b.stats.node_visits);
        assert_eq!(a.stats.mem, b.stats.mem);
    }
}
