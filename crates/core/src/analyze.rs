//! Functional stack-depth analysis (paper §III-A, Figs. 4 and 5).
//!
//! Depth statistics depend only on traversal order, not on timing, so they
//! are gathered with the fast functional renderer.

use crate::config::RenderConfig;
use crate::render::{render, PreparedScene};
use sms_metrics::Histogram;
use sms_scene::SceneId;

/// Per-scene stack-depth summary (one row of Fig. 4).
#[derive(Debug, Clone)]
pub struct SceneDepths {
    /// The scene.
    pub id: SceneId,
    /// Depth histogram recorded at every push/pop across all rays.
    pub recorder: Histogram,
}

impl SceneDepths {
    /// Measures one scene.
    pub fn measure(id: SceneId, config: &RenderConfig) -> Self {
        let prepared = PreparedScene::build(id, config);
        let out = render(&prepared, config);
        SceneDepths { id, recorder: out.depths }
    }
}

/// Measures every Table II scene and the all-workload aggregate
/// (Fig. 4 rows plus the Fig. 5 distribution).
pub fn measure_all(config: &RenderConfig, scenes: &[SceneId]) -> (Vec<SceneDepths>, Histogram) {
    let mut rows = Vec::with_capacity(scenes.len());
    let mut total = Histogram::new();
    for &id in scenes {
        let row = SceneDepths::measure(id, config);
        total.merge(&row.recorder);
        rows.push(row);
    }
    (rows, total)
}

/// The Fig. 5 depth buckets as fractions of all operations:
/// `[<=4, 5-8, 9-16, >16]`. Exact — these bounds all sit inside the
/// histogram's unit-width linear region.
pub fn depth_buckets(h: &Histogram) -> [f64; 4] {
    let n = h.count().max(1) as f64;
    [
        h.count_in_range(0, 4) as f64 / n,
        h.count_in_range(5, 8) as f64 / n,
        h.count_in_range(9, 16) as f64 / n,
        h.count_above(16) as f64 / n,
    ]
}

/// The fraction of operations recorded at exactly depth `d` (the Fig. 5
/// fine-grained x-axis; exact for `d` below the linear cutoff).
pub fn depth_fraction_at(h: &Histogram, d: u64) -> f64 {
    h.count_at(d) as f64 / h.count().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ship_depths_nontrivial() {
        let d = SceneDepths::measure(SceneId::Ship, &RenderConfig::tiny());
        assert!(d.recorder.count() > 100);
        assert!(d.recorder.max() >= 4, "max depth {}", d.recorder.max());
    }

    #[test]
    fn aggregate_merges() {
        let cfg = RenderConfig::tiny();
        let (rows, total) = measure_all(&cfg, &[SceneId::Ship, SceneId::Bunny]);
        assert_eq!(rows.len(), 2);
        assert_eq!(total.count(), rows[0].recorder.count() + rows[1].recorder.count());
    }
}
