//! Functional stack-depth analysis (paper §III-A, Figs. 4 and 5).
//!
//! Depth statistics depend only on traversal order, not on timing, so they
//! are gathered with the fast functional renderer.

use crate::config::RenderConfig;
use crate::render::{render, PreparedScene};
use sms_bvh::DepthRecorder;
use sms_scene::SceneId;

/// Per-scene stack-depth summary (one row of Fig. 4).
#[derive(Debug, Clone)]
pub struct SceneDepths {
    /// The scene.
    pub id: SceneId,
    /// Depth histogram recorded at every push/pop across all rays.
    pub recorder: DepthRecorder,
}

impl SceneDepths {
    /// Measures one scene.
    pub fn measure(id: SceneId, config: &RenderConfig) -> Self {
        let prepared = PreparedScene::build(id, config);
        let out = render(&prepared, config);
        SceneDepths { id, recorder: out.depths }
    }
}

/// Measures every Table II scene and the all-workload aggregate
/// (Fig. 4 rows plus the Fig. 5 distribution).
pub fn measure_all(config: &RenderConfig, scenes: &[SceneId]) -> (Vec<SceneDepths>, DepthRecorder) {
    let mut rows = Vec::with_capacity(scenes.len());
    let mut total = DepthRecorder::new();
    for &id in scenes {
        let row = SceneDepths::measure(id, config);
        total.merge(&row.recorder);
        rows.push(row);
    }
    (rows, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ship_depths_nontrivial() {
        let d = SceneDepths::measure(SceneId::Ship, &RenderConfig::tiny());
        assert!(d.recorder.ops() > 100);
        assert!(d.recorder.max_depth() >= 4, "max depth {}", d.recorder.max_depth());
    }

    #[test]
    fn aggregate_merges() {
        let cfg = RenderConfig::tiny();
        let (rows, total) = measure_all(&cfg, &[SceneId::Ship, SceneId::Bunny]);
        assert_eq!(rows.len(), 2);
        assert_eq!(total.ops(), rows[0].recorder.ops() + rows[1].recorder.ops());
    }
}
