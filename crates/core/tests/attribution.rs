//! Observation purity and conservation of the stall-attribution layer.
//!
//! The two properties `ISSUE`/`DESIGN.md §14` promise:
//!
//! * **purity** — arming attribution (or the trace export, which implies
//!   it) changes no [`SimStats`] counter: the run is bit-identical to an
//!   unattributed one;
//! * **conservation** — every resident warp-cycle and every RT-resident
//!   lane-cycle is charged to exactly one bucket (the simulator asserts
//!   this internally; here we re-check on the returned value and that the
//!   interesting buckets are actually populated).

use sms_sim::gpu::GpuConfig;
use sms_sim::render::PreparedScene;
use sms_sim::rtunit::StackConfig;
use sms_sim::scene::SceneId;
use sms_sim::sim::{GpuSim, RunLimits, SimRun};
use sms_sim::trace::TraceSpec;
use sms_sim::{RenderConfig, SimConfig};

fn run(prepared: &PreparedScene, stack: StackConfig, breakdown: bool) -> SimRun {
    let config = SimConfig::new(GpuConfig::default(), stack, RenderConfig::tiny());
    let limits = RunLimits { breakdown, ..RunLimits::none() };
    GpuSim::new(prepared, config).with_limits(limits).run()
}

#[test]
fn attribution_is_pure_observation() {
    let render = RenderConfig::tiny();
    let prepared = PreparedScene::build(SceneId::Ship, &render);
    for stack in [StackConfig::baseline8(), StackConfig::sms_default(), StackConfig::FullOnChip] {
        let off = run(&prepared, stack, false);
        let on = run(&prepared, stack, true);
        assert_eq!(off.stats, on.stats, "{}: attribution must not perturb stats", stack.label());
        assert!(off.breakdown.is_none());
        assert!(on.breakdown.is_some());
    }
}

#[test]
fn breakdown_is_conserved_and_populated() {
    let render = RenderConfig::tiny();
    let prepared = PreparedScene::build(SceneId::Ship, &render);
    let b = run(&prepared, StackConfig::sms_default(), true).breakdown.unwrap();
    assert!(b.is_conserved(), "{b:?}");
    assert_eq!(b.in_rt * 32, b.rt_lane_cycles, "{b:?}");
    // A path-traced scene exercises every warp-level phase...
    assert!(b.compute > 0 && b.in_rt > 0, "{b:?}");
    // ...and traversal keeps lanes busy on fetches and intersection ops.
    assert!(b.fetch_wait_total() > 0 && b.op_wait > 0, "{b:?}");
}

#[test]
fn tight_rb_stack_shows_stack_wait() {
    // Two RB entries force constant spill traffic to global memory; the
    // taxonomy must surface it as blocking stack waits.
    let render = RenderConfig::tiny();
    let prepared = PreparedScene::build(SceneId::Ship, &render);
    let b = run(&prepared, StackConfig::Baseline { rb_entries: 2 }, true).breakdown.unwrap();
    assert!(b.stack_wait_sh_global > 0, "{b:?}");
    assert!(b.is_conserved(), "{b:?}");
}

#[test]
fn trace_export_writes_wellformed_file_without_perturbing_stats() {
    let render = RenderConfig::tiny();
    let prepared = PreparedScene::build(SceneId::Ship, &render);
    let stack = StackConfig::sms_default();
    let off = run(&prepared, stack, false);

    let path = std::env::temp_dir().join("sms_attr_test_trace.json");
    let _ = std::fs::remove_file(&path);
    let config = SimConfig::new(GpuConfig::default(), stack, RenderConfig::tiny());
    let spec = TraceSpec { path: path.clone(), period: 64 };
    let traced = GpuSim::new(&prepared, config).with_trace(spec).run();

    assert_eq!(off.stats, traced.stats, "tracing must not perturb stats");
    let text = std::fs::read_to_string(&path).expect("trace file written");
    assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
    for key in
        ["\"traceEvents\"", "\"stallBreakdown\"", "\"ph\":\"X\"", "\"ph\":\"C\"", "\"ph\":\"M\""]
    {
        assert!(text.contains(key), "trace file missing {key}");
    }
    assert!(text.contains(&format!("\"cycles\":{}", traced.stats.cycles)));
    let _ = std::fs::remove_file(&path);
}
