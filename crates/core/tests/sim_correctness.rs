//! End-to-end correctness: the cycle simulator must be functionally exact
//! (bit-identical images to the reference renderer) under every stack
//! configuration, and its relative performance must follow the paper.

use sms_rtunit::{SmsParams, StackConfig};
use sms_scene::SceneId;
use sms_sim::config::{RenderConfig, SimConfig};
use sms_sim::render::{render, PreparedScene};
use sms_sim::sim::run_to_image;

#[test]
fn sim_image_matches_functional_render_every_config() {
    let cfg = RenderConfig::tiny();
    let prepared = PreparedScene::build(SceneId::Ship, &cfg);
    let reference = render(&prepared, &cfg);

    for stack in [
        StackConfig::baseline8(),
        StackConfig::Baseline { rb_entries: 2 },
        StackConfig::FullOnChip,
        StackConfig::Sms(SmsParams::default()),
        StackConfig::sms_default(),
    ] {
        let sim = run_to_image(&prepared, &SimConfig::with_stack(stack, cfg));
        assert_eq!(sim.width, reference.width);
        assert_eq!(sim.image.len(), reference.image.len());
        for (i, (a, b)) in sim.image.iter().zip(&reference.image).enumerate() {
            assert!(
                (*a - *b).length() < 1e-6,
                "{stack}: pixel {i} differs: sim {a} vs reference {b}"
            );
        }
    }
}

#[test]
fn sim_image_matches_on_sphere_scene() {
    // WKND exercises the analytic-sphere primitive path end to end.
    let cfg = RenderConfig::tiny();
    let prepared = PreparedScene::build(SceneId::Wknd, &cfg);
    let reference = render(&prepared, &cfg);
    let sim = run_to_image(&prepared, &SimConfig::with_stack(StackConfig::sms_default(), cfg));
    for (a, b) in sim.image.iter().zip(&reference.image) {
        assert!((*a - *b).length() < 1e-6);
    }
}

#[test]
fn work_counters_are_stack_invariant() {
    let cfg = RenderConfig::tiny();
    let prepared = PreparedScene::build(SceneId::Party, &cfg);
    let mut reference: Option<(u64, u64, u64)> = None;
    for stack in [StackConfig::baseline8(), StackConfig::sms_default(), StackConfig::FullOnChip] {
        let run = sms_sim::GpuSim::new(&prepared, SimConfig::with_stack(stack, cfg)).run();
        let key = (run.stats.node_visits, run.stats.rays_traced, run.stats.thread_instructions);
        match &reference {
            None => reference = Some(key),
            Some(r) => assert_eq!(*r, key, "{stack} changed traversal/compute work"),
        }
    }
}

#[test]
fn paper_ordering_holds_on_party() {
    // PARTY is a deep-stack scene; the headline ordering must hold:
    // RB_FULL >= SMS > baseline RB_8 in IPC (i.e. reversed in cycles).
    let cfg = RenderConfig::tiny();
    let prepared = PreparedScene::build(SceneId::Party, &cfg);
    let cycles = |stack| {
        sms_sim::GpuSim::new(&prepared, SimConfig::with_stack(stack, cfg)).run().stats.cycles
    };
    let base = cycles(StackConfig::baseline8());
    let sms = cycles(StackConfig::sms_default());
    let full = cycles(StackConfig::FullOnChip);
    assert!(sms < base, "SMS must beat the baseline (sms {sms} vs base {base})");
    assert!(full <= sms, "full on-chip stack is the bound (full {full} vs sms {sms})");
}

#[test]
fn depth_recording_in_sim_matches_functional() {
    // The depths recorded by the cycle model equal the functional ones:
    // the same pushes/pops happen at the same logical depths.
    let cfg = RenderConfig::tiny();
    let prepared = PreparedScene::build(SceneId::Bunny, &cfg);
    let functional = render(&prepared, &cfg).depths;
    let sim = sms_sim::GpuSim::new(&prepared, SimConfig::with_stack(StackConfig::FullOnChip, cfg))
        .record_depths(true)
        .run();
    assert_eq!(sim.depths.count(), functional.count());
    assert_eq!(sim.depths.max(), functional.max());
    assert_eq!(sim.depths, functional);
}

#[test]
fn thread_traces_recorded_for_fig10() {
    let cfg = RenderConfig::tiny();
    let prepared = PreparedScene::build(SceneId::Ship, &cfg);
    let sim = sms_sim::GpuSim::new(&prepared, SimConfig::with_stack(StackConfig::baseline8(), cfg))
        .trace_warps(2)
        .run();
    assert!(!sim.thread_traces.is_empty());
    assert!(sim.thread_traces.iter().all(|(w, lane, _, _)| *w < 2 && (*lane as usize) < 32));
    // Access indices are per-lane monotone starting at 0.
    let lane0: Vec<u32> = sim
        .thread_traces
        .iter()
        .filter(|(w, l, _, _)| *w == 0 && *l == 0)
        .map(|(_, _, i, _)| *i)
        .collect();
    assert!(!lane0.is_empty());
    assert_eq!(lane0[0], 0);
    assert!(lane0.windows(2).all(|p| p[1] == p[0] + 1));
}
