//! Observation purity and ledger consistency of the metrics layer.
//!
//! The properties `DESIGN.md §15` promises:
//!
//! * **purity** — arming `RunLimits::metrics` changes no [`SimStats`]
//!   counter and no image pixel: the run is bit-identical to an
//!   uninstrumented one;
//! * **ledger consistency** — the per-ray spill/reload histograms total
//!   exactly the side counters the simulator already keeps
//!   (`rb_spills`/`rb_reloads` for the baseline, `sh_spills`/`sh_reloads`
//!   for SMS), and every traced ray lands in the latency histogram;
//! * **series integrity** — with a 1-cycle sampling period the sampled
//!   rt-busy series integrates to exactly the attribution layer's `in_rt`
//!   warp-cycle count: two independent observers, one truth.

use sms_sim::gpu::GpuConfig;
use sms_sim::render::PreparedScene;
use sms_sim::rtunit::{SmsParams, StackConfig};
use sms_sim::scene::SceneId;
use sms_sim::sim::{GpuSim, RunLimits, SimRun};
use sms_sim::{RenderConfig, SimConfig};

fn run(prepared: &PreparedScene, stack: StackConfig, limits: RunLimits, period: u64) -> SimRun {
    let config = SimConfig::new(GpuConfig::default(), stack, RenderConfig::tiny());
    GpuSim::new(prepared, config).with_limits(limits).with_metrics_period(period).run()
}

fn tight_sms() -> StackConfig {
    // Two SH entries force constant spill traffic to the global stack.
    StackConfig::Sms(SmsParams {
        rb_entries: 2,
        sh_entries: 2,
        skewed: false,
        realloc: false,
        borrow_limit: 0,
        flush_limit: 0,
    })
}

#[test]
fn metrics_is_pure_observation() {
    let render = RenderConfig::tiny();
    let prepared = PreparedScene::build(SceneId::Ship, &render);
    let armed = RunLimits { metrics: true, ..RunLimits::none() };
    for stack in [StackConfig::baseline8(), StackConfig::sms_default(), StackConfig::FullOnChip] {
        let off = run(&prepared, stack, RunLimits::none(), 1024);
        let on = run(&prepared, stack, armed, 1024);
        assert_eq!(off.stats, on.stats, "{}: metrics must not perturb stats", stack.label());
        assert_eq!(off.image, on.image, "{}: metrics must not perturb the image", stack.label());
        assert!(off.metrics.is_none());
        assert!(on.metrics.is_some());
    }
}

#[test]
fn spill_reload_histograms_match_side_counters() {
    let render = RenderConfig::tiny();
    let prepared = PreparedScene::build(SceneId::Ship, &render);
    let armed = RunLimits { metrics: true, ..RunLimits::none() };

    // Baseline: overflow spills come out of the register-backed stack.
    let base = run(&prepared, StackConfig::Baseline { rb_entries: 2 }, armed, 1024);
    let m = base.metrics.as_ref().unwrap();
    assert!(base.stats.rb_spills > 0, "2-entry RB must spill");
    assert_eq!(m.stacks.ray_spills.sum(), base.stats.rb_spills as u128);
    assert_eq!(m.stacks.ray_reloads.sum(), base.stats.rb_reloads as u128);

    // SMS: overflow spills come out of the shared-memory stack.
    for stack in [StackConfig::sms_default(), tight_sms()] {
        let sms = run(&prepared, stack, armed, 1024);
        let m = sms.metrics.as_ref().unwrap();
        assert_eq!(m.stacks.ray_spills.sum(), sms.stats.sh_spills as u128, "{}", stack.label());
        assert_eq!(m.stacks.ray_reloads.sum(), sms.stats.sh_reloads as u128, "{}", stack.label());
    }
    let tight = run(&prepared, tight_sms(), armed, 1024);
    assert!(tight.stats.sh_spills > 0, "2-entry SH must spill");
}

#[test]
fn every_ray_lands_in_the_latency_histogram() {
    let render = RenderConfig::tiny();
    let prepared = PreparedScene::build(SceneId::Ship, &render);
    let armed = RunLimits { metrics: true, ..RunLimits::none() };
    for stack in [StackConfig::baseline8(), StackConfig::sms_default()] {
        let out = run(&prepared, stack, armed, 1024);
        let m = out.metrics.as_ref().unwrap();
        assert_eq!(
            m.stacks.ray_latency.count(),
            out.stats.rays_traced + out.stats.shadow_rays,
            "{}: one latency observation per traced ray",
            stack.label()
        );
        assert!(m.stacks.depth_at_push.count() > 0);
    }
}

#[test]
fn rt_busy_series_integrates_to_attribution_in_rt() {
    // Sampling every cycle makes the step-function integral exact: it must
    // reproduce the attribution layer's `in_rt` warp-cycle count, though
    // the two observers share no code path.
    let render = RenderConfig::tiny();
    let prepared = PreparedScene::build(SceneId::Wknd, &render);
    let armed = RunLimits { metrics: true, breakdown: true, ..RunLimits::none() };
    let out = run(&prepared, StackConfig::sms_default(), armed, 1);
    let m = out.metrics.as_ref().unwrap();
    let b = out.breakdown.as_ref().unwrap();
    let integral = m.series.integrate("rt_busy", out.stats.cycles).unwrap();
    assert_eq!(integral as u64, b.in_rt, "rt-busy integral vs in_rt warp-cycles");
    assert!(b.in_rt > 0);
}

#[test]
fn sampled_series_has_schema_columns_and_sane_rates() {
    let render = RenderConfig::tiny();
    let prepared = PreparedScene::build(SceneId::Ship, &render);
    let armed = RunLimits { metrics: true, ..RunLimits::none() };
    let out = run(&prepared, StackConfig::sms_default(), armed, 256);
    let m = out.metrics.as_ref().unwrap();
    assert_eq!(m.period, 256);
    let columns: Vec<&str> = m.series.columns().iter().map(String::as_str).collect();
    assert_eq!(columns, sms_sim::metrics::SERIES_COLUMNS);
    assert!(!m.series.is_empty(), "a multi-thousand-cycle run must sample");
    for idx in 0..m.series.len() {
        for rate in ["l1_hit_rate", "l2_hit_rate"] {
            let v = m.series.value(idx, rate).unwrap();
            assert!((0.0..=1.0).contains(&v), "{rate}[{idx}] = {v}");
        }
        assert!(m.series.value(idx, "ipc").unwrap() >= 0.0);
    }
}
