//! Export schema stability: the Prometheus and CSV renderings are the
//! interface external tooling scrapes, so their exact shape is pinned the
//! same way `crates/harness/tests/journal_schema.rs` pins the journal.
//!
//! The golden strings below ARE the schema. If a change is intentional,
//! it is a schema migration: update the metric rows in `EXPERIMENTS.md`
//! and re-check any dashboards scraping the dumps.

use sms_sim::gpu::SimStats;
use sms_sim::metrics::{MetricsReport, SampleCounts, SeriesSampler};

/// A tiny, fully-determined report: every histogram populated, clean
/// rates, so the rendering exercises each metric type.
fn sample_report() -> MetricsReport {
    let mut report = MetricsReport { period: 100, ..MetricsReport::default() };
    report.stacks.depth_at_push.record_n(2, 3);
    report.stacks.depth_at_push.record(5);
    report.stacks.sh_occupancy.record_n(1, 4);
    report.stacks.borrow_chain.record_n(0, 4);
    report.stacks.flush_runs.record(2);
    report.stacks.ray_latency.record(900);
    report.stacks.ray_spills.record_n(0, 1);
    report.stacks.ray_reloads.record_n(0, 1);
    let mut sampler = SeriesSampler::new(100);
    sampler.sample(0, SampleCounts::default());
    sampler.sample(
        100,
        SampleCounts {
            resident_warps: 8,
            rt_busy: 3,
            mem_queue: 2,
            instructions: 150,
            l1_hits: 30,
            l1_misses: 10,
            l2_hits: 5,
            l2_misses: 5,
        },
    );
    report.series = sampler.into_series();
    report
}

fn sample_stats() -> SimStats {
    SimStats {
        cycles: 1000,
        thread_instructions: 1500,
        node_visits: 50,
        rays_traced: 4,
        shadow_rays: 1,
        sh_spills: 2,
        sh_reloads: 2,
        ra_flushes: 1,
        ra_borrows: 3,
        ..SimStats::default()
    }
}

const GOLDEN_PROM: &str = r#"# HELP sms_cycles_total Simulated cycles
# TYPE sms_cycles_total counter
sms_cycles_total{scene="SHIP",config="RB_8+SH_8"} 1000
# HELP sms_instructions_total Committed instructions (compute + traversal)
# TYPE sms_instructions_total counter
sms_instructions_total{scene="SHIP",config="RB_8+SH_8"} 1550
# HELP sms_rays_traced_total Nearest-hit rays traced
# TYPE sms_rays_traced_total counter
sms_rays_traced_total{scene="SHIP",config="RB_8+SH_8"} 4
# HELP sms_shadow_rays_total Occlusion rays traced
# TYPE sms_shadow_rays_total counter
sms_shadow_rays_total{scene="SHIP",config="RB_8+SH_8"} 1
# HELP sms_node_visits_total BVH node visits
# TYPE sms_node_visits_total counter
sms_node_visits_total{scene="SHIP",config="RB_8+SH_8"} 50
# HELP sms_stack_spills_total Traversal-stack entries spilled to global memory
# TYPE sms_stack_spills_total counter
sms_stack_spills_total{scene="SHIP",config="RB_8+SH_8"} 2
# HELP sms_stack_reloads_total Traversal-stack entries reloaded from global memory
# TYPE sms_stack_reloads_total counter
sms_stack_reloads_total{scene="SHIP",config="RB_8+SH_8"} 2
# HELP sms_ra_flushes_total Reallocation whole-stack flushes
# TYPE sms_ra_flushes_total counter
sms_ra_flushes_total{scene="SHIP",config="RB_8+SH_8"} 1
# HELP sms_ra_borrows_total Reallocation SH-stack borrows
# TYPE sms_ra_borrows_total counter
sms_ra_borrows_total{scene="SHIP",config="RB_8+SH_8"} 3
# HELP sms_ipc Instructions per cycle
# TYPE sms_ipc gauge
sms_ipc{scene="SHIP",config="RB_8+SH_8"} 1.55
# HELP sms_stack_depth Logical stack depth after every push
# TYPE sms_stack_depth histogram
sms_stack_depth_bucket{scene="SHIP",config="RB_8+SH_8",le="2"} 3
sms_stack_depth_bucket{scene="SHIP",config="RB_8+SH_8",le="5"} 4
sms_stack_depth_bucket{scene="SHIP",config="RB_8+SH_8",le="+Inf"} 4
sms_stack_depth_sum{scene="SHIP",config="RB_8+SH_8"} 11
sms_stack_depth_count{scene="SHIP",config="RB_8+SH_8"} 4
# HELP sms_sh_occupancy SH-level entries of the pushing lane, after every push
# TYPE sms_sh_occupancy histogram
sms_sh_occupancy_bucket{scene="SHIP",config="RB_8+SH_8",le="1"} 4
sms_sh_occupancy_bucket{scene="SHIP",config="RB_8+SH_8",le="+Inf"} 4
sms_sh_occupancy_sum{scene="SHIP",config="RB_8+SH_8"} 4
sms_sh_occupancy_count{scene="SHIP",config="RB_8+SH_8"} 4
# HELP sms_borrow_chain SH stacks linked into the pushing lane's chain
# TYPE sms_borrow_chain histogram
sms_borrow_chain_bucket{scene="SHIP",config="RB_8+SH_8",le="0"} 4
sms_borrow_chain_bucket{scene="SHIP",config="RB_8+SH_8",le="+Inf"} 4
sms_borrow_chain_sum{scene="SHIP",config="RB_8+SH_8"} 0
sms_borrow_chain_count{scene="SHIP",config="RB_8+SH_8"} 4
# HELP sms_flush_run Consecutive-flush counter of reallocation-flushed segments
# TYPE sms_flush_run histogram
sms_flush_run_bucket{scene="SHIP",config="RB_8+SH_8",le="2"} 1
sms_flush_run_bucket{scene="SHIP",config="RB_8+SH_8",le="+Inf"} 1
sms_flush_run_sum{scene="SHIP",config="RB_8+SH_8"} 2
sms_flush_run_count{scene="SHIP",config="RB_8+SH_8"} 1
# HELP sms_ray_latency_cycles Per-ray traversal latency (admission to lane completion)
# TYPE sms_ray_latency_cycles histogram
sms_ray_latency_cycles_bucket{scene="SHIP",config="RB_8+SH_8",le="959"} 1
sms_ray_latency_cycles_bucket{scene="SHIP",config="RB_8+SH_8",le="+Inf"} 1
sms_ray_latency_cycles_sum{scene="SHIP",config="RB_8+SH_8"} 900
sms_ray_latency_cycles_count{scene="SHIP",config="RB_8+SH_8"} 1
# HELP sms_ray_spills Per-ray entries spilled to global memory
# TYPE sms_ray_spills histogram
sms_ray_spills_bucket{scene="SHIP",config="RB_8+SH_8",le="0"} 1
sms_ray_spills_bucket{scene="SHIP",config="RB_8+SH_8",le="+Inf"} 1
sms_ray_spills_sum{scene="SHIP",config="RB_8+SH_8"} 0
sms_ray_spills_count{scene="SHIP",config="RB_8+SH_8"} 1
# HELP sms_ray_reloads Per-ray entries reloaded from global memory
# TYPE sms_ray_reloads histogram
sms_ray_reloads_bucket{scene="SHIP",config="RB_8+SH_8",le="0"} 1
sms_ray_reloads_bucket{scene="SHIP",config="RB_8+SH_8",le="+Inf"} 1
sms_ray_reloads_sum{scene="SHIP",config="RB_8+SH_8"} 0
sms_ray_reloads_count{scene="SHIP",config="RB_8+SH_8"} 1
"#;

const GOLDEN_CSV: &str = r#"cycle,resident_warps,rt_busy,mem_queue,l1_hit_rate,l2_hit_rate,ipc
0,0,0,0,0,0,0
100,8,3,2,0.75,0.5,1.5
"#;

#[test]
fn prometheus_dump_matches_golden() {
    let text = sample_report().registry("SHIP", "RB_8+SH_8", &sample_stats()).render_prometheus();
    if text != GOLDEN_PROM {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/metrics_schema_actual.prom");
        let _ = std::fs::write(path, &text);
        panic!("prometheus schema drift — actual dump written to {path}");
    }
    // The golden dump parses under the strict validator, like every
    // production dump must.
    let samples = sms_metrics::prom::validate(GOLDEN_PROM).expect("golden must parse strictly");
    assert!(samples > 0);
}

#[test]
fn series_csv_matches_golden() {
    let csv = sample_report().series.to_csv();
    if csv != GOLDEN_CSV {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/metrics_schema_actual.csv");
        let _ = std::fs::write(path, &csv);
        panic!("csv schema drift — actual dump written to {path}");
    }
    sms_metrics::series::validate_csv(GOLDEN_CSV).expect("golden must validate");
}

#[test]
fn summary_line_is_stable() {
    assert_eq!(
        sample_report().summary_line(),
        "stack depth p50/p95/p99 2/5/5 max 5 over 4 pushes; \
         ray latency p50/p95 900/900 cycles over 1 rays; 2 samples"
    );
}
