//! Stackless-traversal golden regression: the escape-index path visits
//! nodes in a fixed pre-order (no nearest-first reordering, no stack), yet
//! it must report the same nearest-hit distance bit-for-bit and the same
//! occlusion answer as the stacked drivers — against both the `WideBvh`
//! and its `FlatBvh` flattening — for every camera ray of every Table 2
//! scene. The visit counter also proves the overhead is real: stackless
//! touches at least as many nodes as it has to, and the escape links
//! terminate every walk (no cycles).

use sms_sim::config::RenderConfig;
use sms_sim::driver::PathState;
use sms_sim::render::PreparedScene;
use sms_sim::scene::SceneId;

#[test]
fn stackless_hits_match_stacked_on_every_scene() {
    let render = RenderConfig::tiny();
    for id in SceneId::ALL {
        let prepared = PreparedScene::build(id, &render);
        let prims = prepared.prims();
        let (w, h, _) = render.workload(id);
        let mut rays = 0u32;
        let mut stackless_visits = 0u64;
        for py in 0..h {
            for px in 0..w {
                let ray = PathState::new(px, py, 0, render.seed).primary_ray(&prepared.scene);
                let wide = sms_bvh::intersect_nearest(
                    &prepared.bvh,
                    prims,
                    &ray,
                    0.0,
                    f32::INFINITY,
                    &mut (),
                )
                .map(|hit| hit.t.to_bits());
                let flat = prepared.trace(&ray).map(|hit| hit.t.to_bits());
                assert_eq!(wide, flat, "wide vs flat diverged on {id:?} pixel ({px},{py})");
                let mut visits = 0u64;
                let sl = sms_bvh::intersect_nearest_stackless(
                    &prepared.flat,
                    prims,
                    &ray,
                    0.0,
                    f32::INFINITY,
                    Some(&mut visits),
                )
                .map(|hit| hit.t.to_bits());
                assert_eq!(flat, sl, "stackless nearest diverged on {id:?} pixel ({px},{py})");
                assert!(visits >= 1, "stackless walk must at least visit the root");
                stackless_visits += visits;

                let t = flat.map(f32::from_bits).unwrap_or(1.0e4);
                let occluded = prepared.occluded(&ray, 1.0e-3, t * 0.999);
                let sl_occluded = sms_bvh::intersect_any_stackless(
                    &prepared.flat,
                    prims,
                    &ray,
                    1.0e-3,
                    t * 0.999,
                    None,
                );
                assert_eq!(
                    occluded, sl_occluded,
                    "stackless any-hit diverged on {id:?} pixel ({px},{py})"
                );
                rays += 1;
            }
        }
        assert!(rays > 0, "workload for {id:?} produced no rays");
        assert!(stackless_visits >= rays as u64, "{id:?}: fewer visits than rays");
    }
}
