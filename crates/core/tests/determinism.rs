//! Determinism and multi-sample correctness of the cycle simulator.

use sms_sim::config::{RenderConfig, SimConfig};
use sms_sim::render::{render, PreparedScene};
use sms_sim::rtunit::StackConfig;
use sms_sim::scene::SceneId;
use sms_sim::sim::run_to_image;

#[test]
fn custom_workload_with_multiple_samples_matches_reference() {
    // spp = 2 exercises the framebuffer sample-normalization path.
    let cfg = RenderConfig::custom(12, 12, 2);
    let prepared = PreparedScene::build(SceneId::Bunny, &cfg);
    let reference = render(&prepared, &cfg);
    let sim = run_to_image(&prepared, &SimConfig::with_stack(StackConfig::sms_default(), cfg));
    assert_eq!(sim.width, 12);
    for (i, (a, b)) in sim.image.iter().zip(&reference.image).enumerate() {
        assert!((*a - *b).length() < 1e-5, "pixel {i}: {a} vs {b}");
    }
}

#[test]
fn identical_configs_identical_cycles() {
    let cfg = RenderConfig::tiny();
    let prepared = PreparedScene::build(SceneId::Crnvl, &cfg);
    let sim_cfg = SimConfig::with_stack(StackConfig::sms_default(), cfg);
    let a = sms_sim::GpuSim::new(&prepared, sim_cfg).run();
    let b = sms_sim::GpuSim::new(&prepared, sim_cfg).run();
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.mem, b.stats.mem);
    assert_eq!(a.image, b.image);
}

#[test]
fn different_seeds_change_work_but_not_determinism() {
    let mut cfg_a = RenderConfig::tiny();
    cfg_a.seed = 1;
    let mut cfg_b = RenderConfig::tiny();
    cfg_b.seed = 2;
    let pa = PreparedScene::build(SceneId::Ship, &cfg_a);
    let ra = render(&pa, &cfg_a);
    let rb = render(&pa, &cfg_b);
    // Bounce directions differ; primary ray jitter comes from the camera's
    // own stream, so ray counts can match but radiance must differ.
    assert_ne!(ra.image, rb.image);
}
