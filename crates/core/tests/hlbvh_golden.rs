//! HLBVH golden regression: the parallel Morton-order builder produces a
//! *different* tree than binned SAH, but it must be a *correct* tree —
//! every camera ray reports the same nearest-hit distance and the same
//! occlusion answer on every Table 2 scene. And because the build fans
//! out deterministically, the worker count must never change a byte of
//! the flattened layout.

use sms_bvh::BuildParams;
use sms_sim::config::RenderConfig;
use sms_sim::driver::PathState;
use sms_sim::render::PreparedScene;
use sms_sim::scene::SceneId;

/// Nearest-hit distances and any-hit answers agree bit-for-bit between the
/// HLBVH tree and the binned-SAH reference tree over all camera primary
/// rays of every scene.
#[test]
fn hlbvh_hits_match_binned_sah_on_every_scene() {
    let render = RenderConfig::tiny();
    let sah = BuildParams { split: sms_bvh::SplitMethod::BinnedSah, ..BuildParams::default() };
    for id in SceneId::ALL {
        let reference = PreparedScene::build_with(id, &render, &sah);
        let hlbvh = PreparedScene::build_with(id, &render, &BuildParams::hlbvh(1));
        let (w, h, _) = render.workload(id);
        let mut rays = 0u32;
        for py in 0..h {
            for px in 0..w {
                let ray = PathState::new(px, py, 0, render.seed).primary_ray(&reference.scene);
                let want = reference.trace(&ray).map(|hit| hit.t.to_bits());
                let got = hlbvh.trace(&ray).map(|hit| hit.t.to_bits());
                assert_eq!(want, got, "nearest-hit diverged on {id:?} pixel ({px},{py})");
                let t = want.map(f32::from_bits).unwrap_or(1.0e4);
                assert_eq!(
                    reference.occluded(&ray, 1.0e-3, t * 0.999),
                    hlbvh.occluded(&ray, 1.0e-3, t * 0.999),
                    "any-hit diverged on {id:?} pixel ({px},{py})"
                );
                rays += 1;
            }
        }
        assert!(rays > 0, "workload for {id:?} produced no rays");
    }
}

/// The worker count is a pure wall-clock knob: 1-worker and 8-worker HLBVH
/// builds flatten to byte-identical layouts on every scene.
#[test]
fn hlbvh_flat_layout_is_identical_across_worker_counts() {
    let render = RenderConfig::tiny();
    for id in SceneId::ALL {
        let one = PreparedScene::build_with(id, &render, &BuildParams::hlbvh(1));
        for workers in [2, 8] {
            let many = PreparedScene::build_with(id, &render, &BuildParams::hlbvh(workers));
            assert_eq!(one.flat, many.flat, "{id:?} flat layout changed at {workers} workers");
            assert_eq!(
                one.flat.host_bytes(),
                many.flat.host_bytes(),
                "{id:?} footprint changed at {workers} workers"
            );
        }
    }
}
