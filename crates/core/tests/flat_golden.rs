//! Golden-stats regression: the flattened BVH layout and the reusable
//! traversal scratch are host-side optimizations only — every simulated
//! statistic and every rendered pixel must be bit-identical to the
//! original wide-node traversal path.

use sms_sim::config::{RenderConfig, SimConfig};
use sms_sim::render::PreparedScene;
use sms_sim::rtunit::StackConfig;
use sms_sim::scene::SceneId;
use sms_sim::sim::GpuSim;

/// Every Table 2 scene, both stack architectures: wide and flat traversal
/// must agree on all `SimStats` counters and the image, bit for bit.
#[test]
fn flat_bvh_is_bit_identical_to_wide() {
    let render = RenderConfig::tiny();
    for id in SceneId::ALL {
        let prepared = PreparedScene::build(id, &render);
        for stack in [StackConfig::baseline8(), StackConfig::sms_default()] {
            let config = SimConfig::with_stack(stack, render);
            let wide = GpuSim::new(&prepared, config).use_flat(false).run();
            let flat = GpuSim::new(&prepared, config).use_flat(true).run();
            assert_eq!(
                wide.stats,
                flat.stats,
                "SimStats diverged on {id:?} with {}",
                stack.label()
            );
            assert_eq!(wide.image, flat.image, "image diverged on {id:?}");
        }
    }
}

/// The functional renderer (which now traverses the flat layout) stays in
/// agreement with the simulator's per-ray results.
#[test]
fn functional_render_matches_simulator_through_flat_layout() {
    let render = RenderConfig::tiny();
    let prepared = PreparedScene::build(SceneId::Ship, &render);
    let config = SimConfig::with_stack(StackConfig::sms_default(), render);
    let sim = sms_sim::sim::run_to_image(&prepared, &config);
    let func = sms_sim::render::render(&prepared, &render);
    assert_eq!(sim.image, func.image);
}
