//! A minimal 3-component `f32` vector.

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-component single-precision vector used for points, directions and
/// RGB radiance.
///
/// # Example
///
/// ```
/// use sms_geom::Vec3;
/// let a = Vec3::new(1.0, 2.0, 3.0);
/// let b = Vec3::splat(2.0);
/// assert_eq!(a + b, Vec3::new(3.0, 4.0, 5.0));
/// assert_eq!(a.dot(b), 12.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 { x: 1.0, y: 1.0, z: 1.0 };

    /// Creates a vector from its three components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components set to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (cheaper than [`Vec3::length`]).
    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Returns the vector scaled to unit length.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the vector has (near-)zero length.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        debug_assert!(len > 1e-20, "normalizing near-zero vector {self:?}");
        self / len
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Component-wise reciprocal. Components equal to zero map to `inf`.
    #[inline]
    pub fn recip(self) -> Vec3 {
        Vec3::new(1.0 / self.x, 1.0 / self.y, 1.0 / self.z)
    }

    /// The largest component value.
    #[inline]
    pub fn max_component(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// The smallest component value.
    #[inline]
    pub fn min_component(self) -> f32 {
        self.x.min(self.y).min(self.z)
    }

    /// Index (0, 1 or 2) of the component with the largest value.
    #[inline]
    pub fn max_axis(self) -> usize {
        if self.x >= self.y && self.x >= self.z {
            0
        } else if self.y >= self.z {
            1
        } else {
            2
        }
    }

    /// Linear interpolation between `self` (at `t = 0`) and `rhs` (at `t = 1`).
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f32) -> Vec3 {
        self * (1.0 - t) + rhs * t
    }

    /// Component-wise multiplication (Hadamard product).
    #[inline]
    pub fn mul_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Reflects `self` around the unit normal `n`.
    #[inline]
    pub fn reflect(self, n: Vec3) -> Vec3 {
        self - n * (2.0 * self.dot(n))
    }

    /// `true` when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;

    /// Accesses a component by axis index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 2`.
    #[inline]
    fn index(&self, index: usize) -> &f32 {
        match index {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {index} out of range"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f32> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f32) {
        *self = *self * rhs;
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f32> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f32) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl From<[f32; 3]> for Vec3 {
    #[inline]
    fn from(a: [f32; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f32; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(a + Vec3::ZERO, a);
        assert_eq!(a - a, Vec3::ZERO);
        assert_eq!(a * 1.0, a);
        assert_eq!(a / 1.0, a);
        assert_eq!(-(-a), a);
        assert_eq!(2.0 * a, a * 2.0);
    }

    #[test]
    fn dot_and_cross_orthogonality() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = x.cross(y);
        assert_eq!(z, Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(z.dot(x), 0.0);
        assert_eq!(z.dot(y), 0.0);
    }

    #[test]
    fn length_and_normalize() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.length_squared(), 25.0);
        let n = v.normalized();
        assert!((n.length() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn min_max_and_axes() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 6.0));
        assert_eq!(a.max_axis(), 1);
        assert_eq!(b.max_axis(), 2);
        assert_eq!(Vec3::splat(1.0).max_axis(), 0);
        assert_eq!(a.max_component(), 5.0);
        assert_eq!(a.min_component(), 1.0);
    }

    #[test]
    fn indexing_matches_fields() {
        let a = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(a[0], a.x);
        assert_eq!(a[1], a.y);
        assert_eq!(a[2], a.z);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn indexing_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::ZERO;
        let b = Vec3::ONE;
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::splat(0.5));
    }

    #[test]
    fn reflect_mirrors_direction() {
        let v = Vec3::new(1.0, -1.0, 0.0);
        let n = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(v.reflect(n), Vec3::new(1.0, 1.0, 0.0));
    }

    #[test]
    fn conversion_round_trip() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let a: [f32; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", Vec3::ZERO), "(0, 0, 0)");
    }
}
