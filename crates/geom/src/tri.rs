//! Triangle primitive and the Möller–Trumbore intersection kernel.

use crate::{Aabb, Ray, Vec3};

/// Result of a successful ray/triangle intersection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriHit {
    /// Ray parameter at the hit point.
    pub t: f32,
    /// First barycentric coordinate.
    pub u: f32,
    /// Second barycentric coordinate.
    pub v: f32,
}

/// A triangle, the basic scene primitive (the paper's scenes contain up to
/// 20.6M of these; our procedural stand-ins scale that down).
///
/// # Example
///
/// ```
/// use sms_geom::{Ray, Triangle, Vec3};
/// let t = Triangle::new(
///     Vec3::new(-1.0, -1.0, 0.0),
///     Vec3::new(1.0, -1.0, 0.0),
///     Vec3::new(0.0, 1.0, 0.0),
/// );
/// let r = Ray::new(Vec3::new(0.0, 0.0, -2.0), Vec3::new(0.0, 0.0, 1.0));
/// assert!(t.intersect(&r, 0.0, f32::INFINITY).is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// First vertex.
    pub v0: Vec3,
    /// Second vertex.
    pub v1: Vec3,
    /// Third vertex.
    pub v2: Vec3,
}

impl Triangle {
    /// Creates a triangle from its vertices.
    #[inline]
    pub const fn new(v0: Vec3, v1: Vec3, v2: Vec3) -> Self {
        Triangle { v0, v1, v2 }
    }

    /// The (unnormalized-safe) geometric normal; zero for degenerate
    /// triangles.
    #[inline]
    pub fn normal(&self) -> Vec3 {
        let n = (self.v1 - self.v0).cross(self.v2 - self.v0);
        if n.length_squared() > 1e-20 {
            n.normalized()
        } else {
            Vec3::ZERO
        }
    }

    /// Triangle area.
    #[inline]
    pub fn area(&self) -> f32 {
        (self.v1 - self.v0).cross(self.v2 - self.v0).length() * 0.5
    }

    /// Centroid (used by the SAH builder for binning).
    #[inline]
    pub fn centroid(&self) -> Vec3 {
        (self.v0 + self.v1 + self.v2) / 3.0
    }

    /// Tight bounding box.
    #[inline]
    pub fn aabb(&self) -> Aabb {
        let mut b = Aabb::from_point(self.v0);
        b.grow_point(self.v1);
        b.grow_point(self.v2);
        b
    }

    /// Möller–Trumbore ray/triangle test over the segment `[t_min, t_max]`.
    ///
    /// Back-face hits are reported (the path tracer treats surfaces as
    /// two-sided, matching the Lumibench PT shader behaviour).
    #[inline]
    pub fn intersect(&self, ray: &Ray, t_min: f32, t_max: f32) -> Option<TriHit> {
        let e1 = self.v1 - self.v0;
        let e2 = self.v2 - self.v0;
        let p = ray.dir.cross(e2);
        let det = e1.dot(p);
        if det.abs() < 1e-12 {
            return None; // Ray parallel to triangle plane.
        }
        let inv_det = 1.0 / det;
        let s = ray.origin - self.v0;
        let u = s.dot(p) * inv_det;
        if !(0.0..=1.0).contains(&u) {
            return None;
        }
        let q = s.cross(e1);
        let v = ray.dir.dot(q) * inv_det;
        if v < 0.0 || u + v > 1.0 {
            return None;
        }
        let t = e2.dot(q) * inv_det;
        if t >= t_min && t <= t_max {
            Some(TriHit { t, u, v })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xy_tri() -> Triangle {
        Triangle::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0))
    }

    #[test]
    fn frontal_hit_has_correct_t_and_barycentrics() {
        let t = xy_tri();
        let r = Ray::new(Vec3::new(0.25, 0.25, -3.0), Vec3::new(0.0, 0.0, 1.0));
        let h = t.intersect(&r, 0.0, f32::INFINITY).unwrap();
        assert!((h.t - 3.0).abs() < 1e-5);
        assert!((h.u - 0.25).abs() < 1e-5);
        assert!((h.v - 0.25).abs() < 1e-5);
    }

    #[test]
    fn backface_hit_is_reported() {
        let t = xy_tri();
        let r = Ray::new(Vec3::new(0.25, 0.25, 3.0), Vec3::new(0.0, 0.0, -1.0));
        assert!(t.intersect(&r, 0.0, f32::INFINITY).is_some());
    }

    #[test]
    fn miss_outside_edges() {
        let t = xy_tri();
        let r = Ray::new(Vec3::new(0.9, 0.9, -1.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(t.intersect(&r, 0.0, f32::INFINITY).is_none());
    }

    #[test]
    fn parallel_ray_misses() {
        let t = xy_tri();
        let r = Ray::new(Vec3::new(0.0, 0.0, 1.0), Vec3::new(1.0, 0.0, 0.0));
        assert!(t.intersect(&r, 0.0, f32::INFINITY).is_none());
    }

    #[test]
    fn respects_t_range() {
        let t = xy_tri();
        let r = Ray::new(Vec3::new(0.25, 0.25, -3.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(t.intersect(&r, 0.0, 2.0).is_none());
        assert!(t.intersect(&r, 3.5, f32::INFINITY).is_none());
    }

    #[test]
    fn aabb_contains_all_vertices() {
        let t = xy_tri();
        let b = t.aabb();
        assert!(b.contains_point(t.v0));
        assert!(b.contains_point(t.v1));
        assert!(b.contains_point(t.v2));
    }

    #[test]
    fn normal_and_area() {
        let t = xy_tri();
        assert_eq!(t.normal(), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(t.area(), 0.5);
    }

    #[test]
    fn degenerate_triangle_zero_normal() {
        let t = Triangle::new(Vec3::ZERO, Vec3::ZERO, Vec3::ZERO);
        assert_eq!(t.normal(), Vec3::ZERO);
        assert_eq!(t.area(), 0.0);
    }
}
