//! Rays with precomputed reciprocal direction for slab tests.

use crate::Vec3;

/// A ray `origin + t * dir`.
///
/// The reciprocal direction is precomputed once at construction so that
/// ray-AABB slab tests (the hottest kernel in BVH traversal) need only
/// multiplications.
///
/// # Example
///
/// ```
/// use sms_geom::{Ray, Vec3};
/// let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 2.0));
/// // Direction is normalized on construction.
/// assert!((r.dir.length() - 1.0).abs() < 1e-6);
/// assert_eq!(r.at(3.0), Vec3::new(0.0, 0.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray origin.
    pub origin: Vec3,
    /// Unit direction.
    pub dir: Vec3,
    /// Component-wise reciprocal of `dir` (may contain infinities).
    pub inv_dir: Vec3,
}

impl Ray {
    /// Creates a ray, normalizing `dir`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `dir` has near-zero length.
    #[inline]
    pub fn new(origin: Vec3, dir: Vec3) -> Self {
        let dir = dir.normalized();
        Ray { origin, dir, inv_dir: dir.recip() }
    }

    /// The point at parameter `t` along the ray.
    #[inline]
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.dir * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_advances_along_direction() {
        let r = Ray::new(Vec3::new(1.0, 2.0, 3.0), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(r.at(0.0), r.origin);
        assert_eq!(r.at(2.5), Vec3::new(3.5, 2.0, 3.0));
    }

    #[test]
    fn direction_is_normalized() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 10.0, 0.0));
        assert_eq!(r.dir, Vec3::new(0.0, 1.0, 0.0));
        assert_eq!(r.inv_dir.y, 1.0);
        assert!(r.inv_dir.x.is_infinite());
    }
}
