//! Geometric and numeric substrate for the SMS ray-tracing simulator.
//!
//! This crate provides the pure-math building blocks used by the BVH builder,
//! the procedural scene generators, and the RT-unit operation units:
//!
//! * [`Vec3`] — a small 3-component `f32` vector with the usual operators.
//! * [`Ray`] — origin/direction with precomputed reciprocal direction.
//! * [`Aabb`] — axis-aligned bounding boxes with slab intersection.
//! * [`Triangle`] / [`Sphere`] — scene primitives with watertight-enough
//!   intersection kernels (Möller–Trumbore for triangles).
//! * [`rng`] — small, fully deterministic counter-based random number
//!   generators so every simulation run is a pure function of its seeds.
//! * [`Onb`] — orthonormal bases for hemisphere sampling in the path tracer.
//!
//! Everything here is `no_std`-shaped plain data (though we do use `std`),
//! has no interior mutability, and is `Send + Sync`.
//!
//! # Example
//!
//! ```
//! use sms_geom::{Aabb, Ray, Triangle, Vec3};
//!
//! let tri = Triangle::new(
//!     Vec3::new(0.0, 0.0, 0.0),
//!     Vec3::new(1.0, 0.0, 0.0),
//!     Vec3::new(0.0, 1.0, 0.0),
//! );
//! let ray = Ray::new(Vec3::new(0.25, 0.25, -1.0), Vec3::new(0.0, 0.0, 1.0));
//! let hit = tri.intersect(&ray, 0.0, f32::INFINITY).expect("must hit");
//! assert!((hit.t - 1.0).abs() < 1e-5);
//! assert!(tri.aabb().intersect(&ray, 0.0, f32::INFINITY).is_some());
//! let _ = Aabb::union(&tri.aabb(), &tri.aabb());
//! ```

pub mod aabb;
pub mod onb;
pub mod ray;
pub mod rng;
pub mod sphere;
pub mod tri;
pub mod vec3;

pub use aabb::Aabb;
pub use onb::Onb;
pub use ray::Ray;
pub use rng::{DeterministicRng, SplitMix64};
pub use sphere::Sphere;
pub use tri::{TriHit, Triangle};
pub use vec3::Vec3;

/// A conservative epsilon used to offset secondary-ray origins away from
/// surfaces to avoid self-intersection ("shadow acne").
pub const RAY_EPSILON: f32 = 1e-4;
