//! Deterministic random number generation.
//!
//! Every stochastic choice in the reproduction (scene generation, path
//! tracing bounce directions, Russian roulette) flows from counter-based
//! generators seeded explicitly, so a simulation run is a pure function of
//! its configuration. This is what lets the benches assert that traversal
//! work is *identical* across stack configurations and IPC ratios reduce to
//! cycle ratios, as in the paper's normalized plots.

/// The SplitMix64 mixing function.
///
/// Used both as a standalone generator and to derive stream seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, deterministic PRNG (SplitMix64 stream).
///
/// # Example
///
/// ```
/// use sms_geom::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let f = a.next_f32();
/// assert!((0.0..1.0).contains(&f));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent stream keyed by `(seed, a, b, c)`.
    ///
    /// Used to give each `(pixel, sample, bounce)` its own stream.
    #[inline]
    pub fn from_key(seed: u64, a: u64, b: u64, c: u64) -> Self {
        let mut s = seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        s ^= b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        s ^= c.wrapping_mul(0x1656_67B1_9E37_79F9);
        // One mixing round to decorrelate nearby keys.
        let mut st = s;
        let _ = splitmix64(&mut st);
        SplitMix64 { state: st }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// The next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / 16_777_216.0)
    }

    /// A uniform float in `[lo, hi)`.
    #[inline]
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Multiplicative range reduction; bias is negligible for our n.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Extension methods for sampling geometric quantities.
///
/// This trait is sealed: it exists to group the sampling helpers on
/// [`SplitMix64`] and is not meant to be implemented downstream.
pub trait DeterministicRng: private::Sealed {
    /// A uniformly distributed unit vector.
    fn unit_vector(&mut self) -> crate::Vec3;
    /// A cosine-weighted direction around +Z (local frame).
    fn cosine_hemisphere(&mut self) -> crate::Vec3;
    /// A uniform point in the unit disk (z = 0).
    fn in_unit_disk(&mut self) -> crate::Vec3;
}

impl DeterministicRng for SplitMix64 {
    fn unit_vector(&mut self) -> crate::Vec3 {
        // Marsaglia via spherical coordinates: deterministic and branch-free.
        let z = self.range_f32(-1.0, 1.0);
        let phi = self.range_f32(0.0, core::f32::consts::TAU);
        let r = (1.0 - z * z).max(0.0).sqrt();
        crate::Vec3::new(r * phi.cos(), r * phi.sin(), z)
    }

    fn cosine_hemisphere(&mut self) -> crate::Vec3 {
        let r1 = self.next_f32();
        let r2 = self.next_f32();
        let phi = core::f32::consts::TAU * r1;
        let r = r2.sqrt();
        let z = (1.0 - r2).max(0.0).sqrt();
        crate::Vec3::new(r * phi.cos(), r * phi.sin(), z)
    }

    fn in_unit_disk(&mut self) -> crate::Vec3 {
        let r = self.next_f32().sqrt();
        let phi = core::f32::consts::TAU * self.next_f32();
        crate::Vec3::new(r * phi.cos(), r * phi.sin(), 0.0)
    }
}

mod private {
    pub trait Sealed {}
    impl Sealed for super::SplitMix64 {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn keyed_streams_decorrelate() {
        let a = SplitMix64::from_key(0, 1, 0, 0);
        let b = SplitMix64::from_key(0, 0, 1, 0);
        let c = SplitMix64::from_key(0, 0, 0, 1);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn floats_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let f = r.next_f32();
            assert!((0.0..1.0).contains(&f));
            let g = r.range_f32(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&g));
        }
    }

    #[test]
    fn below_bounds() {
        let mut r = SplitMix64::new(4);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
        // Each residue is eventually produced.
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_vector_is_unit_length() {
        use super::DeterministicRng;
        let mut r = SplitMix64::new(5);
        for _ in 0..100 {
            let v = r.unit_vector();
            assert!((v.length() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn cosine_hemisphere_above_plane() {
        use super::DeterministicRng;
        let mut r = SplitMix64::new(6);
        for _ in 0..100 {
            let v = r.cosine_hemisphere();
            assert!(v.z >= 0.0);
            assert!((v.length() - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn unit_disk_inside() {
        use super::DeterministicRng;
        let mut r = SplitMix64::new(8);
        for _ in 0..100 {
            let v = r.in_unit_disk();
            assert!(v.length() <= 1.0 + 1e-6);
            assert_eq!(v.z, 0.0);
        }
    }
}
