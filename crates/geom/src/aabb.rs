//! Axis-aligned bounding boxes.

use crate::{Ray, Vec3};
use std::fmt;

/// An axis-aligned bounding box, the bounding volume used by every node of
/// the BVH (the paper's acceleration structure, §II-A).
///
/// The canonical *empty* box has `min = +inf`, `max = -inf` so that unions
/// behave as expected.
///
/// # Example
///
/// ```
/// use sms_geom::{Aabb, Ray, Vec3};
/// let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
/// let r = Ray::new(Vec3::new(0.5, 0.5, -1.0), Vec3::new(0.0, 0.0, 1.0));
/// let t = b.intersect(&r, 0.0, f32::INFINITY).expect("hits the box");
/// assert!((t - 1.0).abs() < 1e-5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Default for Aabb {
    fn default() -> Self {
        Aabb::EMPTY
    }
}

impl Aabb {
    /// The empty box (union identity).
    pub const EMPTY: Aabb =
        Aabb { min: Vec3::splat(f32::INFINITY), max: Vec3::splat(f32::NEG_INFINITY) };

    /// Creates a box from its corners.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any `min` component exceeds the matching
    /// `max` component (use [`Aabb::EMPTY`] for the empty box).
    #[inline]
    pub fn new(min: Vec3, max: Vec3) -> Self {
        debug_assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "inverted AABB {min:?}..{max:?}"
        );
        Aabb { min, max }
    }

    /// The box containing a single point.
    #[inline]
    pub fn from_point(p: Vec3) -> Self {
        Aabb { min: p, max: p }
    }

    /// The smallest box containing both inputs.
    #[inline]
    pub fn union(a: &Aabb, b: &Aabb) -> Aabb {
        Aabb { min: a.min.min(b.min), max: a.max.max(b.max) }
    }

    /// Grows the box (in place) to contain `p`.
    #[inline]
    pub fn grow_point(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Grows the box (in place) to contain `other`.
    #[inline]
    pub fn grow(&mut self, other: &Aabb) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// `true` when the box contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// The box diagonal (`max - min`); zero or negative components mean an
    /// empty box.
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Center of the box.
    #[inline]
    pub fn centroid(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Surface area; `0.0` for empty boxes. Used by the SAH builder.
    #[inline]
    pub fn surface_area(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    /// `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.y >= self.min.y
            && p.z >= self.min.z
            && p.x <= self.max.x
            && p.y <= self.max.y
            && p.z <= self.max.z
    }

    /// `true` when `other` lies fully inside `self`.
    #[inline]
    pub fn contains(&self, other: &Aabb) -> bool {
        other.is_empty() || (self.contains_point(other.min) && self.contains_point(other.max))
    }

    /// Ray/box slab test.
    ///
    /// Returns the entry parameter `t` clamped to `t_min` when the ray
    /// segment `[t_min, t_max]` overlaps the box, or `None` otherwise.
    /// This is the kernel executed by the RT unit's ray-box operation unit.
    #[inline]
    pub fn intersect(&self, ray: &Ray, t_min: f32, t_max: f32) -> Option<f32> {
        let t0 = (self.min - ray.origin).mul_elem(ray.inv_dir);
        let t1 = (self.max - ray.origin).mul_elem(ray.inv_dir);
        let t_near = t0.min(t1);
        let t_far = t0.max(t1);
        let enter = t_near.max_component().max(t_min);
        let exit = t_far.min_component().min(t_max);
        if enter <= exit {
            Some(enter)
        } else {
            None
        }
    }
}

impl fmt::Display for Aabb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::ONE)
    }

    #[test]
    fn empty_box_properties() {
        let e = Aabb::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.surface_area(), 0.0);
        assert_eq!(Aabb::default(), e);
    }

    #[test]
    fn union_with_empty_is_identity() {
        let b = unit_box();
        assert_eq!(Aabb::union(&b, &Aabb::EMPTY), b);
        assert_eq!(Aabb::union(&Aabb::EMPTY, &b), b);
    }

    #[test]
    fn union_contains_both() {
        let a = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let b = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        let u = Aabb::union(&a, &b);
        assert!(u.contains(&a));
        assert!(u.contains(&b));
    }

    #[test]
    fn surface_area_of_unit_cube() {
        assert_eq!(unit_box().surface_area(), 6.0);
    }

    #[test]
    fn ray_hits_and_misses() {
        let b = unit_box();
        let hit = Ray::new(Vec3::new(0.5, 0.5, -1.0), Vec3::new(0.0, 0.0, 1.0));
        let miss = Ray::new(Vec3::new(2.0, 2.0, -1.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(b.intersect(&hit, 0.0, f32::INFINITY).is_some());
        assert!(b.intersect(&miss, 0.0, f32::INFINITY).is_none());
    }

    #[test]
    fn ray_starting_inside_returns_t_min() {
        let b = unit_box();
        let r = Ray::new(Vec3::splat(0.5), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(b.intersect(&r, 0.0, f32::INFINITY), Some(0.0));
    }

    #[test]
    fn ray_respects_t_max() {
        let b = unit_box();
        let r = Ray::new(Vec3::new(0.5, 0.5, -10.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(b.intersect(&r, 0.0, 5.0).is_none());
        assert!(b.intersect(&r, 0.0, 20.0).is_some());
    }

    #[test]
    fn axis_parallel_ray_outside_slab_misses() {
        let b = unit_box();
        // Parallel to x, y outside the box: inv_dir has infinities.
        let r = Ray::new(Vec3::new(-1.0, 2.0, 0.5), Vec3::new(1.0, 0.0, 0.0));
        assert!(b.intersect(&r, 0.0, f32::INFINITY).is_none());
    }

    #[test]
    fn grow_point_expands() {
        let mut b = Aabb::from_point(Vec3::ZERO);
        b.grow_point(Vec3::ONE);
        assert_eq!(b, unit_box());
    }

    #[test]
    fn centroid_and_extent() {
        let b = unit_box();
        assert_eq!(b.centroid(), Vec3::splat(0.5));
        assert_eq!(b.extent(), Vec3::ONE);
    }
}
