//! Orthonormal bases for transforming sampled directions into world space.

use crate::Vec3;

/// An orthonormal basis `(u, v, w)` with `w` aligned to a given normal.
///
/// Built with the branchless Duff et al. construction.
///
/// # Example
///
/// ```
/// use sms_geom::{Onb, Vec3};
/// let onb = Onb::from_w(Vec3::new(0.0, 1.0, 0.0));
/// let world = onb.to_world(Vec3::new(0.0, 0.0, 1.0));
/// assert!((world - Vec3::new(0.0, 1.0, 0.0)).length() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Onb {
    /// First tangent.
    pub u: Vec3,
    /// Second tangent.
    pub v: Vec3,
    /// The normal direction the basis was built from.
    pub w: Vec3,
}

impl Onb {
    /// Builds a basis whose `w` axis is the unit vector `w`.
    #[inline]
    pub fn from_w(w: Vec3) -> Self {
        let sign = if w.z >= 0.0 { 1.0 } else { -1.0 };
        let a = -1.0 / (sign + w.z);
        let b = w.x * w.y * a;
        let u = Vec3::new(1.0 + sign * w.x * w.x * a, sign * b, -sign * w.x);
        let v = Vec3::new(b, sign + w.y * w.y * a, -w.y);
        Onb { u, v, w }
    }

    /// Transforms a local-frame vector (z = normal) into world space.
    #[inline]
    pub fn to_world(&self, local: Vec3) -> Vec3 {
        self.u * local.x + self.v * local.y + self.w * local.z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{DeterministicRng, SplitMix64};

    #[test]
    fn basis_is_orthonormal() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..200 {
            let w = rng.unit_vector();
            let onb = Onb::from_w(w);
            assert!(onb.u.dot(onb.v).abs() < 1e-5);
            assert!(onb.u.dot(onb.w).abs() < 1e-5);
            assert!(onb.v.dot(onb.w).abs() < 1e-5);
            assert!((onb.u.length() - 1.0).abs() < 1e-5);
            assert!((onb.v.length() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn z_maps_to_w() {
        let mut rng = SplitMix64::new(12);
        for _ in 0..50 {
            let w = rng.unit_vector();
            let onb = Onb::from_w(w);
            let mapped = onb.to_world(Vec3::new(0.0, 0.0, 1.0));
            assert!((mapped - w).length() < 1e-5);
        }
    }

    #[test]
    fn handles_degenerate_down_axis() {
        let onb = Onb::from_w(Vec3::new(0.0, 0.0, -1.0));
        assert!(onb.u.is_finite());
        assert!(onb.v.is_finite());
    }
}
