//! Analytic sphere primitive.
//!
//! The WKND scene in the paper's benchmark table has zero triangles — it is
//! the "Ray Tracing in One Weekend" sphere scene, using procedural sphere
//! primitives. We support spheres as first-class leaf primitives so that
//! workload can be reproduced.

use crate::{Aabb, Ray, Vec3};

/// An analytic sphere primitive.
///
/// # Example
///
/// ```
/// use sms_geom::{Ray, Sphere, Vec3};
/// let s = Sphere::new(Vec3::new(0.0, 0.0, 5.0), 1.0);
/// let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
/// let t = s.intersect(&r, 0.0, f32::INFINITY).expect("hits");
/// assert!((t - 4.0).abs() < 1e-5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sphere {
    /// Center point.
    pub center: Vec3,
    /// Radius (must be positive).
    pub radius: f32,
}

impl Sphere {
    /// Creates a sphere.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `radius` is not positive and finite.
    #[inline]
    pub fn new(center: Vec3, radius: f32) -> Self {
        debug_assert!(radius > 0.0 && radius.is_finite(), "bad radius {radius}");
        Sphere { center, radius }
    }

    /// Tight bounding box.
    #[inline]
    pub fn aabb(&self) -> Aabb {
        let r = Vec3::splat(self.radius);
        Aabb::new(self.center - r, self.center + r)
    }

    /// Outward unit normal at a surface point `p`.
    #[inline]
    pub fn normal_at(&self, p: Vec3) -> Vec3 {
        (p - self.center) / self.radius
    }

    /// Nearest intersection parameter in `[t_min, t_max]`, if any.
    ///
    /// Rays starting inside the sphere report the exit point.
    #[inline]
    pub fn intersect(&self, ray: &Ray, t_min: f32, t_max: f32) -> Option<f32> {
        let oc = ray.origin - self.center;
        // dir is unit length, so a == 1.
        let half_b = oc.dot(ray.dir);
        let c = oc.length_squared() - self.radius * self.radius;
        let disc = half_b * half_b - c;
        if disc < 0.0 {
            return None;
        }
        let sqrt_d = disc.sqrt();
        let t0 = -half_b - sqrt_d;
        if t0 >= t_min && t0 <= t_max {
            return Some(t0);
        }
        let t1 = -half_b + sqrt_d;
        if t1 >= t_min && t1 <= t_max {
            return Some(t1);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontal_hit_nearest_root() {
        let s = Sphere::new(Vec3::new(0.0, 0.0, 5.0), 2.0);
        let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
        let t = s.intersect(&r, 0.0, f32::INFINITY).unwrap();
        assert!((t - 3.0).abs() < 1e-5);
    }

    #[test]
    fn inside_ray_reports_exit() {
        let s = Sphere::new(Vec3::ZERO, 1.0);
        let r = Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        let t = s.intersect(&r, 1e-4, f32::INFINITY).unwrap();
        assert!((t - 1.0).abs() < 1e-5);
    }

    #[test]
    fn tangent_and_miss() {
        let s = Sphere::new(Vec3::new(0.0, 0.0, 5.0), 1.0);
        let miss = Ray::new(Vec3::new(0.0, 3.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(s.intersect(&miss, 0.0, f32::INFINITY).is_none());
    }

    #[test]
    fn respects_t_range() {
        let s = Sphere::new(Vec3::new(0.0, 0.0, 5.0), 1.0);
        let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
        assert!(s.intersect(&r, 0.0, 3.0).is_none());
        // Nearest root is behind t_min = 5.0, so the far root (t = 6) wins.
        let far = s.intersect(&r, 5.0, f32::INFINITY).unwrap();
        assert!((far - 6.0).abs() < 1e-5);
    }

    #[test]
    fn aabb_is_tight() {
        let s = Sphere::new(Vec3::new(1.0, 2.0, 3.0), 0.5);
        let b = s.aabb();
        assert_eq!(b.min, Vec3::new(0.5, 1.5, 2.5));
        assert_eq!(b.max, Vec3::new(1.5, 2.5, 3.5));
    }

    #[test]
    fn normal_is_unit_and_outward() {
        let s = Sphere::new(Vec3::ZERO, 2.0);
        let n = s.normal_at(Vec3::new(2.0, 0.0, 0.0));
        assert_eq!(n, Vec3::new(1.0, 0.0, 0.0));
    }
}
