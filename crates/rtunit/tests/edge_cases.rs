//! Edge cases for the RT unit: degenerate requests, tiny scenes, extreme
//! ray parameters, and warp-lifecycle corner cases.

use sms_bvh::{BuildParams, PrimHit, Primitive, WideBvh};
use sms_geom::{Aabb, Ray, Triangle, Vec3};
use sms_gpu::SimStats;
use sms_mem::{GlobalMemory, GlobalMemoryConfig, L1Config, SharedMem, SharedMemConfig, SmL1};
use sms_rtunit::{RayQuery, RtUnit, RtUnitConfig, StackConfig, TraceRequest};

struct Tri(Triangle);
impl Primitive for Tri {
    fn aabb(&self) -> Aabb {
        self.0.aabb()
    }
    fn intersect(&self, ray: &Ray, t_min: f32, t_max: f32) -> Option<PrimHit> {
        self.0.intersect(ray, t_min, t_max).map(|h| PrimHit { t: h.t, u: h.u, v: h.v })
    }
}

fn tiny_scene() -> Vec<Tri> {
    vec![
        Tri(Triangle::new(
            Vec3::new(-5.0, -5.0, 10.0),
            Vec3::new(5.0, -5.0, 10.0),
            Vec3::new(0.0, 5.0, 10.0),
        )),
        Tri(Triangle::new(
            Vec3::new(-5.0, -5.0, 20.0),
            Vec3::new(5.0, -5.0, 20.0),
            Vec3::new(0.0, 5.0, 20.0),
        )),
    ]
}

fn run_warp(
    prims: &[Tri],
    queries: Vec<Option<RayQuery>>,
    config: StackConfig,
) -> sms_rtunit::TraceResult {
    let bvh = WideBvh::build(prims, &BuildParams::default());
    let mut unit = RtUnit::new(RtUnitConfig::new(config));
    let mut l1 = SmL1::new(L1Config::default());
    let mut shared = SharedMem::new(SharedMemConfig::default());
    let mut global = GlobalMemory::new(GlobalMemoryConfig::default());
    let mut stats = SimStats::default();
    unit.try_admit(0, TraceRequest::new(0, queries.try_into().unwrap()), &mut stats).unwrap();
    let mut now = 0;
    loop {
        let mut results =
            unit.tick(now, &bvh, prims, &mut l1, &mut shared, &mut global, &mut stats);
        if let Some(r) = results.pop() {
            return r;
        }
        now += 1;
        assert!(now < 1_000_000, "failed to converge");
    }
}

#[test]
fn all_lanes_inactive_retires_immediately() {
    let prims = tiny_scene();
    let res = run_warp(&prims, vec![None; 32], StackConfig::sms_default());
    assert!(res.hits.iter().all(Option::is_none));
    assert!(res.occluded.iter().all(|&o| !o));
}

#[test]
fn single_active_lane() {
    let prims = tiny_scene();
    let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
    let mut queries: Vec<Option<RayQuery>> = vec![None; 32];
    queries[17] = Some(RayQuery::nearest(ray, 0.0));
    let res = run_warp(&prims, queries, StackConfig::baseline8());
    assert_eq!(res.hits.iter().filter(|h| h.is_some()).count(), 1);
    assert!((res.hits[17].unwrap().t - 10.0).abs() < 1e-4);
}

#[test]
fn t_max_zero_never_hits() {
    let prims = tiny_scene();
    let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
    let queries: Vec<Option<RayQuery>> =
        (0..32).map(|_| Some(RayQuery::occlusion(ray, 0.0, 0.0))).collect();
    let res = run_warp(&prims, queries, StackConfig::sms_default());
    assert!(res.occluded.iter().all(|&o| !o), "zero-length segments see nothing");
}

#[test]
fn t_min_beyond_scene_misses() {
    let prims = tiny_scene();
    let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
    let queries: Vec<Option<RayQuery>> = (0..32)
        .map(|_| Some(RayQuery { ray, t_min: 100.0, t_max: f32::INFINITY, any_hit: false }))
        .collect();
    let res = run_warp(&prims, queries, StackConfig::baseline8());
    assert!(res.hits.iter().all(Option::is_none));
}

#[test]
fn t_min_skips_first_surface() {
    let prims = tiny_scene();
    let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
    let queries: Vec<Option<RayQuery>> = (0..32)
        .map(|_| Some(RayQuery { ray, t_min: 15.0, t_max: f32::INFINITY, any_hit: false }))
        .collect();
    let res = run_warp(&prims, queries, StackConfig::sms_default());
    assert!((res.hits[0].unwrap().t - 20.0).abs() < 1e-4, "skips the z=10 wall");
}

#[test]
fn single_primitive_scene() {
    let prims = vec![Tri(Triangle::new(
        Vec3::new(-1.0, -1.0, 3.0),
        Vec3::new(1.0, -1.0, 3.0),
        Vec3::new(0.0, 1.0, 3.0),
    ))];
    let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
    let queries: Vec<Option<RayQuery>> =
        (0..32).map(|_| Some(RayQuery::nearest(ray, 0.0))).collect();
    let res = run_warp(&prims, queries, StackConfig::sms_default());
    assert!(res.hits.iter().all(|h| h.is_some()));
}

#[test]
fn mixed_nearest_and_occlusion_in_one_warp() {
    let prims = tiny_scene();
    let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
    let queries: Vec<Option<RayQuery>> = (0..32)
        .map(|lane| {
            if lane % 2 == 0 {
                Some(RayQuery::nearest(ray, 0.0))
            } else {
                Some(RayQuery::occlusion(ray, 0.0, 50.0))
            }
        })
        .collect();
    let res = run_warp(&prims, queries, StackConfig::sms_default());
    for lane in 0..32 {
        if lane % 2 == 0 {
            assert!(res.hits[lane].is_some(), "lane {lane}");
        } else {
            assert!(res.occluded[lane], "lane {lane}");
        }
    }
}

#[test]
fn successive_traces_reuse_slots() {
    // Admit, retire, and re-admit many warps through one unit: slot reuse
    // must reset stack state (fresh WarpStacks per trace).
    let prims = tiny_scene();
    let bvh = WideBvh::build(&prims, &BuildParams::default());
    let mut unit = RtUnit::new(RtUnitConfig::new(StackConfig::sms_default()));
    let mut l1 = SmL1::new(L1Config::default());
    let mut shared = SharedMem::new(SharedMemConfig::default());
    let mut global = GlobalMemory::new(GlobalMemoryConfig::default());
    let mut stats = SimStats::default();
    let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
    let mut now = 0;
    let mut retired = 0;
    let mut next_warp = 0u32;
    while retired < 20 {
        while next_warp < 20 && unit.has_free_slot() {
            let queries: Vec<Option<RayQuery>> =
                (0..32).map(|_| Some(RayQuery::nearest(ray, 0.0))).collect();
            unit.try_admit(
                0,
                TraceRequest::new(next_warp, queries.try_into().unwrap()),
                &mut stats,
            )
            .unwrap();
            next_warp += 1;
        }
        for r in unit.tick(now, &bvh, &prims, &mut l1, &mut shared, &mut global, &mut stats) {
            assert!((r.hits[0].unwrap().t - 10.0).abs() < 1e-4);
            retired += 1;
        }
        now += 1;
        assert!(now < 1_000_000);
    }
    assert_eq!(stats.rays_traced, 20 * 32);
}
