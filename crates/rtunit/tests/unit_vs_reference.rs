//! The cycle-level RT unit must produce exactly the reference traversal's
//! results for every stack configuration, and its cycle counts must order
//! the way the paper's architecture argument predicts.

use sms_bvh::{BuildParams, Hit, PrimHit, Primitive, WideBvh};
use sms_geom::{Aabb, Ray, SplitMix64, Triangle, Vec3};
use sms_gpu::SimStats;
use sms_mem::{GlobalMemory, GlobalMemoryConfig, L1Config, SharedMem, SharedMemConfig, SmL1};
use sms_rtunit::{RayQuery, RtUnit, RtUnitConfig, SmsParams, StackConfig, TraceRequest};

struct Tri(Triangle);
impl Primitive for Tri {
    fn aabb(&self) -> Aabb {
        self.0.aabb()
    }
    fn intersect(&self, ray: &Ray, t_min: f32, t_max: f32) -> Option<PrimHit> {
        self.0.intersect(ray, t_min, t_max).map(|h| PrimHit { t: h.t, u: h.u, v: h.v })
    }
}

/// A scene with heavy bound overlap so stacks actually go deep: layered
/// rings of triangles around the origin.
fn cluttered_scene(n: usize) -> Vec<Tri> {
    let mut rng = SplitMix64::new(0xBEEF);
    let mut prims = Vec::with_capacity(n);
    for _ in 0..n {
        use sms_geom::DeterministicRng;
        let c = rng.unit_vector() * rng.range_f32(1.0, 20.0);
        let a = rng.unit_vector() * rng.range_f32(0.3, 3.0);
        let b = rng.unit_vector() * rng.range_f32(0.3, 3.0);
        prims.push(Tri(Triangle::new(c, c + a, c + b)));
    }
    prims
}

fn rays(n: usize) -> Vec<Ray> {
    let mut rng = SplitMix64::new(0xF00D);
    (0..n)
        .map(|_| {
            use sms_geom::DeterministicRng;
            let origin = rng.unit_vector() * 30.0;
            let target = rng.unit_vector() * 3.0;
            Ray::new(origin, target - origin)
        })
        .collect()
}

/// Runs up to four warps of rays through one RT unit to completion;
/// returns per-ray hits (in input order) and the total cycle count.
fn run_unit(
    config: StackConfig,
    bvh: &WideBvh,
    prims: &[Tri],
    all_rays: &[Ray],
) -> (Vec<Option<Hit>>, u64, SimStats) {
    assert!(all_rays.len() <= 128, "one RT unit holds at most 4 warps");
    let mut unit = RtUnit::new(RtUnitConfig::new(config));
    let mut l1 = SmL1::new(L1Config::default());
    let mut shared = SharedMem::new(SharedMemConfig::default());
    let mut global = GlobalMemory::new(GlobalMemoryConfig::default());
    let mut stats = SimStats::default();

    let warps = all_rays.chunks(32).count();
    for (w, chunk) in all_rays.chunks(32).enumerate() {
        let mut queries: Vec<Option<RayQuery>> = vec![None; 32];
        for (i, r) in chunk.iter().enumerate() {
            queries[i] = Some(RayQuery::nearest(*r, 0.0));
        }
        unit.try_admit(0, TraceRequest::new(w as u32, queries.try_into().unwrap()), &mut stats)
            .expect("free slot");
    }

    let mut now = 0u64;
    let mut hits: Vec<Option<Hit>> = vec![None; all_rays.len()];
    let mut retired = 0;
    while retired < warps {
        for res in unit.tick(now, bvh, prims, &mut l1, &mut shared, &mut global, &mut stats) {
            let base = res.warp as usize * 32;
            for lane in 0..32 {
                if base + lane < hits.len() {
                    hits[base + lane] = res.hits[lane];
                }
            }
            retired += 1;
        }
        now += 1;
        assert!(now < 50_000_000, "RT unit failed to converge");
    }
    stats.cycles = now;
    (hits, now, stats)
}

#[test]
fn results_match_reference_for_all_configs() {
    let prims = cluttered_scene(3000);
    let bvh = WideBvh::build(&prims, &BuildParams::default());
    let rays = rays(32);

    let reference: Vec<Option<Hit>> = rays
        .iter()
        .map(|r| sms_bvh::intersect_nearest(&bvh, &prims, r, 0.0, f32::INFINITY, &mut ()))
        .collect();

    for config in [
        StackConfig::baseline8(),
        StackConfig::Baseline { rb_entries: 2 },
        StackConfig::FullOnChip,
        StackConfig::Sms(SmsParams::default()),
        StackConfig::Sms(SmsParams::default().with_skewed(true)),
        StackConfig::sms_default(),
    ] {
        let (hits, _, _) = run_unit(config, &bvh, &prims, &rays);
        for lane in 0..32 {
            assert_eq!(
                hits[lane].map(|h| h.prim),
                reference[lane].map(|h| h.prim),
                "{config}: lane {lane} hit mismatch"
            );
        }
    }
}

#[test]
fn traversal_work_is_identical_across_configs() {
    let prims = cluttered_scene(2000);
    let bvh = WideBvh::build(&prims, &BuildParams::default());
    let rays = rays(32);
    let mut visits = Vec::new();
    for config in [StackConfig::baseline8(), StackConfig::sms_default(), StackConfig::FullOnChip] {
        let (_, _, stats) = run_unit(config, &bvh, &prims, &rays);
        visits.push(stats.node_visits);
    }
    assert_eq!(visits[0], visits[1], "node visits must not depend on stack config");
    assert_eq!(visits[0], visits[2]);
}

#[test]
fn cycle_counts_order_as_the_paper_predicts() {
    // Deep-stack workload with enough concurrent threads and geometry to
    // pressure the 64KB L1 (the regime the paper studies): full on-chip <=
    // SMS < small baseline.
    let prims = cluttered_scene(24_000);
    let bvh = WideBvh::build(&prims, &BuildParams::default());
    let rays = rays(128);

    let (_, cycles_base2, _) =
        run_unit(StackConfig::Baseline { rb_entries: 2 }, &bvh, &prims, &rays);
    let (_, cycles_base8, stats8) = run_unit(StackConfig::baseline8(), &bvh, &prims, &rays);
    let (_, cycles_sms, stats_sms) = run_unit(
        StackConfig::Sms(SmsParams { rb_entries: 2, ..SmsParams::default() }),
        &bvh,
        &prims,
        &rays,
    );
    let (_, cycles_full, stats_full) = run_unit(StackConfig::FullOnChip, &bvh, &prims, &rays);

    assert!(stats8.rb_spills > 0, "workload must stress the 8-entry stack");
    assert_eq!(stats_full.rb_spills, 0);
    assert!(
        cycles_base2 > cycles_base8,
        "smaller baseline stack must be slower ({cycles_base2} vs {cycles_base8})"
    );
    assert!(
        cycles_sms < cycles_base2,
        "SMS on RB_2 must beat baseline RB_2 ({cycles_sms} vs {cycles_base2})"
    );
    assert!(cycles_full <= cycles_sms, "full stack is the upper bound");
    assert!(stats_sms.sh_spills <= stats_sms.rb_spills);
}

#[test]
fn occlusion_queries_match_reference() {
    let prims = cluttered_scene(1500);
    let bvh = WideBvh::build(&prims, &BuildParams::default());
    let rays = rays(32);

    let mut unit = RtUnit::new(RtUnitConfig::new(StackConfig::sms_default()));
    let mut l1 = SmL1::new(L1Config::default());
    let mut shared = SharedMem::new(SharedMemConfig::default());
    let mut global = GlobalMemory::new(GlobalMemoryConfig::default());
    let mut stats = SimStats::default();
    let queries: Vec<Option<RayQuery>> =
        rays.iter().map(|r| Some(RayQuery::occlusion(*r, 0.0, 25.0))).collect();
    unit.try_admit(0, TraceRequest::new(0, queries.try_into().unwrap()), &mut stats).unwrap();
    let mut now = 0;
    let mut results = Vec::new();
    while results.is_empty() {
        results = unit.tick(now, &bvh, &prims, &mut l1, &mut shared, &mut global, &mut stats);
        now += 1;
        assert!(now < 20_000_000);
    }
    let res = results.pop().unwrap();
    for (lane, r) in rays.iter().enumerate() {
        let expected = sms_bvh::intersect_any(&bvh, &prims, r, 0.0, 25.0, &mut ());
        assert_eq!(res.occluded[lane], expected, "lane {lane}");
    }
    assert_eq!(stats.shadow_rays, 32);
}

#[test]
fn warp_buffer_capacity_enforced() {
    let prims = cluttered_scene(100);
    let bvh = WideBvh::build(&prims, &BuildParams::default());
    let _ = bvh;
    let mut unit = RtUnit::new(RtUnitConfig::new(StackConfig::baseline8()));
    let mut stats = SimStats::default();
    let mk = |w| {
        let r = Ray::new(Vec3::new(0.0, 0.0, -30.0), Vec3::new(0.0, 0.0, 1.0));
        TraceRequest::new(w, [Some(RayQuery::nearest(r, 0.0)); 32])
    };
    for w in 0..4 {
        assert!(unit.try_admit(0, mk(w), &mut stats).is_ok());
    }
    assert!(!unit.has_free_slot());
    assert!(unit.try_admit(0, mk(4), &mut stats).is_err(), "5th warp must bounce");
    assert_eq!(unit.busy_warps(), 4);
}

#[test]
fn skew_reduces_bank_conflict_cycles() {
    let prims = cluttered_scene(12_000);
    let bvh = WideBvh::build(&prims, &BuildParams::default());
    let rays = rays(128);
    let (_, _, plain) = run_unit(StackConfig::Sms(SmsParams::default()), &bvh, &prims, &rays);
    let (_, _, skewed) =
        run_unit(StackConfig::Sms(SmsParams::default().with_skewed(true)), &bvh, &prims, &rays);
    assert!(plain.mem.bank_conflict_cycles > 0, "workload must generate SH traffic");
    assert!(
        skewed.mem.bank_conflict_cycles < plain.mem.bank_conflict_cycles,
        "skewing must reduce conflicts ({} vs {})",
        skewed.mem.bank_conflict_cycles,
        plain.mem.bank_conflict_cycles
    );
}

#[test]
fn depth_recorder_sees_pushes() {
    let prims = cluttered_scene(2000);
    let bvh = WideBvh::build(&prims, &BuildParams::default());
    let rays = rays(32);
    let mut cfg = RtUnitConfig::new(StackConfig::FullOnChip);
    cfg.record_depths = true;
    let mut unit = RtUnit::new(cfg);
    let mut l1 = SmL1::new(L1Config::default());
    let mut shared = SharedMem::new(SharedMemConfig::default());
    let mut global = GlobalMemory::new(GlobalMemoryConfig::default());
    let mut stats = SimStats::default();
    let queries: Vec<Option<RayQuery>> =
        rays.iter().map(|r| Some(RayQuery::nearest(*r, 0.0))).collect();
    unit.try_admit(0, TraceRequest::new(0, queries.try_into().unwrap()), &mut stats).unwrap();
    let mut now = 0;
    while unit.busy_warps() > 0 {
        unit.tick(now, &bvh, &prims, &mut l1, &mut shared, &mut global, &mut stats);
        now += 1;
        assert!(now < 20_000_000);
    }
    assert!(unit.depth_recorder.count() > 0);
    assert!(unit.depth_recorder.max() > 2);
}
