//! Memory micro-operations emitted by the stack manager.

use sms_mem::{AccessKind, Addr};

/// Which physical memory a micro-op targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Space {
    /// The SM's banked shared memory (SH stacks).
    Shared,
    /// Global memory through L1/L2/DRAM (spill region).
    Global,
}

/// Which stack-hierarchy boundary a micro-op crosses. Pure metadata for
/// cycle attribution (`StallBreakdown`): the memory system never reads it,
/// so tagging cannot perturb timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackLevel {
    /// RB ↔ SH traffic: spills into / refills from the shared-memory stack.
    RbSh,
    /// SH ↔ global (or RB ↔ global in baseline configs): off-chip spills
    /// and their reloads.
    ShGlobal,
    /// The warp-wide burst of an intra-warp reallocation flush (§VI-B).
    Flush,
}

/// One ordered memory operation of a stack-manager sequence.
///
/// A micro-op may carry several `(addr, size)` pairs when the stack manager
/// moves a whole stack at once (the RA flush of §VI-B); they form a single
/// transaction. Micro-ops of one thread execute strictly in order; loads
/// block the thread until data returns, stores are posted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MicroOp {
    /// Target memory.
    pub space: Space,
    /// Load or store.
    pub kind: AccessKind,
    /// Stack-hierarchy boundary, for stall attribution.
    pub level: StackLevel,
    /// Byte accesses of this operation.
    pub addrs: Vec<(Addr, u32)>,
}

impl MicroOp {
    /// A single 8-byte (one stack entry) shared-memory operation.
    pub fn shared(kind: AccessKind, level: StackLevel, addr: Addr) -> Self {
        MicroOp { space: Space::Shared, kind, level, addrs: vec![(addr, 8)] }
    }

    /// A single 8-byte global-memory operation.
    pub fn global(kind: AccessKind, level: StackLevel, addr: Addr) -> Self {
        MicroOp { space: Space::Global, kind, level, addrs: vec![(addr, 8)] }
    }

    /// `true` when the thread must wait for this op before proceeding.
    pub fn is_blocking(&self) -> bool {
        matches!(self.kind, AccessKind::Load)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_fields() {
        let s = MicroOp::shared(AccessKind::Load, StackLevel::RbSh, 64);
        assert_eq!(s.space, Space::Shared);
        assert_eq!(s.level, StackLevel::RbSh);
        assert_eq!(s.addrs, vec![(64, 8)]);
        assert!(s.is_blocking());
        let g = MicroOp::global(AccessKind::Store, StackLevel::ShGlobal, 128);
        assert_eq!(g.space, Space::Global);
        assert_eq!(g.level, StackLevel::ShGlobal);
        assert!(!g.is_blocking());
    }
}
