//! The RT unit proper: warp buffer, traversal state machines, memory issue.
//!
//! Per cycle ([`RtUnit::tick`]):
//!
//! 1. **Response / operation units** (all warps): node data whose fetch
//!    completed flows through the matching operation unit (ray-box for
//!    internal nodes, ray-triangle for leaves — §II-B) and, after the unit's
//!    latency, commits: intersected children are sorted nearest-first, the
//!    nearest is visited next, the rest are pushed; leaf hits shrink
//!    `t_max`; exhausted rays pop. Pushes and pops go through the
//!    [`WarpStacks`] stack manager, which emits timed memory micro-ops.
//! 2. **Warp scheduling** (GTO, §II-B): one warp is scheduled; its threads'
//!    node fetches are collected and coalesced into line transactions, and
//!    the head stack micro-op of each stalled thread is issued — shared-
//!    memory ops batch into one warp-wide banked transaction, global ops
//!    coalesce by line. Loads block their thread; stores are posted.
//! 3. Completed warps retire and their [`TraceResult`] returns to the SM.

use crate::microop::{MicroOp, Space};
use crate::stack::{StackConfig, WarpStacks};
use crate::trace::{RayQuery, TraceRequest, TraceResult};
use sms_bvh::traverse::{node_step, NodeStep};
use sms_bvh::{BvhLayout, DepthRecorder, Hit, NodeId, Primitive, WideBvh, WideNode};
use sms_gpu::{GtoScheduler, SimStats, WarpId, WARP_SIZE};
use sms_mem::{coalesce_lines, AccessKind, Cycle, GlobalMemory, SharedMem, SmL1};

/// Static configuration of one RT unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtUnitConfig {
    /// Traversal-stack architecture.
    pub stack: StackConfig,
    /// Warp-buffer capacity (Table I: 4).
    pub max_warps: usize,
    /// Ray-box operation-unit latency in cycles.
    pub box_latency: u64,
    /// Ray-triangle operation-unit latency in cycles.
    pub tri_latency: u64,
    /// Record logical stack depths at every push/pop (Figs. 4/5).
    pub record_depths: bool,
}

impl RtUnitConfig {
    /// Table I defaults with the given stack architecture.
    pub fn new(stack: StackConfig) -> Self {
        RtUnitConfig { stack, max_warps: 4, box_latency: 10, tri_latency: 20, record_depths: false }
    }
}

/// Records per-thread depth traces for the paper's Fig. 10.
#[derive(Debug, Clone, Default)]
pub struct ThreadTraceRecorder {
    /// Record only warps with id below this bound.
    pub warp_limit: WarpId,
    /// `(warp, lane, access index, depth after op)` samples.
    pub samples: Vec<(WarpId, u8, u32, u16)>,
}

impl ThreadTraceRecorder {
    /// Records the first `warp_limit` warps.
    pub fn new(warp_limit: WarpId) -> Self {
        ThreadTraceRecorder { warp_limit, samples: Vec::new() }
    }
}

/// Per-thread traversal state.
#[derive(Debug, Clone)]
enum TState {
    /// Has a current node; needs its data fetched.
    NeedFetch,
    /// Node fetch in flight.
    WaitFetch { done: Cycle },
    /// Operation unit busy; commits `step` at `done`.
    OpWait { done: Cycle, step: NodeStep },
    /// Stack micro-ops pending; head not yet issued.
    StackIssue,
    /// Head stack micro-op (a load) in flight.
    StackWait { done: Cycle },
    /// Traversal finished (or lane inactive).
    Idle,
}

#[derive(Debug, Clone)]
struct ThreadCtx {
    query: Option<RayQuery>,
    state: TState,
    current: Option<NodeId>,
    best: Option<Hit>,
    occluded: bool,
    t_max: f32,
    ops: std::collections::VecDeque<MicroOp>,
    done: bool,
}

#[derive(Debug)]
struct WarpSlot {
    warp: WarpId,
    stacks: WarpStacks,
    threads: Vec<ThreadCtx>,
    access_counts: [u32; WARP_SIZE],
    done_count: usize,
}

/// One ray-tracing acceleration unit (one per SM, Table I).
#[derive(Debug)]
pub struct RtUnit {
    config: RtUnitConfig,
    slots: Vec<Option<WarpSlot>>,
    sched: GtoScheduler,
    shared_stride: u64,
    /// Stack-depth histogram across all rays (when `record_depths`).
    pub depth_recorder: DepthRecorder,
    /// Optional per-thread traces (Fig. 10).
    pub thread_traces: Option<ThreadTraceRecorder>,
}

impl RtUnit {
    /// Creates an idle RT unit.
    pub fn new(config: RtUnitConfig) -> Self {
        RtUnit {
            shared_stride: config.stack.shared_bytes_per_warp(),
            slots: (0..config.max_warps).map(|_| None).collect(),
            sched: GtoScheduler::new(),
            config,
            depth_recorder: DepthRecorder::new(),
            thread_traces: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RtUnitConfig {
        &self.config
    }

    /// Number of warps currently resident.
    pub fn busy_warps(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// `true` when a new warp can be admitted.
    pub fn has_free_slot(&self) -> bool {
        self.busy_warps() < self.config.max_warps
    }

    /// Admits a warp trace request into the warp buffer.
    ///
    /// Returns the request back when the buffer is full.
    pub fn try_admit(
        &mut self,
        req: TraceRequest,
        stats: &mut SimStats,
    ) -> Result<(), TraceRequest> {
        let Some(slot_idx) = self.slots.iter().position(Option::is_none) else {
            return Err(req);
        };
        let region_base = slot_idx as u64 * self.shared_stride;
        let tid_base = req.warp * WARP_SIZE as u32;
        let stacks = WarpStacks::new(&self.config.stack, region_base, tid_base);
        let mut threads = Vec::with_capacity(WARP_SIZE);
        let mut active = 0usize;
        for lane in 0..WARP_SIZE {
            let query = req.rays[lane];
            let ctx = match query {
                Some(q) => {
                    active += 1;
                    if q.any_hit {
                        stats.shadow_rays += 1;
                    } else {
                        stats.rays_traced += 1;
                    }
                    ThreadCtx {
                        query,
                        state: TState::NeedFetch,
                        current: Some(0),
                        best: None,
                        occluded: false,
                        t_max: q.t_max,
                        ops: std::collections::VecDeque::new(),
                        done: false,
                    }
                }
                None => ThreadCtx {
                    query: None,
                    state: TState::Idle,
                    current: None,
                    best: None,
                    occluded: false,
                    t_max: 0.0,
                    ops: std::collections::VecDeque::new(),
                    done: true,
                },
            };
            threads.push(ctx);
        }
        // Inactive lanes release their SH stacks to the idle pool at once.
        let mut slot = WarpSlot {
            warp: req.warp,
            stacks,
            threads,
            access_counts: [0; WARP_SIZE],
            done_count: WARP_SIZE - active,
        };
        for lane in 0..WARP_SIZE {
            if slot.threads[lane].done {
                slot.stacks.mark_done(lane);
            }
        }
        self.slots[slot_idx] = Some(slot);
        Ok(())
    }

    /// `true` when some thread could issue work if its warp were scheduled.
    pub fn has_issuable(&self) -> bool {
        self.slots.iter().flatten().any(|s| {
            s.threads.iter().any(|t| matches!(t.state, TState::NeedFetch | TState::StackIssue))
        })
    }

    /// The earliest future cycle at which some waiting thread completes,
    /// if any thread is waiting.
    pub fn next_completion(&self) -> Option<Cycle> {
        self.slots
            .iter()
            .flatten()
            .flat_map(|s| s.threads.iter())
            .filter_map(|t| match t.state {
                TState::WaitFetch { done }
                | TState::OpWait { done, .. }
                | TState::StackWait { done } => Some(done),
                _ => None,
            })
            .min()
    }

    /// Advances the RT unit by one cycle. Returns trace results of warps
    /// that completed this cycle.
    #[allow(clippy::too_many_arguments)] // mirrors the hardware port list
    pub fn tick<P: Primitive>(
        &mut self,
        now: Cycle,
        bvh: &WideBvh,
        prims: &[P],
        l1: &mut SmL1,
        shared: &mut SharedMem,
        global: &mut GlobalMemory,
        stats: &mut SimStats,
    ) -> Vec<TraceResult> {
        // Phase 1: response FIFO + operation units (run for every warp).
        for slot in self.slots.iter_mut().flatten() {
            Self::advance_threads(
                slot,
                now,
                bvh,
                prims,
                stats,
                &self.config,
                &mut self.depth_recorder,
                &mut self.thread_traces,
            );
        }

        // Phase 2: schedule one warp (GTO) and issue its memory work.
        let ready: Vec<WarpId> = self
            .slots
            .iter()
            .flatten()
            .filter(|s| {
                s.threads.iter().any(|t| matches!(t.state, TState::NeedFetch | TState::StackIssue))
            })
            .map(|s| s.warp)
            .collect();
        if let Some(warp) = self.sched.pick(ready) {
            let slot = self
                .slots
                .iter_mut()
                .flatten()
                .find(|s| s.warp == warp)
                .expect("scheduled warp resident");
            Self::issue_warp(slot, now, bvh, l1, shared, global, stats);
        }

        // Phase 3: retire completed warps.
        let mut results = Vec::new();
        for entry in &mut self.slots {
            let finished = entry.as_ref().map(|s| s.done_count == WARP_SIZE).unwrap_or(false);
            if finished {
                let slot = entry.take().expect("checked above");
                self.sched.evict(slot.warp);
                results.push(TraceResult {
                    warp: slot.warp,
                    hits: slot.threads.iter().map(|t| t.best).collect(),
                    occluded: slot.threads.iter().map(|t| t.occluded).collect(),
                });
            }
        }
        results
    }

    /// Phase 1: state transitions that do not need the warp scheduler.
    #[allow(clippy::too_many_arguments)]
    fn advance_threads<P: Primitive>(
        slot: &mut WarpSlot,
        now: Cycle,
        bvh: &WideBvh,
        prims: &[P],
        stats: &mut SimStats,
        config: &RtUnitConfig,
        depths: &mut DepthRecorder,
        traces: &mut Option<ThreadTraceRecorder>,
    ) {
        for lane in 0..WARP_SIZE {
            loop {
                let t = &mut slot.threads[lane];
                match &t.state {
                    TState::WaitFetch { done } if *done <= now => {
                        let node = t.current.expect("fetching requires a node");
                        let q = t.query.expect("active thread has a query");
                        let step = node_step(bvh, prims, &q.ray, node, q.t_min, t.t_max);
                        let lat = match &bvh.nodes[node as usize] {
                            WideNode::Inner { .. } => config.box_latency,
                            WideNode::Leaf { .. } => config.tri_latency,
                        };
                        let done = *done;
                        t.state = TState::OpWait { done: done + lat, step };
                    }
                    TState::OpWait { done, .. } if *done <= now => {
                        let TState::OpWait { step, .. } =
                            std::mem::replace(&mut t.state, TState::Idle)
                        else {
                            unreachable!()
                        };
                        stats.node_visits += 1;
                        Self::commit_step(slot, lane, step, stats, config, depths, traces);
                        // commit_step set the next state; keep draining in
                        // case it is already complete (e.g. empty op list).
                        break;
                    }
                    TState::StackWait { done } if *done <= now => {
                        let t = &mut slot.threads[lane];
                        t.ops.pop_front();
                        t.state = Self::after_ops_state(t);
                        break;
                    }
                    _ => break,
                }
            }
        }
    }

    /// The state a thread enters once its current micro-op finished.
    fn after_ops_state(t: &ThreadCtx) -> TState {
        if !t.ops.is_empty() {
            TState::StackIssue
        } else if t.done {
            TState::Idle
        } else {
            TState::NeedFetch
        }
    }

    /// Applies a completed node visit: child ordering, stack pushes/pops,
    /// leaf hit bookkeeping (§II-B "BVH operation complete" path).
    fn commit_step(
        slot: &mut WarpSlot,
        lane: usize,
        step: NodeStep,
        stats: &mut SimStats,
        config: &RtUnitConfig,
        depths: &mut DepthRecorder,
        traces: &mut Option<ThreadTraceRecorder>,
    ) {
        let mut new_ops: Vec<MicroOp> = Vec::new();
        let mut record = |slot: &mut WarpSlot, lane: usize| {
            let d = slot.stacks.depth(lane);
            if config.record_depths {
                use sms_bvh::traverse::StackObserver;
                depths.on_push(d); // record() is symmetric for push/pop
            }
            if let Some(tr) = traces {
                if slot.warp < tr.warp_limit {
                    let idx = slot.access_counts[lane];
                    slot.access_counts[lane] += 1;
                    tr.samples.push((slot.warp, lane as u8, idx, d.min(u16::MAX as usize) as u16));
                }
            }
        };

        enum Next {
            Visit(NodeId),
            PopOrDone,
        }
        let next = match step {
            NodeStep::Inner(hits) => {
                if hits.is_empty() {
                    Next::PopOrDone
                } else {
                    // Push the non-nearest intersected children far-to-near.
                    for i in (1..hits.len()).rev() {
                        slot.stacks.push(lane, hits.get(i).1, stats, &mut new_ops);
                        record(slot, lane);
                    }
                    Next::Visit(hits.get(0).1)
                }
            }
            NodeStep::Leaf(hit) => {
                let t = &mut slot.threads[lane];
                if let Some(h) = hit {
                    let q = t.query.expect("active thread");
                    if q.any_hit {
                        // Occlusion query: terminate immediately.
                        t.occluded = true;
                        t.done = true;
                        t.current = None;
                        slot.stacks.clear_lane(lane);
                        slot.done_count += 1;
                        t.state = Self::after_ops_state(t);
                        return;
                    }
                    if h.t < t.t_max {
                        t.t_max = h.t;
                        t.best = Some(h);
                    }
                }
                Next::PopOrDone
            }
        };

        match next {
            Next::Visit(node) => {
                slot.threads[lane].current = Some(node);
            }
            Next::PopOrDone => {
                if slot.stacks.is_empty(lane) {
                    let t = &mut slot.threads[lane];
                    t.done = true;
                    t.current = None;
                    slot.done_count += 1;
                    slot.stacks.mark_done(lane);
                } else {
                    let v = slot.stacks.pop(lane, stats, &mut new_ops);
                    record(slot, lane);
                    slot.threads[lane].current = Some(v);
                }
            }
        }
        let t = &mut slot.threads[lane];
        t.ops.extend(new_ops);
        t.state = Self::after_ops_state(t);
    }

    /// Phase 2: issue the scheduled warp's node fetches and stack micro-ops.
    fn issue_warp(
        slot: &mut WarpSlot,
        now: Cycle,
        bvh: &WideBvh,
        l1: &mut SmL1,
        shared: &mut SharedMem,
        global: &mut GlobalMemory,
        stats: &mut SimStats,
    ) {
        // --- Node fetches: collect, coalesce, issue per line. ---
        let mut fetch_lanes: Vec<(usize, Vec<(u64, u32)>)> = Vec::new();
        for lane in 0..WARP_SIZE {
            if matches!(slot.threads[lane].state, TState::NeedFetch) {
                let node = slot.threads[lane].current.expect("NeedFetch has a node");
                let mut spans = vec![BvhLayout::node_fetch(node)];
                if let WideNode::Leaf { first, count } = &bvh.nodes[node as usize] {
                    if *count > 0 {
                        spans.push(BvhLayout::leaf_fetch(*first, *count));
                    }
                }
                fetch_lanes.push((lane, spans));
            }
        }
        if !fetch_lanes.is_empty() {
            let all_lines = coalesce_lines(fetch_lanes.iter().flat_map(|(_, s)| s.iter().copied()));
            let mut line_done: std::collections::HashMap<u64, Cycle> =
                std::collections::HashMap::with_capacity(all_lines.len());
            for line in all_lines {
                let done = l1.access_line(global, line, AccessKind::Load, now, false);
                line_done.insert(line, done);
            }
            for (lane, spans) in fetch_lanes {
                let done = coalesce_lines(spans)
                    .into_iter()
                    .map(|l| line_done[&l])
                    .max()
                    .unwrap_or(now + 1);
                slot.threads[lane].state = TState::WaitFetch { done };
            }
        }

        // --- Stack micro-ops: one per stalled thread, batched by space. ---
        let mut shared_batch: Vec<(usize, bool)> = Vec::new(); // (lane, blocking)
        let mut shared_addrs: Vec<(u64, u32)> = Vec::new();
        #[allow(clippy::type_complexity)] // (lane, [(addr, bytes)], blocking)
        let mut global_lanes: Vec<(usize, Vec<(u64, u32)>, bool)> = Vec::new();
        for lane in 0..WARP_SIZE {
            if !matches!(slot.threads[lane].state, TState::StackIssue) {
                continue;
            }
            let op = slot.threads[lane].ops.front().expect("StackIssue implies pending op");
            match op.space {
                Space::Shared => {
                    shared_addrs.extend(op.addrs.iter().copied());
                    shared_batch.push((lane, op.is_blocking()));
                }
                Space::Global => {
                    global_lanes.push((lane, op.addrs.clone(), op.is_blocking()));
                }
            }
        }

        if !shared_batch.is_empty() {
            stats.mem.shared_accesses += 1;
            let before = shared.conflict_cycles;
            let done = shared.access_warp(now, shared_addrs.iter().copied());
            stats.mem.bank_conflict_cycles += shared.conflict_cycles - before;
            for (lane, blocking) in shared_batch {
                let t = &mut slot.threads[lane];
                if blocking {
                    t.state = TState::StackWait { done };
                } else {
                    t.ops.pop_front();
                    t.state = Self::after_ops_state(t);
                }
            }
        }

        if !global_lanes.is_empty() {
            let all_lines =
                coalesce_lines(global_lanes.iter().flat_map(|(_, a, _)| a.iter().copied()));
            // Loads and stores share the issue path; kind resolved per lane.
            let mut line_done: std::collections::HashMap<u64, Cycle> =
                std::collections::HashMap::with_capacity(all_lines.len());
            for (lane, addrs, blocking) in global_lanes {
                let kind = if blocking { AccessKind::Load } else { AccessKind::Store };
                let mut done = now + 1;
                for line in coalesce_lines(addrs.iter().copied()) {
                    let d = *line_done
                        .entry(line)
                        .or_insert_with(|| l1.access_line(global, line, kind, now, true));
                    done = done.max(d);
                }
                let t = &mut slot.threads[lane];
                if blocking {
                    t.state = TState::StackWait { done };
                } else {
                    t.ops.pop_front();
                    t.state = Self::after_ops_state(t);
                }
            }
        }
    }
}
