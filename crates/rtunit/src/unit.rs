//! The RT unit proper: warp buffer, traversal state machines, memory issue.
//!
//! Per cycle ([`RtUnit::tick`]):
//!
//! 1. **Response / operation units** (all warps): node data whose fetch
//!    completed flows through the matching operation unit (ray-box for
//!    internal nodes, ray-triangle for leaves — §II-B) and, after the unit's
//!    latency, commits: intersected children are sorted nearest-first, the
//!    nearest is visited next, the rest are pushed; leaf hits shrink
//!    `t_max`; exhausted rays pop. Pushes and pops go through the
//!    [`WarpStacks`] stack manager, which emits timed memory micro-ops.
//! 2. **Warp scheduling** (GTO, §II-B): one warp is scheduled; its threads'
//!    node fetches are collected and coalesced into line transactions, and
//!    the head stack micro-op of each stalled thread is issued — shared-
//!    memory ops batch into one warp-wide banked transaction, global ops
//!    coalesce by line. Loads block their thread; stores are posted.
//! 3. Completed warps retire and their [`TraceResult`] returns to the SM.
//!
//! Host-side scheduling is event-driven: every wait state ([`TState`])
//! transitions only at its recorded completion cycle, so each warp slot
//! keeps a min-heap of those cycles plus a counter of issuable lanes.
//! Phase 1 skips a slot entirely unless an event is due, and the SM-facing
//! queries [`RtUnit::has_issuable`] / [`RtUnit::next_completion`] read the
//! counter and the heap minimum instead of rescanning all 128 thread
//! contexts — the transitions themselves are unchanged, so timing is
//! cycle-identical to the scanning implementation.

use crate::microop::{MicroOp, Space};
use crate::stack::{StackConfig, WarpStacks};
use crate::trace::{RayQuery, TraceRequest, TraceResult};
use crate::validator::StackViolation;
use sms_bvh::traverse::{NodeStep, TraverseBvh};
use sms_bvh::{BvhLayout, DepthRecorder, Hit, NodeId, Primitive};
use sms_gpu::{GtoScheduler, SimStats, WarpId, WARP_SIZE};
use sms_mem::{coalesce_lines_into, AccessKind, Cycle, GlobalMemory, SharedMem, SmL1};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Static configuration of one RT unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtUnitConfig {
    /// Traversal-stack architecture.
    pub stack: StackConfig,
    /// Warp-buffer capacity (Table I: 4).
    pub max_warps: usize,
    /// Ray-box operation-unit latency in cycles.
    pub box_latency: u64,
    /// Ray-triangle operation-unit latency in cycles.
    pub tri_latency: u64,
    /// Record logical stack depths at every push/pop (Figs. 4/5).
    pub record_depths: bool,
    /// Attach a [`crate::validator::StackValidator`] to every admitted
    /// warp's stacks. Violations are latched (see [`RtUnit::take_violation`])
    /// instead of asserting; simulation results are unaffected either way.
    pub validate: bool,
}

impl RtUnitConfig {
    /// Table I defaults with the given stack architecture.
    pub fn new(stack: StackConfig) -> Self {
        RtUnitConfig {
            stack,
            max_warps: 4,
            box_latency: 10,
            tri_latency: 20,
            record_depths: false,
            validate: false,
        }
    }
}

/// Records per-thread depth traces for the paper's Fig. 10.
#[derive(Debug, Clone, Default)]
pub struct ThreadTraceRecorder {
    /// Record only warps with id below this bound.
    pub warp_limit: WarpId,
    /// `(warp, lane, access index, depth after op)` samples.
    pub samples: Vec<(WarpId, u8, u32, u16)>,
}

impl ThreadTraceRecorder {
    /// Records the first `warp_limit` warps.
    pub fn new(warp_limit: WarpId) -> Self {
        ThreadTraceRecorder { warp_limit, samples: Vec::new() }
    }
}

/// Per-thread traversal state.
#[derive(Debug, Clone)]
enum TState {
    /// Has a current node; needs its data fetched.
    NeedFetch,
    /// Node fetch in flight.
    WaitFetch { done: Cycle },
    /// Operation unit busy; commits `step` at `done`.
    OpWait { done: Cycle, step: NodeStep },
    /// Stack micro-ops pending; head not yet issued.
    StackIssue,
    /// Head stack micro-op (a load) in flight.
    StackWait { done: Cycle },
    /// Traversal finished (or lane inactive).
    Idle,
}

#[derive(Debug, Clone)]
struct ThreadCtx {
    query: Option<RayQuery>,
    state: TState,
    current: Option<NodeId>,
    best: Option<Hit>,
    occluded: bool,
    t_max: f32,
    ops: std::collections::VecDeque<MicroOp>,
    done: bool,
}

#[derive(Debug)]
struct WarpSlot {
    warp: WarpId,
    stacks: WarpStacks,
    threads: Vec<ThreadCtx>,
    access_counts: [u32; WARP_SIZE],
    done_count: usize,
    /// Completion cycles of in-flight waits (min-heap). Entries at or
    /// before the current cycle are consumed by the phase-1 advance.
    events: BinaryHeap<Reverse<Cycle>>,
    /// Lanes in an issuable state (`NeedFetch` or `StackIssue`).
    issuable: u32,
}

impl WarpSlot {
    /// Routes every post-admission thread state change, keeping the
    /// issuable-lane counter and the completion-event heap in sync.
    fn transition(&mut self, lane: usize, state: TState) {
        let becomes_issuable = matches!(state, TState::NeedFetch | TState::StackIssue);
        if let TState::WaitFetch { done }
        | TState::OpWait { done, .. }
        | TState::StackWait { done } = &state
        {
            self.events.push(Reverse(*done));
        }
        let t = &mut self.threads[lane];
        let was_issuable = matches!(t.state, TState::NeedFetch | TState::StackIssue);
        t.state = state;
        self.issuable -= was_issuable as u32;
        self.issuable += becomes_issuable as u32;
    }
}

/// One lane's pending node fetch: at most two `(addr, bytes)` spans (the
/// node record, plus the primitive records for leaves).
#[derive(Debug, Clone, Copy)]
struct FetchSpans {
    lane: usize,
    spans: [(u64, u32); 2],
    len: usize,
}

/// Reusable per-issue working buffers: one warp issue per cycle needs a
/// handful of scratch lists, reused across cycles instead of reallocated.
#[derive(Debug, Default)]
struct IssueScratch {
    /// Pending node fetches of lanes in `NeedFetch`.
    fetch_lanes: Vec<FetchSpans>,
    /// Distinct lines touched by the whole warp's fetches.
    all_lines: Vec<u64>,
    /// Distinct lines of one lane's accesses.
    lane_lines: Vec<u64>,
    /// `line -> completion` map for this issue (small; linear scan).
    line_done: Vec<(u64, Cycle)>,
    /// `(lane, blocking)` for shared-space stack ops.
    shared_batch: Vec<(usize, bool)>,
    /// Gathered shared-space addresses for the warp-wide banked access.
    shared_addrs: Vec<(u64, u32)>,
    /// Lanes with global-space stack ops, in lane order.
    global_lanes: Vec<usize>,
}

/// One ray-tracing acceleration unit (one per SM, Table I).
#[derive(Debug)]
pub struct RtUnit {
    config: RtUnitConfig,
    slots: Vec<Option<WarpSlot>>,
    sched: GtoScheduler,
    shared_stride: u64,
    scratch: IssueScratch,
    op_buf: Vec<MicroOp>,
    /// Stack-depth histogram across all rays (when `record_depths`).
    pub depth_recorder: DepthRecorder,
    /// Optional per-thread traces (Fig. 10).
    pub thread_traces: Option<ThreadTraceRecorder>,
    /// First invariant violation observed by any warp's validator.
    violation: Option<StackViolation>,
}

impl RtUnit {
    /// Creates an idle RT unit.
    pub fn new(config: RtUnitConfig) -> Self {
        RtUnit {
            shared_stride: config.stack.shared_bytes_per_warp(),
            slots: (0..config.max_warps).map(|_| None).collect(),
            sched: GtoScheduler::new(),
            config,
            scratch: IssueScratch::default(),
            op_buf: Vec::new(),
            depth_recorder: DepthRecorder::new(),
            thread_traces: None,
            violation: None,
        }
    }

    /// Takes the first invariant violation seen so far, if any. Only ever
    /// `Some` when [`RtUnitConfig::validate`] is set.
    pub fn take_violation(&mut self) -> Option<StackViolation> {
        self.violation.take()
    }

    /// One-line-per-warp summary of resident warp state, for watchdog
    /// diagnostics. Empty string when the unit is idle.
    pub fn slot_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for slot in self.slots.iter().flatten() {
            let next = slot.events.peek().map(|&Reverse(c)| c);
            let depths: usize = (0..WARP_SIZE).map(|l| slot.stacks.depth(l)).sum();
            let _ = writeln!(
                out,
                "      warp {}: done {}/{}, issuable {}, next event {:?}, total depth {}",
                slot.warp, slot.done_count, WARP_SIZE, slot.issuable, next, depths
            );
        }
        out
    }

    /// The configuration in use.
    pub fn config(&self) -> &RtUnitConfig {
        &self.config
    }

    /// Number of warps currently resident.
    pub fn busy_warps(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// `true` when a new warp can be admitted.
    pub fn has_free_slot(&self) -> bool {
        self.busy_warps() < self.config.max_warps
    }

    /// Admits a warp trace request into the warp buffer.
    ///
    /// Returns the request back when the buffer is full.
    // The Err variant hands the (large, by-value) request back for a
    // retry; callers gate on `has_free_slot`, so that path is cold.
    #[allow(clippy::result_large_err)]
    pub fn try_admit(
        &mut self,
        req: TraceRequest,
        stats: &mut SimStats,
    ) -> Result<(), TraceRequest> {
        let Some(slot_idx) = self.slots.iter().position(Option::is_none) else {
            return Err(req);
        };
        let region_base = slot_idx as u64 * self.shared_stride;
        let tid_base = req.warp * WARP_SIZE as u32;
        let mut stacks = WarpStacks::new(&self.config.stack, region_base, tid_base);
        if self.config.validate {
            stacks.enable_validator();
        }
        let mut threads = Vec::with_capacity(WARP_SIZE);
        let mut active = 0usize;
        for lane in 0..WARP_SIZE {
            let query = req.rays[lane];
            let ctx = match query {
                Some(q) => {
                    active += 1;
                    if q.any_hit {
                        stats.shadow_rays += 1;
                    } else {
                        stats.rays_traced += 1;
                    }
                    ThreadCtx {
                        query,
                        state: TState::NeedFetch,
                        current: Some(0),
                        best: None,
                        occluded: false,
                        t_max: q.t_max,
                        ops: std::collections::VecDeque::new(),
                        done: false,
                    }
                }
                None => ThreadCtx {
                    query: None,
                    state: TState::Idle,
                    current: None,
                    best: None,
                    occluded: false,
                    t_max: 0.0,
                    ops: std::collections::VecDeque::new(),
                    done: true,
                },
            };
            threads.push(ctx);
        }
        // Inactive lanes release their SH stacks to the idle pool at once.
        let mut slot = WarpSlot {
            warp: req.warp,
            stacks,
            threads,
            access_counts: [0; WARP_SIZE],
            done_count: WARP_SIZE - active,
            events: BinaryHeap::new(),
            issuable: active as u32,
        };
        for lane in 0..WARP_SIZE {
            if slot.threads[lane].done {
                slot.stacks.mark_done(lane);
            }
        }
        self.slots[slot_idx] = Some(slot);
        Ok(())
    }

    /// `true` when some thread could issue work if its warp were scheduled.
    pub fn has_issuable(&self) -> bool {
        self.slots.iter().flatten().any(|s| s.issuable > 0)
    }

    /// The earliest future cycle at which some waiting thread completes,
    /// if any thread is waiting.
    pub fn next_completion(&self) -> Option<Cycle> {
        self.slots.iter().flatten().filter_map(|s| s.events.peek().map(|&Reverse(c)| c)).min()
    }

    /// Advances the RT unit by one cycle. Returns trace results of warps
    /// that completed this cycle.
    #[allow(clippy::too_many_arguments)] // mirrors the hardware port list
    pub fn tick<B: TraverseBvh, P: Primitive>(
        &mut self,
        now: Cycle,
        bvh: &B,
        prims: &[P],
        l1: &mut SmL1,
        shared: &mut SharedMem,
        global: &mut GlobalMemory,
        stats: &mut SimStats,
    ) -> Vec<TraceResult> {
        // Phase 1: response FIFO + operation units. Wait states only
        // transition at their recorded completion cycle, so a slot whose
        // earliest event is still in the future has nothing to do.
        let mut op_buf = std::mem::take(&mut self.op_buf);
        for slot in self.slots.iter_mut().flatten() {
            if slot.events.peek().is_some_and(|&Reverse(c)| c <= now) {
                Self::advance_threads(
                    slot,
                    now,
                    bvh,
                    prims,
                    stats,
                    &self.config,
                    &mut self.depth_recorder,
                    &mut self.thread_traces,
                    &mut op_buf,
                );
                // Every event at or before `now` has been consumed by the
                // scan above (chained transitions included) — drop them.
                while slot.events.peek().is_some_and(|&Reverse(c)| c <= now) {
                    slot.events.pop();
                }
            }
        }
        self.op_buf = op_buf;

        // Phase 2: schedule one warp (GTO) and issue its memory work.
        let ready = self.slots.iter().flatten().filter(|s| s.issuable > 0).map(|s| s.warp);
        if let Some(warp) = self.sched.pick(ready) {
            let mut scratch = std::mem::take(&mut self.scratch);
            let slot = self
                .slots
                .iter_mut()
                .flatten()
                .find(|s| s.warp == warp)
                .expect("scheduled warp resident");
            Self::issue_warp(slot, now, bvh, l1, shared, global, stats, &mut scratch);
            self.scratch = scratch;
        }

        // Latch the first invariant violation before retiring warps, so a
        // violation on a warp's final transition is not lost with its slot.
        if self.config.validate && self.violation.is_none() {
            for slot in self.slots.iter_mut().flatten() {
                if let Some(v) = slot.stacks.take_violation() {
                    self.violation = Some(v);
                    break;
                }
            }
        }

        // Phase 3: retire completed warps.
        let mut results = Vec::new();
        for entry in &mut self.slots {
            let finished = entry.as_ref().map(|s| s.done_count == WARP_SIZE).unwrap_or(false);
            if finished {
                let slot = entry.take().expect("checked above");
                self.sched.evict(slot.warp);
                results.push(TraceResult {
                    warp: slot.warp,
                    hits: std::array::from_fn(|l| slot.threads[l].best),
                    occluded: std::array::from_fn(|l| slot.threads[l].occluded),
                });
            }
        }
        results
    }

    /// Phase 1: state transitions that do not need the warp scheduler.
    #[allow(clippy::too_many_arguments)]
    fn advance_threads<B: TraverseBvh, P: Primitive>(
        slot: &mut WarpSlot,
        now: Cycle,
        bvh: &B,
        prims: &[P],
        stats: &mut SimStats,
        config: &RtUnitConfig,
        depths: &mut DepthRecorder,
        traces: &mut Option<ThreadTraceRecorder>,
        op_buf: &mut Vec<MicroOp>,
    ) {
        for lane in 0..WARP_SIZE {
            loop {
                match &slot.threads[lane].state {
                    TState::WaitFetch { done } if *done <= now => {
                        let done = *done;
                        let t = &slot.threads[lane];
                        let node = t.current.expect("fetching requires a node");
                        let q = t.query.expect("active thread has a query");
                        let step = bvh.node_step(prims, &q.ray, node, q.t_min, t.t_max);
                        let lat =
                            if bvh.is_leaf(node) { config.tri_latency } else { config.box_latency };
                        slot.transition(lane, TState::OpWait { done: done + lat, step });
                    }
                    TState::OpWait { done, .. } if *done <= now => {
                        // Idle and OpWait are both non-issuable and the
                        // OpWait event is consumed right here, so this
                        // direct swap keeps the slot counters untouched;
                        // commit_step sets the real next state.
                        let TState::OpWait { step, .. } =
                            std::mem::replace(&mut slot.threads[lane].state, TState::Idle)
                        else {
                            unreachable!()
                        };
                        stats.node_visits += 1;
                        Self::commit_step(slot, lane, step, stats, config, depths, traces, op_buf);
                        // commit_step set the next state; keep draining in
                        // case it is already complete (e.g. empty op list).
                        break;
                    }
                    TState::StackWait { done } if *done <= now => {
                        slot.threads[lane].ops.pop_front();
                        let next = Self::after_ops_state(&slot.threads[lane]);
                        slot.transition(lane, next);
                        break;
                    }
                    _ => break,
                }
            }
        }
    }

    /// The state a thread enters once its current micro-op finished.
    fn after_ops_state(t: &ThreadCtx) -> TState {
        if !t.ops.is_empty() {
            TState::StackIssue
        } else if t.done {
            TState::Idle
        } else {
            TState::NeedFetch
        }
    }

    /// Applies a completed node visit: child ordering, stack pushes/pops,
    /// leaf hit bookkeeping (§II-B "BVH operation complete" path).
    #[allow(clippy::too_many_arguments)]
    fn commit_step(
        slot: &mut WarpSlot,
        lane: usize,
        step: NodeStep,
        stats: &mut SimStats,
        config: &RtUnitConfig,
        depths: &mut DepthRecorder,
        traces: &mut Option<ThreadTraceRecorder>,
        new_ops: &mut Vec<MicroOp>,
    ) {
        new_ops.clear();
        let mut record = |slot: &mut WarpSlot, lane: usize| {
            let d = slot.stacks.depth(lane);
            if config.record_depths {
                use sms_bvh::traverse::StackObserver;
                depths.on_push(d); // record() is symmetric for push/pop
            }
            if let Some(tr) = traces {
                if slot.warp < tr.warp_limit {
                    let idx = slot.access_counts[lane];
                    slot.access_counts[lane] += 1;
                    tr.samples.push((slot.warp, lane as u8, idx, d.min(u16::MAX as usize) as u16));
                }
            }
        };

        enum Next {
            Visit(NodeId),
            PopOrDone,
        }
        let next = match step {
            NodeStep::Inner(hits) => {
                if hits.is_empty() {
                    Next::PopOrDone
                } else {
                    // Push the non-nearest intersected children far-to-near.
                    for i in (1..hits.len()).rev() {
                        slot.stacks.push(lane, hits.get(i).1, stats, new_ops);
                        record(slot, lane);
                    }
                    Next::Visit(hits.get(0).1)
                }
            }
            NodeStep::Leaf(hit) => {
                let t = &mut slot.threads[lane];
                if let Some(h) = hit {
                    let q = t.query.expect("active thread");
                    if q.any_hit {
                        // Occlusion query: terminate immediately.
                        t.occluded = true;
                        t.done = true;
                        t.current = None;
                        slot.stacks.clear_lane(lane);
                        slot.done_count += 1;
                        let next = Self::after_ops_state(&slot.threads[lane]);
                        slot.transition(lane, next);
                        return;
                    }
                    if h.t < t.t_max {
                        t.t_max = h.t;
                        t.best = Some(h);
                    }
                }
                Next::PopOrDone
            }
        };

        match next {
            Next::Visit(node) => {
                slot.threads[lane].current = Some(node);
            }
            Next::PopOrDone => {
                if slot.stacks.is_empty(lane) {
                    let t = &mut slot.threads[lane];
                    t.done = true;
                    t.current = None;
                    slot.done_count += 1;
                    slot.stacks.mark_done(lane);
                } else {
                    let v = slot.stacks.pop(lane, stats, new_ops);
                    record(slot, lane);
                    slot.threads[lane].current = Some(v);
                }
            }
        }
        slot.threads[lane].ops.extend(new_ops.drain(..));
        let next = Self::after_ops_state(&slot.threads[lane]);
        slot.transition(lane, next);
    }

    /// Phase 2: issue the scheduled warp's node fetches and stack micro-ops.
    #[allow(clippy::too_many_arguments)]
    fn issue_warp<B: TraverseBvh>(
        slot: &mut WarpSlot,
        now: Cycle,
        bvh: &B,
        l1: &mut SmL1,
        shared: &mut SharedMem,
        global: &mut GlobalMemory,
        stats: &mut SimStats,
        sc: &mut IssueScratch,
    ) {
        // --- Node fetches: collect, coalesce, issue per line. ---
        sc.fetch_lanes.clear();
        for lane in 0..WARP_SIZE {
            if matches!(slot.threads[lane].state, TState::NeedFetch) {
                let node = slot.threads[lane].current.expect("NeedFetch has a node");
                let mut spans = [BvhLayout::node_fetch(node); 2];
                let mut len = 1;
                if let Some((first, count)) = bvh.leaf_range(node) {
                    if count > 0 {
                        spans[1] = BvhLayout::leaf_fetch(first, count);
                        len = 2;
                    }
                }
                sc.fetch_lanes.push(FetchSpans { lane, spans, len });
            }
        }
        if !sc.fetch_lanes.is_empty() {
            coalesce_lines_into(
                &mut sc.all_lines,
                sc.fetch_lanes.iter().flat_map(|f| f.spans[..f.len].iter().copied()),
            );
            sc.line_done.clear();
            for i in 0..sc.all_lines.len() {
                let line = sc.all_lines[i];
                let done = l1.access_line(global, line, AccessKind::Load, now, false);
                sc.line_done.push((line, done));
            }
            for i in 0..sc.fetch_lanes.len() {
                let FetchSpans { lane, spans, len } = sc.fetch_lanes[i];
                coalesce_lines_into(&mut sc.lane_lines, spans[..len].iter().copied());
                let done = sc
                    .lane_lines
                    .iter()
                    .map(|l| {
                        sc.line_done
                            .iter()
                            .find(|(dl, _)| dl == l)
                            .expect("lane lines subset of warp lines")
                            .1
                    })
                    .max()
                    .unwrap_or(now + 1);
                slot.transition(lane, TState::WaitFetch { done });
            }
        }

        // --- Stack micro-ops: one per stalled thread, batched by space. ---
        sc.shared_batch.clear();
        sc.shared_addrs.clear();
        sc.global_lanes.clear();
        for lane in 0..WARP_SIZE {
            if !matches!(slot.threads[lane].state, TState::StackIssue) {
                continue;
            }
            let op = slot.threads[lane].ops.front().expect("StackIssue implies pending op");
            match op.space {
                Space::Shared => {
                    sc.shared_addrs.extend(op.addrs.iter().copied());
                    sc.shared_batch.push((lane, op.is_blocking()));
                }
                Space::Global => {
                    sc.global_lanes.push(lane);
                }
            }
        }

        if !sc.shared_batch.is_empty() {
            stats.mem.shared_accesses += 1;
            let before = shared.conflict_cycles;
            let done = shared.access_warp(now, sc.shared_addrs.iter().copied());
            stats.mem.bank_conflict_cycles += shared.conflict_cycles - before;
            for i in 0..sc.shared_batch.len() {
                let (lane, blocking) = sc.shared_batch[i];
                if blocking {
                    slot.transition(lane, TState::StackWait { done });
                } else {
                    slot.threads[lane].ops.pop_front();
                    let next = Self::after_ops_state(&slot.threads[lane]);
                    slot.transition(lane, next);
                }
            }
        }

        if !sc.global_lanes.is_empty() {
            // Loads and stores share the issue path; kind resolved per lane,
            // with one `line -> completion` map across the whole warp.
            sc.line_done.clear();
            for i in 0..sc.global_lanes.len() {
                let lane = sc.global_lanes[i];
                let op = slot.threads[lane].ops.front().expect("global lane has pending op");
                let blocking = op.is_blocking();
                let kind = if blocking { AccessKind::Load } else { AccessKind::Store };
                coalesce_lines_into(&mut sc.lane_lines, op.addrs.iter().copied());
                let mut done = now + 1;
                for j in 0..sc.lane_lines.len() {
                    let line = sc.lane_lines[j];
                    let d = match sc.line_done.iter().find(|(dl, _)| *dl == line) {
                        Some(&(_, d)) => d,
                        None => {
                            let d = l1.access_line(global, line, kind, now, true);
                            sc.line_done.push((line, d));
                            d
                        }
                    };
                    done = done.max(d);
                }
                if blocking {
                    slot.transition(lane, TState::StackWait { done });
                } else {
                    slot.threads[lane].ops.pop_front();
                    let next = Self::after_ops_state(&slot.threads[lane]);
                    slot.transition(lane, next);
                }
            }
        }
    }
}
