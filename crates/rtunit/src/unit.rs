//! The RT unit proper: warp buffer, traversal state machines, memory issue.
//!
//! Per cycle ([`RtUnit::tick`]):
//!
//! 1. **Response / operation units** (all warps): node data whose fetch
//!    completed flows through the matching operation unit (ray-box for
//!    internal nodes, ray-triangle for leaves — §II-B) and, after the unit's
//!    latency, commits: intersected children are sorted nearest-first, the
//!    nearest is visited next, the rest are pushed; leaf hits shrink
//!    `t_max`; exhausted rays pop. Pushes and pops go through the
//!    [`WarpStacks`] stack manager, which emits timed memory micro-ops.
//! 2. **Warp scheduling** (GTO, §II-B): one warp is scheduled; its threads'
//!    node fetches are collected and coalesced into line transactions, and
//!    the head stack micro-op of each stalled thread is issued — shared-
//!    memory ops batch into one warp-wide banked transaction, global ops
//!    coalesce by line. Loads block their thread; stores are posted.
//! 3. Completed warps retire and their [`TraceResult`] returns to the SM.
//!
//! Host-side scheduling is event-driven: every wait state ([`TState`])
//! transitions only at its recorded completion cycle, so each warp slot
//! keeps a min-heap of those cycles plus a counter of issuable lanes.
//! Phase 1 skips a slot entirely unless an event is due, and the SM-facing
//! queries [`RtUnit::has_issuable`] / [`RtUnit::next_completion`] read the
//! counter and the heap minimum instead of rescanning all 128 thread
//! contexts — the transitions themselves are unchanged, so timing is
//! cycle-identical to the scanning implementation.

use crate::metrics::{SlotMetrics, StackMetrics};
use crate::microop::{MicroOp, Space, StackLevel};
use crate::predictor::RayPredictor;
use crate::stack::{StackConfig, WarpStacks};
use crate::trace::{RayQuery, TraceRequest, TraceResult};
use crate::validator::StackViolation;
use sms_bvh::traverse::{NodeStep, StacklessStep, TraverseBvh};
use sms_bvh::{BvhLayout, Hit, NodeId, Primitive};
use sms_gpu::{GtoScheduler, SimStats, StallBreakdown, WarpId, WARP_SIZE};
use sms_mem::{coalesce_lines_into, AccessKind, Cycle, GlobalMemory, SharedMem, SmL1};
use sms_metrics::Histogram;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Static configuration of one RT unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtUnitConfig {
    /// Traversal-stack architecture.
    pub stack: StackConfig,
    /// Warp-buffer capacity (Table I: 4).
    pub max_warps: usize,
    /// Ray-box operation-unit latency in cycles.
    pub box_latency: u64,
    /// Ray-triangle operation-unit latency in cycles.
    pub tri_latency: u64,
    /// Record logical stack depths at every push/pop (Figs. 4/5).
    pub record_depths: bool,
    /// Attach a [`crate::validator::StackValidator`] to every admitted
    /// warp's stacks. Violations are latched (see [`RtUnit::take_violation`])
    /// instead of asserting; simulation results are unaffected either way.
    pub validate: bool,
    /// Attribute every resident lane-cycle to a [`StallBreakdown`] bucket.
    /// Pure observation, like `validate`: no counter, micro-op or timing
    /// decision changes whether this is on or off.
    pub attribute: bool,
    /// Record stack/traversal distributions into [`crate::StackMetrics`].
    /// Pure observation, like `validate` and `attribute`.
    pub metrics: bool,
}

impl RtUnitConfig {
    /// Table I defaults with the given stack architecture.
    pub fn new(stack: StackConfig) -> Self {
        RtUnitConfig {
            stack,
            max_warps: 4,
            box_latency: 10,
            tri_latency: 20,
            record_depths: false,
            validate: false,
            attribute: false,
            metrics: false,
        }
    }
}

/// Records per-thread depth traces for the paper's Fig. 10.
#[derive(Debug, Clone, Default)]
pub struct ThreadTraceRecorder {
    /// Record only warps with id below this bound.
    pub warp_limit: WarpId,
    /// `(warp, lane, access index, depth after op)` samples.
    pub samples: Vec<(WarpId, u8, u32, u16)>,
}

impl ThreadTraceRecorder {
    /// Records the first `warp_limit` warps.
    pub fn new(warp_limit: WarpId) -> Self {
        ThreadTraceRecorder { warp_limit, samples: Vec::new() }
    }
}

/// Per-thread traversal state.
#[derive(Debug, Clone)]
enum TState {
    /// Has a current node; needs its data fetched.
    NeedFetch,
    /// Node fetch in flight.
    WaitFetch { done: Cycle },
    /// Operation unit busy; commits `step` at `done`.
    OpWait { done: Cycle, step: StepOutcome },
    /// Stack micro-ops pending; head not yet issued.
    StackIssue,
    /// Head stack micro-op (a load) in flight.
    StackWait { done: Cycle },
    /// Traversal finished (or lane inactive).
    Idle,
}

/// Result of one node operation, under either traversal discipline. A
/// stacked visit ([`NodeStep`]) tests *child* boxes and pushes/pops; a
/// stackless visit ([`StacklessStep`]) tests the node's *own* box and
/// follows first-child / escape links, touching no stack at all.
#[derive(Debug, Clone)]
enum StepOutcome {
    Stacked(NodeStep),
    Stackless(StacklessStep),
}

#[derive(Debug, Clone)]
struct ThreadCtx {
    query: Option<RayQuery>,
    state: TState,
    current: Option<NodeId>,
    best: Option<Hit>,
    occluded: bool,
    t_max: f32,
    ops: std::collections::VecDeque<MicroOp>,
    done: bool,
    /// `true` while the lane is probing the predictor's guessed leaf
    /// (`PRED_*` only); cleared when the probe confirms or mispredicts.
    speculative: bool,
    /// The ray's predictor hash, computed once at admission (`PRED_*`).
    pred_hash: u64,
    /// Leaf that produced the ray's current best hit (or its occlusion
    /// hit); written back to the predictor table at warp retirement.
    hit_leaf: Option<NodeId>,
}

/// Attribution class of one lane's *current* interval. The class is set
/// when the lane transitions and the interval is charged to the matching
/// [`StallBreakdown`] bucket when the next transition flushes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneClass {
    /// Issuable (`NeedFetch` / `StackIssue`) but not yet scheduled.
    SchedWait,
    /// Node fetch in flight, served by the L1.
    FetchL1,
    /// Node fetch in flight, served by the L2.
    FetchL2,
    /// Node fetch in flight, served by DRAM.
    FetchDram,
    /// Ray-box / ray-triangle operation unit busy.
    OpWait,
    /// Blocking RB↔SH stack micro-op in flight.
    StackRbSh,
    /// Blocking SH↔global (or RB↔global) stack micro-op in flight.
    StackShGlobal,
    /// Blocking phase of an RA flush burst in flight.
    StackFlush,
    /// Speculative predictor probe in flight (fetch or operation wait of
    /// the predicted-leaf visit, confirmed or not).
    Predictor,
    /// Lane finished (or inactive in the request).
    Idle,
}

/// Per-slot lane-attribution state. Boxed behind an `Option` so an
/// attribution-off run pays one pointer per slot and no per-cycle work.
#[derive(Debug)]
struct SlotAttr {
    admitted_at: Cycle,
    /// Start of each lane's current interval.
    since: [Cycle; WARP_SIZE],
    /// Class each lane's current interval will be charged to.
    class: [LaneClass; WARP_SIZE],
    /// Bank-conflict replay cycles to carve out of the lane's current
    /// stack-wait interval when it flushes.
    pending_conflict: [u64; WARP_SIZE],
    breakdown: StallBreakdown,
}

impl SlotAttr {
    fn new(now: Cycle, threads: &[ThreadCtx]) -> Self {
        SlotAttr {
            admitted_at: now,
            since: [now; WARP_SIZE],
            class: std::array::from_fn(|lane| {
                if threads[lane].done {
                    LaneClass::Idle
                } else {
                    LaneClass::SchedWait
                }
            }),
            pending_conflict: [0; WARP_SIZE],
            breakdown: StallBreakdown::default(),
        }
    }

    /// Charges the lane's interval `[since, now)` to its current class.
    fn flush_lane(&mut self, lane: usize, now: Cycle) {
        let dt = now - self.since[lane];
        self.since[lane] = now;
        if dt == 0 {
            return;
        }
        let b = &mut self.breakdown;
        match self.class[lane] {
            LaneClass::SchedWait => b.rt_sched_wait += dt,
            LaneClass::FetchL1 => b.fetch_wait_l1 += dt,
            LaneClass::FetchL2 => b.fetch_wait_l2 += dt,
            LaneClass::FetchDram => b.fetch_wait_dram += dt,
            LaneClass::OpWait => b.op_wait += dt,
            LaneClass::Predictor => b.predictor_wait += dt,
            LaneClass::Idle => b.rt_idle += dt,
            stack @ (LaneClass::StackRbSh | LaneClass::StackShGlobal | LaneClass::StackFlush) => {
                let replay = dt.min(self.pending_conflict[lane]);
                self.pending_conflict[lane] = 0;
                b.bank_conflict_replay += replay;
                let rest = dt - replay;
                match stack {
                    LaneClass::StackRbSh => b.stack_wait_rb_sh += rest,
                    LaneClass::StackShGlobal => b.stack_wait_sh_global += rest,
                    _ => b.stack_wait_flush += rest,
                }
            }
        }
    }

    /// Final flush at warp retirement: closes every lane interval, records
    /// the total, and checks the conservation law for this warp.
    fn finish(&mut self, now: Cycle, warp: WarpId) -> &StallBreakdown {
        for lane in 0..WARP_SIZE {
            self.flush_lane(lane, now);
        }
        self.breakdown.rt_lane_cycles = (now - self.admitted_at) * WARP_SIZE as u64;
        assert_eq!(
            self.breakdown.lane_sum(),
            self.breakdown.rt_lane_cycles,
            "warp {warp}: lane-attribution buckets must sum to resident lane-cycles"
        );
        &self.breakdown
    }
}

/// The class a blocking stack micro-op's wait is charged to.
fn stack_class(level: StackLevel) -> LaneClass {
    match level {
        StackLevel::RbSh => LaneClass::StackRbSh,
        StackLevel::ShGlobal => LaneClass::StackShGlobal,
        StackLevel::Flush => LaneClass::StackFlush,
    }
}

#[derive(Debug)]
struct WarpSlot {
    warp: WarpId,
    stacks: WarpStacks,
    threads: Vec<ThreadCtx>,
    access_counts: [u32; WARP_SIZE],
    done_count: usize,
    /// Completion cycles of in-flight waits (min-heap). Entries at or
    /// before the current cycle are consumed by the phase-1 advance.
    events: BinaryHeap<Reverse<Cycle>>,
    /// Lanes in an issuable state (`NeedFetch` or `StackIssue`).
    issuable: u32,
    /// Cycle-attribution state; `None` unless `RtUnitConfig::attribute`.
    attr: Option<Box<SlotAttr>>,
    /// Metrics accumulation state; `None` unless `RtUnitConfig::metrics`.
    mstate: Option<Box<SlotMetrics>>,
}

impl WarpSlot {
    /// Routes every post-admission thread state change, keeping the
    /// issuable-lane counter and the completion-event heap in sync. The
    /// attribution class is derived from the new state; issue sites that
    /// know more (which memory level serves a wait) use
    /// [`WarpSlot::transition_traced`] instead.
    fn transition(&mut self, now: Cycle, lane: usize, state: TState) {
        if self.attr.is_some() {
            let class = match &state {
                TState::NeedFetch | TState::StackIssue => LaneClass::SchedWait,
                TState::OpWait { .. } => LaneClass::OpWait,
                TState::Idle => LaneClass::Idle,
                // Issue sites classify these via transition_traced; the
                // fallbacks here are never reached on those paths.
                TState::WaitFetch { .. } => LaneClass::FetchL1,
                TState::StackWait { .. } => LaneClass::StackRbSh,
            };
            self.note_class(now, lane, class);
        }
        self.apply_transition(lane, state);
    }

    /// [`WarpSlot::transition`] with an explicit attribution class, for
    /// issue sites that know which memory level serves the wait.
    fn transition_traced(&mut self, now: Cycle, lane: usize, state: TState, class: LaneClass) {
        if self.attr.is_some() {
            self.note_class(now, lane, class);
        }
        self.apply_transition(lane, state);
    }

    fn note_class(&mut self, now: Cycle, lane: usize, class: LaneClass) {
        if let Some(attr) = &mut self.attr {
            attr.flush_lane(lane, now);
            attr.class[lane] = class;
        }
    }

    fn apply_transition(&mut self, lane: usize, state: TState) {
        let becomes_issuable = matches!(state, TState::NeedFetch | TState::StackIssue);
        if let TState::WaitFetch { done }
        | TState::OpWait { done, .. }
        | TState::StackWait { done } = &state
        {
            self.events.push(Reverse(*done));
        }
        let t = &mut self.threads[lane];
        let was_issuable = matches!(t.state, TState::NeedFetch | TState::StackIssue);
        t.state = state;
        self.issuable -= was_issuable as u32;
        self.issuable += becomes_issuable as u32;
    }
}

/// One lane's pending node fetch: at most two `(addr, bytes)` spans (the
/// node record, plus the primitive records for leaves).
#[derive(Debug, Clone, Copy)]
struct FetchSpans {
    lane: usize,
    spans: [(u64, u32); 2],
    len: usize,
}

/// Reusable per-issue working buffers: one warp issue per cycle needs a
/// handful of scratch lists, reused across cycles instead of reallocated.
#[derive(Debug, Default)]
struct IssueScratch {
    /// Pending node fetches of lanes in `NeedFetch`.
    fetch_lanes: Vec<FetchSpans>,
    /// Distinct lines touched by the whole warp's fetches.
    all_lines: Vec<u64>,
    /// Distinct lines of one lane's accesses.
    lane_lines: Vec<u64>,
    /// `line -> completion` map for this issue (small; linear scan).
    line_done: Vec<(u64, Cycle)>,
    /// Attribution class per entry of `line_done` (fetch path only).
    line_class: Vec<LaneClass>,
    /// `(lane, blocking)` for shared-space stack ops.
    shared_batch: Vec<(usize, bool)>,
    /// Gathered shared-space addresses for the warp-wide banked access.
    shared_addrs: Vec<(u64, u32)>,
    /// Lanes with global-space stack ops, in lane order.
    global_lanes: Vec<usize>,
}

/// One retired warp's residency interval in an RT-unit slot, for the
/// Chrome-trace export (`SMS_TRACE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtSlice {
    /// Warp-buffer slot index (one trace track per slot).
    pub slot: u8,
    /// The warp that was resident.
    pub warp: WarpId,
    /// Admission cycle.
    pub start: Cycle,
    /// Retirement cycle.
    pub end: Cycle,
}

/// One ray-tracing acceleration unit (one per SM, Table I).
#[derive(Debug)]
pub struct RtUnit {
    config: RtUnitConfig,
    slots: Vec<Option<WarpSlot>>,
    sched: GtoScheduler,
    shared_stride: u64,
    scratch: IssueScratch,
    op_buf: Vec<MicroOp>,
    /// Stack-depth histogram across all rays (when `record_depths`).
    pub depth_recorder: Histogram,
    /// Stack/traversal distributions (when [`RtUnitConfig::metrics`]).
    pub stack_metrics: Option<Box<StackMetrics>>,
    /// Optional per-thread traces (Fig. 10).
    pub thread_traces: Option<ThreadTraceRecorder>,
    /// First invariant violation observed by any warp's validator.
    violation: Option<StackViolation>,
    /// Lane-level attribution accumulated from retired warps
    /// ([`RtUnitConfig::attribute`] only).
    breakdown: StallBreakdown,
    /// Completed micro-events (fetch responses, operation commits, finished
    /// stack ops): the fine-grained forward-progress signal the stall
    /// watchdog reads, so a single long-but-live trace is not mistaken for
    /// a livelock.
    progress: u64,
    /// Warp-residency intervals of retired warps, recorded when slice
    /// recording is enabled (implies attribution).
    slices: Option<Vec<RtSlice>>,
    /// Ray-path prediction table; `Some` only for `PRED_*` configurations.
    predictor: Option<Box<RayPredictor>>,
}

impl RtUnit {
    /// Creates an idle RT unit.
    pub fn new(config: RtUnitConfig) -> Self {
        RtUnit {
            shared_stride: config.stack.shared_bytes_per_warp(),
            slots: (0..config.max_warps).map(|_| None).collect(),
            sched: GtoScheduler::new(),
            stack_metrics: config.metrics.then(Box::default),
            config,
            scratch: IssueScratch::default(),
            op_buf: Vec::new(),
            depth_recorder: Histogram::new(),
            thread_traces: None,
            violation: None,
            breakdown: StallBreakdown::default(),
            progress: 0,
            slices: None,
            predictor: config.stack.predictor_bits().map(|bits| Box::new(RayPredictor::new(bits))),
        }
    }

    /// Takes the first invariant violation seen so far, if any. Only ever
    /// `Some` when [`RtUnitConfig::validate`] is set.
    pub fn take_violation(&mut self) -> Option<StackViolation> {
        self.violation.take()
    }

    /// Lane-level stall attribution of all warps retired so far. All zeros
    /// unless [`RtUnitConfig::attribute`] is set.
    pub fn breakdown(&self) -> &StallBreakdown {
        &self.breakdown
    }

    /// Monotonic count of completed micro-events (fetch responses, node
    /// operations, stack micro-ops) — the watchdog's progress signal.
    pub fn progress(&self) -> u64 {
        self.progress
    }

    /// Starts recording per-warp residency slices for the trace export.
    /// Requires [`RtUnitConfig::attribute`] (slices reuse its timestamps).
    pub fn record_slices(&mut self) {
        assert!(self.config.attribute, "slice recording requires attribution");
        self.slices = Some(Vec::new());
    }

    /// Drains the recorded residency slices.
    pub fn take_slices(&mut self) -> Vec<RtSlice> {
        self.slices.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// One-line-per-warp summary of resident warp state, for watchdog
    /// diagnostics. Empty string when the unit is idle.
    pub fn slot_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for slot in self.slots.iter().flatten() {
            let next = slot.events.peek().map(|&Reverse(c)| c);
            let depths: usize = (0..WARP_SIZE).map(|l| slot.stacks.depth(l)).sum();
            let _ = writeln!(
                out,
                "      warp {}: done {}/{}, issuable {}, next event {:?}, total depth {}",
                slot.warp, slot.done_count, WARP_SIZE, slot.issuable, next, depths
            );
        }
        out
    }

    /// The configuration in use.
    pub fn config(&self) -> &RtUnitConfig {
        &self.config
    }

    /// Number of warps currently resident.
    pub fn busy_warps(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// `true` when a new warp can be admitted.
    pub fn has_free_slot(&self) -> bool {
        self.busy_warps() < self.config.max_warps
    }

    /// Admits a warp trace request into the warp buffer at cycle `now`.
    ///
    /// Returns the request back when the buffer is full.
    // The Err variant hands the (large, by-value) request back for a
    // retry; callers gate on `has_free_slot`, so that path is cold.
    #[allow(clippy::result_large_err)]
    pub fn try_admit(
        &mut self,
        now: Cycle,
        req: TraceRequest,
        stats: &mut SimStats,
    ) -> Result<(), TraceRequest> {
        let Some(slot_idx) = self.slots.iter().position(Option::is_none) else {
            return Err(req);
        };
        let region_base = slot_idx as u64 * self.shared_stride;
        let tid_base = req.warp * WARP_SIZE as u32;
        let mut stacks = WarpStacks::new(&self.config.stack, region_base, tid_base);
        if self.config.validate {
            stacks.enable_validator();
        }
        let mut threads = Vec::with_capacity(WARP_SIZE);
        let mut active = 0usize;
        for lane in 0..WARP_SIZE {
            let query = req.rays[lane];
            let ctx = match query {
                Some(q) => {
                    active += 1;
                    if q.any_hit {
                        stats.shadow_rays += 1;
                    } else {
                        stats.rays_traced += 1;
                    }
                    // A predictor hit starts the ray at the predicted leaf
                    // (speculative probe); otherwise at the root.
                    let (current, speculative, pred_hash) = match &self.predictor {
                        Some(pred) => {
                            let hash = RayPredictor::hash(&q.ray);
                            match pred.predict(hash) {
                                Some(leaf) => (Some(leaf), true, hash),
                                None => (Some(0), false, hash),
                            }
                        }
                        None => (Some(0), false, 0),
                    };
                    ThreadCtx {
                        query,
                        state: TState::NeedFetch,
                        current,
                        best: None,
                        occluded: false,
                        t_max: q.t_max,
                        ops: std::collections::VecDeque::new(),
                        done: false,
                        speculative,
                        pred_hash,
                        hit_leaf: None,
                    }
                }
                None => ThreadCtx {
                    query: None,
                    state: TState::Idle,
                    current: None,
                    best: None,
                    occluded: false,
                    t_max: 0.0,
                    ops: std::collections::VecDeque::new(),
                    done: true,
                    speculative: false,
                    pred_hash: 0,
                    hit_leaf: None,
                },
            };
            threads.push(ctx);
        }
        // Inactive lanes release their SH stacks to the idle pool at once.
        let attr = self.config.attribute.then(|| Box::new(SlotAttr::new(now, &threads)));
        let mstate = self.config.metrics.then(|| Box::new(SlotMetrics::new(now)));
        let mut slot = WarpSlot {
            warp: req.warp,
            stacks,
            threads,
            access_counts: [0; WARP_SIZE],
            done_count: WARP_SIZE - active,
            events: BinaryHeap::new(),
            issuable: active as u32,
            attr,
            mstate,
        };
        for lane in 0..WARP_SIZE {
            if slot.threads[lane].done {
                slot.stacks.mark_done(lane);
            }
        }
        self.slots[slot_idx] = Some(slot);
        Ok(())
    }

    /// `true` when some thread could issue work if its warp were scheduled.
    pub fn has_issuable(&self) -> bool {
        self.slots.iter().flatten().any(|s| s.issuable > 0)
    }

    /// The earliest future cycle at which some waiting thread completes,
    /// if any thread is waiting.
    pub fn next_completion(&self) -> Option<Cycle> {
        self.slots.iter().flatten().filter_map(|s| s.events.peek().map(|&Reverse(c)| c)).min()
    }

    /// Advances the RT unit by one cycle. Returns trace results of warps
    /// that completed this cycle.
    #[allow(clippy::too_many_arguments)] // mirrors the hardware port list
    pub fn tick<B: TraverseBvh, P: Primitive>(
        &mut self,
        now: Cycle,
        bvh: &B,
        prims: &[P],
        l1: &mut SmL1,
        shared: &mut SharedMem,
        global: &mut GlobalMemory,
        stats: &mut SimStats,
    ) -> Vec<TraceResult> {
        // Phase 1: response FIFO + operation units. Wait states only
        // transition at their recorded completion cycle, so a slot whose
        // earliest event is still in the future has nothing to do.
        let mut op_buf = std::mem::take(&mut self.op_buf);
        for slot in self.slots.iter_mut().flatten() {
            if slot.events.peek().is_some_and(|&Reverse(c)| c <= now) {
                Self::advance_threads(
                    slot,
                    now,
                    bvh,
                    prims,
                    stats,
                    &self.config,
                    &mut self.depth_recorder,
                    &mut self.stack_metrics,
                    &mut self.thread_traces,
                    &mut op_buf,
                    &mut self.progress,
                );
                // Every event at or before `now` has been consumed by the
                // scan above (chained transitions included) — drop them.
                while slot.events.peek().is_some_and(|&Reverse(c)| c <= now) {
                    slot.events.pop();
                }
            }
        }
        self.op_buf = op_buf;

        // Phase 2: schedule one warp (GTO) and issue its memory work.
        let ready = self.slots.iter().flatten().filter(|s| s.issuable > 0).map(|s| s.warp);
        if let Some(warp) = self.sched.pick(ready) {
            let mut scratch = std::mem::take(&mut self.scratch);
            let slot = self
                .slots
                .iter_mut()
                .flatten()
                .find(|s| s.warp == warp)
                .expect("scheduled warp resident");
            Self::issue_warp(
                slot,
                now,
                bvh,
                l1,
                shared,
                global,
                stats,
                &mut scratch,
                &mut self.progress,
            );
            self.scratch = scratch;
        }

        // Latch the first invariant violation before retiring warps, so a
        // violation on a warp's final transition is not lost with its slot.
        if self.config.validate && self.violation.is_none() {
            for slot in self.slots.iter_mut().flatten() {
                if let Some(v) = slot.stacks.take_violation() {
                    self.violation = Some(v);
                    break;
                }
            }
        }

        // Phase 3: retire completed warps.
        let mut results = Vec::new();
        for idx in 0..self.slots.len() {
            let entry = &mut self.slots[idx];
            let finished = entry.as_ref().map(|s| s.done_count == WARP_SIZE).unwrap_or(false);
            if finished {
                let mut slot = entry.take().expect("checked above");
                self.sched.evict(slot.warp);
                if let Some(pred) = &mut self.predictor {
                    // Train on retirement: each finished ray records the
                    // leaf that produced its final (or occluding) hit.
                    for t in &slot.threads {
                        if let (Some(_), Some(leaf)) = (t.query, t.hit_leaf) {
                            pred.update(t.pred_hash, leaf);
                        }
                    }
                }
                if let Some(mut attr) = slot.attr.take() {
                    self.breakdown.merge(attr.finish(now, slot.warp));
                    if let Some(slices) = &mut self.slices {
                        slices.push(RtSlice {
                            slot: idx as u8,
                            warp: slot.warp,
                            start: attr.admitted_at,
                            end: now,
                        });
                    }
                }
                results.push(TraceResult {
                    warp: slot.warp,
                    hits: std::array::from_fn(|l| slot.threads[l].best),
                    occluded: std::array::from_fn(|l| slot.threads[l].occluded),
                });
            }
        }
        results
    }

    /// Phase 1: state transitions that do not need the warp scheduler.
    #[allow(clippy::too_many_arguments)]
    fn advance_threads<B: TraverseBvh, P: Primitive>(
        slot: &mut WarpSlot,
        now: Cycle,
        bvh: &B,
        prims: &[P],
        stats: &mut SimStats,
        config: &RtUnitConfig,
        depths: &mut Histogram,
        metrics: &mut Option<Box<StackMetrics>>,
        traces: &mut Option<ThreadTraceRecorder>,
        op_buf: &mut Vec<MicroOp>,
        progress: &mut u64,
    ) {
        for lane in 0..WARP_SIZE {
            loop {
                match &slot.threads[lane].state {
                    TState::WaitFetch { done } if *done <= now => {
                        let done = *done;
                        let t = &slot.threads[lane];
                        let node = t.current.expect("fetching requires a node");
                        let q = t.query.expect("active thread has a query");
                        let speculative = t.speculative;
                        let (step, lat) = if matches!(config.stack, StackConfig::Stackless) {
                            let s = bvh.stackless_step(prims, &q.ray, node, q.t_min, t.t_max);
                            // An own-box miss (even on a leaf node) is just
                            // a box test; only a box hit on a leaf reaches
                            // the triangle unit.
                            let lat = match s {
                                StacklessStep::Leaf { .. } => config.tri_latency,
                                _ => config.box_latency,
                            };
                            (StepOutcome::Stackless(s), lat)
                        } else {
                            let s = bvh.node_step(prims, &q.ray, node, q.t_min, t.t_max);
                            let lat = if bvh.is_leaf(node) {
                                config.tri_latency
                            } else {
                                config.box_latency
                            };
                            (StepOutcome::Stacked(s), lat)
                        };
                        *progress += 1; // fetch response consumed
                        let next = TState::OpWait { done: done + lat, step };
                        if speculative {
                            // The probe's operation wait belongs to the
                            // predictor ledger bucket, not op_wait.
                            slot.transition_traced(now, lane, next, LaneClass::Predictor);
                        } else {
                            slot.transition(now, lane, next);
                        }
                    }
                    TState::OpWait { done, .. } if *done <= now => {
                        // Idle and OpWait are both non-issuable and the
                        // OpWait event is consumed right here, so this
                        // direct swap keeps the slot counters untouched;
                        // the commit sets the real next state (and its
                        // transition flushes the OpWait interval).
                        let TState::OpWait { step, .. } =
                            std::mem::replace(&mut slot.threads[lane].state, TState::Idle)
                        else {
                            unreachable!()
                        };
                        stats.node_visits += 1;
                        *progress += 1; // node operation committed
                        match step {
                            StepOutcome::Stacked(step) if slot.threads[lane].speculative => {
                                Self::resolve_speculation(slot, now, lane, step, stats, metrics);
                            }
                            StepOutcome::Stacked(step) => {
                                Self::commit_step(
                                    slot, now, lane, step, stats, config, depths, metrics, traces,
                                    op_buf,
                                );
                            }
                            StepOutcome::Stackless(step) => {
                                Self::commit_stackless(slot, now, lane, step, metrics);
                            }
                        }
                        // The commit set the next state; keep draining in
                        // case it is already complete (e.g. empty op list).
                        break;
                    }
                    TState::StackWait { done } if *done <= now => {
                        slot.threads[lane].ops.pop_front();
                        *progress += 1; // blocking stack micro-op completed
                        let next = Self::after_ops_state(&slot.threads[lane]);
                        slot.transition(now, lane, next);
                        break;
                    }
                    _ => break,
                }
            }
        }
    }

    /// The state a thread enters once its current micro-op finished.
    fn after_ops_state(t: &ThreadCtx) -> TState {
        if !t.ops.is_empty() {
            TState::StackIssue
        } else if t.done {
            TState::Idle
        } else {
            TState::NeedFetch
        }
    }

    /// Resolves a `PRED_*` lane's speculative predicted-leaf probe.
    ///
    /// * Any-hit query whose predicted leaf produced a hit: the ray is
    ///   occluded and retires right here — the probe replaced the whole
    ///   traversal (`pred_hits`).
    /// * Nearest query whose predicted leaf produced a hit: the hit primes
    ///   `t_max`/`best`, then the full stacked traversal re-runs from the
    ///   root with the tightened interval culling subtrees (`pred_hits`).
    /// * No hit in the predicted leaf: pure overhead; restart from the
    ///   root as if no prediction existed (`pred_misses`).
    fn resolve_speculation(
        slot: &mut WarpSlot,
        now: Cycle,
        lane: usize,
        step: NodeStep,
        stats: &mut SimStats,
        metrics: &mut Option<Box<StackMetrics>>,
    ) {
        let t = &mut slot.threads[lane];
        t.speculative = false;
        if let NodeStep::Leaf(Some(h)) = step {
            stats.pred_hits += 1;
            let q = t.query.expect("active thread");
            if q.any_hit {
                t.hit_leaf = t.current;
                t.occluded = true;
                t.done = true;
                t.current = None;
                slot.done_count += 1;
                slot.stacks.mark_done(lane);
                Self::observe_lane_done(slot, lane, now, metrics);
                slot.transition(now, lane, TState::Idle);
                return;
            }
            if h.t < t.t_max {
                t.hit_leaf = t.current;
                t.t_max = h.t;
                t.best = Some(h);
            }
        } else {
            stats.pred_misses += 1;
        }
        slot.threads[lane].current = Some(0);
        slot.transition(now, lane, TState::NeedFetch);
    }

    /// Applies a completed *stackless* node visit: follow the descend /
    /// escape link, with leaf hit bookkeeping identical to the stacked
    /// path. No stack exists, so there are no micro-ops and no spills —
    /// the only cost is the extra node visits the escape order incurs.
    fn commit_stackless(
        slot: &mut WarpSlot,
        now: Cycle,
        lane: usize,
        step: StacklessStep,
        metrics: &mut Option<Box<StackMetrics>>,
    ) {
        let next_node = match step {
            StacklessStep::Descend { child } => Some(child),
            StacklessStep::Leaf { hit, escape } => {
                let t = &mut slot.threads[lane];
                if let Some(h) = hit {
                    let q = t.query.expect("active thread");
                    if q.any_hit {
                        // Occlusion query: terminate immediately.
                        t.occluded = true;
                        t.done = true;
                        t.current = None;
                        slot.done_count += 1;
                        slot.stacks.mark_done(lane);
                        Self::observe_lane_done(slot, lane, now, metrics);
                        slot.transition(now, lane, TState::Idle);
                        return;
                    }
                    if h.t < t.t_max {
                        t.t_max = h.t;
                        t.best = Some(h);
                    }
                }
                escape
            }
            StacklessStep::Miss { escape } => escape,
        };
        match next_node {
            Some(node) => {
                slot.threads[lane].current = Some(node);
                slot.transition(now, lane, TState::NeedFetch);
            }
            None => {
                let t = &mut slot.threads[lane];
                t.done = true;
                t.current = None;
                slot.done_count += 1;
                slot.stacks.mark_done(lane);
                Self::observe_lane_done(slot, lane, now, metrics);
                slot.transition(now, lane, TState::Idle);
            }
        }
    }

    /// Applies a completed node visit: child ordering, stack pushes/pops,
    /// leaf hit bookkeeping (§II-B "BVH operation complete" path).
    #[allow(clippy::too_many_arguments)]
    fn commit_step(
        slot: &mut WarpSlot,
        now: Cycle,
        lane: usize,
        step: NodeStep,
        stats: &mut SimStats,
        config: &RtUnitConfig,
        depths: &mut Histogram,
        metrics: &mut Option<Box<StackMetrics>>,
        traces: &mut Option<ThreadTraceRecorder>,
        new_ops: &mut Vec<MicroOp>,
    ) {
        new_ops.clear();
        let mut record = |slot: &mut WarpSlot, lane: usize| {
            let d = slot.stacks.depth(lane);
            if config.record_depths {
                depths.record(d as u64);
            }
            if let Some(tr) = traces {
                if slot.warp < tr.warp_limit {
                    let idx = slot.access_counts[lane];
                    slot.access_counts[lane] += 1;
                    tr.samples.push((slot.warp, lane as u8, idx, d.min(u16::MAX as usize) as u16));
                }
            }
        };

        enum Next {
            Visit(NodeId),
            PopOrDone,
        }
        let next = match step {
            NodeStep::Inner(hits) => {
                if hits.is_empty() {
                    Next::PopOrDone
                } else {
                    // Push the non-nearest intersected children far-to-near.
                    for i in (1..hits.len()).rev() {
                        let pre = slot
                            .mstate
                            .is_some()
                            .then(|| (slot.stacks.global_len(lane), stats.ra_flushes));
                        slot.stacks.push(lane, hits.get(i).1, stats, new_ops);
                        record(slot, lane);
                        if let Some((pre_global, pre_flushes)) = pre {
                            Self::observe_push(slot, lane, pre_global, pre_flushes, stats, metrics);
                        }
                    }
                    Next::Visit(hits.get(0).1)
                }
            }
            NodeStep::Leaf(hit) => {
                let t = &mut slot.threads[lane];
                if let Some(h) = hit {
                    let q = t.query.expect("active thread");
                    if q.any_hit {
                        // Occlusion query: terminate immediately.
                        t.hit_leaf = t.current;
                        t.occluded = true;
                        t.done = true;
                        t.current = None;
                        slot.stacks.clear_lane(lane);
                        slot.done_count += 1;
                        Self::observe_lane_done(slot, lane, now, metrics);
                        let next = Self::after_ops_state(&slot.threads[lane]);
                        slot.transition(now, lane, next);
                        return;
                    }
                    if h.t < t.t_max {
                        t.hit_leaf = t.current;
                        t.t_max = h.t;
                        t.best = Some(h);
                    }
                }
                Next::PopOrDone
            }
        };

        match next {
            Next::Visit(node) => {
                slot.threads[lane].current = Some(node);
            }
            Next::PopOrDone => {
                if slot.stacks.is_empty(lane) {
                    let t = &mut slot.threads[lane];
                    t.done = true;
                    t.current = None;
                    slot.done_count += 1;
                    slot.stacks.mark_done(lane);
                    Self::observe_lane_done(slot, lane, now, metrics);
                } else {
                    let pre_global = slot.stacks.global_len(lane);
                    let v = slot.stacks.pop(lane, stats, new_ops);
                    record(slot, lane);
                    if let Some(ms) = slot.mstate.as_deref_mut() {
                        ms.reloads[lane] +=
                            pre_global.saturating_sub(slot.stacks.global_len(lane)) as u32;
                    }
                    slot.threads[lane].current = Some(v);
                }
            }
        }
        slot.threads[lane].ops.extend(new_ops.drain(..));
        let next = Self::after_ops_state(&slot.threads[lane]);
        slot.transition(now, lane, next);
    }

    /// Records the armed distributions for one completed push: depth and
    /// SH occupancy/chain state after the push, the lane's spill delta,
    /// and — when the push forced a reallocation flush — the evicted
    /// segment's consecutive-flush run. Spills land in the pushing lane's
    /// own global stack (both the baseline RB overflow and every SMS
    /// variant), so the `global_len` delta is exactly this push's spills.
    fn observe_push(
        slot: &mut WarpSlot,
        lane: usize,
        pre_global: usize,
        pre_flushes: u64,
        stats: &SimStats,
        metrics: &mut Option<Box<StackMetrics>>,
    ) {
        let (Some(m), Some(ms)) = (metrics.as_deref_mut(), slot.mstate.as_deref_mut()) else {
            return;
        };
        m.depth_at_push.record(slot.stacks.depth(lane) as u64);
        m.sh_occupancy.record(slot.stacks.sh_count(lane) as u64);
        m.borrow_chain.record(slot.stacks.chain_len(lane) as u64);
        ms.spills[lane] += slot.stacks.global_len(lane).saturating_sub(pre_global) as u32;
        if stats.ra_flushes > pre_flushes {
            // make_room rotates the flushed segment to the chain's tail.
            if let Some(&seg) = slot.stacks.chain(lane).last() {
                m.flush_runs.record(slot.stacks.segment_flushes(seg as usize) as u64);
            }
        }
    }

    /// Folds one finished ray (lane) into the per-ray distributions.
    fn observe_lane_done(
        slot: &mut WarpSlot,
        lane: usize,
        now: Cycle,
        metrics: &mut Option<Box<StackMetrics>>,
    ) {
        let (Some(m), Some(ms)) = (metrics.as_deref_mut(), slot.mstate.as_deref_mut()) else {
            return;
        };
        m.ray_latency.record(now - ms.admitted_at);
        m.ray_spills.record(ms.spills[lane] as u64);
        m.ray_reloads.record(ms.reloads[lane] as u64);
    }

    /// Ranks fetch classes so a lane waiting on several lines is charged
    /// to the slowest level among the lines that bound its wait.
    fn fetch_rank(class: LaneClass) -> u8 {
        match class {
            LaneClass::FetchDram => 2,
            LaneClass::FetchL2 => 1,
            _ => 0,
        }
    }

    /// Classifies which level served a fetched line, from the hit/miss
    /// counter deltas around its `access_line` call (pure observation). A
    /// ride-along on an in-flight MSHR line bumps no counter; its level is
    /// estimated from the remaining wait.
    fn classify_fetch(
        l1: &SmL1,
        global: &GlobalMemory,
        counters_before: (u64, u64, u64, u64),
        now: Cycle,
        done: Cycle,
    ) -> LaneClass {
        let (l1_hits, l1_misses, l2_hits, l2_misses) = counters_before;
        if global.stats.l2_misses > l2_misses {
            LaneClass::FetchDram
        } else if global.stats.l2_hits > l2_hits {
            LaneClass::FetchL2
        } else if l1.stats.l1_hits > l1_hits || l1.stats.l1_misses == l1_misses {
            // A hit — or no lookup at all (L1 MSHR ride-along with a short
            // remaining wait falls through to the estimate below).
            if l1.stats.l1_hits > l1_hits {
                LaneClass::FetchL1
            } else {
                let wait = done.saturating_sub(now);
                if wait > l1.config().latency + global.config().l2_latency {
                    LaneClass::FetchDram
                } else if wait > l1.config().latency {
                    LaneClass::FetchL2
                } else {
                    LaneClass::FetchL1
                }
            }
        } else {
            // L1 miss that merged into an in-flight L2/DRAM fetch.
            let wait = done.saturating_sub(now);
            if wait > l1.config().latency + global.config().l2_latency {
                LaneClass::FetchDram
            } else {
                LaneClass::FetchL2
            }
        }
    }

    /// Phase 2: issue the scheduled warp's node fetches and stack micro-ops.
    #[allow(clippy::too_many_arguments)]
    fn issue_warp<B: TraverseBvh>(
        slot: &mut WarpSlot,
        now: Cycle,
        bvh: &B,
        l1: &mut SmL1,
        shared: &mut SharedMem,
        global: &mut GlobalMemory,
        stats: &mut SimStats,
        sc: &mut IssueScratch,
        progress: &mut u64,
    ) {
        // --- Node fetches: collect, coalesce, issue per line. ---
        sc.fetch_lanes.clear();
        for lane in 0..WARP_SIZE {
            if matches!(slot.threads[lane].state, TState::NeedFetch) {
                let node = slot.threads[lane].current.expect("NeedFetch has a node");
                let mut spans = [BvhLayout::node_fetch(node); 2];
                let mut len = 1;
                if let Some((first, count)) = bvh.leaf_range(node) {
                    if count > 0 {
                        spans[1] = BvhLayout::leaf_fetch(first, count);
                        len = 2;
                    }
                }
                sc.fetch_lanes.push(FetchSpans { lane, spans, len });
            }
        }
        let attributing = slot.attr.is_some();
        if !sc.fetch_lanes.is_empty() {
            coalesce_lines_into(
                &mut sc.all_lines,
                sc.fetch_lanes.iter().flat_map(|f| f.spans[..f.len].iter().copied()),
            );
            sc.line_done.clear();
            sc.line_class.clear();
            for i in 0..sc.all_lines.len() {
                let line = sc.all_lines[i];
                let before = if attributing {
                    (
                        l1.stats.l1_hits,
                        l1.stats.l1_misses,
                        global.stats.l2_hits,
                        global.stats.l2_misses,
                    )
                } else {
                    (0, 0, 0, 0)
                };
                let done = l1.access_line(global, line, AccessKind::Load, now, false);
                sc.line_done.push((line, done));
                sc.line_class.push(if attributing {
                    Self::classify_fetch(l1, global, before, now, done)
                } else {
                    LaneClass::FetchL1
                });
            }
            for i in 0..sc.fetch_lanes.len() {
                let FetchSpans { lane, spans, len } = sc.fetch_lanes[i];
                coalesce_lines_into(&mut sc.lane_lines, spans[..len].iter().copied());
                let mut done = now + 1;
                let mut class = LaneClass::FetchL1;
                for j in 0..sc.lane_lines.len() {
                    let line = sc.lane_lines[j];
                    let k = sc
                        .line_done
                        .iter()
                        .position(|(dl, _)| *dl == line)
                        .expect("lane lines subset of warp lines");
                    let d = sc.line_done[k].1;
                    let c = sc.line_class[k];
                    if d > done || (d == done && Self::fetch_rank(c) >= Self::fetch_rank(class)) {
                        done = d;
                        class = c;
                    }
                }
                if slot.threads[lane].speculative {
                    // A speculative probe's fetch wait is predictor cost,
                    // whatever memory level serves it.
                    class = LaneClass::Predictor;
                }
                slot.transition_traced(now, lane, TState::WaitFetch { done }, class);
            }
        }

        // --- Stack micro-ops: one per stalled thread, batched by space. ---
        sc.shared_batch.clear();
        sc.shared_addrs.clear();
        sc.global_lanes.clear();
        for lane in 0..WARP_SIZE {
            if !matches!(slot.threads[lane].state, TState::StackIssue) {
                continue;
            }
            let op = slot.threads[lane].ops.front().expect("StackIssue implies pending op");
            match op.space {
                Space::Shared => {
                    sc.shared_addrs.extend(op.addrs.iter().copied());
                    sc.shared_batch.push((lane, op.is_blocking()));
                }
                Space::Global => {
                    sc.global_lanes.push(lane);
                }
            }
        }

        if !sc.shared_batch.is_empty() {
            stats.mem.shared_accesses += 1;
            let before = shared.conflict_cycles;
            let done = shared.access_warp(now, sc.shared_addrs.iter().copied());
            let extra = shared.conflict_cycles - before;
            stats.mem.bank_conflict_cycles += extra;
            for i in 0..sc.shared_batch.len() {
                let (lane, blocking) = sc.shared_batch[i];
                if blocking {
                    let level =
                        slot.threads[lane].ops.front().expect("shared lane has pending op").level;
                    if let Some(attr) = &mut slot.attr {
                        // This lane's wait includes the warp's bank-conflict
                        // replay passes; carved out when the wait flushes.
                        attr.pending_conflict[lane] = extra;
                    }
                    slot.transition_traced(
                        now,
                        lane,
                        TState::StackWait { done },
                        stack_class(level),
                    );
                } else {
                    slot.threads[lane].ops.pop_front();
                    *progress += 1; // posted store accepted
                    let next = Self::after_ops_state(&slot.threads[lane]);
                    slot.transition(now, lane, next);
                }
            }
        }

        if !sc.global_lanes.is_empty() {
            // Loads and stores share the issue path; kind resolved per lane,
            // with one `line -> completion` map across the whole warp.
            sc.line_done.clear();
            for i in 0..sc.global_lanes.len() {
                let lane = sc.global_lanes[i];
                let op = slot.threads[lane].ops.front().expect("global lane has pending op");
                let blocking = op.is_blocking();
                let level = op.level;
                let kind = if blocking { AccessKind::Load } else { AccessKind::Store };
                coalesce_lines_into(&mut sc.lane_lines, op.addrs.iter().copied());
                let mut done = now + 1;
                for j in 0..sc.lane_lines.len() {
                    let line = sc.lane_lines[j];
                    let d = match sc.line_done.iter().find(|(dl, _)| *dl == line) {
                        Some(&(_, d)) => d,
                        None => {
                            let d = l1.access_line(global, line, kind, now, true);
                            sc.line_done.push((line, d));
                            d
                        }
                    };
                    done = done.max(d);
                }
                if blocking {
                    slot.transition_traced(
                        now,
                        lane,
                        TState::StackWait { done },
                        stack_class(level),
                    );
                } else {
                    slot.threads[lane].ops.pop_front();
                    *progress += 1; // posted store accepted
                    let next = Self::after_ops_state(&slot.threads[lane]);
                    slot.transition(now, lane, next);
                }
            }
        }
    }
}
