//! Stack and traversal distributions recorded by the RT unit.
//!
//! Armed via [`crate::RtUnitConfig::metrics`] and, like the validator and
//! the stall-attribution taxonomy, **pure observation**: the recorders
//! read simulator state around the stack manager's push/pop choke points
//! but never feed a value back into a timing or counter decision, so a run
//! with metrics on is byte-identical to one with metrics off.
//!
//! Depths, occupancies and chain lengths are all far below the histogram's
//! linear-bucket cutoff, so those distributions are exact; only per-ray
//! traversal latency uses the log-bucketed region.

use sms_gpu::WARP_SIZE;
use sms_mem::Cycle;
use sms_metrics::Histogram;

/// Per-warp-slot accumulation state, allocated at admission (mirrors the
/// attribution taxonomy's `SlotAttr`). Lives behind an `Option<Box<..>>`
/// on the slot so the unarmed hot path carries one pointer-sized `None`.
#[derive(Debug)]
pub(crate) struct SlotMetrics {
    /// Cycle the warp was admitted to the warp buffer.
    pub admitted_at: Cycle,
    /// Entries this lane spilled to its global-memory stack so far.
    pub spills: [u32; WARP_SIZE],
    /// Entries this lane reloaded from its global-memory stack so far.
    pub reloads: [u32; WARP_SIZE],
}

impl SlotMetrics {
    pub(crate) fn new(admitted_at: Cycle) -> Self {
        SlotMetrics { admitted_at, spills: [0; WARP_SIZE], reloads: [0; WARP_SIZE] }
    }
}

/// Distributions over stack behaviour, aggregated across all retired rays
/// of one RT unit (merged across SMs by the simulator at end of run).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StackMetrics {
    /// Logical stack depth after every push.
    pub depth_at_push: Histogram,
    /// Entries resident in the pushing lane's SH level, after every push.
    pub sh_occupancy: Histogram,
    /// SH stacks linked into the pushing lane's chain, after every push
    /// (1 = dedicated only; >1 = borrows held).
    pub borrow_chain: Histogram,
    /// Consecutive-flush counter of the segment a reallocation flush just
    /// evicted (the paper's §VI-B flush-limit pressure signal).
    pub flush_runs: Histogram,
    /// Per-ray traversal latency: admission to lane completion, in cycles.
    pub ray_latency: Histogram,
    /// Per-ray entries spilled to the global-memory stack level.
    pub ray_spills: Histogram,
    /// Per-ray entries reloaded from the global-memory stack level.
    pub ray_reloads: Histogram,
}

impl StackMetrics {
    /// Folds another unit's distributions into this one.
    pub fn merge(&mut self, other: &StackMetrics) {
        // Exhaustive destructuring: adding a field without merging it is a
        // compile error.
        let StackMetrics {
            depth_at_push,
            sh_occupancy,
            borrow_chain,
            flush_runs,
            ray_latency,
            ray_spills,
            ray_reloads,
        } = other;
        self.depth_at_push.merge(depth_at_push);
        self.sh_occupancy.merge(sh_occupancy);
        self.borrow_chain.merge(borrow_chain);
        self.flush_runs.merge(flush_runs);
        self.ray_latency.merge(ray_latency);
        self.ray_spills.merge(ray_spills);
        self.ray_reloads.merge(ray_reloads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_fieldwise() {
        let mut a = StackMetrics::default();
        a.depth_at_push.record(3);
        a.ray_latency.record(1000);
        let mut b = StackMetrics::default();
        b.depth_at_push.record(5);
        b.ray_spills.record(2);
        a.merge(&b);
        assert_eq!(a.depth_at_push.count(), 2);
        assert_eq!(a.ray_latency.count(), 1);
        assert_eq!(a.ray_spills.sum(), 2);
    }
}
