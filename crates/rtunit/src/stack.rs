//! Hierarchical per-thread traversal stacks (paper §IV–§VI).
//!
//! Logically every thread owns one LIFO stack of BVH node ids. Physically
//! the stack is split across up to three levels, newest entries first:
//!
//! ```text
//!   RB stack (ray buffer SRAM)  <- top, free to access
//!   SH stack (shared memory)    <- SMS only: circular queue, banked
//!   global memory spill region  <- oldest entries, off-chip
//! ```
//!
//! A push that overflows the RB stack spills the *oldest* RB entry one
//! level down; a pop eagerly refills the freed RB slot from the most recent
//! entry one level down (paper Fig. 3 and Fig. 7). Every inter-level move
//! emits [`MicroOp`]s that the RT unit times through the memory system —
//! the stack *contents* move immediately, so traversal results are exact.
//!
//! The SMS optimizations:
//! * **Skewed bank access** (§V-A): thread `t`'s circular SH stack starts at
//!   entry `(t / k) mod N` with `k = 32 / 2N`, spreading warp-wide accesses
//!   over the 32 shared-memory banks.
//! * **Dynamic intra-warp reallocation** (§V-B, §VI-B): threads that finish
//!   traversal mark their SH stack *idle*; running threads whose chain is
//!   full borrow idle stacks (up to 4 concurrent borrows, tracked like the
//!   hardware's `Next TID` links). With nothing left to borrow, the chain's
//!   *bottom* stack is flushed wholesale to global memory and promoted to
//!   the top (≤3 consecutive flushes per stack before a forced flush).

use crate::microop::{MicroOp, StackLevel};
use crate::validator::{StackValidator, StackViolation};
use sms_gpu::{SimStats, WARP_SIZE};
use sms_mem::space::spill_slot_addr;
use sms_mem::{AccessKind, Addr};
use std::collections::VecDeque;

/// Parameters of the SMS two-level stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmsParams {
    /// RB (primary) stack entries per thread. Paper default: 8.
    pub rb_entries: usize,
    /// SH (secondary) stack entries per thread. Paper default: 8.
    pub sh_entries: usize,
    /// Enable skewed bank access (§V-A).
    pub skewed: bool,
    /// Enable dynamic intra-warp reallocation (§V-B).
    pub realloc: bool,
    /// Maximum concurrently borrowed SH stacks per thread (paper: 4).
    pub borrow_limit: usize,
    /// Maximum consecutive flushes per allocated SH stack (paper: 3).
    pub flush_limit: u8,
}

impl Default for SmsParams {
    /// `RB_8 + SH_8` without optimizations (the paper's `+SH_8` bar).
    fn default() -> Self {
        SmsParams {
            rb_entries: 8,
            sh_entries: 8,
            skewed: false,
            realloc: false,
            borrow_limit: 4,
            flush_limit: 3,
        }
    }
}

impl SmsParams {
    /// Returns a copy with skewed bank access enabled/disabled.
    pub fn with_skewed(mut self, on: bool) -> Self {
        self.skewed = on;
        self
    }

    /// Returns a copy with intra-warp reallocation enabled/disabled.
    pub fn with_realloc(mut self, on: bool) -> Self {
        self.realloc = on;
        self
    }
}

/// Which traversal-stack architecture a simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackConfig {
    /// RB stack only; overflow spills directly to global memory (`RB_N`).
    Baseline {
        /// RB entries per thread.
        rb_entries: usize,
    },
    /// The proposed two-level design (`RB_N + SH_M [+SK] [+RA]`).
    Sms(SmsParams),
    /// An unbounded on-chip stack (`RB_FULL`) — the paper's impractical
    /// upper bound.
    FullOnChip,
    /// Stackless escape-index traversal (`SL`) — the stack-*elimination*
    /// competitor (Prokopenko & Lebrun-Grandié): the RT unit follows the
    /// `FlatBvh` parent/escape links, performing zero stack pushes, pops
    /// or spills. The cost moves to extra node re-visits (the fixed
    /// left-to-right order loses nearest-first culling), which are charged
    /// through the ordinary fetch/op pipeline.
    Stackless,
    /// Hash-based ray-path prediction (`PRED_<bits>`, Demoullin et al.)
    /// layered over an 8-entry RB baseline stack: a per-RT-unit
    /// direct-mapped table keyed by quantized ray origin/direction
    /// predicts the leaf a ray will hit. A correct prediction skips the
    /// inner-node traversal entirely; a mispredict falls back to the full
    /// stacked traversal and is charged to its own stall-ledger bucket.
    Predictor {
        /// log2 of the per-RT-unit prediction-table entry count.
        table_bits: u32,
    },
}

impl StackConfig {
    /// The paper's baseline: an 8-entry RB stack.
    pub fn baseline8() -> Self {
        StackConfig::Baseline { rb_entries: 8 }
    }

    /// The full SMS architecture: `RB_8 + SH_8 + SK + RA`.
    pub fn sms_default() -> Self {
        StackConfig::Sms(SmsParams::default().with_skewed(true).with_realloc(true))
    }

    /// The stackless escape-index competitor (`SL`).
    pub fn stackless() -> Self {
        StackConfig::Stackless
    }

    /// The default ray-path predictor: a 4096-entry table (`PRED_12`).
    pub fn predictor_default() -> Self {
        StackConfig::Predictor { table_bits: 12 }
    }

    /// RB capacity in entries.
    pub fn rb_capacity(&self) -> usize {
        match self {
            StackConfig::Baseline { rb_entries } => *rb_entries,
            StackConfig::Sms(p) => p.rb_entries,
            StackConfig::FullOnChip => usize::MAX >> 1,
            StackConfig::Stackless => 0,
            // The predictor's fallback path is the paper's RB_8 baseline.
            StackConfig::Predictor { .. } => 8,
        }
    }

    /// `true` when every thread performs the *same* traversal work under
    /// this config as under the stacked reference — the paper's
    /// normalized-IPC premise. Stackless re-visits nodes and the
    /// predictor skips them, so neither is work-preserving.
    pub fn preserves_traversal_work(&self) -> bool {
        !matches!(self, StackConfig::Stackless | StackConfig::Predictor { .. })
    }

    /// log2 of the prediction-table size, for predictor configs.
    pub fn predictor_bits(&self) -> Option<u32> {
        match self {
            StackConfig::Predictor { table_bits } => Some(*table_bits),
            _ => None,
        }
    }

    /// SMS parameters, if this is an SMS configuration.
    pub fn sms_params(&self) -> Option<&SmsParams> {
        match self {
            StackConfig::Sms(p) => Some(p),
            _ => None,
        }
    }

    /// Shared-memory bytes one warp's SH stacks occupy.
    pub fn shared_bytes_per_warp(&self) -> u64 {
        match self {
            StackConfig::Sms(p) => (WARP_SIZE * p.sh_entries * 8) as u64,
            _ => 0,
        }
    }

    /// Shared-memory bytes an RT unit holding `max_warps` warps needs —
    /// the amount carved out of the unified L1/shared array (§IV-B).
    pub fn shared_carveout(&self, max_warps: usize) -> u64 {
        self.shared_bytes_per_warp() * max_warps as u64
    }

    /// Short human-readable label (`RB_8+SH_8+SK+RA` style).
    pub fn label(&self) -> String {
        match self {
            StackConfig::Baseline { rb_entries } => format!("RB_{rb_entries}"),
            StackConfig::FullOnChip => "RB_FULL".to_owned(),
            StackConfig::Stackless => "SL".to_owned(),
            StackConfig::Predictor { table_bits } => format!("PRED_{table_bits}"),
            StackConfig::Sms(p) => {
                let mut s = format!("RB_{}+SH_{}", p.rb_entries, p.sh_entries);
                if p.skewed {
                    s.push_str("+SK");
                }
                if p.realloc {
                    s.push_str("+RA");
                }
                s
            }
        }
    }
}

impl std::fmt::Display for StackConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// The skewed base entry index of §VI-B:
/// `base = (tid / k) mod N`, `k = 32 / (N * 2)`.
///
/// The paper's `k` assumes `2N` divides the warp width (every size it
/// evaluates). For other sizes we generalize to `k = 32 / gcd(2N, 32)` —
/// identical on all power-of-two sizes, but clamp-free: the naive
/// `(32 / 2N).max(1)` degenerates on non-power-of-two stacks (e.g. `N = 5`
/// lands 10 of 32 lane bases on one bank, five times worse than disabling
/// skew), while the gcd form provably spreads the 32 bases two-per-bank
/// for every `N` (see `skew_never_degenerates_for_any_sh_size`).
pub fn base_entry_index(lane: usize, sh_entries: usize, skewed: bool) -> u32 {
    if !skewed || sh_entries == 0 {
        return 0;
    }
    let k = (WARP_SIZE / gcd(2 * sh_entries, WARP_SIZE)).max(1);
    ((lane / k) % sh_entries) as u32
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// One thread-sized SH stack region (a circular queue in shared memory).
#[derive(Debug, Clone)]
struct Segment {
    entries: VecDeque<u32>,
    cap: u32,
    /// Physical index where the next pushed entry goes.
    top_phys: u32,
    /// Physical index of the current oldest entry.
    bottom_phys: u32,
    /// Consecutive flushes since last reset (RA bookkeeping).
    flushes: u8,
    /// Available for borrowing (owner finished, nobody using it).
    idle: bool,
    /// The skewed base entry this segment resets to.
    base: u32,
}

impl Segment {
    fn new(cap: u32, base: u32) -> Self {
        Segment {
            entries: VecDeque::new(),
            cap,
            top_phys: base,
            bottom_phys: base,
            flushes: 0,
            idle: false,
            base,
        }
    }

    fn is_full(&self) -> bool {
        self.entries.len() as u32 >= self.cap
    }

    fn reset(&mut self) {
        debug_assert!(self.entries.is_empty());
        self.top_phys = self.base;
        self.bottom_phys = self.base;
    }

    /// Pushes on top; returns the physical entry index written.
    fn push_top(&mut self, v: u32) -> u32 {
        debug_assert!(!self.is_full());
        let idx = self.top_phys;
        self.top_phys = (self.top_phys + 1) % self.cap;
        self.entries.push_back(v);
        idx
    }

    /// Pops the newest entry; returns `(value, physical index read)`.
    fn pop_top(&mut self) -> (u32, u32) {
        let v = self.entries.pop_back().expect("pop_top on empty segment");
        self.top_phys = (self.top_phys + self.cap - 1) % self.cap;
        (v, self.top_phys)
    }

    /// Removes the oldest entry; returns `(value, physical index read)`.
    fn evict_bottom(&mut self) -> (u32, u32) {
        let v = self.entries.pop_front().expect("evict_bottom on empty segment");
        let idx = self.bottom_phys;
        self.bottom_phys = (self.bottom_phys + 1) % self.cap;
        (v, idx)
    }

    /// Inserts below the oldest entry; returns the physical index written.
    fn insert_bottom(&mut self, v: u32) -> u32 {
        debug_assert!(!self.is_full());
        self.bottom_phys = (self.bottom_phys + self.cap - 1) % self.cap;
        self.entries.push_front(v);
        self.bottom_phys
    }
}

/// The traversal stacks of one warp (32 threads), in one RT-unit warp slot.
///
/// # Example
///
/// ```
/// use sms_rtunit::{StackConfig, WarpStacks};
/// use sms_gpu::SimStats;
///
/// let mut stacks = WarpStacks::new(&StackConfig::sms_default(), 0, 0);
/// let mut stats = SimStats::default();
/// let mut ops = Vec::new();
/// for n in 0..20 {
///     stacks.push(0, n, &mut stats, &mut ops);
/// }
/// assert_eq!(stacks.depth(0), 20);
/// for n in (0..20).rev() {
///     assert_eq!(stacks.pop(0, &mut stats, &mut ops), n);
/// }
/// assert!(stacks.is_empty(0));
/// ```
#[derive(Debug, Clone)]
pub struct WarpStacks {
    config: StackConfig,
    rb_cap: usize,
    rb: Vec<Vec<u32>>,
    global: Vec<Vec<u32>>,
    segs: Vec<Segment>,
    chains: Vec<Vec<u8>>,
    region_base: Addr,
    tid_base: u32,
    /// Optional invariant validator (see [`crate::validator`]); absent in
    /// normal runs, so the hot paths below pay one `Option` check at most.
    validator: Option<Box<StackValidator>>,
}

impl WarpStacks {
    /// Creates empty stacks for a warp.
    ///
    /// `region_base` is the warp slot's shared-memory byte offset inside the
    /// SM's shared array; `tid_base` is the warp's first global thread id
    /// (determines spill-region addresses).
    pub fn new(config: &StackConfig, region_base: Addr, tid_base: u32) -> Self {
        let (segs, chains) = match config {
            StackConfig::Sms(p) if p.sh_entries > 0 => {
                let segs = (0..WARP_SIZE)
                    .map(|lane| {
                        Segment::new(
                            p.sh_entries as u32,
                            base_entry_index(lane, p.sh_entries, p.skewed),
                        )
                    })
                    .collect();
                let chains = (0..WARP_SIZE).map(|lane| vec![lane as u8]).collect();
                (segs, chains)
            }
            _ => (Vec::new(), (0..WARP_SIZE).map(|_| Vec::new()).collect()),
        };
        WarpStacks {
            rb_cap: config.rb_capacity(),
            config: *config,
            rb: vec![Vec::new(); WARP_SIZE],
            global: vec![Vec::new(); WARP_SIZE],
            segs,
            chains,
            region_base,
            tid_base,
            validator: None,
        }
    }

    /// Attaches a [`StackValidator`] that checks the SMS invariants at
    /// every transition. Pure observation: enabling it cannot change any
    /// stack content, micro-op or counter of the run.
    pub fn enable_validator(&mut self) {
        self.validator = Some(Box::new(StackValidator::new()));
    }

    /// The first invariant violation the validator latched, if any.
    pub fn take_violation(&mut self) -> Option<StackViolation> {
        self.validator.as_mut().and_then(|v| v.take_violation())
    }

    /// Runs `f` with the validator temporarily detached (it needs `&self`
    /// while living inside `self`). No-op without a validator.
    fn with_validator(&mut self, f: impl FnOnce(&mut StackValidator, &WarpStacks)) {
        if let Some(mut v) = self.validator.take() {
            f(&mut v, self);
            self.validator = Some(v);
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &StackConfig {
        &self.config
    }

    /// Entries resident in the lane's RB level (validator/observability).
    pub fn rb_len(&self, lane: usize) -> usize {
        self.rb[lane].len()
    }

    /// Entries spilled to the lane's global-memory level.
    pub fn global_len(&self, lane: usize) -> usize {
        self.global[lane].len()
    }

    /// The RB capacity in effect.
    pub fn rb_capacity(&self) -> usize {
        self.rb_cap
    }

    /// The lane's reallocation chain (dedicated stack first).
    pub fn chain(&self, lane: usize) -> &[u8] {
        &self.chains[lane]
    }

    /// Entries resident in SH stack `seg`.
    pub fn segment_len(&self, seg: usize) -> usize {
        self.segs.get(seg).map_or(0, |s| s.entries.len())
    }

    /// Whether SH stack `seg` is marked idle (borrowable).
    pub fn segment_idle(&self, seg: usize) -> bool {
        self.segs.get(seg).is_some_and(|s| s.idle)
    }

    /// SH stack `seg`'s consecutive-flush counter.
    pub fn segment_flushes(&self, seg: usize) -> u8 {
        self.segs.get(seg).map_or(0, |s| s.flushes)
    }

    /// Logical stack depth of a lane.
    pub fn depth(&self, lane: usize) -> usize {
        self.rb[lane].len() + self.sh_count(lane) + self.global[lane].len()
    }

    /// `true` when the lane's logical stack is empty.
    pub fn is_empty(&self, lane: usize) -> bool {
        self.depth(lane) == 0
    }

    /// Entries currently resident in the lane's SH level.
    pub fn sh_count(&self, lane: usize) -> usize {
        self.chains[lane].iter().map(|&s| self.segs[s as usize].entries.len()).sum()
    }

    /// Number of SH stacks currently linked into the lane's chain
    /// (1 dedicated + borrows).
    pub fn chain_len(&self, lane: usize) -> usize {
        self.chains[lane].len().max(1)
    }

    /// The lane's full logical stack, oldest first (for tests/debugging).
    pub fn logical_contents(&self, lane: usize) -> Vec<u32> {
        let mut v = self.global[lane].clone();
        for &s in &self.chains[lane] {
            v.extend(self.segs[s as usize].entries.iter().copied());
        }
        v.extend(self.rb[lane].iter().copied());
        v
    }

    fn seg_entry_addr(&self, seg: u8, phys: u32) -> Addr {
        let sh_cap = self.config.sms_params().map(|p| p.sh_entries).unwrap_or(0) as u64;
        self.region_base + seg as u64 * sh_cap * 8 + phys as u64 * 8
    }

    fn spill_addr(&self, lane: usize, slot: usize) -> Addr {
        spill_slot_addr(self.tid_base + lane as u32, slot as u32)
    }

    /// Pushes `node` onto the lane's logical stack, appending the memory
    /// micro-ops of any required spills to `ops`.
    pub fn push(&mut self, lane: usize, node: u32, stats: &mut SimStats, ops: &mut Vec<MicroOp>) {
        if self.rb[lane].len() < self.rb_cap {
            self.rb[lane].push(node);
            if self.validator.is_some() {
                self.with_validator(|v, s| v.after_push(s, lane, node));
            }
            return;
        }
        // RB overflow: spill the oldest RB entry one level down.
        stats.rb_spills += 1;
        let old = self.rb[lane].remove(0);
        self.rb[lane].push(node);
        match self.config {
            // The predictor's fallback traversal uses the baseline's
            // direct-to-global spill path.
            StackConfig::Baseline { .. } | StackConfig::Predictor { .. } => {
                let slot = self.global[lane].len();
                self.global[lane].push(old);
                ops.push(MicroOp::global(
                    AccessKind::Store,
                    StackLevel::ShGlobal,
                    self.spill_addr(lane, slot),
                ));
            }
            StackConfig::Sms(p) => self.push_to_sh(lane, old, &p, stats, ops),
            StackConfig::FullOnChip => unreachable!("full stack never overflows"),
            StackConfig::Stackless => unreachable!("stackless traversal never pushes"),
        }
        if self.validator.is_some() {
            self.with_validator(|v, s| v.after_push(s, lane, node));
        }
    }

    fn push_to_sh(
        &mut self,
        lane: usize,
        v: u32,
        p: &SmsParams,
        stats: &mut SimStats,
        ops: &mut Vec<MicroOp>,
    ) {
        if p.sh_entries == 0 {
            // Degenerate SH_0: behave like the baseline.
            let slot = self.global[lane].len();
            self.global[lane].push(v);
            ops.push(MicroOp::global(
                AccessKind::Store,
                StackLevel::ShGlobal,
                self.spill_addr(lane, slot),
            ));
            return;
        }
        let top = *self.chains[lane].last().expect("chain never empty");
        if self.segs[top as usize].is_full() {
            self.make_room(lane, p, stats, ops);
        }
        let top = *self.chains[lane].last().expect("chain never empty");
        let idx = self.segs[top as usize].push_top(v);
        ops.push(MicroOp::shared(
            AccessKind::Store,
            StackLevel::RbSh,
            self.seg_entry_addr(top, idx),
        ));
    }

    /// Frees one slot in the lane's top SH stack: borrow, flush, or
    /// single-entry spill (§VI-B).
    fn make_room(
        &mut self,
        lane: usize,
        p: &SmsParams,
        stats: &mut SimStats,
        ops: &mut Vec<MicroOp>,
    ) {
        if p.realloc {
            // 1. Borrow an idle stack from an early-finished thread.
            if self.chains[lane].len() < 1 + p.borrow_limit {
                if let Some(idle) = self.find_idle_segment() {
                    self.segs[idle as usize].idle = false;
                    self.segs[idle as usize].reset();
                    self.chains[lane].push(idle);
                    stats.ra_borrows += 1;
                    return;
                }
            }
            // 2. Flush the bottom stack wholesale to global memory and
            //    promote it to the top of the chain. Beyond the flush limit
            //    this still happens (forced) — it is the only move that
            //    preserves bottom-up fill order across linked stacks.
            if self.validator.is_some() {
                let chain_len = self.chains[lane].len();
                let idle = self.find_idle_segment().is_some();
                let borrow_limit = p.borrow_limit;
                self.with_validator(|v, _| v.before_flush(lane, chain_len, borrow_limit, idle));
            }
            let bottom = self.chains[lane][0];
            self.segs[bottom as usize].flushes =
                self.segs[bottom as usize].flushes.saturating_add(1);
            stats.ra_flushes += 1;
            let mut shared_reads = Vec::new();
            let mut global_writes = Vec::new();
            while !self.segs[bottom as usize].entries.is_empty() {
                let (val, idx) = self.segs[bottom as usize].evict_bottom();
                shared_reads.push((self.seg_entry_addr(bottom, idx), 8));
                let slot = self.global[lane].len();
                self.global[lane].push(val);
                global_writes.push((self.spill_addr(lane, slot), 8));
                stats.sh_spills += 1;
            }
            ops.push(MicroOp {
                space: crate::Space::Shared,
                kind: AccessKind::Load,
                level: StackLevel::Flush,
                addrs: shared_reads,
            });
            ops.push(MicroOp {
                space: crate::Space::Global,
                kind: AccessKind::Store,
                level: StackLevel::Flush,
                addrs: global_writes,
            });
            self.segs[bottom as usize].reset();
            self.chains[lane].rotate_left(1);
        } else {
            // Plain SMS: move the single segment's oldest entry to global
            // (shared load -> global store), as in Fig. 7 steps 3-4.
            let seg = self.chains[lane][0];
            let (val, idx) = self.segs[seg as usize].evict_bottom();
            ops.push(MicroOp::shared(
                AccessKind::Load,
                StackLevel::ShGlobal,
                self.seg_entry_addr(seg, idx),
            ));
            let slot = self.global[lane].len();
            self.global[lane].push(val);
            ops.push(MicroOp::global(
                AccessKind::Store,
                StackLevel::ShGlobal,
                self.spill_addr(lane, slot),
            ));
            stats.sh_spills += 1;
        }
    }

    fn find_idle_segment(&self) -> Option<u8> {
        (0..WARP_SIZE as u8).find(|&s| self.segs[s as usize].idle)
    }

    /// Pops the logical top of the lane's stack, eagerly refilling the RB
    /// stack from below (paper Fig. 3 step 5 / Fig. 7 steps 2, 5, 6).
    ///
    /// # Panics
    ///
    /// Panics if the lane's stack is empty.
    pub fn pop(&mut self, lane: usize, stats: &mut SimStats, ops: &mut Vec<MicroOp>) -> u32 {
        let val = self.rb[lane].pop().expect("pop on empty traversal stack");
        match self.config {
            StackConfig::FullOnChip => {}
            StackConfig::Stackless => unreachable!("stackless traversal never pops"),
            StackConfig::Baseline { .. } | StackConfig::Predictor { .. } => {
                if let Some(v) = self.global[lane].pop() {
                    stats.rb_reloads += 1;
                    let slot = self.global[lane].len();
                    ops.push(MicroOp::global(
                        AccessKind::Load,
                        StackLevel::ShGlobal,
                        self.spill_addr(lane, slot),
                    ));
                    self.rb[lane].insert(0, v);
                }
            }
            StackConfig::Sms(_) => {
                if self.sh_count(lane) > 0 {
                    stats.rb_reloads += 1;
                    let top = *self.chains[lane].last().expect("chain never empty");
                    let (v, idx) = self.segs[top as usize].pop_top();
                    ops.push(MicroOp::shared(
                        AccessKind::Load,
                        StackLevel::RbSh,
                        self.seg_entry_addr(top, idx),
                    ));
                    self.rb[lane].insert(0, v);
                    self.release_empty_tops(lane);
                    // Refill shared memory from global (newest spilled entry
                    // moves up) when the bottom stack has room.
                    let bottom = self.chains[lane][0];
                    if !self.segs[bottom as usize].is_full() && !self.global[lane].is_empty() {
                        let g = self.global[lane].pop().expect("checked non-empty");
                        stats.sh_reloads += 1;
                        let slot = self.global[lane].len();
                        ops.push(MicroOp::global(
                            AccessKind::Load,
                            StackLevel::ShGlobal,
                            self.spill_addr(lane, slot),
                        ));
                        let idx = self.segs[bottom as usize].insert_bottom(g);
                        ops.push(MicroOp::shared(
                            AccessKind::Store,
                            StackLevel::ShGlobal,
                            self.seg_entry_addr(bottom, idx),
                        ));
                    }
                } else if let Some(v) = self.global[lane].pop() {
                    // SH_0 degenerate case: direct global reload.
                    stats.rb_reloads += 1;
                    let slot = self.global[lane].len();
                    ops.push(MicroOp::global(
                        AccessKind::Load,
                        StackLevel::ShGlobal,
                        self.spill_addr(lane, slot),
                    ));
                    self.rb[lane].insert(0, v);
                }
            }
        }
        if self.validator.is_some() {
            self.with_validator(|va, s| va.after_pop(s, lane, val));
        }
        val
    }

    /// Releases emptied borrowed stacks back to the idle pool.
    fn release_empty_tops(&mut self, lane: usize) {
        while self.chains[lane].len() > 1 {
            let top = *self.chains[lane].last().expect("len > 1");
            if !self.segs[top as usize].entries.is_empty() {
                break;
            }
            self.chains[lane].pop();
            let seg = &mut self.segs[top as usize];
            seg.flushes = 0;
            seg.reset();
            seg.idle = true;
        }
    }

    /// Discards a lane's remaining logical stack without memory traffic —
    /// hardware just resets the stack-pointer fields. Used when an any-hit
    /// (occlusion) query terminates early with entries still stacked.
    pub fn clear_lane(&mut self, lane: usize) {
        self.rb[lane].clear();
        self.global[lane].clear();
        if let StackConfig::Sms(p) = self.config {
            if p.sh_entries > 0 {
                while self.chains[lane].len() > 1 {
                    let top = self.chains[lane].pop().expect("len > 1");
                    let seg = &mut self.segs[top as usize];
                    seg.entries.clear();
                    seg.flushes = 0;
                    seg.reset();
                    seg.idle = true;
                }
                let own = self.chains[lane][0];
                let seg = &mut self.segs[own as usize];
                seg.entries.clear();
                seg.flushes = 0;
                seg.reset();
                if p.realloc {
                    seg.idle = true;
                }
            }
        }
        if self.validator.is_some() {
            self.with_validator(|v, s| v.on_clear(s, lane));
        }
    }

    /// Marks a lane's traversal as finished: with reallocation enabled its
    /// dedicated SH stack becomes available for borrowing (§VI-B `Idle`).
    ///
    /// Terminal for the lane within this trace: the lane must not push or
    /// pop again (the RT unit allocates fresh [`WarpStacks`] per trace
    /// request, matching the hardware's per-trace warp-buffer lifetime).
    pub fn mark_done(&mut self, lane: usize) {
        // With a validator attached this becomes a latched structured
        // violation instead of an abort (see `StackValidator::on_mark_done`).
        debug_assert!(
            self.validator.is_some() || self.is_empty(lane),
            "mark_done with entries left"
        );
        if let StackConfig::Sms(p) = self.config {
            if p.realloc && p.sh_entries > 0 {
                self.release_empty_tops(lane);
                let seg = &mut self.segs[lane];
                // The dedicated stack may itself have been borrowed already
                // if this lane finished long ago; only idle it when it is
                // still this lane's chain head and empty.
                if self.chains[lane][0] == lane as u8 && seg.entries.is_empty() && !seg.idle {
                    seg.flushes = 0;
                    seg.reset();
                    seg.idle = true;
                }
            }
        }
        if self.validator.is_some() {
            self.with_validator(|v, s| v.on_mark_done(s, lane));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::ViolationKind;

    fn push_n(stacks: &mut WarpStacks, lane: usize, n: u32) -> (SimStats, Vec<MicroOp>) {
        let mut stats = SimStats::default();
        let mut ops = Vec::new();
        for i in 0..n {
            stacks.push(lane, i, &mut stats, &mut ops);
        }
        (stats, ops)
    }

    fn pop_all(stacks: &mut WarpStacks, lane: usize) -> Vec<u32> {
        let mut stats = SimStats::default();
        let mut ops = Vec::new();
        let mut out = Vec::new();
        while !stacks.is_empty(lane) {
            out.push(stacks.pop(lane, &mut stats, &mut ops));
        }
        out
    }

    fn lifo_check(config: StackConfig, n: u32) {
        let mut s = WarpStacks::new(&config, 0, 0);
        push_n(&mut s, 3, n);
        assert_eq!(s.depth(3), n as usize);
        let popped = pop_all(&mut s, 3);
        let expected: Vec<u32> = (0..n).rev().collect();
        assert_eq!(popped, expected, "{config} must be LIFO for {n} entries");
    }

    #[test]
    fn all_configs_are_lifo() {
        for n in [1, 7, 8, 9, 16, 17, 40, 100] {
            lifo_check(StackConfig::baseline8(), n);
            lifo_check(StackConfig::FullOnChip, n);
            lifo_check(StackConfig::predictor_default(), n);
            lifo_check(StackConfig::Sms(SmsParams::default()), n);
            lifo_check(StackConfig::sms_default(), n);
            lifo_check(StackConfig::Sms(SmsParams { sh_entries: 4, ..SmsParams::default() }), n);
        }
    }

    #[test]
    fn interleaved_push_pop_matches_reference() {
        for config in [
            StackConfig::baseline8(),
            StackConfig::Sms(SmsParams::default().with_skewed(true)),
            StackConfig::sms_default(),
        ] {
            let mut s = WarpStacks::new(&config, 0, 0);
            let mut reference: Vec<u32> = Vec::new();
            let mut stats = SimStats::default();
            let mut ops = Vec::new();
            let mut rng = sms_geom::SplitMix64::new(1234);
            let mut next = 0u32;
            for _ in 0..2000 {
                if reference.is_empty() || rng.next_f32() < 0.55 {
                    s.push(0, next, &mut stats, &mut ops);
                    reference.push(next);
                    next += 1;
                } else {
                    let got = s.pop(0, &mut stats, &mut ops);
                    assert_eq!(got, reference.pop().unwrap(), "{config}");
                }
                assert_eq!(s.depth(0), reference.len(), "{config}");
            }
            assert_eq!(s.logical_contents(0), reference, "{config}");
        }
    }

    #[test]
    fn baseline_spills_to_global_at_rb_capacity() {
        let mut s = WarpStacks::new(&StackConfig::baseline8(), 0, 0);
        let (stats, ops) = push_n(&mut s, 0, 12);
        assert_eq!(stats.rb_spills, 4);
        let stores = ops
            .iter()
            .filter(|o| o.space == crate::Space::Global && o.kind == AccessKind::Store)
            .count();
        assert_eq!(stores, 4);
    }

    #[test]
    fn full_stack_never_spills() {
        let mut s = WarpStacks::new(&StackConfig::FullOnChip, 0, 0);
        let (stats, ops) = push_n(&mut s, 0, 500);
        assert_eq!(stats.rb_spills, 0);
        assert!(ops.is_empty());
    }

    #[test]
    fn sms_spills_to_shared_first() {
        let mut s = WarpStacks::new(&StackConfig::Sms(SmsParams::default()), 0, 0);
        // 8 RB + 8 SH = first 16 pushes never reach global memory.
        let (stats, ops) = push_n(&mut s, 0, 16);
        assert_eq!(stats.rb_spills, 8);
        assert_eq!(stats.sh_spills, 0);
        assert!(ops.iter().all(|o| o.space == crate::Space::Shared));
        // The 17th push overflows SH -> shared load + global store + shared store.
        let mut stats = SimStats::default();
        let mut ops = Vec::new();
        s.push(0, 99, &mut stats, &mut ops);
        assert_eq!(stats.sh_spills, 1);
        let kinds: Vec<(crate::Space, AccessKind)> =
            ops.iter().map(|o| (o.space, o.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                (crate::Space::Shared, AccessKind::Load),
                (crate::Space::Global, AccessKind::Store),
                (crate::Space::Shared, AccessKind::Store),
            ],
            "push with both stacks full follows the Fig. 7 sequence"
        );
    }

    #[test]
    fn pop_eagerly_refills_rb_from_shared() {
        let mut s = WarpStacks::new(&StackConfig::Sms(SmsParams::default()), 0, 0);
        push_n(&mut s, 0, 12); // 8 RB + 4 SH
        let mut stats = SimStats::default();
        let mut ops = Vec::new();
        let v = s.pop(0, &mut stats, &mut ops);
        assert_eq!(v, 11);
        assert_eq!(stats.rb_reloads, 1);
        assert_eq!(s.rb[0].len(), 8, "RB stays full while lower levels hold entries");
        assert_eq!(s.sh_count(0), 3);
        assert!(matches!(
            ops[0],
            MicroOp { space: crate::Space::Shared, kind: AccessKind::Load, .. }
        ));
    }

    #[test]
    fn pop_cascades_reload_from_global_into_shared() {
        let mut s = WarpStacks::new(&StackConfig::Sms(SmsParams::default()), 0, 0);
        push_n(&mut s, 0, 20); // 8 RB + 8 SH + 4 global
        assert_eq!(s.global[0].len(), 4);
        let mut stats = SimStats::default();
        let mut ops = Vec::new();
        s.pop(0, &mut stats, &mut ops);
        assert_eq!(stats.rb_reloads, 1);
        assert_eq!(stats.sh_reloads, 1);
        assert_eq!(s.global[0].len(), 3);
        assert_eq!(s.sh_count(0), 8, "SH refilled from global");
        let kinds: Vec<(crate::Space, AccessKind)> =
            ops.iter().map(|o| (o.space, o.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                (crate::Space::Shared, AccessKind::Load),
                (crate::Space::Global, AccessKind::Load),
                (crate::Space::Shared, AccessKind::Store),
            ],
            "pop with both overflows: shared load, then global load + shared store"
        );
    }

    #[test]
    fn skew_formula_matches_paper_example() {
        // N=8 -> k=2: threads 0,1 -> entry 0; 2,3 -> entry 1; 16,17 -> 0.
        assert_eq!(base_entry_index(0, 8, true), 0);
        assert_eq!(base_entry_index(1, 8, true), 0);
        assert_eq!(base_entry_index(2, 8, true), 1);
        assert_eq!(base_entry_index(3, 8, true), 1);
        assert_eq!(base_entry_index(16, 8, true), 0);
        assert_eq!(base_entry_index(18, 8, true), 1);
        assert_eq!(base_entry_index(30, 8, true), 7);
        // N=16 -> k=1: thread t -> t mod 16.
        assert_eq!(base_entry_index(5, 16, true), 5);
        assert_eq!(base_entry_index(21, 16, true), 5);
        // Disabled skew -> always 0.
        assert_eq!(base_entry_index(9, 8, false), 0);
    }

    /// How many of the warp's 32 skewed base entries land on each of the 32
    /// shared-memory banks (4-byte banks; lane `l`'s dedicated segment
    /// starts at byte `l * N * 8`).
    fn base_bank_histogram(sh_entries: usize, skewed: bool) -> [u32; 32] {
        let mut counts = [0u32; 32];
        for lane in 0..WARP_SIZE {
            let base = base_entry_index(lane, sh_entries, skewed) as u64;
            let addr = (lane * sh_entries * 8) as u64 + base * 8;
            counts[((addr / 4) % 32) as usize] += 1;
        }
        counts
    }

    #[test]
    fn skew_never_degenerates_for_any_sh_size() {
        for n in 1..=64usize {
            for lane in 0..WARP_SIZE {
                let b = base_entry_index(lane, n, true) as usize;
                assert!(b < n, "N={n} lane={lane}: base {b} outside the segment");
                assert_eq!(base_entry_index(lane, n, false), 0);
            }
            let skewed = *base_bank_histogram(n, true).iter().max().unwrap();
            let unskewed = *base_bank_histogram(n, false).iter().max().unwrap();
            assert!(
                skewed <= unskewed,
                "N={n}: skew made bank pressure worse ({skewed} vs {unskewed} bases/bank)"
            );
            assert!(
                skewed <= 2,
                "N={n}: 32 bases must spread over >=16 distinct banks, got {skewed} on one"
            );
        }
    }

    #[test]
    fn skew_clamp_sizes_spread_banks() {
        // SH_32 and up clamp k to 1 (2N >= 64 > warp width): base = lane % N.
        // Unskewed, every lane's base sits on bank 0 (segment stride 2N is a
        // multiple of 32 banks); skewed they pair up two-per-bank.
        for n in [32usize, 64] {
            assert_eq!(*base_bank_histogram(n, false).iter().max().unwrap(), 32);
            assert_eq!(*base_bank_histogram(n, true).iter().max().unwrap(), 2);
            for lane in 0..WARP_SIZE {
                assert_eq!(base_entry_index(lane, n, true) as usize, lane % n);
            }
        }
    }

    #[test]
    fn all_sh_sizes_stay_lifo_with_skew() {
        for n in 1..=64usize {
            let cfg = StackConfig::Sms(SmsParams {
                sh_entries: n,
                ..SmsParams::default().with_skewed(true)
            });
            let mut s = WarpStacks::new(&cfg, 0, 0);
            for lane in [0usize, 17, 31] {
                push_n(&mut s, lane, 3 * n as u32 + 20);
                let popped = pop_all(&mut s, lane);
                assert_eq!(popped, (0..3 * n as u32 + 20).rev().collect::<Vec<u32>>(), "N={n}");
            }
        }
    }

    #[test]
    fn skewed_first_spills_hit_different_entries() {
        let cfg = StackConfig::Sms(SmsParams::default().with_skewed(true));
        let mut s = WarpStacks::new(&cfg, 0, 0);
        let mut addr_of_first_spill = Vec::new();
        for lane in [0usize, 2, 4, 6] {
            let mut stats = SimStats::default();
            let mut ops = Vec::new();
            for i in 0..9 {
                s.push(lane, i, &mut stats, &mut ops);
            }
            let MicroOp { addrs, .. } = ops.last().unwrap();
            // Entry index within the segment = (addr - seg base) / 8.
            let seg_base = (lane as u64) * 8 * 8;
            addr_of_first_spill.push((addrs[0].0 - seg_base) / 8);
        }
        assert_eq!(addr_of_first_spill, vec![0, 1, 2, 3], "skew staggers base entries");
    }

    #[test]
    fn realloc_borrows_idle_stack_instead_of_spilling() {
        let cfg = StackConfig::Sms(SmsParams::default().with_realloc(true));
        let mut s = WarpStacks::new(&cfg, 0, 0);
        // Lane 1 finishes immediately: its SH stack becomes idle.
        s.mark_done(1);
        // Lane 0 pushes past RB+SH capacity.
        let (stats, _) = push_n(&mut s, 0, 17);
        assert_eq!(stats.ra_borrows, 1, "borrowed lane 1's stack");
        assert_eq!(stats.sh_spills, 0, "no global spill needed");
        assert_eq!(s.global[0].len(), 0);
        assert_eq!(s.chain_len(0), 2);
    }

    #[test]
    fn realloc_flushes_when_no_idle_stack() {
        let cfg = StackConfig::Sms(SmsParams::default().with_realloc(true));
        let mut s = WarpStacks::new(&cfg, 0, 0);
        // No lane is done: pushing past 16 forces a flush of the bottom stack.
        let (stats, ops) = push_n(&mut s, 0, 17);
        assert_eq!(stats.ra_borrows, 0);
        assert_eq!(stats.ra_flushes, 1);
        assert_eq!(stats.sh_spills, 8, "whole 8-entry stack flushed");
        assert_eq!(s.global[0].len(), 8);
        // Flush is two burst ops: one shared read of 8 entries, one global
        // write of 8 consecutive spill slots.
        let flush_read = ops.iter().find(|o| o.addrs.len() == 8 && o.kind == AccessKind::Load);
        let flush_write = ops.iter().find(|o| o.addrs.len() == 8 && o.kind == AccessKind::Store);
        assert!(flush_read.is_some() && flush_write.is_some());
        // LIFO still holds.
        let popped = pop_all(&mut s, 0);
        assert_eq!(popped, (0..17).rev().collect::<Vec<u32>>());
    }

    #[test]
    fn released_borrowed_stack_returns_to_pool() {
        let cfg = StackConfig::Sms(SmsParams::default().with_realloc(true));
        let mut s = WarpStacks::new(&cfg, 0, 0);
        s.mark_done(5);
        push_n(&mut s, 0, 20); // borrows lane 5's stack
        assert_eq!(s.chain_len(0), 2);
        // Pop back down: the borrowed stack empties and is released.
        let mut stats = SimStats::default();
        let mut ops = Vec::new();
        for _ in 0..8 {
            s.pop(0, &mut stats, &mut ops);
        }
        assert_eq!(s.chain_len(0), 1, "borrowed stack released when empty");
        assert!(s.segs[5].idle, "released stack is idle again");
        // Another lane can now borrow it.
        push_n(&mut s, 2, 17);
        assert_eq!(s.chain_len(2), 2);
    }

    #[test]
    fn borrow_limit_respected() {
        let cfg =
            StackConfig::Sms(SmsParams { realloc: true, borrow_limit: 2, ..SmsParams::default() });
        let mut s = WarpStacks::new(&cfg, 0, 0);
        for lane in 1..8 {
            s.mark_done(lane);
        }
        // 8 RB + (1+2) stacks * 8 = 32 entries before flushing starts.
        let (stats, _) = push_n(&mut s, 0, 33);
        assert_eq!(stats.ra_borrows, 2, "borrow limit caps the chain");
        assert_eq!(stats.ra_flushes, 1, "then flushing takes over");
        let popped = pop_all(&mut s, 0);
        assert_eq!(popped.len(), 33);
        assert_eq!(popped[0], 32);
    }

    #[test]
    fn deep_stack_with_realloc_stays_correct() {
        // Worst case of §VI-B: one thread alone pushing far past every
        // capacity; forced flushes keep it correct.
        let cfg = StackConfig::sms_default();
        let mut s = WarpStacks::new(&cfg, 0, 0);
        push_n(&mut s, 0, 200);
        let popped = pop_all(&mut s, 0);
        assert_eq!(popped, (0..200).rev().collect::<Vec<u32>>());
    }

    #[test]
    fn spill_addresses_follow_local_memory_layout() {
        // Warp with tid_base 64 = global warp 2; lanes interleave by 8B.
        let mut s = WarpStacks::new(&StackConfig::baseline8(), 0, 64);
        let mut stats = SimStats::default();
        let (mut o0, mut o1) = (Vec::new(), Vec::new());
        for i in 0..9 {
            s.push(0, i, &mut stats, &mut o0);
            s.push(1, i, &mut stats, &mut o1);
        }
        let a0 = o0[0].addrs[0].0;
        let a1 = o1[0].addrs[0].0;
        assert_eq!(a0, sms_mem::SPILL_BASE_ADDR + 2 * sms_mem::SPILL_REGION_BYTES);
        assert_eq!(a1 - a0, 8, "adjacent lanes at the same slot are 8B apart");
        // The same lane's next spill slot is a warp-width stride away.
        let mut o0b = Vec::new();
        s.push(0, 9, &mut stats, &mut o0b);
        assert_eq!(o0b[0].addrs[0].0 - a0, 32 * 8);
    }

    #[test]
    fn labels_render() {
        assert_eq!(StackConfig::baseline8().label(), "RB_8");
        assert_eq!(StackConfig::FullOnChip.label(), "RB_FULL");
        assert_eq!(StackConfig::sms_default().label(), "RB_8+SH_8+SK+RA");
        assert_eq!(
            StackConfig::Sms(SmsParams::default().with_skewed(true)).label(),
            "RB_8+SH_8+SK"
        );
        assert_eq!(StackConfig::stackless().label(), "SL");
        assert_eq!(StackConfig::predictor_default().label(), "PRED_12");
        assert_eq!(StackConfig::Predictor { table_bits: 8 }.label(), "PRED_8");
    }

    #[test]
    fn competitor_configs_carve_no_shared_memory() {
        assert_eq!(StackConfig::stackless().shared_carveout(4), 0);
        assert_eq!(StackConfig::predictor_default().shared_carveout(4), 0);
        assert_eq!(StackConfig::stackless().rb_capacity(), 0);
        assert_eq!(StackConfig::predictor_default().rb_capacity(), 8);
        assert!(StackConfig::baseline8().preserves_traversal_work());
        assert!(StackConfig::sms_default().preserves_traversal_work());
        assert!(!StackConfig::stackless().preserves_traversal_work());
        assert!(!StackConfig::predictor_default().preserves_traversal_work());
    }

    #[test]
    fn shared_carveout_matches_paper() {
        // 4 warps x 32 threads x 8 entries x 8B = 8KB (paper §IV-B).
        assert_eq!(StackConfig::sms_default().shared_carveout(4), 8 * 1024);
        assert_eq!(StackConfig::baseline8().shared_carveout(4), 0);
    }

    #[test]
    fn validator_clean_on_legitimate_traffic() {
        for cfg in [
            StackConfig::baseline8(),
            StackConfig::FullOnChip,
            StackConfig::Sms(SmsParams::default()),
            StackConfig::sms_default(),
        ] {
            let mut s = WarpStacks::new(&cfg, 0, 0);
            s.enable_validator();
            for lane in [0, 3, 31] {
                push_n(&mut s, lane, 150);
                let popped = pop_all(&mut s, lane);
                assert_eq!(popped, (0..150).rev().collect::<Vec<u32>>());
                s.mark_done(lane);
            }
            assert_eq!(s.take_violation(), None, "{cfg}: clean run must not trip validation");
        }
    }

    #[test]
    fn validator_is_pure_observation() {
        let cfg = StackConfig::sms_default();
        let mut plain = WarpStacks::new(&cfg, 0, 0);
        let mut watched = WarpStacks::new(&cfg, 0, 0);
        watched.enable_validator();
        let mut stats_p = SimStats::default();
        let mut stats_w = SimStats::default();
        let (mut ops_p, mut ops_w) = (Vec::new(), Vec::new());
        for i in 0..120 {
            plain.push(2, i, &mut stats_p, &mut ops_p);
            watched.push(2, i, &mut stats_w, &mut ops_w);
        }
        while !plain.is_empty(2) {
            assert_eq!(
                plain.pop(2, &mut stats_p, &mut ops_p),
                watched.pop(2, &mut stats_w, &mut ops_w)
            );
        }
        assert_eq!(stats_p, stats_w, "validator must not change any counter");
        assert_eq!(ops_p, ops_w, "validator must not change emitted micro-ops");
        assert_eq!(watched.take_violation(), None);
    }

    #[test]
    fn validator_catches_lifo_tamper() {
        let mut s = WarpStacks::new(&StackConfig::sms_default(), 0, 0);
        s.enable_validator();
        push_n(&mut s, 3, 6);
        // Corrupt the RB top behind the validator's back; the next pop
        // returns the tampered value.
        *s.rb[3].last_mut().unwrap() = 999;
        let mut stats = SimStats::default();
        let mut ops = Vec::new();
        assert_eq!(s.pop(3, &mut stats, &mut ops), 999);
        let v = s.take_violation().expect("tampered pop must be flagged");
        assert_eq!(v.kind, ViolationKind::LifoOrder);
        assert_eq!(v.lane, 3);
    }

    #[test]
    fn validator_catches_conservation_tamper() {
        let mut s = WarpStacks::new(&StackConfig::sms_default(), 0, 0);
        s.enable_validator();
        push_n(&mut s, 0, 4);
        // Smuggle in an entry that no push accounted for.
        s.rb[0].insert(0, 77);
        let mut stats = SimStats::default();
        let mut ops = Vec::new();
        s.push(0, 4, &mut stats, &mut ops);
        let v = s.take_violation().expect("unaccounted entry must be flagged");
        assert_eq!(v.kind, ViolationKind::Conservation);
    }

    #[test]
    fn validator_catches_idle_tamper() {
        let mut s = WarpStacks::new(&StackConfig::sms_default(), 0, 0);
        s.enable_validator();
        // 12 pushes overflow the 8-entry RB into lane 0's SH stack.
        push_n(&mut s, 0, 12);
        assert!(!s.segs[0].entries.is_empty());
        // Mark the populated stack borrowable: idle stacks must be empty.
        s.segs[0].idle = true;
        let mut stats = SimStats::default();
        let mut ops = Vec::new();
        s.push(0, 12, &mut stats, &mut ops);
        let v = s.take_violation().expect("populated idle stack must be flagged");
        assert_eq!(v.kind, ViolationKind::IdleState);
    }

    #[test]
    fn validator_catches_premature_mark_done() {
        let mut s = WarpStacks::new(&StackConfig::sms_default(), 0, 0);
        s.enable_validator();
        push_n(&mut s, 5, 3);
        s.mark_done(5);
        let v = s.take_violation().expect("done with live entries must be flagged");
        assert_eq!(v.kind, ViolationKind::Conservation);
        assert_eq!(v.lane, 5);
    }
}
