//! Hardware-overhead accounting (paper §VI-C).
//!
//! The SMS stack manager adds per-thread fields to the ray buffer:
//! `Top`/`Bottom`/`Overflow` for independent SH-stack management and
//! `Next TID`/`Idle`/`Priority`/`Flush` for dynamic intra-warp
//! reallocation. This module reproduces the paper's storage arithmetic and
//! compares it against the cost of simply enlarging the RB stack.

use crate::stack::StackConfig;
use sms_gpu::WARP_SIZE;

/// Per-SM storage overhead of a stack configuration's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadReport {
    /// Bits per thread for the `Top` field.
    pub top_bits: u32,
    /// Bits per thread for the `Bottom` field.
    pub bottom_bits: u32,
    /// Bits per thread for `Overflow` (1) — zero for non-SMS configs.
    pub overflow_bits: u32,
    /// Bits per thread for reallocation fields
    /// (`Next TID` 5 + `Idle` 1 + `Priority` 2 + `Flush` 2), zero without RA.
    pub realloc_bits: u32,
    /// Threads per RT unit (warps × 32).
    pub threads: u32,
    /// Total bookkeeping bytes per RT unit / SM.
    pub total_bytes: u32,
}

impl OverheadReport {
    /// Computes the report for a stack configuration on an RT unit holding
    /// `max_warps` warps (Table I: 4).
    pub fn for_config(config: &StackConfig, max_warps: usize) -> Self {
        let threads = (max_warps * WARP_SIZE) as u32;
        match config.sms_params() {
            Some(p) if p.sh_entries > 0 => {
                // ceil(log2(N)) bits index an N-entry circular stack.
                let idx_bits = (p.sh_entries.max(2) as u32).next_power_of_two().trailing_zeros();
                let realloc_bits = if p.realloc {
                    let next_tid = 5; // one of 32 threads
                    let idle = 1;
                    // Priority distinguishes the allocation order of the
                    // concurrent stacks (paper: 4 -> 2 bits); Flush counts
                    // 0..=flush_limit (paper: 3 -> 2 bits).
                    let priority = ceil_log2(p.borrow_limit.max(2) as u32);
                    let flush = ceil_log2((p.flush_limit as u32 + 1).max(2));
                    next_tid + idle + priority + flush
                } else {
                    0
                };
                let per_thread = idx_bits * 2 + 1 + realloc_bits;
                OverheadReport {
                    top_bits: idx_bits,
                    bottom_bits: idx_bits,
                    overflow_bits: 1,
                    realloc_bits,
                    threads,
                    total_bytes: (per_thread * threads).div_ceil(8),
                }
            }
            _ => OverheadReport {
                top_bits: 0,
                bottom_bits: 0,
                overflow_bits: 0,
                realloc_bits: 0,
                threads,
                total_bytes: 0,
            },
        }
    }

    /// Bytes needed to instead grow every thread's RB stack by
    /// `extra_entries` 8-byte entries — the alternative the paper rejects.
    pub fn rb_growth_bytes(&self, extra_entries: u32) -> u32 {
        self.threads * extra_entries * 8
    }
}

fn ceil_log2(states: u32) -> u32 {
    // Bits needed to distinguish `states` distinct values.
    32 - (states - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::SmsParams;

    #[test]
    fn paper_section_6c_arithmetic() {
        // 8-entry SH stack (2^3): Top and Bottom take 3 bits each.
        let r = OverheadReport::for_config(&StackConfig::sms_default(), 4);
        assert_eq!(r.top_bits, 3);
        assert_eq!(r.bottom_bits, 3);
        assert_eq!(r.overflow_bits, 1);
        // Paper: Top+Bottom = 96 bytes across 128 threads.
        assert_eq!((r.top_bits + r.bottom_bits) * r.threads / 8, 96);
        // Paper: the 11 reallocation+overflow bits cost 176 bytes.
        assert_eq!((r.realloc_bits + r.overflow_bits) * r.threads / 8, 176);
        // Paper total: 272 bytes per RT unit.
        assert_eq!(r.total_bytes, 272);
    }

    #[test]
    fn overhead_dwarfed_by_rb_growth() {
        // Paper: +8 RB entries would cost 8KB per RT unit vs 272 bytes.
        let r = OverheadReport::for_config(&StackConfig::sms_default(), 4);
        assert_eq!(r.rb_growth_bytes(8), 8 * 1024);
        assert!(r.total_bytes * 30 < r.rb_growth_bytes(8));
    }

    #[test]
    fn non_sms_configs_cost_nothing() {
        let r = OverheadReport::for_config(&StackConfig::baseline8(), 4);
        assert_eq!(r.total_bytes, 0);
        let r = OverheadReport::for_config(&StackConfig::FullOnChip, 4);
        assert_eq!(r.total_bytes, 0);
    }

    #[test]
    fn sms_without_ra_drops_realloc_fields() {
        let r = OverheadReport::for_config(&StackConfig::Sms(SmsParams::default()), 4);
        assert_eq!(r.realloc_bits, 0);
        // Top(3) + Bottom(3) + Overflow(1) = 7 bits x 128 threads = 112B.
        assert_eq!(r.total_bytes, 112);
    }

    #[test]
    fn sixteen_entry_stacks_need_four_bits() {
        let p = SmsParams { sh_entries: 16, ..SmsParams::default() };
        let r = OverheadReport::for_config(&StackConfig::Sms(p), 4);
        assert_eq!(r.top_bits, 4);
    }
}
