//! Hash-based ray-path predictor (the `PRED_*` competitor configuration).
//!
//! Models the speculative-traversal idea from the ray-path prediction line
//! of work: a per-RT-unit direct-mapped table maps a hash of the quantized
//! ray (origin + direction, mantissa-truncated so nearby coherent rays
//! collide on purpose) to the leaf node that last yielded a hit for that
//! hash. An admitted ray probes the predicted leaf *first*, skipping every
//! inner-node micro-op on the predicted path:
//!
//! * **any-hit query, predicted leaf hits** — the ray is occluded and
//!   retires after a single node visit (`SimStats::pred_hits`);
//! * **nearest query, predicted leaf hits** — the hit primes `t_max` (and
//!   the current-best hit) before the full stacked traversal re-runs from
//!   the root, so the tightened interval culls subtrees the baseline
//!   traversal would have entered (`pred_hits`);
//! * **predicted leaf misses** — pure overhead; the ray restarts from the
//!   root exactly as if no prediction existed (`pred_misses`).
//!
//! The probe's fetch and operation wait cycles are charged to the
//! dedicated `StallBreakdown::predictor_wait` lane bucket, so sweeps see
//! speculation cost as its own ledger column instead of it polluting the
//! fetch/op buckets.
//!
//! The table is updated at warp retirement with the leaf that produced
//! each finished ray's final hit, keyed by the ray's hash.

use sms_bvh::NodeId;
use sms_geom::Ray;

/// Widest supported table index (2^20 entries ≈ 12 MiB — already far past
/// the point of diminishing returns for the paper-scale scenes).
pub const MAX_TABLE_BITS: u32 = 20;

/// Absolute quantization grid: ray components are floored to 1/16-unit
/// cells before hashing. An absolute grid (not mantissa truncation, which
/// quantizes *relatively* and therefore almost never buckets direction
/// components near zero together) is what lets neighboring coherent rays
/// actually share hashes; 16 cells per unit keeps unit-length direction
/// vectors to ~32 cells per axis, coarse enough for adjacent camera pixels
/// to collide yet fine enough that a shared prediction usually
/// re-verifies — mispredict rates per scene are in EXPERIMENTS.md.
const QUANT_CELLS_PER_UNIT: f32 = 16.0;

/// The grid cell of one ray component (`as` saturates at the `i32` edges,
/// so non-finite or huge components still map to a stable cell).
fn quantize(v: f32) -> i32 {
    (v * QUANT_CELLS_PER_UNIT).floor() as i32
}

/// Per-RT-unit direct-mapped prediction table.
#[derive(Debug)]
pub struct RayPredictor {
    /// Index mask (`2^bits - 1`).
    mask: u64,
    /// `index -> (full-hash tag, predicted leaf)`.
    entries: Vec<Option<(u64, NodeId)>>,
}

impl RayPredictor {
    /// An empty table with `2^bits` entries (clamped to
    /// [`MAX_TABLE_BITS`]).
    pub fn new(table_bits: u32) -> Self {
        let bits = table_bits.min(MAX_TABLE_BITS);
        RayPredictor { mask: (1u64 << bits) - 1, entries: vec![None; 1usize << bits] }
    }

    /// FNV-1a over the quantized ray origin and direction.
    pub fn hash(ray: &Ray) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in [ray.origin.x, ray.origin.y, ray.origin.z, ray.dir.x, ray.dir.y, ray.dir.z] {
            for b in quantize(v).to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// The predicted leaf for `hash`, if the table holds one. The full
    /// hash is stored as the tag, so an index collision between distinct
    /// hashes reads as "no prediction" rather than a wild leaf.
    pub fn predict(&self, hash: u64) -> Option<NodeId> {
        match self.entries[(hash & self.mask) as usize] {
            Some((tag, leaf)) if tag == hash => Some(leaf),
            _ => None,
        }
    }

    /// Records that a ray hashing to `hash` found its final hit in `leaf`
    /// (direct-mapped: evicts whatever shared the index).
    pub fn update(&mut self, hash: u64, leaf: NodeId) {
        self.entries[(hash & self.mask) as usize] = Some((hash, leaf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sms_geom::Vec3;

    #[test]
    fn nearby_rays_share_a_hash_distant_rays_do_not() {
        let a = Ray::new(Vec3::new(1.0, 2.0, 3.0), Vec3::new(0.0, 0.0, 1.0));
        // Perturbation below the quantization step: identical hash.
        let b = Ray::new(Vec3::new(1.000001, 2.0, 3.0), Vec3::new(0.0, 0.0, 1.0));
        // A clearly different ray: different hash.
        let c = Ray::new(Vec3::new(-5.0, 2.0, 3.0), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(RayPredictor::hash(&a), RayPredictor::hash(&b));
        assert_ne!(RayPredictor::hash(&a), RayPredictor::hash(&c));
    }

    #[test]
    fn predict_update_roundtrip_and_tag_check() {
        let mut p = RayPredictor::new(4);
        let ray = Ray::new(Vec3::new(0.5, 0.5, -1.0), Vec3::new(0.0, 0.0, 1.0));
        let h = RayPredictor::hash(&ray);
        assert_eq!(p.predict(h), None);
        p.update(h, 17);
        assert_eq!(p.predict(h), Some(17));
        // A different hash landing on the same index must not alias: flip
        // bits above the 4-bit index while keeping the index itself.
        let other = h ^ (1u64 << 40);
        assert_eq!(other & p.mask, h & p.mask);
        assert_eq!(p.predict(other), None);
        p.update(other, 99);
        assert_eq!(p.predict(other), Some(99));
        assert_eq!(p.predict(h), None, "direct-mapped: the old entry is evicted");
    }

    #[test]
    fn table_bits_are_clamped() {
        let p = RayPredictor::new(64);
        assert_eq!(p.entries.len(), 1usize << MAX_TABLE_BITS);
    }
}
