//! Trace-ray requests and results exchanged between the SM and its RT unit.

use sms_bvh::Hit;
use sms_geom::Ray;
use sms_gpu::{WarpId, WARP_SIZE};

/// One thread's ray query within a warp-level trace instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RayQuery {
    /// The ray to trace.
    pub ray: Ray,
    /// Minimum ray parameter.
    pub t_min: f32,
    /// Maximum ray parameter (shadow rays bound this by the light distance).
    pub t_max: f32,
    /// `true` for occlusion (any-hit) queries: traversal terminates at the
    /// first primitive hit.
    pub any_hit: bool,
}

impl RayQuery {
    /// A nearest-hit (closest-hit) query over `[t_min, ∞)`.
    pub fn nearest(ray: Ray, t_min: f32) -> Self {
        RayQuery { ray, t_min, t_max: f32::INFINITY, any_hit: false }
    }

    /// An occlusion query over `[t_min, t_max]`.
    pub fn occlusion(ray: Ray, t_min: f32, t_max: f32) -> Self {
        RayQuery { ray, t_min, t_max, any_hit: true }
    }
}

/// A warp-level trace instruction entering the RT unit's warp buffer.
///
/// `rays[lane] == None` marks an inactive lane (SIMT divergence: that
/// thread's path already terminated). The lane count is fixed at
/// [`WARP_SIZE`] by the type — a warp always has exactly 32 lanes — which
/// also keeps the request a single flat allocation-free value.
#[derive(Debug, Clone)]
pub struct TraceRequest {
    /// The issuing warp.
    pub warp: WarpId,
    /// One optional query per lane.
    pub rays: [Option<RayQuery>; WARP_SIZE],
}

impl TraceRequest {
    /// Creates a request; the fixed-size array enforces the lane count.
    pub fn new(warp: WarpId, rays: [Option<RayQuery>; WARP_SIZE]) -> Self {
        TraceRequest { warp, rays }
    }

    /// Number of active lanes.
    pub fn active_lanes(&self) -> usize {
        self.rays.iter().filter(|r| r.is_some()).count()
    }
}

/// The result of a completed warp trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceResult {
    /// The warp that issued the trace.
    pub warp: WarpId,
    /// Nearest hit per lane (`None` = miss or inactive lane).
    pub hits: [Option<Hit>; WARP_SIZE],
    /// Occlusion answer per lane (only meaningful for any-hit queries).
    pub occluded: [bool; WARP_SIZE],
}

#[cfg(test)]
mod tests {
    use super::*;
    use sms_geom::Vec3;

    #[test]
    fn active_lane_count() {
        let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
        let mut rays: [Option<RayQuery>; WARP_SIZE] = [None; WARP_SIZE];
        rays[3] = Some(RayQuery::nearest(ray, 0.0));
        rays[17] = Some(RayQuery::occlusion(ray, 0.0, 5.0));
        let req = TraceRequest::new(7, rays);
        assert_eq!(req.active_lanes(), 2);
        assert_eq!(req.warp, 7);
    }

    #[test]
    fn lane_count_is_type_enforced() {
        // The per-lane array is `[_; WARP_SIZE]`: a request with the wrong
        // lane count is unrepresentable.
        let req = TraceRequest::new(0, [None; WARP_SIZE]);
        assert_eq!(req.rays.len(), WARP_SIZE);
        assert_eq!(req.active_lanes(), 0);
    }

    #[test]
    fn query_constructors() {
        let ray = Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        let n = RayQuery::nearest(ray, 0.1);
        assert!(!n.any_hit);
        assert_eq!(n.t_max, f32::INFINITY);
        let o = RayQuery::occlusion(ray, 0.1, 9.0);
        assert!(o.any_hit);
        assert_eq!(o.t_max, 9.0);
    }
}
