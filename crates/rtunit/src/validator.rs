//! Runtime validation of the SMS stack invariants (paper §IV–§VI).
//!
//! The correctness of the shared-memory stack design rests on a handful of
//! structural invariants that the paper states but the simulator otherwise
//! only spot-checks with `debug_assert!`s:
//!
//! * **Conservation** — every push/pop moves exactly one logical entry;
//!   the entry count summed across the RB, SH and global levels always
//!   equals the number of pushes minus pops, and the RB/SH levels never
//!   exceed their configured capacities.
//! * **LIFO order** — the value a pop returns is the most recently pushed
//!   live value, regardless of how many inter-level migrations happened
//!   in between (checked against a shadow stack, with a periodic full
//!   content audit).
//! * **Borrow-chain shape** (§VI-B) — a lane's reallocation chain holds at
//!   most `1 + borrow_limit` stacks, never links the same SH stack twice,
//!   and never shares a stack with another *active* lane.
//! * **Flush policy** (§VI-B) — a bottom-stack flush is only legal when
//!   borrowing is impossible: the chain is at the borrow limit or no idle
//!   stack exists. This is what makes flush runs *consecutive* in the
//!   paper's sense (`flush_limit` bookkeeping resets on release).
//! * **Idle consistency** — an idle SH stack is empty, has a reset flush
//!   counter, and is never linked into an active lane's chain.
//!
//! A [`StackValidator`] is attached to a [`crate::WarpStacks`] behind a
//! configuration flag ([`crate::RtUnitConfig::validate`]); it observes
//! every stack transition and *latches the first violation* as a
//! structured [`StackViolation`] instead of asserting, so a fleet harness
//! can record the failure, abort the one run, and keep the batch alive.
//! The validator never mutates simulation state: enabling it cannot change
//! a single counter of the run it watches.

use sms_gpu::WARP_SIZE;
use std::fmt;

/// Which invariant class a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Entry-count conservation across RB/SH/global broke.
    Conservation,
    /// A pop returned a value other than the logical top of stack.
    LifoOrder,
    /// A level exceeded its configured capacity.
    Capacity,
    /// Borrow-chain length, acyclicity or exclusivity broke.
    BorrowChain,
    /// A bottom-stack flush happened while borrowing was still possible.
    FlushPolicy,
    /// An idle stack was non-empty, un-reset, or linked into a live chain.
    IdleState,
}

impl ViolationKind {
    /// Stable snake_case name (used in journal events).
    pub fn name(&self) -> &'static str {
        match self {
            ViolationKind::Conservation => "conservation",
            ViolationKind::LifoOrder => "lifo_order",
            ViolationKind::Capacity => "capacity",
            ViolationKind::BorrowChain => "borrow_chain",
            ViolationKind::FlushPolicy => "flush_policy",
            ViolationKind::IdleState => "idle_state",
        }
    }
}

/// One detected invariant violation, as a structured error (not a panic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackViolation {
    /// The lane whose transition tripped the check.
    pub lane: usize,
    /// Invariant class.
    pub kind: ViolationKind,
    /// Human-readable description with the offending values.
    pub detail: String,
}

impl fmt::Display for StackViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stack invariant `{}` violated on lane {}: {}",
            self.kind.name(),
            self.lane,
            self.detail
        )
    }
}

/// How often the validator audits a lane's *full* logical contents against
/// the shadow stack (every transition would be O(depth) each; depth and
/// popped-value checks run on every transition regardless).
const FULL_AUDIT_PERIOD: u32 = 64;

/// Observes every [`crate::WarpStacks`] transition and latches the first
/// invariant violation. See the module docs for the invariant list.
#[derive(Debug, Clone)]
pub struct StackValidator {
    /// Per-lane shadow of the logical stack (ground truth for LIFO and
    /// conservation).
    shadow: Vec<Vec<u32>>,
    /// Lanes that finished (or were cleared). Their chains are frozen
    /// stale state — flush rotation means a retired lane's chain may still
    /// reference segments that were since idled and re-borrowed — so only
    /// active lanes participate in chain shape/exclusivity checks.
    retired: [bool; WARP_SIZE],
    /// Transition counter per lane, for the periodic full audit.
    transitions: [u32; WARP_SIZE],
    violation: Option<StackViolation>,
    /// Total transitions checked (observability).
    pub checks: u64,
}

impl Default for StackValidator {
    fn default() -> Self {
        StackValidator::new()
    }
}

impl StackValidator {
    /// A fresh validator for one warp's stacks.
    pub fn new() -> Self {
        StackValidator {
            shadow: vec![Vec::new(); WARP_SIZE],
            retired: [false; WARP_SIZE],
            transitions: [0; WARP_SIZE],
            violation: None,
            checks: 0,
        }
    }

    /// The first violation detected, if any.
    pub fn violation(&self) -> Option<&StackViolation> {
        self.violation.as_ref()
    }

    /// Removes and returns the latched violation.
    pub fn take_violation(&mut self) -> Option<StackViolation> {
        self.violation.take()
    }

    fn fail(&mut self, lane: usize, kind: ViolationKind, detail: String) {
        if self.violation.is_none() {
            self.violation = Some(StackViolation { lane, kind, detail });
        }
    }

    /// Called after a push of `value` on `lane` completed.
    pub(crate) fn after_push(&mut self, stacks: &crate::WarpStacks, lane: usize, value: u32) {
        if self.violation.is_some() {
            return;
        }
        self.shadow[lane].push(value);
        self.check_transition(stacks, lane);
    }

    /// Called after a pop on `lane` returned `value`.
    pub(crate) fn after_pop(&mut self, stacks: &crate::WarpStacks, lane: usize, value: u32) {
        if self.violation.is_some() {
            return;
        }
        match self.shadow[lane].pop() {
            Some(expected) if expected == value => {}
            Some(expected) => {
                self.fail(
                    lane,
                    ViolationKind::LifoOrder,
                    format!("pop returned {value}, logical top was {expected}"),
                );
                return;
            }
            None => {
                self.fail(
                    lane,
                    ViolationKind::Conservation,
                    format!("pop returned {value} from a logically empty stack"),
                );
                return;
            }
        }
        self.check_transition(stacks, lane);
    }

    /// Called when a lane's stack is discarded wholesale (`clear_lane`).
    pub(crate) fn on_clear(&mut self, stacks: &crate::WarpStacks, lane: usize) {
        self.shadow[lane].clear();
        self.retired[lane] = true;
        if self.violation.is_none() {
            self.check_transition(stacks, lane);
        }
    }

    /// Called when a lane finishes traversal (`mark_done`).
    pub(crate) fn on_mark_done(&mut self, stacks: &crate::WarpStacks, lane: usize) {
        if !self.shadow[lane].is_empty() {
            self.fail(
                lane,
                ViolationKind::Conservation,
                format!("marked done with {} logical entries left", self.shadow[lane].len()),
            );
            return;
        }
        self.retired[lane] = true;
        if self.violation.is_none() {
            self.check_transition(stacks, lane);
        }
    }

    /// Called by `make_room` just before it flushes `lane`'s bottom stack.
    /// `chain_len` and `idle_available` describe the pre-flush state.
    pub(crate) fn before_flush(
        &mut self,
        lane: usize,
        chain_len: usize,
        borrow_limit: usize,
        idle_available: bool,
    ) {
        if chain_len < 1 + borrow_limit && idle_available {
            self.fail(
                lane,
                ViolationKind::FlushPolicy,
                format!(
                    "flushed with chain {chain_len}/{} and an idle stack still available",
                    1 + borrow_limit
                ),
            );
        }
    }

    /// Depth, capacity, chain and idle checks after any transition.
    fn check_transition(&mut self, stacks: &crate::WarpStacks, lane: usize) {
        self.checks += 1;
        let depth = stacks.depth(lane);
        if depth != self.shadow[lane].len() {
            let detail = format!(
                "levels hold {depth} entries ({} RB + {} SH + {} global), log says {}",
                stacks.rb_len(lane),
                stacks.sh_count(lane),
                stacks.global_len(lane),
                self.shadow[lane].len()
            );
            self.fail(lane, ViolationKind::Conservation, detail);
            return;
        }
        self.check_capacity(stacks, lane);
        self.check_chains(stacks);
        self.transitions[lane] = self.transitions[lane].wrapping_add(1);
        if self.transitions[lane].is_multiple_of(FULL_AUDIT_PERIOD)
            && stacks.logical_contents(lane) != self.shadow[lane]
        {
            self.fail(
                lane,
                ViolationKind::LifoOrder,
                format!(
                    "periodic audit: levels hold {:?}, log says {:?}",
                    stacks.logical_contents(lane),
                    self.shadow[lane]
                ),
            );
        }
    }

    fn check_capacity(&mut self, stacks: &crate::WarpStacks, lane: usize) {
        let rb = stacks.rb_len(lane);
        if rb > stacks.rb_capacity() {
            self.fail(
                lane,
                ViolationKind::Capacity,
                format!("RB stack holds {rb} entries, capacity {}", stacks.rb_capacity()),
            );
            return;
        }
        if let Some(p) = stacks.config().sms_params() {
            for &seg in stacks.chain(lane) {
                let len = stacks.segment_len(seg as usize);
                if len > p.sh_entries {
                    self.fail(
                        lane,
                        ViolationKind::Capacity,
                        format!("SH stack {seg} holds {len} entries, capacity {}", p.sh_entries),
                    );
                    return;
                }
            }
        }
    }

    /// Chain length / acyclicity / exclusivity and idle-state consistency,
    /// across the whole warp (a bad transition on one lane can corrupt
    /// another lane's chain, so this is warp-global on purpose).
    fn check_chains(&mut self, stacks: &crate::WarpStacks) {
        let Some(p) = stacks.config().sms_params() else { return };
        if p.sh_entries == 0 {
            return;
        }
        // occupants[s] = *active* lanes whose chain links segment s. A
        // retired lane's chain is frozen stale state — flush rotation means
        // it may still reference a segment that has since been idled and
        // re-borrowed (hardware never scrubs dead NextTID fields), so only
        // live chains participate in shape and exclusivity checks.
        let mut occupants: [u8; WARP_SIZE] = [0; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            if self.retired[lane] {
                continue;
            }
            let chain = stacks.chain(lane);
            if chain.len() > 1 + p.borrow_limit {
                self.fail(
                    lane,
                    ViolationKind::BorrowChain,
                    format!("chain links {} stacks, limit {}", chain.len(), 1 + p.borrow_limit),
                );
                return;
            }
            if !p.realloc && chain.len() > 1 {
                self.fail(
                    lane,
                    ViolationKind::BorrowChain,
                    format!("chain links {} stacks with reallocation disabled", chain.len()),
                );
                return;
            }
            for (i, &seg) in chain.iter().enumerate() {
                if chain[..i].contains(&seg) {
                    self.fail(
                        lane,
                        ViolationKind::BorrowChain,
                        format!("chain {chain:?} links stack {seg} twice"),
                    );
                    return;
                }
                occupants[seg as usize] += 1;
            }
        }
        for (seg, &n) in occupants.iter().enumerate() {
            // Exclusivity: at most one live lane may hold any segment.
            if n > 1 {
                self.fail(
                    seg,
                    ViolationKind::BorrowChain,
                    format!("SH stack {seg} is linked into {n} active chains"),
                );
                return;
            }
            if stacks.segment_idle(seg) {
                if stacks.segment_len(seg) != 0 {
                    self.fail(
                        seg,
                        ViolationKind::IdleState,
                        format!("idle stack holds {} entries", stacks.segment_len(seg)),
                    );
                    return;
                }
                if stacks.segment_flushes(seg) != 0 {
                    self.fail(
                        seg,
                        ViolationKind::IdleState,
                        format!(
                            "idle stack has a stale flush counter ({})",
                            stacks.segment_flushes(seg)
                        ),
                    );
                    return;
                }
                // Idle means borrowable: it must not be linked into any
                // *active* lane's chain (the retired owner's stale head is
                // the one exception).
                for lane in 0..WARP_SIZE {
                    if self.retired[lane] {
                        continue;
                    }
                    if stacks.chain(lane).contains(&(seg as u8)) {
                        self.fail(
                            lane,
                            ViolationKind::IdleState,
                            format!("idle stack {seg} is linked into active lane {lane}'s chain"),
                        );
                        return;
                    }
                }
            }
        }
    }
}
