//! The RT unit: the paper's modified ray-tracing acceleration unit.
//!
//! One RT unit per SM accepts warps executing a trace-ray instruction and
//! performs BVH traversal for all 32 rays (§II-B). This crate models the
//! unit's microarchitecture:
//!
//! * [`stack`] — the heart of the reproduction: per-thread hierarchical
//!   traversal stacks. The primary **RB stack** lives in the ray buffer
//!   (free to access), and depending on [`stack::StackConfig`] overflow
//!   entries spill either directly to thread-local global memory
//!   (baseline), or into a per-thread **SH stack** in shared memory with
//!   optional *skewed bank access* and *dynamic intra-warp reallocation*
//!   (the SMS architecture, §IV–§VI).
//! * [`microop`] — the ordered memory micro-operations the stack manager
//!   emits (e.g. a pop with both levels overflowed = shared load → global
//!   load → shared store, issued sequentially as §VI-A specifies).
//! * [`unit`](mod@unit) — the warp buffer (≤4 warps), GTO warp scheduling, node-fetch
//!   coalescing, operation-unit latencies, response handling, and
//!   per-thread traversal state machines.
//! * [`trace`] — the trace-ray request/result interface used by the SM
//!   model.
//!
//! Traversal order is computed by `sms_bvh::traverse::node_step`, the same
//! kernel the functional renderer uses, so results are bit-identical to the
//! reference and traversal *work* is identical across stack configurations.

pub mod metrics;
pub mod microop;
pub mod overhead;
pub mod predictor;
pub mod stack;
pub mod trace;
pub mod unit;
pub mod validator;

pub use metrics::StackMetrics;
pub use microop::{MicroOp, Space, StackLevel};
pub use overhead::OverheadReport;
pub use predictor::RayPredictor;
pub use stack::{SmsParams, StackConfig, WarpStacks};
pub use trace::{RayQuery, TraceRequest, TraceResult};
pub use unit::{RtSlice, RtUnit, RtUnitConfig, ThreadTraceRecorder};
pub use validator::{StackValidator, StackViolation, ViolationKind};
