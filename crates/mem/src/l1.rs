//! The per-SM L1 data cache (the L1D half of the unified L1/shared array).

use crate::cache::{Cache, CacheConfig};
use crate::global::GlobalMemory;
use crate::space::{AccessKind, Addr, Cycle, LINE_SIZE};
use crate::stats::MemStats;
use std::collections::HashMap;

/// Configuration of one SM's L1D slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Capacity in bytes. Table I: 64 KB unified; SMS configurations carve
    /// shared-memory bytes out of this (e.g. 56 KB L1D + 8 KB shared).
    pub size_bytes: u64,
    /// L1 hit latency (Table I: 20 cycles).
    pub latency: Cycle,
    /// Cycles between L1 transactions (port bandwidth).
    pub interval: Cycle,
    /// Traversal-stack spill/reload traffic bypasses the L1 and is serviced
    /// by L2/DRAM. This matches the paper's model, which consistently
    /// accounts spill traffic as *off-chip* (§II-C "frequent off-chip
    /// memory accesses for stack maintenance", Fig. 7 "older addresses
    /// migrate to slower, off-chip global memory", and Fig. 15b where spill
    /// traffic directly moves the off-chip access count). Set to `false`
    /// for the cached-spills ablation bench.
    pub stack_bypasses_l1: bool,
}

impl Default for L1Config {
    fn default() -> Self {
        L1Config { size_bytes: 64 * 1024, latency: 20, interval: 1, stack_bypasses_l1: true }
    }
}

/// One SM's L1 data cache, backed by the shared [`GlobalMemory`].
///
/// Policy: loads allocate; stores are write-through without allocation
/// (they update the line if present), the common GPU L1 policy. This is why
/// spill *stores* always produce off-chip traffic in the baseline.
#[derive(Debug)]
pub struct SmL1 {
    config: L1Config,
    cache: Cache,
    port: crate::global::Port,
    mshr: HashMap<Addr, Cycle>,
    /// Per-SM counters (L1 hits/misses, stores, transaction classes).
    pub stats: MemStats,
}

impl SmL1 {
    /// Creates an empty L1.
    pub fn new(config: L1Config) -> Self {
        SmL1 {
            cache: Cache::new(CacheConfig {
                size_bytes: config.size_bytes,
                assoc: 0, // Table I: fully associative
                line_size: LINE_SIZE,
            }),
            port: crate::global::Port::new(config.interval),
            mshr: HashMap::new(),
            config,
            stats: MemStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &L1Config {
        &self.config
    }

    /// Accesses one line-aligned address at cycle `at`; returns the cycle at
    /// which the access completes (data available / store accepted).
    ///
    /// `is_stack` tags the transaction as traversal-stack spill/reload
    /// traffic for the Fig. 15b off-chip accounting.
    pub fn access_line(
        &mut self,
        global: &mut GlobalMemory,
        line: Addr,
        kind: AccessKind,
        at: Cycle,
        is_stack: bool,
    ) -> Cycle {
        if is_stack {
            self.stats.stack_transactions += 1;
        } else {
            self.stats.data_transactions += 1;
        }
        let start = self.port.issue(at);
        if is_stack && self.config.stack_bypasses_l1 {
            // Off-chip spill path: through the L1 port/crossbar but not the
            // cache. Stores stay posted; loads pay the L2/DRAM round trip.
            if matches!(kind, AccessKind::Store) {
                self.stats.stores += 1;
            } else {
                self.stats.l1_misses += 1;
                self.stats.stack_l1_misses += 1;
            }
            return global.access_line(line, kind, start + self.config.latency);
        }
        match kind {
            AccessKind::Store => {
                // Write-through, no-allocate: update if present, always send
                // down. The store completes (for dependence purposes) when
                // accepted by L2.
                self.stats.stores += 1;
                let _present = self.cache.probe(line);
                global.access_line(line, AccessKind::Store, start + self.config.latency)
            }
            AccessKind::Load => {
                if let Some(&done) = self.mshr.get(&line) {
                    if done > at {
                        return done;
                    }
                    self.mshr.remove(&line);
                }
                if self.cache.probe(line) {
                    self.stats.l1_hits += 1;
                    if is_stack {
                        self.stats.stack_l1_hits += 1;
                    }
                    return start + self.config.latency;
                }
                self.stats.l1_misses += 1;
                if is_stack {
                    self.stats.stack_l1_misses += 1;
                }
                let done = global.access_line(line, AccessKind::Load, start + self.config.latency);
                self.cache.fill(line);
                self.mshr.insert(line, done);
                if self.mshr.len() > 1024 {
                    self.mshr.retain(|_, &mut d| d > at);
                }
                done
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::GlobalMemoryConfig;

    fn setup() -> (SmL1, GlobalMemory) {
        (SmL1::new(L1Config::default()), GlobalMemory::new(GlobalMemoryConfig::default()))
    }

    #[test]
    fn load_miss_then_hit() {
        let (mut l1, mut gm) = setup();
        let miss = l1.access_line(&mut gm, 0, AccessKind::Load, 0, false);
        let hit = l1.access_line(&mut gm, 0, AccessKind::Load, miss, false);
        assert!(miss > 20 + 160, "cold miss reaches DRAM");
        assert_eq!(hit - miss, 20, "L1 hit costs l1 latency");
        assert_eq!(l1.stats.l1_hits, 1);
        assert_eq!(l1.stats.l1_misses, 1);
    }

    #[test]
    fn store_is_write_through() {
        let (mut l1, mut gm) = setup();
        let done = l1.access_line(&mut gm, 0, AccessKind::Store, 0, true);
        assert!(done > 20, "store passes through to L2");
        assert_eq!(l1.stats.stores, 1);
        assert_eq!(l1.stats.l1_hits + l1.stats.l1_misses, 0, "stores are not load lookups");
        // Store did not allocate: a following load misses.
        let load = l1.access_line(&mut gm, 0, AccessKind::Load, done, true);
        assert_eq!(l1.stats.l1_misses, 1);
        assert!(load > done + 20);
    }

    #[test]
    fn mshr_merges_concurrent_loads() {
        let (mut l1, mut gm) = setup();
        let a = l1.access_line(&mut gm, 0, AccessKind::Load, 0, false);
        let b = l1.access_line(&mut gm, 0, AccessKind::Load, 1, false);
        assert_eq!(a, b);
        assert_eq!(l1.stats.l1_misses, 1);
        assert_eq!(l1.stats.l1_hits, 0, "merged, not a hit");
    }

    #[test]
    fn stack_vs_data_transaction_classes() {
        let (mut l1, mut gm) = setup();
        l1.access_line(&mut gm, 0, AccessKind::Load, 0, true);
        l1.access_line(&mut gm, 128, AccessKind::Load, 0, false);
        assert_eq!(l1.stats.stack_transactions, 1);
        assert_eq!(l1.stats.data_transactions, 1);
    }

    #[test]
    fn capacity_eviction_causes_remisses() {
        let mut l1 = SmL1::new(L1Config { size_bytes: 1024, ..Default::default() }); // 8 lines
        let mut gm = GlobalMemory::new(GlobalMemoryConfig::default());
        let mut t = 0;
        for i in 0..16u64 {
            t = l1.access_line(&mut gm, i * 128, AccessKind::Load, t, false);
        }
        // Line 0 was evicted by the working set overflow.
        l1.access_line(&mut gm, 0, AccessKind::Load, t + 10_000, false);
        assert_eq!(l1.stats.l1_misses, 17);
    }
}
