//! Banked shared memory with conflict serialization (paper §V-A).
//!
//! Shared memory is divided into 32 banks of 4-byte words. A warp-wide
//! access in which multiple threads touch *different words in the same
//! bank* serializes: the transaction takes `max(words per bank)` bank
//! cycles. An 8-byte traversal-stack entry spans two adjacent banks, so an
//! `SH_8` stack occupies 16 banks and naive entry-0-first access patterns
//! collide heavily — the motivation for the skewed mapping.

use crate::space::{Addr, Cycle};

/// Shared-memory geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedMemConfig {
    /// Number of banks (32 on all modern GPUs).
    pub banks: u32,
    /// Bank word width in bytes (4).
    pub bank_width: u32,
    /// Conflict-free access latency in cycles (same array as L1: 20).
    pub latency: Cycle,
    /// Cycles between warp transactions (port bandwidth).
    pub interval: Cycle,
    /// Cycles each serialized bank pass beyond the first adds: conflicting
    /// accesses replay through the load/store pipe (GPGPU-Sim-style warp
    /// instruction replay), so a pass costs a pipe slot, not one cycle.
    pub conflict_replay_cycles: Cycle,
}

impl Default for SharedMemConfig {
    fn default() -> Self {
        SharedMemConfig {
            banks: 32,
            bank_width: 4,
            latency: 20,
            interval: 1,
            conflict_replay_cycles: 8,
        }
    }
}

/// One SM's shared-memory array (timing model only; stack *contents* are
/// tracked functionally by the RT unit).
#[derive(Debug)]
pub struct SharedMem {
    config: SharedMemConfig,
    port: crate::global::Port,
    bank_words: Vec<Vec<Addr>>,
    /// Warp transactions serviced.
    pub accesses: u64,
    /// Total extra cycles spent serializing bank conflicts (Fig. 14's
    /// "delay cycles").
    pub conflict_cycles: u64,
}

impl SharedMem {
    /// Creates the array.
    pub fn new(config: SharedMemConfig) -> Self {
        SharedMem {
            port: crate::global::Port::new(config.interval),
            bank_words: vec![Vec::new(); config.banks as usize],
            config,
            accesses: 0,
            conflict_cycles: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SharedMemConfig {
        &self.config
    }

    /// Services one warp-wide shared-memory transaction at cycle `at`.
    ///
    /// `accesses` are the per-thread `(byte address, size)` pairs collected
    /// by the memory scheduler for the scheduled warp. Returns the
    /// completion cycle: `latency` plus one extra cycle for every serialized
    /// bank pass beyond the first. Threads reading the *same word* broadcast
    /// and do not conflict.
    pub fn access_warp(
        &mut self,
        at: Cycle,
        accesses: impl IntoIterator<Item = (Addr, u32)>,
    ) -> Cycle {
        for b in &mut self.bank_words {
            b.clear();
        }
        let mut any = false;
        for (addr, size) in accesses {
            if size == 0 {
                continue;
            }
            any = true;
            let first_word = addr / self.config.bank_width as u64;
            let last_word = (addr + size as u64 - 1) / self.config.bank_width as u64;
            for w in first_word..=last_word {
                let bank = (w % self.config.banks as u64) as usize;
                // Same word accessed twice = broadcast, not a conflict.
                if !self.bank_words[bank].contains(&w) {
                    self.bank_words[bank].push(w);
                }
            }
        }
        if !any {
            return at;
        }
        self.accesses += 1;
        let passes = self.bank_words.iter().map(Vec::len).max().unwrap_or(1).max(1) as u64;
        let extra = (passes - 1) * self.config.conflict_replay_cycles;
        self.conflict_cycles += extra;
        // Serialized passes replay through the pipe back to back, costing
        // both latency on this access and bandwidth for the warps behind it.
        let start = self.port.issue_n(at, passes);
        start + self.config.latency + extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sm() -> SharedMem {
        SharedMem::new(SharedMemConfig::default())
    }

    #[test]
    fn conflict_free_access_costs_latency() {
        let mut m = sm();
        // 32 threads, each touching one distinct 4B word in its own bank.
        let accesses: Vec<(Addr, u32)> = (0..32).map(|t| (t as u64 * 4, 4)).collect();
        let done = m.access_warp(0, accesses);
        assert_eq!(done, 20);
        assert_eq!(m.conflict_cycles, 0);
    }

    #[test]
    fn full_conflict_serializes() {
        let mut m = sm();
        // 32 threads touching 32 different words of bank 0 (stride 128B).
        let accesses: Vec<(Addr, u32)> = (0..32).map(|t| (t as u64 * 128, 4)).collect();
        let done = m.access_warp(0, accesses);
        assert_eq!(done, 20 + 31 * 8);
        assert_eq!(m.conflict_cycles, 31 * 8);
    }

    #[test]
    fn broadcast_same_word_is_free() {
        let mut m = sm();
        let accesses: Vec<(Addr, u32)> = (0..32).map(|_| (64u64, 4)).collect();
        let done = m.access_warp(0, accesses);
        assert_eq!(done, 20);
        assert_eq!(m.conflict_cycles, 0);
    }

    #[test]
    fn eight_byte_entries_span_two_banks() {
        let mut m = sm();
        // Two threads at addresses 0 and 128: words 0,1 and 32,33 → banks
        // 0,1 twice → 2 passes.
        let done = m.access_warp(0, [(0u64, 8u32), (128, 8)]);
        assert_eq!(done, 20 + 8);
        assert_eq!(m.conflict_cycles, 8);
    }

    #[test]
    fn skewed_entries_avoid_the_conflict() {
        let mut m = sm();
        // Same two threads, second one offset by one entry (8B): banks 0,1
        // and 2,3 → conflict-free.
        let done = m.access_warp(0, [(0u64, 8u32), (136, 8)]);
        assert_eq!(done, 20);
        assert_eq!(m.conflict_cycles, 0);
    }

    #[test]
    fn empty_transaction_is_free() {
        let mut m = sm();
        let done = m.access_warp(7, std::iter::empty());
        assert_eq!(done, 7);
        assert_eq!(m.accesses, 0);
    }

    #[test]
    fn port_backpressure() {
        let mut m = sm();
        let a = m.access_warp(0, [(0u64, 4u32)]);
        let b = m.access_warp(0, [(4u64, 4u32)]);
        assert_eq!(b, a + 1, "second warp transaction starts one interval later");
    }
}
