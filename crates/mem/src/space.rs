//! Simulated address-space layout and basic memory types.

/// A byte address in the simulated global address space.
pub type Addr = u64;

/// A simulation cycle count.
pub type Cycle = u64;

/// Cache line size in bytes (both L1 and L2).
pub const LINE_SIZE: u64 = 128;

/// Base address of the thread-local traversal-stack spill region.
///
/// Spill space is laid out like CUDA *local memory*: warp-interleaved, so
/// that slot `s` of lane `l` in warp `w` lives at
/// `SPILL_BASE_ADDR + w * SPILL_REGION_BYTES + s * 32*8 + l * 8`.
/// Warp-uniform accesses (all lanes at the same slot) coalesce into two
/// 128 B lines — but traversal stacks are *divergent*: lanes sit at
/// different spill depths, so warp-wide spill traffic scatters across many
/// lines, and consecutive spills/reloads of one thread touch a *different*
/// line every time (slots are 256 B apart). This is exactly the
/// uncoalescable, uncacheable traffic pattern the paper describes (§II-C).
pub const SPILL_BASE_ADDR: Addr = 0x8000_0000;

/// Maximum spill slots per thread (far above the ≈30-entry maximum stack
/// depth the paper observes).
pub const SPILL_MAX_SLOTS: u64 = 512;

/// Bytes of interleaved spill space per warp.
pub const SPILL_REGION_BYTES: u64 = SPILL_MAX_SLOTS * 32 * 8;

/// Base address of the shading/material data region accessed by the SIMT
/// compute phases between trace calls.
pub const SHADE_BASE_ADDR: Addr = 0xC000_0000;

/// Whether an access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Read access.
    Load,
    /// Write access.
    Store,
}

/// The global-memory address of stack-spill slot `slot` for thread
/// `global_tid` (warp-interleaved local-memory layout).
#[inline]
pub fn spill_slot_addr(global_tid: u32, slot: u32) -> Addr {
    debug_assert!((slot as u64) < SPILL_MAX_SLOTS, "spill slot {slot} out of window");
    let warp = global_tid as u64 / 32;
    let lane = global_tid as u64 % 32;
    SPILL_BASE_ADDR + warp * SPILL_REGION_BYTES + slot as u64 * (32 * 8) + lane * 8
}

/// The line-aligned address containing `addr`.
#[inline]
pub fn line_of(addr: Addr) -> Addr {
    addr & !(LINE_SIZE - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_regions_are_disjoint() {
        let end0 = spill_slot_addr(31, (SPILL_MAX_SLOTS - 1) as u32) + 8;
        let start1 = spill_slot_addr(32, 0);
        assert!(end0 <= start1);
    }

    #[test]
    fn uniform_slot_coalesces_divergent_slots_scatter() {
        // Warp-uniform access (all lanes, same slot): exactly two lines.
        let uniform: std::collections::HashSet<u64> =
            (0..32).map(|l| line_of(spill_slot_addr(l, 3))).collect();
        assert_eq!(uniform.len(), 2);
        // Divergent depths (lane l at slot l): many distinct lines.
        let divergent: std::collections::HashSet<u64> =
            (0..32).map(|l| line_of(spill_slot_addr(l, l))).collect();
        assert!(divergent.len() >= 16, "got {}", divergent.len());
    }

    #[test]
    fn consecutive_slots_of_one_thread_never_share_a_line() {
        // The no-burst-locality property: slots are 256B apart.
        for s in 0..20u32 {
            assert_ne!(line_of(spill_slot_addr(5, s)), line_of(spill_slot_addr(5, s + 1)));
        }
    }

    #[test]
    fn line_alignment() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(127), 0);
        assert_eq!(line_of(128), 128);
        assert_eq!(line_of(300), 256);
    }

    #[test]
    fn regions_do_not_overlap() {
        // 8Ki warps (256Ki threads) of spill space stays below the shading
        // region.
        let top = SPILL_BASE_ADDR + 8192 * SPILL_REGION_BYTES;
        assert!(top <= SHADE_BASE_ADDR);
    }
}
