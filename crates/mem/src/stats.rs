//! Memory-system counters collected during simulation.

/// Counters for one memory hierarchy (merge per-SM instances with
/// [`MemStats::merge`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1D load/store lookups that hit.
    pub l1_hits: u64,
    /// L1D lookups that missed.
    pub l1_misses: u64,
    /// L2 lookups that hit.
    pub l2_hits: u64,
    /// L2 lookups that missed (DRAM accesses).
    pub l2_misses: u64,
    /// Store transactions written through to L2.
    pub stores: u64,
    /// Line transactions issued for traversal-stack spill/reload traffic.
    pub stack_transactions: u64,
    /// Stack-traffic loads that hit in L1.
    pub stack_l1_hits: u64,
    /// Stack-traffic loads that missed in L1.
    pub stack_l1_misses: u64,
    /// Line transactions issued for scene data (nodes, primitives, shading).
    pub data_transactions: u64,
    /// Warp-level shared-memory transactions.
    pub shared_accesses: u64,
    /// Extra cycles lost to shared-memory bank conflicts.
    pub bank_conflict_cycles: u64,
}

impl MemStats {
    /// Total accesses that had to leave the SM (L1 misses plus write-through
    /// stores): the paper's "off-chip memory accesses" (Fig. 15b) as seen
    /// from the SM.
    pub fn offchip_accesses(&self) -> u64 {
        self.l1_misses + self.stores
    }

    /// L1 hit rate in `[0, 1]`; `0` when there were no accesses.
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &MemStats) {
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.stores += other.stores;
        self.stack_transactions += other.stack_transactions;
        self.stack_l1_hits += other.stack_l1_hits;
        self.stack_l1_misses += other.stack_l1_misses;
        self.data_transactions += other.data_transactions;
        self.shared_accesses += other.shared_accesses;
        self.bank_conflict_cycles += other.bank_conflict_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = MemStats { l1_hits: 1, l1_misses: 2, ..Default::default() };
        let b = MemStats { l1_hits: 10, stores: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.l1_hits, 11);
        assert_eq!(a.l1_misses, 2);
        assert_eq!(a.stores, 5);
        assert_eq!(a.offchip_accesses(), 7);
    }

    #[test]
    fn hit_rate_edges() {
        assert_eq!(MemStats::default().l1_hit_rate(), 0.0);
        let s = MemStats { l1_hits: 3, l1_misses: 1, ..Default::default() };
        assert_eq!(s.l1_hit_rate(), 0.75);
    }
}
