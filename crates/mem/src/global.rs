//! The shared L2 cache and DRAM behind all SMs.

use crate::cache::{Cache, CacheConfig};
use crate::space::{AccessKind, Addr, Cycle};
use crate::stats::MemStats;
use std::collections::HashMap;

/// A bandwidth-limited pipeline stage: at most one transaction per
/// `interval` cycles.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Port {
    next_free: Cycle,
    interval: Cycle,
}

impl Port {
    pub(crate) fn new(interval: Cycle) -> Self {
        Port { next_free: 0, interval }
    }

    /// Reserves the port at or after `at`; returns the actual start cycle.
    pub(crate) fn issue(&mut self, at: Cycle) -> Cycle {
        self.issue_n(at, 1)
    }

    /// Reserves the port for `n` back-to-back transaction slots (bank-
    /// conflict replays occupy the pipe for every serialized pass).
    pub(crate) fn issue_n(&mut self, at: Cycle, n: u64) -> Cycle {
        let start = at.max(self.next_free);
        self.next_free = start + self.interval * n.max(1);
        start
    }
}

/// Configuration of the shared memory-side hierarchy (L2 + DRAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalMemoryConfig {
    /// L2 geometry (Table I: 3 MB, 16-way).
    pub l2: CacheConfig,
    /// L2 access latency in cycles (Table I: 160, inclusive of interconnect).
    pub l2_latency: Cycle,
    /// Cycles between transactions per L2 slice (bandwidth).
    pub l2_interval: Cycle,
    /// Number of address-interleaved L2 slices (independent ports).
    pub l2_slices: u32,
    /// DRAM access latency in cycles beyond L2.
    pub dram_latency: Cycle,
    /// Cycles between DRAM line transfers per channel (bandwidth).
    pub dram_interval: Cycle,
    /// Number of address-interleaved DRAM channels.
    pub dram_channels: u32,
}

impl Default for GlobalMemoryConfig {
    fn default() -> Self {
        GlobalMemoryConfig {
            l2: CacheConfig::l2_default(),
            l2_latency: 160,
            l2_interval: 1,
            l2_slices: 8,
            dram_latency: 200,
            dram_interval: 2,
            dram_channels: 4,
        }
    }
}

/// The device-level memory system shared by all SMs: L2 cache + DRAM.
///
/// Line-granular. Misses are merged through an MSHR table so concurrent
/// requests for an in-flight line share one DRAM transfer.
#[derive(Debug)]
pub struct GlobalMemory {
    config: GlobalMemoryConfig,
    l2: Cache,
    l2_ports: Vec<Port>,
    dram_ports: Vec<Port>,
    mshr: HashMap<Addr, Cycle>,
    /// Device-level counters (L2/DRAM only; L1 counters live per SM).
    pub stats: MemStats,
}

impl GlobalMemory {
    /// Creates the memory system.
    pub fn new(config: GlobalMemoryConfig) -> Self {
        assert!(config.l2_slices > 0 && config.dram_channels > 0, "need at least one port");
        GlobalMemory {
            l2: Cache::new(config.l2),
            l2_ports: (0..config.l2_slices).map(|_| Port::new(config.l2_interval)).collect(),
            dram_ports: (0..config.dram_channels)
                .map(|_| Port::new(config.dram_interval))
                .collect(),
            mshr: HashMap::new(),
            config,
            stats: MemStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GlobalMemoryConfig {
        &self.config
    }

    /// Accesses one line at L2 level at cycle `at`; returns the completion
    /// cycle (when data would be back at the requesting SM's L1).
    pub fn access_line(&mut self, line: Addr, kind: AccessKind, at: Cycle) -> Cycle {
        // MSHR merge: if this line is already being fetched, ride along.
        if let Some(&done) = self.mshr.get(&line) {
            if done > at {
                return done;
            }
            self.mshr.remove(&line);
        }

        let slice = ((line / crate::space::LINE_SIZE) % self.config.l2_slices as u64) as usize;
        let start = self.l2_ports[slice].issue(at);
        let hit = self.l2.probe(line);
        if hit {
            self.stats.l2_hits += 1;
            return start + self.config.l2_latency;
        }
        self.stats.l2_misses += 1;
        let chan = ((line / crate::space::LINE_SIZE) % self.config.dram_channels as u64) as usize;
        let dram_start = self.dram_ports[chan].issue(start + self.config.l2_latency);
        let done = dram_start + self.config.dram_latency;
        self.l2.fill(line);
        if matches!(kind, AccessKind::Load) {
            self.mshr.insert(line, done);
        }
        // Periodically prune stale MSHR entries to bound memory.
        if self.mshr.len() > 4096 {
            self.mshr.retain(|_, &mut d| d > at);
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gm() -> GlobalMemory {
        GlobalMemory::new(GlobalMemoryConfig::default())
    }

    #[test]
    fn l2_hit_faster_than_miss() {
        let mut m = gm();
        let miss = m.access_line(0, AccessKind::Load, 0);
        let hit = m.access_line(0, AccessKind::Load, miss);
        assert!(miss > 160, "cold miss goes to DRAM");
        assert_eq!(hit - miss, 160, "L2 hit costs exactly l2_latency");
        assert_eq!(m.stats.l2_hits, 1);
        assert_eq!(m.stats.l2_misses, 1);
    }

    #[test]
    fn mshr_merges_inflight_lines() {
        let mut m = gm();
        let first = m.access_line(0, AccessKind::Load, 0);
        let second = m.access_line(0, AccessKind::Load, 5);
        assert_eq!(first, second, "second requester shares the fetch");
        assert_eq!(m.stats.l2_misses, 1);
    }

    #[test]
    fn dram_bandwidth_serializes() {
        let mut m = gm();
        // Two distinct cold lines at the same cycle: second DRAM transfer
        // starts dram_interval later.
        let a = m.access_line(0, AccessKind::Load, 0);
        let b = m.access_line(4096, AccessKind::Load, 0);
        // DRAM is the binding constraint: transfers are dram_interval apart.
        assert_eq!(b - a, m.config.dram_interval);
    }

    #[test]
    fn monotonic_time() {
        let mut m = gm();
        let mut t = 0;
        for i in 0..100u64 {
            let done = m.access_line(i * 128, AccessKind::Load, i);
            assert!(done > i);
            t = t.max(done);
        }
        assert!(t > 0);
    }
}
