//! Warp-level coalescing of per-thread global accesses.

use crate::space::{line_of, Addr, LINE_SIZE};

/// Coalesces per-thread `(addr, size)` accesses into the distinct 128 B
/// lines they touch, sorted ascending.
///
/// One returned line = one memory transaction, as issued by the memory
/// scheduler for a warp. Scene-geometry fetches from neighbouring rays often
/// share lines; thread-private stack spills never do (paper §II-C).
///
/// # Example
///
/// ```
/// use sms_mem::coalesce_lines;
/// // Four threads reading consecutive 32B words: one 128B transaction.
/// let lines = coalesce_lines([(0u64, 32u32), (32, 32), (64, 32), (96, 32)]);
/// assert_eq!(lines, vec![0]);
/// ```
pub fn coalesce_lines(accesses: impl IntoIterator<Item = (Addr, u32)>) -> Vec<Addr> {
    let mut lines = Vec::new();
    coalesce_lines_into(&mut lines, accesses);
    lines
}

/// [`coalesce_lines`] into a caller-owned buffer (cleared first).
///
/// Hot per-cycle paths — the RT unit issues one coalescing pass per
/// scheduled warp — reuse one buffer across calls instead of allocating a
/// fresh `Vec` each time. The resulting `lines` are identical to what
/// [`coalesce_lines`] returns.
pub fn coalesce_lines_into(lines: &mut Vec<Addr>, accesses: impl IntoIterator<Item = (Addr, u32)>) {
    lines.clear();
    for (addr, size) in accesses {
        if size == 0 {
            continue;
        }
        let first = line_of(addr);
        let last = line_of(addr + size as u64 - 1);
        let mut l = first;
        while l <= last {
            lines.push(l);
            l += LINE_SIZE;
        }
    }
    lines.sort_unstable();
    lines.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_threads_coalesce() {
        let accesses: Vec<(Addr, u32)> = (0..32).map(|t| (t as u64 * 4, 4)).collect();
        assert_eq!(coalesce_lines(accesses), vec![0]);
    }

    #[test]
    fn strided_threads_do_not_coalesce() {
        // 8B stack entries in 4KB-strided private windows: 32 transactions.
        let accesses: Vec<(Addr, u32)> = (0..32).map(|t| (t as u64 * 4096, 8)).collect();
        assert_eq!(coalesce_lines(accesses).len(), 32);
    }

    #[test]
    fn access_spanning_lines_counts_both() {
        assert_eq!(coalesce_lines([(120u64, 16u32)]), vec![0, 128]);
    }

    #[test]
    fn multi_line_fetch_expands() {
        // A 256B node fetch covers two lines.
        assert_eq!(coalesce_lines([(256u64, 256u32)]), vec![256, 384]);
    }

    #[test]
    fn duplicates_merge() {
        assert_eq!(coalesce_lines([(0u64, 8u32), (8, 8), (0, 128)]), vec![0]);
    }

    #[test]
    fn empty_and_zero_size() {
        assert!(coalesce_lines(std::iter::empty()).is_empty());
        assert!(coalesce_lines([(64u64, 0u32)]).is_empty());
    }

    #[test]
    fn into_variant_clears_and_matches() {
        let mut buf = vec![0xdead_beef];
        coalesce_lines_into(&mut buf, [(120u64, 16u32)]);
        assert_eq!(buf, coalesce_lines([(120u64, 16u32)]));
        coalesce_lines_into(&mut buf, std::iter::empty());
        assert!(buf.is_empty());
    }
}
