//! A set-associative LRU cache model.
//!
//! Tracks only tags (the simulator moves data functionally); used for both
//! the fully associative L1D and the 16-way L2 of Table I. LRU order within
//! a set is maintained with an intrusive doubly-linked list so that even the
//! 512-line fully associative L1 stays O(1) per access.

use crate::space::{Addr, LINE_SIZE};
use std::collections::HashMap;

/// Static configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity; `0` means fully associative.
    pub assoc: u32,
    /// Line size in bytes.
    pub line_size: u64,
}

impl CacheConfig {
    /// The paper's baseline L1D: 64 KB, fully associative.
    pub fn l1_default() -> Self {
        CacheConfig { size_bytes: 64 * 1024, assoc: 0, line_size: LINE_SIZE }
    }

    /// The paper's L2: 3 MB, 16-way.
    pub fn l2_default() -> Self {
        CacheConfig { size_bytes: 3 * 1024 * 1024, assoc: 16, line_size: LINE_SIZE }
    }

    /// Number of lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_size
    }

    /// Number of sets (1 for fully associative).
    pub fn sets(&self) -> u64 {
        if self.assoc == 0 {
            1
        } else {
            (self.lines() / self.assoc as u64).max(1)
        }
    }

    /// Ways per set.
    pub fn ways(&self) -> u64 {
        if self.assoc == 0 {
            self.lines()
        } else {
            self.assoc as u64
        }
    }
}

const NIL: u32 = u32::MAX;

/// One set's intrusive LRU list over way slots.
#[derive(Debug, Clone)]
struct Set {
    /// Tag stored in each way; `None` = invalid.
    tags: Vec<Option<Addr>>,
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    lookup: HashMap<Addr, u32>,
}

impl Set {
    fn new(ways: usize) -> Self {
        let mut s = Set {
            tags: vec![None; ways],
            prev: vec![NIL; ways],
            next: vec![NIL; ways],
            head: NIL,
            tail: NIL,
            lookup: HashMap::with_capacity(ways),
        };
        // Chain all ways into the list, all invalid, any order.
        for w in 0..ways as u32 {
            s.push_front(w);
        }
        s
    }

    fn unlink(&mut self, w: u32) {
        let (p, n) = (self.prev[w as usize], self.next[w as usize]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, w: u32) {
        self.prev[w as usize] = NIL;
        self.next[w as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = w;
        }
        self.head = w;
        if self.tail == NIL {
            self.tail = w;
        }
    }

    fn touch(&mut self, w: u32) {
        if self.head == w {
            return;
        }
        self.unlink(w);
        self.push_front(w);
    }

    /// Looks up `tag`; on hit promotes to MRU.
    fn probe(&mut self, tag: Addr) -> bool {
        if let Some(&w) = self.lookup.get(&tag) {
            self.touch(w);
            true
        } else {
            false
        }
    }

    /// Inserts `tag`, evicting LRU if necessary. Returns the evicted tag.
    fn fill(&mut self, tag: Addr) -> Option<Addr> {
        if let Some(&w) = self.lookup.get(&tag) {
            self.touch(w);
            return None;
        }
        let victim = self.tail;
        debug_assert_ne!(victim, NIL);
        let evicted = self.tags[victim as usize].take();
        if let Some(e) = evicted {
            self.lookup.remove(&e);
        }
        self.tags[victim as usize] = Some(tag);
        self.lookup.insert(tag, victim);
        self.touch(victim);
        evicted
    }
}

/// A tag-only set-associative LRU cache.
///
/// # Example
///
/// ```
/// use sms_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig { size_bytes: 256, assoc: 2, line_size: 128 });
/// assert!(!c.probe(0));      // cold miss
/// c.fill(0);
/// assert!(c.probe(0));       // hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Set>,
    set_count: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not describe at least one full set
    /// (size must be a multiple of `line_size * ways`).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let ways = config.ways();
        assert!(ways >= 1 && sets >= 1, "degenerate cache config {config:?}");
        assert!(
            sets * ways * config.line_size == config.size_bytes,
            "cache size {} not divisible into {} sets x {} ways x {}B lines",
            config.size_bytes,
            sets,
            ways,
            config.line_size
        );
        Cache {
            config,
            sets: (0..sets).map(|_| Set::new(ways as usize)).collect(),
            set_count: sets,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    #[inline]
    fn set_of(&self, line_addr: Addr) -> usize {
        ((line_addr / self.config.line_size) % self.set_count) as usize
    }

    /// Looks up the line containing `line_addr`; `true` on hit (promotes to
    /// MRU).
    pub fn probe(&mut self, line_addr: Addr) -> bool {
        let tag = line_addr / self.config.line_size;
        let set = self.set_of(line_addr);
        self.sets[set].probe(tag)
    }

    /// Installs the line containing `line_addr`, evicting the set's LRU line
    /// if needed. Returns the evicted line address, if any.
    pub fn fill(&mut self, line_addr: Addr) -> Option<Addr> {
        let tag = line_addr / self.config.line_size;
        let set = self.set_of(line_addr);
        self.sets[set].fill(tag).map(|t| t * self.config.line_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(assoc: u32) -> Cache {
        Cache::new(CacheConfig { size_bytes: 512, assoc, line_size: 128 })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny(0);
        assert!(!c.probe(0));
        c.fill(0);
        assert!(c.probe(0));
        assert!(c.probe(64), "same line, different offset");
        assert!(!c.probe(128));
    }

    #[test]
    fn lru_eviction_order_fully_associative() {
        let mut c = tiny(0); // 4 lines
        for i in 0..4u64 {
            c.fill(i * 128);
        }
        // Touch line 0 to make line 1 the LRU.
        assert!(c.probe(0));
        let evicted = c.fill(4 * 128);
        assert_eq!(evicted, Some(128));
        assert!(c.probe(0));
        assert!(!c.probe(128));
        assert!(c.probe(4 * 128));
    }

    #[test]
    fn set_associative_conflicts() {
        // 2 sets x 2 ways. Lines 0, 2, 4 map to set 0.
        let mut c = tiny(2);
        c.fill(0);
        c.fill(2 * 128);
        c.fill(4 * 128); // evicts line 0 (LRU of set 0)
        assert!(!c.probe(0));
        assert!(c.probe(2 * 128));
        assert!(c.probe(4 * 128));
        // Set 1 lines unaffected.
        c.fill(128);
        assert!(c.probe(128));
    }

    #[test]
    fn refill_same_line_is_idempotent() {
        let mut c = tiny(0);
        c.fill(0);
        assert_eq!(c.fill(0), None);
        assert!(c.probe(0));
    }

    #[test]
    fn capacity_eviction_count() {
        let mut c = Cache::new(CacheConfig { size_bytes: 64 * 1024, assoc: 0, line_size: 128 });
        // Fill 512 lines; none evicted.
        let mut evictions = 0;
        for i in 0..512u64 {
            if c.fill(i * 128).is_some() {
                evictions += 1;
            }
        }
        assert_eq!(evictions, 0);
        // The 513th evicts exactly one.
        assert!(c.fill(512 * 128).is_some());
    }

    #[test]
    fn non_power_of_two_set_count_works() {
        // The Table I L2 (3MB, 16-way) has 1536 sets; indexing is modulo.
        let mut c = Cache::new(CacheConfig { size_bytes: 3 * 128 * 2, assoc: 2, line_size: 128 });
        for i in 0..6u64 {
            c.fill(i * 128);
        }
        for i in 0..6u64 {
            assert!(c.probe(i * 128), "line {i} must still be resident");
        }
    }

    #[test]
    fn default_configs_are_valid() {
        let _ = Cache::new(CacheConfig::l1_default());
        let _ = Cache::new(CacheConfig::l2_default());
        assert_eq!(CacheConfig::l1_default().lines(), 512);
        assert_eq!(CacheConfig::l2_default().sets(), 1536);
    }
}
