//! The simulated GPU memory system.
//!
//! Implements the storage hierarchy of the paper's baseline GPU (Table I):
//!
//! * a per-SM **unified L1 data cache / shared memory** array — the L1D part
//!   is modelled in [`l1::SmL1`] (fully associative, LRU, 20-cycle latency by
//!   default), the shared-memory part in [`shared::SharedMem`] (32 banks ×
//!   4 B words with conflict serialization — the resource the SMS secondary
//!   stack lives in);
//! * a shared **L2 cache** (3 MB, 16-way, LRU, 160 cycles) and a
//!   bandwidth-limited **DRAM** behind it, in [`global::GlobalMemory`];
//! * warp-level **coalescing** of per-thread global accesses into 128 B line
//!   transactions ([`coalesce`]) — thread-private stack spills do not
//!   coalesce, which is exactly the paper's §II-C bottleneck.
//!
//! The timing model is a *latency calculator*: every stage has a bandwidth
//! (`cycles per transaction`) and a latency; a request's completion cycle is
//! computed when it is submitted, with port back-pressure folded in via
//! next-free counters and misses merged through MSHRs. This reproduces
//! queueing and bandwidth contention without a per-cycle event wheel.

pub mod cache;
pub mod coalesce;
pub mod global;
pub mod l1;
pub mod shared;
pub mod space;
pub mod stats;

pub use cache::{Cache, CacheConfig};
pub use coalesce::{coalesce_lines, coalesce_lines_into};
pub use global::{GlobalMemory, GlobalMemoryConfig};
pub use l1::{L1Config, SmL1};
pub use shared::{SharedMem, SharedMemConfig};
pub use space::{
    AccessKind, Addr, Cycle, LINE_SIZE, SHADE_BASE_ADDR, SPILL_BASE_ADDR, SPILL_REGION_BYTES,
};
pub use stats::MemStats;
