//! Procedural benchmark scenes standing in for Lumibench (paper Table II).
//!
//! The paper evaluates 16 Lumibench scenes rendered with a path-tracing
//! shader. The original meshes are not redistributable, so this crate
//! generates *procedural stand-ins with the same names and the same
//! traversal character*: relative triangle counts follow Table II (scaled
//! down ~1/200 so the cycle simulator runs on a laptop), and each scene's
//! geometry style is chosen to reproduce the paper's described behaviour —
//! e.g. `SHIP` uses long thin primitives (high leaf-hit ratio), `ROBOT` and
//! `PARK` are large deep BVHs (deep stacks), `WKND` contains zero triangles
//! (analytic spheres, as in "Ray Tracing in One Weekend").
//!
//! The substitution is recorded in `DESIGN.md`; the Fig. 4/5 bench harnesses
//! verify the generated suite reproduces the paper's stack-depth statistics.
//!
//! # Example
//!
//! ```
//! use sms_scene::{Scene, SceneId};
//! let scene = Scene::build(SceneId::Bunny);
//! assert!(scene.prims.len() > 100);
//! let ray = scene.camera.primary_ray(scene.camera.width / 2, scene.camera.height / 2, 0);
//! assert!(ray.dir.is_finite());
//! ```

pub mod camera;
pub mod gen;
pub mod material;
pub mod primitive;
pub mod scenes;

pub use camera::Camera;
pub use material::{Material, MaterialId, ScatterResult};
pub use primitive::{ScenePrimitive, Shape};

use sms_geom::Vec3;

/// Identifies one of the 16 benchmark scenes (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SceneId {
    /// "Ray Tracing in One Weekend": zero triangles, analytic spheres.
    Wknd,
    /// Spring landscape: medium mesh with scattered foliage.
    Sprng,
    /// Fox model on a ground plane.
    Fox,
    /// Large terrain landscape.
    Lands,
    /// Carnival: mixed boxes and spheres.
    Crnvl,
    /// Sponza-style atrium (architectural boxes and columns).
    Spnza,
    /// Bathroom interior (enclosed room, high overlap).
    Bath,
    /// Robot: the largest mesh in the suite; deep BVH.
    Robot,
    /// Car model: dense curved shell.
    Car,
    /// Party room: cluttered interior (used for Fig. 10 thread traces).
    Party,
    /// Forest: many instanced trees.
    Frst,
    /// Stanford-bunny-like blob.
    Bunny,
    /// Ship: few but long, thin primitives (leaf-heavy traversal).
    Ship,
    /// Reflective spheres test scene.
    Ref,
    /// Chestnut tree.
    Chsnt,
    /// Park: large outdoor scene with trees and terrain.
    Park,
}

impl SceneId {
    /// All scenes in Table II order.
    pub const ALL: [SceneId; 16] = [
        SceneId::Wknd,
        SceneId::Sprng,
        SceneId::Fox,
        SceneId::Lands,
        SceneId::Crnvl,
        SceneId::Spnza,
        SceneId::Bath,
        SceneId::Robot,
        SceneId::Car,
        SceneId::Party,
        SceneId::Frst,
        SceneId::Bunny,
        SceneId::Ship,
        SceneId::Ref,
        SceneId::Chsnt,
        SceneId::Park,
    ];

    /// The scene's name as printed in the paper's tables and figures.
    pub fn name(self) -> &'static str {
        match self {
            SceneId::Wknd => "WKND",
            SceneId::Sprng => "SPRNG",
            SceneId::Fox => "FOX",
            SceneId::Lands => "LANDS",
            SceneId::Crnvl => "CRNVL",
            SceneId::Spnza => "SPNZA",
            SceneId::Bath => "BATH",
            SceneId::Robot => "ROBOT",
            SceneId::Car => "CAR",
            SceneId::Party => "PARTY",
            SceneId::Frst => "FRST",
            SceneId::Bunny => "BUNNY",
            SceneId::Ship => "SHIP",
            SceneId::Ref => "REF",
            SceneId::Chsnt => "CHSNT",
            SceneId::Park => "PARK",
        }
    }

    /// `true` for the three scenes the paper evaluates at reduced
    /// resolution (32×32, 1 spp) due to their size: CHSNT, ROBOT, PARK.
    pub fn is_reduced_resolution(self) -> bool {
        matches!(self, SceneId::Chsnt | SceneId::Robot | SceneId::Park)
    }
}

impl std::fmt::Display for SceneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SceneId {
    type Err = ParseSceneIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SceneId::ALL
            .iter()
            .copied()
            .find(|id| id.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| ParseSceneIdError { input: s.to_owned() })
    }
}

/// Error returned when parsing an unknown scene name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSceneIdError {
    input: String,
}

impl std::fmt::Display for ParseSceneIdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown scene name `{}`", self.input)
    }
}

impl std::error::Error for ParseSceneIdError {}

/// A light source for direct-illumination shadow rays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Light {
    /// A point light at `position` with RGB `intensity`.
    Point {
        /// World-space position.
        position: Vec3,
        /// Radiant intensity.
        intensity: Vec3,
    },
    /// A directional light (sun) shining along `-direction`.
    Directional {
        /// Unit vector pointing *toward* the light.
        direction: Vec3,
        /// Incoming radiance.
        radiance: Vec3,
    },
}

/// A complete renderable scene: primitives, materials, camera and light.
#[derive(Debug, Clone)]
pub struct Scene {
    /// Which Table II scene this is.
    pub id: SceneId,
    /// Scene primitives (triangles and/or spheres).
    pub prims: Vec<ScenePrimitive>,
    /// Material table indexed by [`MaterialId`].
    pub materials: Vec<Material>,
    /// The camera the renders use.
    pub camera: Camera,
    /// The light used for shadow rays.
    pub light: Light,
    /// Sky horizon colour (background gradient bottom).
    pub sky_horizon: Vec3,
    /// Sky zenith colour (background gradient top).
    pub sky_zenith: Vec3,
}

impl Scene {
    /// Builds the named scene deterministically.
    pub fn build(id: SceneId) -> Scene {
        scenes::build(id)
    }

    /// Builds the named scene with every triangle uniformly subdivided into
    /// a `detail × detail` grid ([`gen::subdivide`]) — `detail²` times the
    /// base triangle count, same silhouette/materials/camera. `detail <= 1`
    /// is exactly [`Scene::build`], and the default pipeline never calls
    /// this, so existing renders and simulator statistics are untouched.
    ///
    /// This is the paper-scale path: SHIP at `detail = 20` crosses one
    /// million triangles, ROBOT at `detail = 3` doubles that — matching
    /// the Lumibench originals' order of magnitude for build-throughput
    /// benchmarks.
    pub fn build_scaled(id: SceneId, detail: u32) -> Scene {
        let mut scene = scenes::build(id);
        if detail <= 1 {
            return scene;
        }
        scene.prims = scene
            .prims
            .into_iter()
            .flat_map(|p| match p.shape {
                Shape::Tri(t) => {
                    let material = p.material;
                    gen::subdivide(vec![t], detail)
                        .into_iter()
                        .map(move |t| ScenePrimitive { shape: Shape::Tri(t), material })
                        .collect::<Vec<_>>()
                }
                _ => vec![p],
            })
            .collect();
        scene
    }

    /// Number of triangles (spheres excluded), as reported in Table II.
    pub fn triangle_count(&self) -> usize {
        self.prims.iter().filter(|p| matches!(p.shape, Shape::Tri(_))).count()
    }

    /// Background radiance for a ray that escaped the scene.
    pub fn sky(&self, dir: Vec3) -> Vec3 {
        let t = 0.5 * (dir.y + 1.0);
        self.sky_horizon.lerp(self.sky_zenith, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_names_round_trip() {
        for id in SceneId::ALL {
            let parsed: SceneId = id.name().parse().unwrap();
            assert_eq!(parsed, id);
            let lower: SceneId = id.name().to_lowercase().parse().unwrap();
            assert_eq!(lower, id);
        }
    }

    #[test]
    fn unknown_scene_name_errors() {
        let err = "NOPE".parse::<SceneId>().unwrap_err();
        assert!(err.to_string().contains("NOPE"));
    }

    #[test]
    fn reduced_resolution_matches_paper() {
        let reduced: Vec<_> = SceneId::ALL.iter().filter(|s| s.is_reduced_resolution()).collect();
        assert_eq!(reduced.len(), 3);
    }

    #[test]
    fn build_scaled_multiplies_triangles_only() {
        let base = Scene::build(SceneId::Ship);
        let scaled = Scene::build_scaled(SceneId::Ship, 3);
        assert_eq!(scaled.triangle_count(), base.triangle_count() * 9);
        let spheres =
            |s: &Scene| s.prims.iter().filter(|p| !matches!(p.shape, Shape::Tri(_))).count();
        assert_eq!(spheres(&scaled), spheres(&base));
        assert_eq!(scaled.camera.width, base.camera.width);
    }

    #[test]
    fn build_scaled_detail_one_is_default_build() {
        let base = Scene::build(SceneId::Bunny);
        let scaled = Scene::build_scaled(SceneId::Bunny, 1);
        assert_eq!(scaled.prims.len(), base.prims.len());
        assert_eq!(scaled.prims[0], base.prims[0]);
    }

    #[test]
    fn all_has_16_unique_scenes() {
        let mut names: Vec<_> = SceneId::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }
}
