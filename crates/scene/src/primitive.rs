//! Scene primitives: shapes paired with materials.

use crate::material::MaterialId;
use sms_bvh::{PrimHit, Primitive};
use sms_geom::{Aabb, Ray, Sphere, Triangle, Vec3};

/// The geometric shape of a scene primitive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// A triangle.
    Tri(Triangle),
    /// An analytic sphere (used by WKND, CRNVL and REF).
    Sphere(Sphere),
}

/// A shape with a material, stored in BVH leaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenePrimitive {
    /// Geometry.
    pub shape: Shape,
    /// Index into the scene's material table.
    pub material: MaterialId,
}

impl ScenePrimitive {
    /// Creates a triangle primitive.
    pub fn tri(v0: Vec3, v1: Vec3, v2: Vec3, material: MaterialId) -> Self {
        ScenePrimitive { shape: Shape::Tri(Triangle::new(v0, v1, v2)), material }
    }

    /// Creates a sphere primitive.
    pub fn sphere(center: Vec3, radius: f32, material: MaterialId) -> Self {
        ScenePrimitive { shape: Shape::Sphere(Sphere::new(center, radius)), material }
    }

    /// Geometric normal at a surface point `p` (for spheres) or anywhere
    /// (for flat triangles).
    pub fn normal_at(&self, p: Vec3) -> Vec3 {
        match &self.shape {
            Shape::Tri(t) => t.normal(),
            Shape::Sphere(s) => s.normal_at(p),
        }
    }
}

impl Primitive for ScenePrimitive {
    fn aabb(&self) -> Aabb {
        match &self.shape {
            Shape::Tri(t) => t.aabb(),
            Shape::Sphere(s) => s.aabb(),
        }
    }

    fn intersect(&self, ray: &Ray, t_min: f32, t_max: f32) -> Option<PrimHit> {
        match &self.shape {
            Shape::Tri(t) => {
                t.intersect(ray, t_min, t_max).map(|h| PrimHit { t: h.t, u: h.u, v: h.v })
            }
            Shape::Sphere(s) => {
                s.intersect(ray, t_min, t_max).map(|t| PrimHit { t, u: 0.0, v: 0.0 })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_primitive_intersects() {
        let p = ScenePrimitive::tri(
            Vec3::new(-1.0, -1.0, 2.0),
            Vec3::new(1.0, -1.0, 2.0),
            Vec3::new(0.0, 1.0, 2.0),
            0,
        );
        let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
        let h = p.intersect(&r, 0.0, f32::INFINITY).unwrap();
        assert!((h.t - 2.0).abs() < 1e-5);
        assert!(p.aabb().contains_point(r.at(h.t)));
    }

    #[test]
    fn sphere_primitive_intersects() {
        let p = ScenePrimitive::sphere(Vec3::new(0.0, 0.0, 5.0), 1.0, 3);
        let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
        let h = p.intersect(&r, 0.0, f32::INFINITY).unwrap();
        assert!((h.t - 4.0).abs() < 1e-5);
        assert_eq!(p.material, 3);
    }

    #[test]
    fn sphere_normal_points_outward() {
        let p = ScenePrimitive::sphere(Vec3::ZERO, 2.0, 0);
        let n = p.normal_at(Vec3::new(0.0, 2.0, 0.0));
        assert!((n - Vec3::new(0.0, 1.0, 0.0)).length() < 1e-5);
    }
}
