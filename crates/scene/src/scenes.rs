//! Builders for the 16 Table II benchmark scenes.
//!
//! Triangle budgets follow Table II scaled by ~1/200 (small scenes are
//! scaled less so they stay meaningful); geometry styles reproduce each
//! scene's traversal character as described in the paper's §VII-B.

use crate::gen;
use crate::material::Material;
use crate::primitive::ScenePrimitive;
use crate::{Camera, Light, Scene, SceneId};
use sms_geom::{SplitMix64, Triangle, Vec3};

/// Builds the named scene deterministically.
pub fn build(id: SceneId) -> Scene {
    match id {
        SceneId::Wknd => wknd(),
        SceneId::Sprng => sprng(),
        SceneId::Fox => fox(),
        SceneId::Lands => lands(),
        SceneId::Crnvl => crnvl(),
        SceneId::Spnza => spnza(),
        SceneId::Bath => bath(),
        SceneId::Robot => robot(),
        SceneId::Car => car(),
        SceneId::Party => party(),
        SceneId::Frst => frst(),
        SceneId::Bunny => bunny(),
        SceneId::Ship => ship(),
        SceneId::Ref => reflective(),
        SceneId::Chsnt => chsnt(),
        SceneId::Park => park(),
    }
}

/// Incrementally assembles a scene's primitives and materials.
struct Assembler {
    prims: Vec<ScenePrimitive>,
    materials: Vec<Material>,
}

impl Assembler {
    fn new() -> Self {
        Assembler { prims: Vec::new(), materials: Vec::new() }
    }

    fn material(&mut self, m: Material) -> u32 {
        self.materials.push(m);
        (self.materials.len() - 1) as u32
    }

    fn tris(&mut self, tris: impl IntoIterator<Item = Triangle>, mat: u32) {
        self.prims.extend(
            tris.into_iter().map(|t| ScenePrimitive { shape: crate::Shape::Tri(t), material: mat }),
        );
    }

    fn sphere(&mut self, center: Vec3, radius: f32, mat: u32) {
        self.prims.push(ScenePrimitive::sphere(center, radius, mat));
    }

    fn finish(
        self,
        id: SceneId,
        camera: Camera,
        light: Light,
        sky_horizon: Vec3,
        sky_zenith: Vec3,
    ) -> Scene {
        Scene {
            id,
            prims: self.prims,
            materials: self.materials,
            camera,
            light,
            sky_horizon,
            sky_zenith,
        }
    }
}

fn diffuse(r: f32, g: f32, b: f32) -> Material {
    Material::Lambertian { albedo: Vec3::new(r, g, b) }
}

fn sun() -> Light {
    Light::Directional {
        direction: Vec3::new(0.4, 1.0, -0.3).normalized(),
        radiance: Vec3::new(3.0, 2.9, 2.7),
    }
}

fn day_sky() -> (Vec3, Vec3) {
    (Vec3::new(0.9, 0.9, 1.0), Vec3::new(0.4, 0.6, 1.0))
}

/// WKND — "Ray Tracing in One Weekend": analytic spheres only (0 triangles).
fn wknd() -> Scene {
    let mut a = Assembler::new();
    let ground = a.material(diffuse(0.5, 0.5, 0.5));
    a.sphere(Vec3::new(0.0, -1000.0, 0.0), 1000.0, ground);

    let mut rng = SplitMix64::new(0x574b);
    for i in -16i32..16 {
        for j in -16i32..16 {
            let choose = rng.next_f32();
            let center =
                Vec3::new(i as f32 + 0.9 * rng.next_f32(), 0.2, j as f32 + 0.9 * rng.next_f32());
            if (center - Vec3::new(4.0, 0.2, 0.0)).length() <= 0.9 {
                continue;
            }
            let mat = if choose < 0.7 {
                a.material(diffuse(rng.next_f32(), rng.next_f32(), rng.next_f32()))
            } else if choose < 0.9 {
                a.material(Material::Metal {
                    albedo: Vec3::new(
                        0.5 * (1.0 + rng.next_f32()),
                        0.5 * (1.0 + rng.next_f32()),
                        0.5 * (1.0 + rng.next_f32()),
                    ),
                    fuzz: 0.5 * rng.next_f32(),
                })
            } else {
                a.material(Material::Dielectric { ior: 1.5 })
            };
            a.sphere(center, 0.2, mat);
        }
    }
    // Floating clusters of small spheres (bokeh balls): a 3-D distribution
    // with heavy bound overlap, deepening the BVH like the big WKND field.
    for c in 0..10 {
        let center = Vec3::new(
            rng.range_f32(-10.0, 10.0),
            rng.range_f32(2.0, 7.0),
            rng.range_f32(-10.0, 10.0),
        );
        let cluster_r = rng.range_f32(1.5, 3.5);
        for _ in 0..60 {
            use sms_geom::DeterministicRng;
            let p = center + rng.unit_vector() * (cluster_r * rng.next_f32());
            let mat = a.material(diffuse(rng.next_f32(), rng.next_f32(), rng.next_f32()));
            a.sphere(p, rng.range_f32(0.1, 0.45), mat);
        }
        let _ = c;
    }
    let glass = a.material(Material::Dielectric { ior: 1.5 });
    a.sphere(Vec3::new(0.0, 1.0, 0.0), 1.0, glass);
    let brown = a.material(diffuse(0.4, 0.2, 0.1));
    a.sphere(Vec3::new(-4.0, 1.0, 0.0), 1.0, brown);
    let metal = a.material(Material::Metal { albedo: Vec3::new(0.7, 0.6, 0.5), fuzz: 0.0 });
    a.sphere(Vec3::new(4.0, 1.0, 0.0), 1.0, metal);

    let (h, z) = day_sky();
    let cam = Camera::look_at(
        Vec3::new(13.0, 2.0, 3.0),
        Vec3::ZERO,
        Vec3::new(0.0, 1.0, 0.0),
        25.0,
        128,
        128,
    );
    a.finish(SceneId::Wknd, cam, sun(), h, z)
}

/// SPRNG — spring landscape: rolling terrain plus scattered foliage.
fn sprng() -> Scene {
    let mut a = Assembler::new();
    let grass = a.material(diffuse(0.3, 0.6, 0.25));
    let leafm = a.material(diffuse(0.35, 0.7, 0.3));
    let wood = a.material(diffuse(0.4, 0.27, 0.15));
    let water = a.material(Material::Metal { albedo: Vec3::new(0.5, 0.6, 0.8), fuzz: 0.1 });

    a.tris(gen::terrain(72, 72, 60.0, |x, z| 2.5 * gen::fbm(0x51, x * 0.08, z * 0.08, 4)), grass);
    a.tris(gen::terrain(16, 16, 18.0, |_, _| 0.35), water);

    let mut rng = SplitMix64::new(0x5052_4e47);
    for k in 0..44 {
        let x = rng.range_f32(-26.0, 26.0);
        let z = rng.range_f32(-26.0, 26.0);
        let base = Vec3::new(x, 2.5 * gen::fbm(0x51, x * 0.08, z * 0.08, 4) - 0.1, z);
        let (w, l) = gen::tree(base, rng.range_f32(3.0, 5.5), 1400, 0x5052 + k);
        a.tris(w, wood);
        a.tris(l, leafm);
    }
    let (h, z) = day_sky();
    let cam = Camera::look_at(
        Vec3::new(0.0, 6.0, -28.0),
        Vec3::new(0.0, 2.0, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        55.0,
        128,
        128,
    );
    a.finish(SceneId::Sprng, cam, sun(), h, z)
}

/// FOX — organic blob model standing on a small terrain.
fn fox() -> Scene {
    let mut a = Assembler::new();
    let fur = a.material(diffuse(0.85, 0.45, 0.15));
    let snow = a.material(diffuse(0.9, 0.9, 0.95));

    a.tris(gen::terrain(30, 30, 20.0, |x, z| 0.3 * gen::fbm(0x46, x * 0.3, z * 0.3, 3)), snow);
    // Body, head, ears, tail, legs as displaced blobs.
    a.tris(gen::blob(Vec3::new(0.0, 1.4, 0.0), 1.2, 72, 96, 0.25, 1), fur);
    a.tris(gen::blob(Vec3::new(0.0, 2.6, -1.2), 0.7, 56, 72, 0.2, 2), fur);
    a.tris(gen::blob(Vec3::new(-0.3, 3.3, -1.3), 0.25, 12, 16, 0.15, 3), fur);
    a.tris(gen::blob(Vec3::new(0.3, 3.3, -1.3), 0.25, 12, 16, 0.15, 4), fur);
    a.tris(gen::blob(Vec3::new(0.0, 1.2, 1.6), 0.55, 48, 60, 0.35, 5), fur);
    // Fur tufts: overlapping clutter over the body.
    a.tris(gen::canopy(Vec3::new(0.0, 1.6, 0.0), 1.9, 9000, 0.22, 0x464f), fur);
    for (i, lx) in [-0.5f32, 0.5, -0.5, 0.5].iter().enumerate() {
        let lz = if i < 2 { -0.6 } else { 0.6 };
        a.tris(gen::blob(Vec3::new(*lx, 0.5, lz), 0.3, 14, 18, 0.2, 6 + i as u64), fur);
    }
    let (h, z) = day_sky();
    let cam = Camera::look_at(
        Vec3::new(5.0, 3.0, -6.0),
        Vec3::new(0.0, 1.8, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        45.0,
        128,
        128,
    );
    a.finish(SceneId::Fox, cam, sun(), h, z)
}

/// LANDS — large rugged terrain landscape.
fn lands() -> Scene {
    let mut a = Assembler::new();
    let rock = a.material(diffuse(0.45, 0.4, 0.35));
    let snow = a.material(diffuse(0.9, 0.9, 0.92));
    a.tris(
        gen::terrain(150, 150, 120.0, |x, z| {
            let n = gen::fbm(0x4c41, x * 0.05, z * 0.05, 5);
            12.0 * n * n
        }),
        rock,
    );
    // Snow caps: a second offset layer over the peaks (overlapping bounds).
    a.tris(
        gen::terrain(50, 50, 120.0, |x, z| {
            let n = gen::fbm(0x4c41, x * 0.05, z * 0.05, 5);
            12.0 * n * n + 0.15
        }),
        snow,
    );
    // Scree: rock clutter on the slopes.
    let mut rng = SplitMix64::new(0x4c41);
    for _ in 0..48 {
        let x = rng.range_f32(-50.0, 50.0);
        let z = rng.range_f32(-50.0, 50.0);
        let n = gen::fbm(0x4c41, x * 0.05, z * 0.05, 5);
        let c = Vec3::new(x, 12.0 * n * n + 1.0, z);
        a.tris(gen::canopy(c, 4.0, 900, 0.9, rng.next_u64()), rock);
    }
    // Alpine shrubs in the valleys.
    let shrub = a.material(diffuse(0.25, 0.4, 0.2));
    for _ in 0..30 {
        let x = rng.range_f32(-45.0, 45.0);
        let z = rng.range_f32(-45.0, 45.0);
        let n = gen::fbm(0x4c41, x * 0.05, z * 0.05, 5);
        let c = Vec3::new(x, 12.0 * n * n + 0.6, z);
        a.tris(gen::canopy(c, 1.8, 420, 0.5, rng.next_u64()), shrub);
    }
    let (h, z) = day_sky();
    let cam = Camera::look_at(
        Vec3::new(0.0, 14.0, -58.0),
        Vec3::new(0.0, 5.0, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        50.0,
        128,
        128,
    );
    a.finish(SceneId::Lands, cam, sun(), h, z)
}

/// CRNVL — carnival: stalls (boxes), balloons (spheres), ground.
fn crnvl() -> Scene {
    let mut a = Assembler::new();
    let ground = a.material(diffuse(0.55, 0.5, 0.4));
    a.tris(gen::terrain(12, 12, 40.0, |_, _| 0.0), ground);

    let mut rng = SplitMix64::new(0x4352);
    for _ in 0..14 {
        let x = rng.range_f32(-15.0, 15.0);
        let z = rng.range_f32(-15.0, 15.0);
        let w = rng.range_f32(1.0, 2.5);
        let hgt = rng.range_f32(1.5, 3.5);
        let mat = a.material(diffuse(rng.next_f32(), rng.next_f32(), rng.next_f32()));
        a.tris(gen::box_mesh(Vec3::new(x - w, 0.0, z - w), Vec3::new(x + w, hgt, z + w)), mat);
    }
    for _ in 0..60 {
        let c = Vec3::new(
            rng.range_f32(-16.0, 16.0),
            rng.range_f32(2.0, 7.0),
            rng.range_f32(-16.0, 16.0),
        );
        let mat = a.material(diffuse(rng.next_f32(), rng.next_f32() * 0.5, rng.next_f32()));
        a.sphere(c, rng.range_f32(0.2, 0.5), mat);
    }
    // Bunting and confetti above the fairground (dense thin clutter).
    let confetti = a.material(diffuse(0.9, 0.8, 0.2));
    a.tris(gen::canopy(Vec3::new(0.0, 6.0, 0.0), 14.0, 24_000, 0.4, 0x4352), confetti);
    // A ferris-wheel-like ring of tubes.
    let hub = Vec3::new(0.0, 8.0, 12.0);
    let steel = a.material(Material::Metal { albedo: Vec3::splat(0.6), fuzz: 0.3 });
    for k in 0..12 {
        let phi = std::f32::consts::TAU * k as f32 / 12.0;
        let rim = hub + Vec3::new(phi.cos() * 5.0, phi.sin() * 5.0, 0.0);
        a.tris(gen::tube(hub, rim, 0.1, 5), steel);
    }
    let (h, z) = day_sky();
    let cam = Camera::look_at(
        Vec3::new(0.0, 4.0, -22.0),
        Vec3::new(0.0, 4.0, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        55.0,
        128,
        128,
    );
    a.finish(SceneId::Crnvl, cam, sun(), h, z)
}

/// SPNZA — atrium with colonnades: floor, walls, two rows of columns.
fn spnza() -> Scene {
    let mut a = Assembler::new();
    let stone = a.material(diffuse(0.65, 0.6, 0.5));
    let floor = a.material(diffuse(0.5, 0.45, 0.4));
    let fabric = a.material(diffuse(0.7, 0.2, 0.2));

    a.tris(gen::terrain(10, 10, 40.0, |_, _| 0.0), floor);
    // Outer walls (open top, like the atrium).
    a.tris(gen::box_mesh(Vec3::new(-16.0, 0.0, -8.2), Vec3::new(16.0, 8.0, -8.0)), stone);
    a.tris(gen::box_mesh(Vec3::new(-16.0, 0.0, 8.0), Vec3::new(16.0, 8.0, 8.2)), stone);
    a.tris(gen::box_mesh(Vec3::new(-16.2, 0.0, -8.0), Vec3::new(-16.0, 8.0, 8.0)), stone);
    a.tris(gen::box_mesh(Vec3::new(16.0, 0.0, -8.0), Vec3::new(16.2, 8.0, 8.0)), stone);
    // Colonnades.
    for i in 0..8 {
        let x = -14.0 + i as f32 * 4.0;
        for zz in [-5.0f32, 5.0] {
            a.tris(gen::tube(Vec3::new(x, 0.0, zz), Vec3::new(x, 6.0, zz), 0.5, 10), stone);
            a.tris(
                gen::box_mesh(Vec3::new(x - 0.8, 6.0, zz - 0.8), Vec3::new(x + 0.8, 6.6, zz + 0.8)),
                stone,
            );
        }
    }
    // Ivy wrapping the colonnade and plants hanging from the upper floor.
    let ivy = a.material(diffuse(0.25, 0.45, 0.2));
    for i in 0..8 {
        let x = -14.0 + i as f32 * 4.0;
        for zz in [-5.0f32, 5.0] {
            a.tris(gen::canopy(Vec3::new(x, 3.5, zz), 1.6, 700, 0.35, 0x5350 + i), ivy);
        }
    }
    a.tris(gen::canopy(Vec3::new(0.0, 6.5, 0.0), 10.0, 5000, 0.5, 0x5351), ivy);
    // Hanging banners (thin boxes) that rays must thread between.
    for i in 0..4 {
        let x = -9.0 + i as f32 * 6.0;
        a.tris(gen::box_mesh(Vec3::new(x, 3.0, -1.0), Vec3::new(x + 2.0, 6.0, -0.95)), fabric);
    }
    let (h, z) = day_sky();
    let cam = Camera::look_at(
        Vec3::new(-13.0, 3.0, 0.0),
        Vec3::new(8.0, 3.5, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        60.0,
        128,
        128,
    );
    a.finish(SceneId::Spnza, cam, sun(), h, z)
}

/// BATH — enclosed bathroom interior with fixtures.
fn bath() -> Scene {
    let mut a = Assembler::new();
    let tile = a.material(diffuse(0.8, 0.82, 0.85));
    let ceramic = a.material(diffuse(0.92, 0.92, 0.9));
    let chrome = a.material(Material::Metal { albedo: Vec3::splat(0.8), fuzz: 0.05 });
    let lightm = a.material(Material::Emissive { radiance: Vec3::splat(6.0) });

    // Room shell (inward-facing; rays bounce around inside).
    a.tris(gen::box_mesh(Vec3::new(-6.0, -0.2, -6.0), Vec3::new(6.0, 0.0, 6.0)), tile);
    a.tris(gen::box_mesh(Vec3::new(-6.0, 5.0, -6.0), Vec3::new(6.0, 5.2, 6.0)), tile);
    a.tris(gen::box_mesh(Vec3::new(-6.2, 0.0, -6.0), Vec3::new(-6.0, 5.0, 6.0)), tile);
    a.tris(gen::box_mesh(Vec3::new(6.0, 0.0, -6.0), Vec3::new(6.2, 5.0, 6.0)), tile);
    a.tris(gen::box_mesh(Vec3::new(-6.0, 0.0, 6.0), Vec3::new(6.0, 5.0, 6.2)), tile);
    a.tris(gen::box_mesh(Vec3::new(-6.0, 0.0, -6.2), Vec3::new(6.0, 5.0, -6.0)), tile);
    // Tub: displaced half blob; sink: small blob; pipes: tubes.
    a.tris(gen::blob(Vec3::new(-2.5, 0.6, 2.5), 1.8, 20, 28, 0.12, 21), ceramic);
    a.tris(gen::blob(Vec3::new(3.5, 1.6, -3.5), 0.7, 14, 18, 0.1, 22), ceramic);
    a.tris(gen::tube(Vec3::new(3.5, 0.0, -3.5), Vec3::new(3.5, 1.4, -3.5), 0.12, 8), chrome);
    a.tris(gen::tube(Vec3::new(-2.5, 0.0, 4.2), Vec3::new(-2.5, 1.8, 4.2), 0.08, 8), chrome);
    a.tris(gen::box_mesh(Vec3::new(-1.0, 4.8, -1.0), Vec3::new(1.0, 5.0, 1.0)), lightm);
    // Towels, plants and toiletries: overlapping clutter.
    let towel = a.material(diffuse(0.8, 0.7, 0.6));
    a.tris(gen::canopy(Vec3::new(0.0, 2.0, 0.0), 4.5, 6000, 0.3, 0x4241), towel);
    // Mirror.
    a.tris(gen::box_mesh(Vec3::new(2.2, 1.8, -5.99), Vec3::new(4.8, 3.8, -5.95)), chrome);

    let cam = Camera::look_at(
        Vec3::new(0.0, 2.2, -5.0),
        Vec3::new(-1.0, 1.5, 2.0),
        Vec3::new(0.0, 1.0, 0.0),
        65.0,
        128,
        128,
    );
    let light = Light::Point { position: Vec3::new(0.0, 4.6, 0.0), intensity: Vec3::splat(40.0) };
    a.finish(SceneId::Bath, cam, light, Vec3::splat(0.05), Vec3::splat(0.02))
}

/// ROBOT — the largest mesh: finely tessellated articulated body.
fn robot() -> Scene {
    let mut a = Assembler::new();
    let shell = a.material(Material::Metal { albedo: Vec3::new(0.7, 0.72, 0.75), fuzz: 0.25 });
    let joint = a.material(diffuse(0.2, 0.2, 0.25));
    let floor = a.material(diffuse(0.4, 0.4, 0.42));

    a.tris(gen::terrain(24, 24, 30.0, |_, _| 0.0), floor);
    // Dense body parts: high-resolution displaced blobs.
    a.tris(gen::blob(Vec3::new(0.0, 3.2, 0.0), 1.6, 170, 230, 0.18, 31), shell); // torso
    a.tris(gen::blob(Vec3::new(0.0, 5.6, 0.0), 0.9, 130, 170, 0.15, 32), shell); // head
    for (k, side) in [-1.0f32, 1.0].iter().enumerate() {
        a.tris(gen::blob(Vec3::new(side * 2.1, 3.9, 0.0), 0.55, 50, 60, 0.2, 33 + k as u64), joint);
        a.tris(gen::blob(Vec3::new(side * 2.5, 2.4, 0.2), 0.5, 50, 60, 0.2, 35 + k as u64), shell);
        a.tris(gen::blob(Vec3::new(side * 0.8, 1.0, 0.0), 0.6, 50, 60, 0.15, 37 + k as u64), shell);
        a.tris(gen::blob(Vec3::new(side * 0.8, 0.2, 0.3), 0.45, 40, 50, 0.1, 39 + k as u64), joint);
    }
    // Greebles: dense clutter of small parts over the torso.
    a.tris(gen::canopy(Vec3::new(0.0, 3.4, 0.0), 2.2, 64_000, 0.16, 0x726f), joint);
    let (h, z) = day_sky();
    let cam = Camera::look_at(
        Vec3::new(6.0, 4.5, -8.0),
        Vec3::new(0.0, 3.5, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        45.0,
        32,
        32,
    );
    a.finish(SceneId::Robot, cam, sun(), h, z)
}

/// CAR — dense curved shell with wheels.
fn car() -> Scene {
    let mut a = Assembler::new();
    let paint = a.material(Material::Metal { albedo: Vec3::new(0.7, 0.1, 0.1), fuzz: 0.1 });
    let glass = a.material(Material::Dielectric { ior: 1.5 });
    let rubber = a.material(diffuse(0.08, 0.08, 0.08));
    let road = a.material(diffuse(0.3, 0.3, 0.32));

    a.tris(gen::terrain(20, 20, 30.0, |_, _| 0.0), road);
    // Body: stretched high-res blob; cabin: second blob; wheels: tubes.
    let body: Vec<Triangle> = gen::blob(Vec3::ZERO, 1.0, 210, 290, 0.06, 41)
        .into_iter()
        .map(|t| {
            let s = |v: Vec3| Vec3::new(v.x * 2.6, v.y * 0.75 + 1.0, v.z * 1.2);
            Triangle::new(s(t.v0), s(t.v1), s(t.v2))
        })
        .collect();
    a.tris(body, paint);
    let cabin: Vec<Triangle> = gen::blob(Vec3::ZERO, 1.0, 120, 160, 0.04, 42)
        .into_iter()
        .map(|t| {
            let s = |v: Vec3| Vec3::new(v.x * 1.3 - 0.2, v.y * 0.55 + 1.7, v.z * 1.0);
            Triangle::new(s(t.v0), s(t.v1), s(t.v2))
        })
        .collect();
    a.tris(cabin, glass);
    for x in [-1.6f32, 1.6] {
        for z in [-1.25f32, 1.25] {
            a.tris(
                gen::tube(Vec3::new(x, 0.5, z - 0.15), Vec3::new(x, 0.5, z + 0.15), 0.5, 24),
                rubber,
            );
        }
    }
    // Underbody / engine-bay detail.
    a.tris(gen::canopy(Vec3::new(0.0, 0.8, 0.0), 2.4, 42_000, 0.12, 0x4341), rubber);
    let (h, z) = day_sky();
    let cam = Camera::look_at(
        Vec3::new(5.5, 2.5, -5.5),
        Vec3::new(0.0, 1.0, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        40.0,
        128,
        128,
    );
    a.finish(SceneId::Car, cam, sun(), h, z)
}

/// PARTY — cluttered interior (the paper's Fig. 10 traces two warps here).
fn party() -> Scene {
    let mut a = Assembler::new();
    let wall = a.material(diffuse(0.75, 0.7, 0.6));
    let lightm = a.material(Material::Emissive { radiance: Vec3::new(8.0, 7.5, 7.0) });

    // Room shell.
    a.tris(gen::box_mesh(Vec3::new(-10.0, -0.2, -10.0), Vec3::new(10.0, 0.0, 10.0)), wall);
    a.tris(gen::box_mesh(Vec3::new(-10.0, 6.0, -10.0), Vec3::new(10.0, 6.2, 10.0)), wall);
    a.tris(gen::box_mesh(Vec3::new(-10.2, 0.0, -10.0), Vec3::new(-10.0, 6.0, 10.0)), wall);
    a.tris(gen::box_mesh(Vec3::new(10.0, 0.0, -10.0), Vec3::new(10.2, 6.0, 10.0)), wall);
    a.tris(gen::box_mesh(Vec3::new(-10.0, 0.0, 10.0), Vec3::new(10.0, 6.0, 10.2)), wall);
    a.tris(gen::box_mesh(Vec3::new(-10.0, 0.0, -10.2), Vec3::new(10.0, 6.0, -10.0)), wall);
    a.tris(gen::box_mesh(Vec3::new(-2.0, 5.8, -2.0), Vec3::new(2.0, 6.0, 2.0)), lightm);

    let mut rng = SplitMix64::new(0x5041);
    // Furniture: boxes and blobs.
    for _ in 0..20 {
        let x = rng.range_f32(-8.0, 8.0);
        let z = rng.range_f32(-8.0, 8.0);
        let w = rng.range_f32(0.4, 1.4);
        let hgt = rng.range_f32(0.5, 2.2);
        let mat = a.material(diffuse(rng.next_f32(), rng.next_f32(), rng.next_f32()));
        a.tris(gen::box_mesh(Vec3::new(x - w, 0.0, z - w), Vec3::new(x + w, hgt, z + w)), mat);
    }
    for _ in 0..10 {
        let c =
            Vec3::new(rng.range_f32(-8.0, 8.0), rng.range_f32(0.5, 2.0), rng.range_f32(-8.0, 8.0));
        let mat = a.material(diffuse(rng.next_f32(), rng.next_f32(), rng.next_f32()));
        a.tris(gen::blob(c, rng.range_f32(0.3, 0.8), 16, 20, 0.2, rng.next_u64()), mat);
    }
    // Streamers and balloons hanging from the ceiling: dense thin clutter.
    let streamer = a.material(diffuse(0.9, 0.3, 0.5));
    a.tris(gen::canopy(Vec3::new(0.0, 4.4, 0.0), 8.5, 26_000, 0.4, 0x7061), streamer);
    let balloon = a.material(diffuse(0.9, 0.2, 0.2));
    for _ in 0..40 {
        let c =
            Vec3::new(rng.range_f32(-9.0, 9.0), rng.range_f32(3.5, 5.6), rng.range_f32(-9.0, 9.0));
        a.sphere(c, rng.range_f32(0.2, 0.45), balloon);
    }
    let cam = Camera::look_at(
        Vec3::new(0.0, 2.5, -9.0),
        Vec3::new(0.0, 2.0, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        65.0,
        128,
        128,
    );
    let light = Light::Point { position: Vec3::new(0.0, 5.5, 0.0), intensity: Vec3::splat(60.0) };
    a.finish(SceneId::Party, cam, light, Vec3::splat(0.08), Vec3::splat(0.03))
}

/// FRST — forest of instanced trees over terrain.
fn frst() -> Scene {
    let mut a = Assembler::new();
    let groundm = a.material(diffuse(0.25, 0.4, 0.2));
    let wood = a.material(diffuse(0.35, 0.25, 0.15));
    let leafm = a.material(diffuse(0.2, 0.5, 0.2));

    let height = |x: f32, z: f32| 1.5 * gen::fbm(0x4652, x * 0.1, z * 0.1, 3);
    a.tris(gen::terrain(64, 64, 50.0, height), groundm);
    let mut rng = SplitMix64::new(0x4652_5354);
    for k in 0..110 {
        let x = rng.range_f32(-22.0, 22.0);
        let z = rng.range_f32(-22.0, 22.0);
        let base = Vec3::new(x, height(x, z) - 0.1, z);
        let (w, l) = gen::tree(base, rng.range_f32(3.5, 7.0), 1500, 0x4652 + k);
        a.tris(w, wood);
        a.tris(l, leafm);
    }
    let (h, z) = day_sky();
    let cam = Camera::look_at(
        Vec3::new(0.0, 3.0, -23.0),
        Vec3::new(0.0, 3.0, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        60.0,
        128,
        128,
    );
    a.finish(SceneId::Frst, cam, sun(), h, z)
}

/// BUNNY — a single organic blob on a ground plane.
fn bunny() -> Scene {
    let mut a = Assembler::new();
    let fur = a.material(diffuse(0.8, 0.75, 0.7));
    let groundm = a.material(diffuse(0.4, 0.45, 0.4));
    a.tris(gen::terrain(8, 8, 16.0, |_, _| 0.0), groundm);
    a.tris(gen::blob(Vec3::new(0.0, 1.2, 0.0), 1.1, 32, 40, 0.22, 51), fur); // body
    a.tris(gen::canopy(Vec3::new(0.0, 1.5, -0.1), 1.5, 3200, 0.2, 0x4255), fur); // fur tufts
    a.tris(gen::blob(Vec3::new(0.0, 2.4, -0.6), 0.55, 20, 28, 0.18, 52), fur); // head
    a.tris(gen::blob(Vec3::new(-0.25, 3.2, -0.6), 0.18, 6, 8, 0.1, 53), fur); // ears
    a.tris(gen::blob(Vec3::new(0.25, 3.2, -0.6), 0.18, 6, 8, 0.1, 54), fur);
    let (h, z) = day_sky();
    let cam = Camera::look_at(
        Vec3::new(3.5, 2.2, -4.0),
        Vec3::new(0.0, 1.5, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        45.0,
        128,
        128,
    );
    a.finish(SceneId::Bunny, cam, sun(), h, z)
}

/// SHIP — few but long, thin primitives (high leaf-hit ratio, §VII-B).
fn ship() -> Scene {
    let mut a = Assembler::new();
    let hullm = a.material(diffuse(0.35, 0.22, 0.12));
    let sail = a.material(diffuse(0.9, 0.88, 0.8));
    let sea = a.material(Material::Metal { albedo: Vec3::new(0.2, 0.35, 0.5), fuzz: 0.15 });

    a.tris(gen::terrain(24, 24, 60.0, |x, z| 0.15 * gen::fbm(0x5348, x * 0.4, z * 0.4, 2)), sea);
    // Hull: long thin planks spanning the whole ship.
    for k in 0..60 {
        let y = 0.4 + k as f32 * 0.06;
        let half_w = 1.4 - (k as f32 - 10.0).abs() * 0.08;
        for side in [-1.0f32, 1.0] {
            let z = side * half_w;
            a.tris(
                [
                    Triangle::new(
                        Vec3::new(-8.0, y, z * 0.3),
                        Vec3::new(8.0, y, z * 0.3),
                        Vec3::new(8.0, y + 0.18, z),
                    ),
                    Triangle::new(
                        Vec3::new(-8.0, y, z * 0.3),
                        Vec3::new(8.0, y + 0.18, z),
                        Vec3::new(-8.0, y + 0.18, z),
                    ),
                ],
                hullm,
            );
        }
    }
    // Deck planks.
    for k in 0..48 {
        let z = -1.2 + k as f32 * 0.05;
        a.tris(
            [
                Triangle::new(
                    Vec3::new(-7.5, 4.0, z),
                    Vec3::new(7.5, 4.0, z),
                    Vec3::new(7.5, 4.0, z + 0.13),
                ),
                Triangle::new(
                    Vec3::new(-7.5, 4.0, z),
                    Vec3::new(7.5, 4.0, z + 0.13),
                    Vec3::new(-7.5, 4.0, z + 0.13),
                ),
            ],
            hullm,
        );
    }
    // Masts and rigging: long thin tubes.
    for mx in [-5.0f32, -2.5, 0.0, 2.5, 5.0] {
        a.tris(gen::tube(Vec3::new(mx, 4.0, 0.0), Vec3::new(mx, 12.0, 0.0), 0.12, 6), hullm);
        a.tris(
            gen::tube(Vec3::new(mx - 2.5, 9.0, 0.0), Vec3::new(mx + 2.5, 9.0, 0.0), 0.06, 5),
            hullm,
        );
        // Sail: two large triangles.
        a.tris(
            [
                Triangle::new(
                    Vec3::new(mx - 2.3, 9.0, 0.05),
                    Vec3::new(mx + 2.3, 9.0, 0.05),
                    Vec3::new(mx + 1.8, 5.0, 0.6),
                ),
                Triangle::new(
                    Vec3::new(mx - 2.3, 9.0, 0.05),
                    Vec3::new(mx + 1.8, 5.0, 0.6),
                    Vec3::new(mx - 1.8, 5.0, 0.6),
                ),
            ],
            sail,
        );
        // Rigging lines: extremely thin long tubes forming a lattice.
        for side in [-1.0f32, 1.0] {
            for k in 0..12 {
                let spread = 1.0 + k as f32 * 0.35;
                a.tris(
                    gen::tube(
                        Vec3::new(mx, 11.5 - k as f32 * 0.4, 0.0),
                        Vec3::new(mx + side * spread, 4.2, side * 1.0),
                        0.02,
                        4,
                    ),
                    hullm,
                );
            }
        }
    }
    let (h, z) = day_sky();
    let cam = Camera::look_at(
        Vec3::new(10.0, 6.0, -14.0),
        Vec3::new(0.0, 5.0, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        50.0,
        128,
        128,
    );
    a.finish(SceneId::Ship, cam, sun(), h, z)
}

/// REF — reflective spheres over a tiled floor.
fn reflective() -> Scene {
    let mut a = Assembler::new();
    let mut rng = SplitMix64::new(0x5245);
    // Checkerboard floor of individual quads (triangles).
    for i in 0..16 {
        for j in 0..16 {
            let x = -16.0 + i as f32 * 2.0;
            let z = -16.0 + j as f32 * 2.0;
            let c = if (i + j) % 2 == 0 { 0.85 } else { 0.25 };
            let mat = a.material(diffuse(c, c, c));
            a.tris(
                [
                    Triangle::new(
                        Vec3::new(x, 0.0, z),
                        Vec3::new(x + 2.0, 0.0, z),
                        Vec3::new(x + 2.0, 0.0, z + 2.0),
                    ),
                    Triangle::new(
                        Vec3::new(x, 0.0, z),
                        Vec3::new(x + 2.0, 0.0, z + 2.0),
                        Vec3::new(x, 0.0, z + 2.0),
                    ),
                ],
                mat,
            );
        }
    }
    let mirror = a.material(Material::Metal { albedo: Vec3::splat(0.9), fuzz: 0.0 });
    let glass = a.material(Material::Dielectric { ior: 1.5 });
    a.sphere(Vec3::new(-2.5, 2.0, 0.0), 2.0, mirror);
    a.sphere(Vec3::new(2.5, 2.0, 0.0), 2.0, glass);
    for _ in 0..60 {
        let c = Vec3::new(
            rng.range_f32(-10.0, 10.0),
            rng.range_f32(0.4, 4.0),
            rng.range_f32(-10.0, 10.0),
        );
        let m = a.material(Material::Metal {
            albedo: Vec3::new(rng.next_f32(), rng.next_f32(), rng.next_f32()),
            fuzz: rng.next_f32() * 0.4,
        });
        a.sphere(c, rng.range_f32(0.3, 0.8), m);
    }
    // Pedestal props between the spheres.
    let prop = a.material(diffuse(0.6, 0.55, 0.5));
    a.tris(gen::canopy(Vec3::new(0.0, 1.5, 5.0), 4.5, 2600, 0.4, 0x5246), prop);
    a.tris(gen::canopy(Vec3::new(-5.0, 1.5, -4.0), 3.5, 1600, 0.35, 0x5247), prop);
    // Back wall mirror panels.
    let panel = a.material(Material::Metal { albedo: Vec3::splat(0.85), fuzz: 0.02 });
    a.tris(gen::box_mesh(Vec3::new(-10.0, 0.0, 10.0), Vec3::new(10.0, 6.0, 10.3)), panel);
    let (h, z) = day_sky();
    let cam = Camera::look_at(
        Vec3::new(0.0, 3.0, -12.0),
        Vec3::new(0.0, 2.0, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        50.0,
        128,
        128,
    );
    a.finish(SceneId::Ref, cam, sun(), h, z)
}

/// CHSNT — a single large chestnut tree with a dense canopy.
fn chsnt() -> Scene {
    let mut a = Assembler::new();
    let groundm = a.material(diffuse(0.3, 0.45, 0.2));
    let wood = a.material(diffuse(0.35, 0.22, 0.1));
    let leafm = a.material(diffuse(0.25, 0.5, 0.15));

    a.tris(gen::terrain(14, 14, 30.0, |x, z| 0.4 * gen::fbm(0x4348, x * 0.2, z * 0.2, 2)), groundm);
    let base = Vec3::new(0.0, 0.0, 0.0);
    a.tris(gen::tube(base, base + Vec3::new(0.3, 5.0, 0.0), 0.6, 10), wood);
    let mut rng = SplitMix64::new(0x4348_534e);
    for _ in 0..8 {
        let h = rng.range_f32(3.0, 5.0);
        let dir = Vec3::new(rng.range_f32(-1.0, 1.0), 0.7, rng.range_f32(-1.0, 1.0)).normalized();
        let start = base + Vec3::new(0.0, h, 0.0);
        a.tris(gen::tube(start, start + dir * rng.range_f32(2.0, 3.5), 0.2, 6), wood);
    }
    a.tris(gen::canopy(Vec3::new(0.3, 7.0, 0.0), 4.5, 21000, 0.65, 0x4348), leafm);
    let (h, z) = day_sky();
    let cam = Camera::look_at(
        Vec3::new(9.0, 4.0, -9.0),
        Vec3::new(0.0, 5.0, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        50.0,
        32,
        32,
    );
    a.finish(SceneId::Chsnt, cam, sun(), h, z)
}

/// PARK — large outdoor scene: terrain, trees, benches, a pond.
fn park() -> Scene {
    let mut a = Assembler::new();
    let grass = a.material(diffuse(0.3, 0.55, 0.25));
    let wood = a.material(diffuse(0.4, 0.28, 0.15));
    let leafm = a.material(diffuse(0.22, 0.5, 0.2));
    let water = a.material(Material::Metal { albedo: Vec3::new(0.4, 0.55, 0.7), fuzz: 0.08 });
    let stone = a.material(diffuse(0.55, 0.55, 0.5));

    let height = |x: f32, z: f32| 1.2 * gen::fbm(0x504b, x * 0.06, z * 0.06, 4);
    a.tris(gen::terrain(96, 96, 80.0, height), grass);
    a.tris(gen::terrain(10, 10, 14.0, |_, _| 0.25), water);
    let mut rng = SplitMix64::new(0x5041_524b);
    for k in 0..90 {
        let x = rng.range_f32(-36.0, 36.0);
        let z = rng.range_f32(-36.0, 36.0);
        if x * x + z * z < 100.0 {
            continue; // keep the pond clearing open
        }
        let base = Vec3::new(x, height(x, z) - 0.1, z);
        let (w, l) = gen::tree(base, rng.range_f32(4.0, 8.5), 2000, 0x504b + k);
        a.tris(w, wood);
        a.tris(l, leafm);
    }
    // Benches and a fountain.
    for k in 0..8 {
        let phi = std::f32::consts::TAU * k as f32 / 8.0;
        let p = Vec3::new(phi.cos() * 8.0, 0.3, phi.sin() * 8.0);
        a.tris(gen::box_mesh(p - Vec3::new(1.0, 0.3, 0.25), p + Vec3::new(1.0, 0.3, 0.25)), wood);
    }
    a.tris(gen::tube(Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0), 0.4, 10), stone);
    a.tris(gen::blob(Vec3::new(0.0, 2.4, 0.0), 0.6, 10, 14, 0.15, 61), stone);
    let (h, z) = day_sky();
    let cam = Camera::look_at(
        Vec3::new(0.0, 4.0, -30.0),
        Vec3::new(0.0, 3.0, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        55.0,
        32,
        32,
    );
    a.finish(SceneId::Park, cam, sun(), h, z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scene_builds_nonempty() {
        for id in SceneId::ALL {
            let s = Scene::build(id);
            assert!(!s.prims.is_empty(), "{id} has no primitives");
            assert!(!s.materials.is_empty(), "{id} has no materials");
            for p in &s.prims {
                assert!(
                    (p.material as usize) < s.materials.len(),
                    "{id} has a dangling material id"
                );
            }
        }
    }

    #[test]
    fn wknd_has_zero_triangles() {
        let s = Scene::build(SceneId::Wknd);
        assert_eq!(s.triangle_count(), 0, "WKND is the sphere scene (Table II)");
        assert!(s.prims.len() > 200);
    }

    #[test]
    fn relative_sizes_follow_table2_ordering() {
        // ROBOT and CAR are the two largest; SHIP among the smallest
        // triangle scenes; BUNNY small.
        let count = |id| Scene::build(id).triangle_count();
        let robot = count(SceneId::Robot);
        let car = count(SceneId::Car);
        let ship = count(SceneId::Ship);
        let bunny = count(SceneId::Bunny);
        let park = count(SceneId::Park);
        assert!(robot > car, "ROBOT ({robot}) must exceed CAR ({car})");
        assert!(car > park, "CAR ({car}) must exceed PARK ({park})");
        assert!(park > bunny, "PARK ({park}) must exceed BUNNY ({bunny})");
        assert!(bunny > ship / 10, "SHIP stays small");
        assert!(ship < 7000, "SHIP is a small scene (6.3K in the paper)");
    }

    #[test]
    fn scenes_are_deterministic() {
        let a = Scene::build(SceneId::Crnvl);
        let b = Scene::build(SceneId::Crnvl);
        assert_eq!(a.prims.len(), b.prims.len());
        assert_eq!(a.prims[10], b.prims[10]);
    }

    #[test]
    fn cameras_inside_reasonable_bounds() {
        for id in SceneId::ALL {
            let s = Scene::build(id);
            assert!(s.camera.origin.is_finite(), "{id} camera origin");
            let r = s.camera.primary_ray(0, 0, 0);
            assert!(r.dir.is_finite(), "{id} corner ray");
        }
    }

    #[test]
    fn reduced_scenes_use_32x32() {
        for id in SceneId::ALL {
            let s = Scene::build(id);
            if id.is_reduced_resolution() {
                assert_eq!((s.camera.width, s.camera.height), (32, 32), "{id}");
            } else {
                assert_eq!((s.camera.width, s.camera.height), (128, 128), "{id}");
            }
        }
    }
}
