//! Procedural geometry helpers used by the scene builders.
//!
//! All generators are deterministic: randomness comes from explicit
//! [`SplitMix64`] streams seeded by the caller.

use sms_geom::{SplitMix64, Triangle, Vec3};

/// Deterministic value noise on an integer lattice.
fn lattice(seed: u64, ix: i64, iz: i64) -> f32 {
    let mut s = SplitMix64::from_key(seed, ix as u64, iz as u64, 0x6e6f_6973);
    s.next_f32()
}

fn smoothstep(t: f32) -> f32 {
    t * t * (3.0 - 2.0 * t)
}

/// Smooth 2-D value noise in `[0, 1]`.
pub fn value_noise(seed: u64, x: f32, z: f32) -> f32 {
    let ix = x.floor() as i64;
    let iz = z.floor() as i64;
    let fx = smoothstep(x - x.floor());
    let fz = smoothstep(z - z.floor());
    let a = lattice(seed, ix, iz);
    let b = lattice(seed, ix + 1, iz);
    let c = lattice(seed, ix, iz + 1);
    let d = lattice(seed, ix + 1, iz + 1);
    let ab = a + (b - a) * fx;
    let cd = c + (d - c) * fx;
    ab + (cd - ab) * fz
}

/// Fractal Brownian motion over [`value_noise`], in `[0, 1]`.
pub fn fbm(seed: u64, x: f32, z: f32, octaves: u32) -> f32 {
    let mut amp = 0.5;
    let mut freq = 1.0;
    let mut sum = 0.0;
    let mut norm = 0.0;
    for o in 0..octaves {
        sum += amp * value_noise(seed.wrapping_add(o as u64), x * freq, z * freq);
        norm += amp;
        amp *= 0.5;
        freq *= 2.0;
    }
    sum / norm
}

/// A heightfield terrain of `2 * nx * nz` triangles covering
/// `[-size/2, size/2]²` with heights from `height(x, z)`.
pub fn terrain<F: Fn(f32, f32) -> f32>(nx: u32, nz: u32, size: f32, height: F) -> Vec<Triangle> {
    let mut tris = Vec::with_capacity((nx * nz * 2) as usize);
    let h = |i: u32, j: u32| {
        let x = (i as f32 / nx as f32 - 0.5) * size;
        let z = (j as f32 / nz as f32 - 0.5) * size;
        Vec3::new(x, height(x, z), z)
    };
    for i in 0..nx {
        for j in 0..nz {
            let p00 = h(i, j);
            let p10 = h(i + 1, j);
            let p01 = h(i, j + 1);
            let p11 = h(i + 1, j + 1);
            tris.push(Triangle::new(p00, p10, p11));
            tris.push(Triangle::new(p00, p11, p01));
        }
    }
    tris
}

/// A UV-sphere mesh with optional radial displacement (`bump` in `[0, 1]`
/// scales noise displacement relative to the radius). `bump = 0` gives a
/// smooth sphere; larger values give organic "blob" shapes.
pub fn blob(
    center: Vec3,
    radius: f32,
    stacks: u32,
    slices: u32,
    bump: f32,
    seed: u64,
) -> Vec<Triangle> {
    let point = |si: u32, sj: u32| {
        let theta = std::f32::consts::PI * si as f32 / stacks as f32;
        let phi = std::f32::consts::TAU * sj as f32 / slices as f32;
        let dir = Vec3::new(theta.sin() * phi.cos(), theta.cos(), theta.sin() * phi.sin());
        let r = if bump > 0.0 {
            let n = fbm(seed, 3.0 + dir.x * 2.0 + dir.y, 3.0 + dir.z * 2.0 - dir.y, 3);
            radius * (1.0 + bump * (n - 0.5))
        } else {
            radius
        };
        center + dir * r
    };
    let mut tris = Vec::with_capacity((stacks * slices * 2) as usize);
    for i in 0..stacks {
        for j in 0..slices {
            let p00 = point(i, j);
            let p10 = point(i + 1, j);
            let p01 = point(i, j + 1);
            let p11 = point(i + 1, j + 1);
            if i > 0 {
                tris.push(Triangle::new(p00, p10, p11));
            }
            if i + 1 < stacks {
                tris.push(Triangle::new(p00, p11, p01));
            }
        }
    }
    tris
}

/// An axis-aligned box as 12 triangles.
pub fn box_mesh(min: Vec3, max: Vec3) -> Vec<Triangle> {
    let p = |x: bool, y: bool, z: bool| {
        Vec3::new(
            if x { max.x } else { min.x },
            if y { max.y } else { min.y },
            if z { max.z } else { min.z },
        )
    };
    let quads = [
        // -z, +z, -x, +x, -y, +y faces as corner quadruples.
        [
            p(false, false, false),
            p(true, false, false),
            p(true, true, false),
            p(false, true, false),
        ],
        [p(false, false, true), p(false, true, true), p(true, true, true), p(true, false, true)],
        [
            p(false, false, false),
            p(false, true, false),
            p(false, true, true),
            p(false, false, true),
        ],
        [p(true, false, false), p(true, false, true), p(true, true, true), p(true, true, false)],
        [
            p(false, false, false),
            p(false, false, true),
            p(true, false, true),
            p(true, false, false),
        ],
        [p(false, true, false), p(true, true, false), p(true, true, true), p(false, true, true)],
    ];
    let mut tris = Vec::with_capacity(12);
    for q in quads {
        tris.push(Triangle::new(q[0], q[1], q[2]));
        tris.push(Triangle::new(q[0], q[2], q[3]));
    }
    tris
}

/// A (possibly long, thin) tube from `p0` to `p1` with `segments` sides —
/// used for columns, masts, branches and the SHIP scene's thin planks.
pub fn tube(p0: Vec3, p1: Vec3, radius: f32, segments: u32) -> Vec<Triangle> {
    let axis = (p1 - p0).normalized();
    let onb = sms_geom::Onb::from_w(axis);
    let ring = |center: Vec3, k: u32| {
        let phi = std::f32::consts::TAU * k as f32 / segments as f32;
        center + onb.to_world(Vec3::new(phi.cos() * radius, phi.sin() * radius, 0.0))
    };
    let mut tris = Vec::with_capacity((segments * 2) as usize);
    for k in 0..segments {
        let a0 = ring(p0, k);
        let a1 = ring(p0, k + 1);
        let b0 = ring(p1, k);
        let b1 = ring(p1, k + 1);
        tris.push(Triangle::new(a0, b0, b1));
        tris.push(Triangle::new(a0, b1, a1));
    }
    tris
}

/// A cloud of `count` small random triangles inside a sphere — models dense
/// foliage/clutter whose overlapping bounds force deep traversal stacks.
pub fn canopy(center: Vec3, radius: f32, count: u32, leaf_size: f32, seed: u64) -> Vec<Triangle> {
    use sms_geom::DeterministicRng;
    let mut rng = SplitMix64::new(seed);
    let mut tris = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let dir = rng.unit_vector();
        let r = radius * rng.next_f32().powf(1.0 / 3.0);
        let p = center + dir * r;
        let a = rng.unit_vector() * leaf_size;
        let b = rng.unit_vector() * leaf_size;
        tris.push(Triangle::new(p, p + a, p + b));
    }
    tris
}

/// A simple tree: trunk tube, a few branch tubes, plus a canopy cloud.
/// Returns `(wood, leaves)` so callers can assign different materials.
pub fn tree(
    base: Vec3,
    height: f32,
    canopy_tris: u32,
    seed: u64,
) -> (Vec<Triangle>, Vec<Triangle>) {
    let mut rng = SplitMix64::new(seed);
    let top = base + Vec3::new(0.0, height, 0.0);
    let mut wood = tube(base, top, height * 0.05, 6);
    for _ in 0..4 {
        let h = rng.range_f32(0.45, 0.85) * height;
        let start = base + Vec3::new(0.0, h, 0.0);
        let dir = Vec3::new(rng.range_f32(-1.0, 1.0), 0.6, rng.range_f32(-1.0, 1.0));
        let end = start + dir.normalized() * height * 0.35;
        wood.extend(tube(start, end, height * 0.02, 5));
    }
    let leaves = canopy(
        top - Vec3::new(0.0, height * 0.15, 0.0),
        height * 0.45,
        canopy_tris,
        height * 0.08,
        seed ^ 0xfeed,
    );
    (wood, leaves)
}

/// Uniformly subdivides each triangle into a `detail × detail` barycentric
/// grid (`detail²` coplanar sub-triangles), preserving the covered surface
/// exactly. `detail <= 1` returns the input untouched — the default scene
/// builds never pass through this function, keeping them bit-identical.
///
/// This is how [`crate::Scene::build_scaled`] lifts the ~1/100-scale
/// stand-in meshes to paper-class triangle counts: the BVH gets genuinely
/// deeper and wider (every sub-triangle has its own bounds) while the
/// scene's silhouette, materials and camera stay the same.
pub fn subdivide(tris: Vec<Triangle>, detail: u32) -> Vec<Triangle> {
    if detail <= 1 {
        return tris;
    }
    let s = detail as usize;
    let mut out = Vec::with_capacity(tris.len() * s * s);
    let inv = 1.0 / detail as f32;
    for tri in &tris {
        let e1 = (tri.v1 - tri.v0) * inv;
        let e2 = (tri.v2 - tri.v0) * inv;
        let p = |a: usize, b: usize| tri.v0 + e1 * a as f32 + e2 * b as f32;
        for a in 0..s {
            for b in 0..s - a {
                out.push(Triangle::new(p(a, b), p(a + 1, b), p(a, b + 1)));
                if a + b < s - 1 {
                    out.push(Triangle::new(p(a + 1, b), p(a + 1, b + 1), p(a, b + 1)));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_noise_in_unit_range_and_deterministic() {
        for i in 0..100 {
            let x = i as f32 * 0.37;
            let n = value_noise(5, x, -x * 0.7);
            assert!((0.0..=1.0).contains(&n));
            assert_eq!(n, value_noise(5, x, -x * 0.7));
        }
    }

    #[test]
    fn fbm_in_unit_range() {
        for i in 0..100 {
            let n = fbm(9, i as f32 * 0.13, i as f32 * 0.29, 4);
            assert!((0.0..=1.0).contains(&n));
        }
    }

    #[test]
    fn terrain_has_expected_triangle_count() {
        let t = terrain(8, 4, 10.0, |_, _| 0.0);
        assert_eq!(t.len(), 8 * 4 * 2);
    }

    #[test]
    fn terrain_heights_follow_function() {
        let t = terrain(4, 4, 8.0, |x, z| x + z);
        for tri in &t {
            for v in [tri.v0, tri.v1, tri.v2] {
                assert!((v.y - (v.x + v.z)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn blob_triangle_count_and_bounds() {
        let b = blob(Vec3::ZERO, 2.0, 8, 12, 0.0, 1);
        // stacks*slices*2 minus the degenerate pole rows.
        assert_eq!(b.len(), (8 * 12 * 2 - 2 * 12) as usize);
        for tri in &b {
            for v in [tri.v0, tri.v1, tri.v2] {
                assert!((v.length() - 2.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn bumpy_blob_stays_within_bump_bounds() {
        let b = blob(Vec3::ZERO, 2.0, 6, 8, 0.5, 7);
        for tri in &b {
            for v in [tri.v0, tri.v1, tri.v2] {
                assert!(v.length() >= 2.0 * 0.74 && v.length() <= 2.0 * 1.26);
            }
        }
    }

    #[test]
    fn box_mesh_is_closed() {
        let b = box_mesh(Vec3::ZERO, Vec3::ONE);
        assert_eq!(b.len(), 12);
        let total_area: f32 = b.iter().map(|t| t.area()).sum();
        assert!((total_area - 6.0).abs() < 1e-4);
    }

    #[test]
    fn tube_triangle_count() {
        let t = tube(Vec3::ZERO, Vec3::new(0.0, 5.0, 0.0), 0.2, 6);
        assert_eq!(t.len(), 12);
        // All vertices at distance `radius` from the axis.
        for tri in &t {
            for v in [tri.v0, tri.v1, tri.v2] {
                let d = Vec3::new(v.x, 0.0, v.z).length();
                assert!((d - 0.2).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn canopy_inside_sphere() {
        let c = canopy(Vec3::new(1.0, 2.0, 3.0), 2.0, 100, 0.2, 3);
        assert_eq!(c.len(), 100);
        for tri in &c {
            assert!((tri.v0 - Vec3::new(1.0, 2.0, 3.0)).length() <= 2.0 + 1e-4);
        }
    }

    #[test]
    fn subdivide_counts_and_area() {
        let base =
            vec![Triangle::new(Vec3::ZERO, Vec3::new(3.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 3.0))];
        let area: f32 = base.iter().map(|t| t.area()).sum();
        for detail in [1u32, 2, 3, 7] {
            let sub = subdivide(base.clone(), detail);
            assert_eq!(sub.len(), (detail * detail) as usize);
            let sub_area: f32 = sub.iter().map(|t| t.area()).sum();
            assert!((sub_area - area).abs() < 1e-3, "detail {detail}: area drifted");
        }
    }

    #[test]
    fn subdivide_detail_one_is_identity() {
        let base = box_mesh(Vec3::ZERO, Vec3::ONE);
        assert_eq!(subdivide(base.clone(), 1), base);
        assert_eq!(subdivide(base.clone(), 0), base);
    }

    #[test]
    fn tree_parts_nonempty_and_deterministic() {
        let (w1, l1) = tree(Vec3::ZERO, 5.0, 50, 42);
        let (w2, l2) = tree(Vec3::ZERO, 5.0, 50, 42);
        assert!(!w1.is_empty() && l1.len() == 50);
        assert_eq!(w1.len(), w2.len());
        assert_eq!(l1[0], l2[0]);
    }
}
