//! Surface materials for the path-tracing workload.
//!
//! The paper renders every scene with Lumibench's path-tracing (PT) shader.
//! What matters for the *architecture* study is the ray mix the shader
//! produces — incoherent bounce rays and shadow rays — so we implement a
//! standard small material set: diffuse, metal, glass and emissive.

use sms_geom::{DeterministicRng, Onb, Ray, SplitMix64, Vec3, RAY_EPSILON};

/// Index into [`crate::Scene::materials`].
pub type MaterialId = u32;

/// A surface material.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Material {
    /// Ideal diffuse reflector.
    Lambertian {
        /// Surface albedo.
        albedo: Vec3,
    },
    /// Metallic reflector with optional roughness.
    Metal {
        /// Surface albedo.
        albedo: Vec3,
        /// Roughness in `[0, 1]`; 0 is a perfect mirror.
        fuzz: f32,
    },
    /// Transparent dielectric (glass).
    Dielectric {
        /// Index of refraction (≈1.5 for glass).
        ior: f32,
    },
    /// Light-emitting surface; paths terminate here.
    Emissive {
        /// Emitted radiance.
        radiance: Vec3,
    },
}

/// The outcome of a material scatter event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterResult {
    /// The continuation (bounce) ray.
    pub ray: Ray,
    /// Path throughput multiplier.
    pub attenuation: Vec3,
}

impl Material {
    /// Radiance emitted by the surface (zero for non-emissive materials).
    pub fn emitted(&self) -> Vec3 {
        match self {
            Material::Emissive { radiance } => *radiance,
            _ => Vec3::ZERO,
        }
    }

    /// `true` when shadow rays toward the light are useful for this
    /// material (diffuse-like surfaces).
    pub fn casts_shadow_rays(&self) -> bool {
        match self {
            Material::Lambertian { .. } => true,
            Material::Metal { fuzz, .. } => *fuzz > 0.3,
            Material::Dielectric { .. } | Material::Emissive { .. } => false,
        }
    }

    /// Samples a bounce ray at a hit point.
    ///
    /// Returns `None` when the path terminates (emissive surfaces, or
    /// grazing refraction corner cases).
    pub fn scatter(
        &self,
        incoming: &Ray,
        point: Vec3,
        normal: Vec3,
        rng: &mut SplitMix64,
    ) -> Option<ScatterResult> {
        // Face the normal against the incoming ray.
        let outward = if incoming.dir.dot(normal) < 0.0 { normal } else { -normal };
        match *self {
            Material::Lambertian { albedo } => {
                let onb = Onb::from_w(outward);
                let dir = onb.to_world(rng.cosine_hemisphere());
                let dir = if dir.length_squared() > 1e-12 { dir } else { outward };
                Some(ScatterResult {
                    ray: Ray::new(point + outward * RAY_EPSILON, dir),
                    attenuation: albedo,
                })
            }
            Material::Metal { albedo, fuzz } => {
                let reflected = incoming.dir.reflect(outward);
                let dir = reflected + rng.unit_vector() * fuzz;
                let dir = if dir.dot(outward) > 0.0 { dir } else { reflected };
                Some(ScatterResult {
                    ray: Ray::new(point + outward * RAY_EPSILON, dir),
                    attenuation: albedo,
                })
            }
            Material::Dielectric { ior } => {
                let entering = incoming.dir.dot(normal) < 0.0;
                let eta = if entering { 1.0 / ior } else { ior };
                let cos_theta = (-incoming.dir.dot(outward)).min(1.0);
                let sin_theta = (1.0 - cos_theta * cos_theta).max(0.0).sqrt();
                let reflectance = schlick(cos_theta, eta);
                let dir = if eta * sin_theta > 1.0 || rng.next_f32() < reflectance {
                    incoming.dir.reflect(outward)
                } else {
                    refract(incoming.dir, outward, eta)
                };
                Some(ScatterResult {
                    // Offset along the new direction side of the surface.
                    ray: Ray::new(point + dir.normalized() * RAY_EPSILON, dir),
                    attenuation: Vec3::ONE,
                })
            }
            Material::Emissive { .. } => None,
        }
    }
}

fn schlick(cos_theta: f32, eta: f32) -> f32 {
    let r0 = (1.0 - eta) / (1.0 + eta);
    let r0 = r0 * r0;
    r0 + (1.0 - r0) * (1.0 - cos_theta).powi(5)
}

fn refract(dir: Vec3, n: Vec3, eta: f32) -> Vec3 {
    let cos_theta = (-dir.dot(n)).min(1.0);
    let perp = (dir + n * cos_theta) * eta;
    let parallel = n * -(1.0 - perp.length_squared()).abs().sqrt();
    perp + parallel
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit_setup() -> (Ray, Vec3, Vec3, SplitMix64) {
        let ray = Ray::new(Vec3::new(0.0, 1.0, -1.0), Vec3::new(0.0, -1.0, 1.0));
        (ray, Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0), SplitMix64::new(9))
    }

    #[test]
    fn lambertian_scatters_into_upper_hemisphere() {
        let (ray, p, n, mut rng) = hit_setup();
        let m = Material::Lambertian { albedo: Vec3::splat(0.5) };
        for _ in 0..100 {
            let s = m.scatter(&ray, p, n, &mut rng).unwrap();
            assert!(s.ray.dir.dot(n) > -1e-6, "bounce below surface");
            assert_eq!(s.attenuation, Vec3::splat(0.5));
        }
    }

    #[test]
    fn mirror_metal_reflects_exactly() {
        let (ray, p, n, mut rng) = hit_setup();
        let m = Material::Metal { albedo: Vec3::ONE, fuzz: 0.0 };
        let s = m.scatter(&ray, p, n, &mut rng).unwrap();
        let expected = ray.dir.reflect(n);
        assert!((s.ray.dir - expected.normalized()).length() < 1e-5);
    }

    #[test]
    fn emissive_terminates_path() {
        let (ray, p, n, mut rng) = hit_setup();
        let m = Material::Emissive { radiance: Vec3::ONE };
        assert!(m.scatter(&ray, p, n, &mut rng).is_none());
        assert_eq!(m.emitted(), Vec3::ONE);
    }

    #[test]
    fn dielectric_preserves_energy() {
        let (ray, p, n, mut rng) = hit_setup();
        let m = Material::Dielectric { ior: 1.5 };
        let s = m.scatter(&ray, p, n, &mut rng).unwrap();
        assert_eq!(s.attenuation, Vec3::ONE);
        assert!(s.ray.dir.is_finite());
    }

    #[test]
    fn dielectric_total_internal_reflection() {
        // Grazing ray from inside a dense medium must reflect.
        let ray = Ray::new(Vec3::new(0.0, -0.1, -1.0), Vec3::new(0.05, 1.0, 0.0));
        let n = Vec3::new(0.0, 1.0, 0.0);
        let m = Material::Dielectric { ior: 10.0 };
        let mut rng = SplitMix64::new(1);
        let s = m.scatter(&ray, Vec3::ZERO, n, &mut rng).unwrap();
        assert!(s.ray.dir.is_finite());
    }

    #[test]
    fn non_emissive_emit_zero() {
        assert_eq!(Material::Lambertian { albedo: Vec3::ONE }.emitted(), Vec3::ZERO);
        assert_eq!(Material::Dielectric { ior: 1.5 }.emitted(), Vec3::ZERO);
    }
}
