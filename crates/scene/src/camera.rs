//! Pinhole camera.

use sms_geom::{Ray, SplitMix64, Vec3};

/// A pinhole camera generating one primary ray per (pixel, sample).
///
/// Primary rays are jittered deterministically inside the pixel using a
/// stream keyed by `(pixel, sample)`, so identical configurations produce
/// identical ray sets — the foundation of the paper-style normalized-IPC
/// comparisons.
///
/// # Example
///
/// ```
/// use sms_scene::Camera;
/// use sms_geom::Vec3;
/// let cam = Camera::look_at(
///     Vec3::new(0.0, 1.0, -5.0),
///     Vec3::ZERO,
///     Vec3::new(0.0, 1.0, 0.0),
///     60.0,
///     64,
///     64,
/// );
/// let r = cam.primary_ray(10, 20, 0);
/// assert!((r.dir.length() - 1.0).abs() < 1e-5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// Eye position.
    pub origin: Vec3,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    lower_left: Vec3,
    horizontal: Vec3,
    vertical: Vec3,
    seed: u64,
}

impl Camera {
    /// Builds a camera looking from `eye` toward `target`.
    ///
    /// `vfov_degrees` is the vertical field of view.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn look_at(
        eye: Vec3,
        target: Vec3,
        up: Vec3,
        vfov_degrees: f32,
        width: u32,
        height: u32,
    ) -> Camera {
        assert!(width > 0 && height > 0, "degenerate image {width}x{height}");
        let aspect = width as f32 / height as f32;
        let theta = vfov_degrees.to_radians();
        let half_h = (theta / 2.0).tan();
        let half_w = aspect * half_h;
        let w = (eye - target).normalized();
        let u = up.cross(w).normalized();
        let v = w.cross(u);
        Camera {
            origin: eye,
            width,
            height,
            lower_left: eye - u * half_w - v * half_h - w,
            horizontal: u * (2.0 * half_w),
            vertical: v * (2.0 * half_h),
            seed: 0x5143_F00D,
        }
    }

    /// Returns a copy with the given image resolution.
    pub fn with_resolution(mut self, width: u32, height: u32) -> Camera {
        assert!(width > 0 && height > 0, "degenerate image {width}x{height}");
        // Rebuild the film plane for the new aspect ratio.
        let old_aspect = self.width as f32 / self.height as f32;
        let new_aspect = width as f32 / height as f32;
        if (old_aspect - new_aspect).abs() > 1e-6 {
            let scale = new_aspect / old_aspect;
            let center = self.lower_left + self.horizontal * 0.5;
            self.horizontal *= scale;
            self.lower_left = center - self.horizontal * 0.5;
        }
        self.width = width;
        self.height = height;
        self
    }

    /// Generates the jittered primary ray for pixel `(px, py)` and sample
    /// index `sample`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the pixel is out of bounds.
    pub fn primary_ray(&self, px: u32, py: u32, sample: u32) -> Ray {
        debug_assert!(px < self.width && py < self.height, "pixel out of range");
        let mut rng = SplitMix64::from_key(self.seed, px as u64, py as u64, sample as u64);
        let jx = rng.next_f32();
        let jy = rng.next_f32();
        let s = (px as f32 + jx) / self.width as f32;
        let t = 1.0 - (py as f32 + jy) / self.height as f32;
        let dir = self.lower_left + self.horizontal * s + self.vertical * t - self.origin;
        Ray::new(self.origin, dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, -5.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
            90.0,
            64,
            64,
        )
    }

    #[test]
    fn rays_are_deterministic() {
        let c = cam();
        assert_eq!(c.primary_ray(3, 4, 1), c.primary_ray(3, 4, 1));
    }

    #[test]
    fn different_samples_jitter() {
        let c = cam();
        assert_ne!(c.primary_ray(3, 4, 0), c.primary_ray(3, 4, 1));
    }

    #[test]
    fn center_ray_points_at_target() {
        let c = cam();
        let r = c.primary_ray(32, 32, 0);
        // Pointing roughly toward the origin (+z from the eye).
        assert!(r.dir.z > 0.9);
    }

    #[test]
    fn corner_rays_diverge() {
        let c = cam();
        let tl = c.primary_ray(0, 0, 0);
        let br = c.primary_ray(63, 63, 0);
        // Opposite corners diverge horizontally and vertically.
        assert!(tl.dir.x * br.dir.x < 0.0);
        assert!(tl.dir.y > 0.0 && br.dir.y < 0.0);
    }

    #[test]
    fn resolution_change_preserves_center() {
        let c = cam();
        let c2 = c.with_resolution(128, 128);
        let r1 = c.primary_ray(32, 32, 0);
        let r2 = c2.primary_ray(64, 64, 0);
        assert!((r1.dir - r2.dir).length() < 0.1);
    }

    #[test]
    #[should_panic(expected = "degenerate image")]
    fn zero_resolution_panics() {
        let _ = Camera::look_at(Vec3::ZERO, Vec3::ONE, Vec3::new(0.0, 1.0, 0.0), 60.0, 0, 10);
    }
}
