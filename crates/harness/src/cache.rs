//! Content-addressed on-disk result cache.
//!
//! One `(scene, stack, gpu, render)` request is keyed by the FNV-1a hash of
//! a canonical description string that includes [`SIM_VERSION_SALT`]; the
//! cached value is the run's [`SimStats`] serialized as JSON. Entries never
//! expire — bumping the salt when the simulator's timing model changes is
//! what invalidates stale results (every key, and therefore every entry
//! path, changes).
//!
//! The cache is strictly best-effort: any read problem (missing file,
//! truncated JSON, schema drift, hash collision) is a miss that falls back
//! to re-simulation, and write failures are ignored.
//!
//! Concurrent harness instances may share one cache directory. Entries are
//! written to a per-process-and-thread temp name and renamed into place, so
//! racing writers of the same key both succeed (POSIX rename replaces
//! atomically — and since the same key always holds the same bytes, "last
//! writer wins" and "first writer wins" are indistinguishable). Transient
//! I/O errors are retried with exponential backoff (`SMS_RETRIES`, default
//! 2); a persistently unwritable directory (read-only mount, full disk)
//! degrades the cache to a no-op with a single warning instead of a crash.

use crate::faultinject::{CacheFault, FaultPlan};
use crate::json::{parse, Json};
use crate::RunRequest;
use sms_sim::gpu::{SimStats, StallBreakdown};
use sms_sim::mem::MemStats;
use std::fs;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Bump on any change to the cycle model that alters simulation results:
/// all previously cached entries become unreachable (stale keys).
pub const SIM_VERSION_SALT: u32 = 1;

/// A request's identity in the cache: the canonical description and its
/// 64-bit FNV-1a hash (the entry's file name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    /// The full canonical description (stored in the entry and verified on
    /// load, so a hash collision degrades to a miss instead of corruption).
    pub canonical: String,
    /// `fnv1a64(canonical)`.
    pub hash: u64,
}

/// 64-bit FNV-1a over `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Default bounded-retry count for transient cache I/O (`SMS_RETRIES`).
pub const DEFAULT_RETRIES: u32 = 2;

/// Shared degradation state: once the directory proves unusable, every
/// clone of the cache (workers hold clones) goes quiet together and the
/// warning prints exactly once per harness.
#[derive(Debug, Default)]
struct Degrade {
    disabled: AtomicBool,
    warned: AtomicBool,
    corrupt_warned: AtomicBool,
}

/// The on-disk cache at one directory.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
    salt: u32,
    retries: u32,
    degrade: Arc<Degrade>,
    faults: Option<Arc<FaultPlan>>,
}

impl ResultCache {
    /// A cache rooted at `dir` using the current [`SIM_VERSION_SALT`].
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultCache::with_salt(dir, SIM_VERSION_SALT)
    }

    /// A cache with an explicit salt — for tests and for migration tooling
    /// that needs to inspect entries written by an older simulator version.
    pub fn with_salt(dir: impl Into<PathBuf>, salt: u32) -> Self {
        ResultCache {
            dir: dir.into(),
            salt,
            retries: DEFAULT_RETRIES,
            degrade: Arc::new(Degrade::default()),
            faults: None,
        }
    }

    /// Sets the bounded-retry count for transient I/O failures.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Attaches a fault-injection plan that may truncate or corrupt entries
    /// as they are written (chaos testing only; `None` is a strict no-op).
    pub fn with_faults(mut self, faults: Option<Arc<FaultPlan>>) -> Self {
        self.faults = faults;
        self
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// `true` once the cache has degraded to a no-op (unusable directory).
    pub fn is_degraded(&self) -> bool {
        self.degrade.disabled.load(Ordering::Relaxed)
    }

    /// Disables the cache, warning once across all clones.
    fn degrade(&self, why: &std::io::Error) {
        self.degrade.disabled.store(true, Ordering::Relaxed);
        if !self.degrade.warned.swap(true, Ordering::Relaxed) {
            crate::log::warn(
                "cache",
                &format!(
                    "result cache at {} is unusable ({why}); continuing without a cache",
                    self.dir.display()
                ),
                &[],
            );
        }
    }

    /// Runs `op` up to `1 + retries` times with exponential backoff,
    /// returning the first success. `Ok(None)` means "definitive miss" and
    /// is returned immediately (no retry).
    fn with_retry<T>(
        &self,
        mut op: impl FnMut() -> std::io::Result<T>,
    ) -> Result<T, std::io::Error> {
        let mut delay = Duration::from_millis(5);
        let mut last;
        let mut attempt = 0;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => last = e,
            }
            if attempt >= self.retries {
                return Err(last);
            }
            attempt += 1;
            std::thread::sleep(delay);
            delay *= 2;
        }
    }

    /// Computes the request's cache key under this cache's salt.
    pub fn key(&self, req: &RunRequest) -> CacheKey {
        let canonical = format!(
            "sms-sim salt={}|scene={}|stack={:?}|gpu={:?}|render={:?}",
            self.salt,
            req.scene.name(),
            req.stack,
            req.gpu,
            req.render
        );
        let hash = fnv1a64(canonical.as_bytes());
        CacheKey { canonical, hash }
    }

    /// The path an entry for `key` lives at.
    pub fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{:016x}.json", key.hash))
    }

    /// Loads a cached result; `None` on miss or on any malformed entry.
    /// Transient read errors are retried; persistent ones are misses.
    ///
    /// A *corrupt* entry (unparseable, missing fields, or failing its
    /// checksum) is distinguished from a plain miss (different salt, hash
    /// collision): corruption warns once per cache and deletes the file so
    /// the next store self-heals it. Entries written before checksums were
    /// introduced carry no `sum` field and still load.
    pub fn load(&self, key: &CacheKey) -> Option<SimStats> {
        if self.is_degraded() {
            return None;
        }
        let path = self.entry_path(key);
        let text = self
            .with_retry(|| match fs::read_to_string(&path) {
                Ok(t) => Ok(Some(t)),
                Err(e) if e.kind() == ErrorKind::NotFound => Ok(None),
                Err(e) => Err(e),
            })
            .ok()
            .flatten()?;
        match self.validate_entry(key, &text) {
            Loaded::Hit(stats) => Some(*stats),
            Loaded::Miss => None,
            Loaded::Corrupt(why) => {
                self.quarantine(&path, why);
                None
            }
        }
    }

    /// Classifies one entry's text against `key`.
    fn validate_entry(&self, key: &CacheKey, text: &str) -> Loaded {
        let Ok(doc) = parse(text) else {
            return Loaded::Corrupt("unparseable JSON (torn write?)");
        };
        let Some(salt) = doc.u64_field("salt") else {
            return Loaded::Corrupt("missing or mistyped `salt` field");
        };
        if salt != self.salt as u64 {
            return Loaded::Miss; // stale simulator version, not damage
        }
        let Some(canonical) = doc.get("key").and_then(Json::as_str) else {
            return Loaded::Corrupt("missing or mistyped `key` field");
        };
        if canonical != key.canonical {
            // The entry sits at the path this key hashes to, yet declares a
            // different key: a genuine 64-bit FNV collision is astronomically
            // less likely than bit rot in the key string, and deleting a
            // colliding entry costs only a re-simulation — so quarantine.
            return Loaded::Corrupt("key mismatch (bit rot, or a 1-in-2^64 hash collision)");
        }
        let Some(stats_doc) = doc.get("stats") else {
            return Loaded::Corrupt("missing `stats` object");
        };
        let Some(stats) = stats_from_json(stats_doc) else {
            return Loaded::Corrupt("malformed `stats` object");
        };
        // Entries predating checksums (no `sum`) are trusted as before;
        // anything written going forward must verify.
        if let Some(sum) = doc.get("sum") {
            let Some(sum) = sum.as_str() else {
                return Loaded::Corrupt("mistyped `sum` field");
            };
            if sum != entry_checksum(&key.canonical, &stats) {
                return Loaded::Corrupt("checksum mismatch");
            }
        }
        Loaded::Hit(Box::new(stats))
    }

    /// Deletes a corrupt entry so re-simulation's store self-heals it,
    /// warning once per cache (shared across clones, like degradation).
    fn quarantine(&self, path: &Path, why: &str) {
        if !self.degrade.corrupt_warned.swap(true, Ordering::Relaxed) {
            crate::log::warn(
                "cache",
                &format!(
                    "corrupt result cache entry {} ({why}); deleting it and re-simulating",
                    path.display()
                ),
                &[],
            );
        }
        let _ = fs::remove_file(path);
    }

    /// Stores a result, best-effort (errors are swallowed: a cold cache is
    /// always correct, just slower). A persistently unwritable directory
    /// degrades the whole cache to a no-op with one warning.
    pub fn store(&self, key: &CacheKey, stats: &SimStats) {
        if self.is_degraded() {
            return;
        }
        let doc = Json::Obj(vec![
            ("salt".to_owned(), Json::U64(self.salt as u64)),
            ("key".to_owned(), Json::Str(key.canonical.clone())),
            ("sum".to_owned(), Json::Str(entry_checksum(&key.canonical, stats))),
            ("stats".to_owned(), stats_to_json(stats)),
        ]);
        if let Err(e) = self.with_retry(|| fs::create_dir_all(&self.dir)) {
            self.degrade(&e);
            return;
        }
        // Write-then-rename so concurrent writers of the same entry (e.g.
        // two bench harnesses) can never expose a half-written file. The
        // temp name is unique per process *and* store call, so racing
        // writers never clobber each other's in-progress file.
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            "{:016x}.tmp{}.{}",
            key.hash,
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut body = doc.to_string();
        if let Some(fault) = self.faults.as_ref().and_then(|f| f.cache_write_fault()) {
            apply_cache_fault(&mut body, fault);
        }
        let entry = self.entry_path(key);
        let result = self.with_retry(|| {
            fs::write(&tmp, &body)?;
            match fs::rename(&tmp, &entry) {
                Ok(()) => Ok(()),
                // A racing writer may have won the rename; one key always
                // serializes to the same bytes, so an existing entry means
                // the store already succeeded — just drop our temp file.
                Err(_) if entry.exists() => {
                    let _ = fs::remove_file(&tmp);
                    Ok(())
                }
                Err(e) => Err(e),
            }
        });
        if let Err(e) = result {
            let _ = fs::remove_file(&tmp);
            self.degrade(&e);
        }
    }
}

/// Outcome of validating one on-disk entry.
enum Loaded {
    /// Entry is intact and matches the key (boxed: `SimStats` is large).
    Hit(Box<SimStats>),
    /// Entry is intact but for a different salt or key — leave it alone.
    Miss,
    /// Entry is damaged; delete it so it self-heals on the next store.
    Corrupt(&'static str),
}

/// Checksum stored in each entry's `sum` field: FNV-1a over the canonical
/// key and the deterministic stats serialization, rendered as 16 hex
/// digits. Catches bit rot that still parses as valid JSON.
pub fn entry_checksum(canonical: &str, stats: &SimStats) -> String {
    let body = stats_to_json(stats).to_string();
    format!("{:016x}", fnv1a64(format!("{canonical}|{body}").as_bytes()))
}

/// Damages an entry body in place per the injected fault. The body is
/// ASCII JSON, so byte-level surgery cannot split a UTF-8 sequence.
fn apply_cache_fault(body: &mut String, fault: CacheFault) {
    match fault {
        CacheFault::Truncate => {
            body.truncate(body.len() / 2);
        }
        CacheFault::Corrupt => {
            // Stomp a run of bytes in the middle; lands inside the entry
            // and reliably breaks either the JSON or the checksum.
            let mid = body.len() / 2;
            let end = (mid + 8).min(body.len());
            // SAFETY-free: replace_range keeps the string valid UTF-8.
            body.replace_range(mid..end, &"X".repeat(end - mid));
        }
    }
}

/// Serializes the full counter set. Field-exhaustive on purpose: adding a
/// counter to `SimStats`/`MemStats` forces an update here, which is the
/// moment to bump [`SIM_VERSION_SALT`].
pub fn stats_to_json(s: &SimStats) -> Json {
    let SimStats {
        cycles,
        thread_instructions,
        node_visits,
        rays_traced,
        shadow_rays,
        rb_spills,
        rb_reloads,
        sh_spills,
        sh_reloads,
        ra_flushes,
        ra_borrows,
        pred_hits,
        pred_misses,
        mem,
    } = *s;
    let MemStats {
        l1_hits,
        l1_misses,
        l2_hits,
        l2_misses,
        stores,
        stack_transactions,
        stack_l1_hits,
        stack_l1_misses,
        data_transactions,
        shared_accesses,
        bank_conflict_cycles,
    } = mem;
    let u = |v: u64| Json::U64(v);
    let mut pairs = vec![
        ("cycles".to_owned(), u(cycles)),
        ("thread_instructions".to_owned(), u(thread_instructions)),
        ("node_visits".to_owned(), u(node_visits)),
        ("rays_traced".to_owned(), u(rays_traced)),
        ("shadow_rays".to_owned(), u(shadow_rays)),
        ("rb_spills".to_owned(), u(rb_spills)),
        ("rb_reloads".to_owned(), u(rb_reloads)),
        ("sh_spills".to_owned(), u(sh_spills)),
        ("sh_reloads".to_owned(), u(sh_reloads)),
        ("ra_flushes".to_owned(), u(ra_flushes)),
        ("ra_borrows".to_owned(), u(ra_borrows)),
    ];
    // Predictor counters are emitted only when set: configurations that do
    // not use the predictor produce entries byte-identical to those written
    // before the counters existed, so the salt needs no bump.
    if pred_hits != 0 || pred_misses != 0 {
        pairs.push(("pred_hits".to_owned(), u(pred_hits)));
        pairs.push(("pred_misses".to_owned(), u(pred_misses)));
    }
    pairs.push((
        "mem".to_owned(),
        Json::Obj(vec![
            ("l1_hits".to_owned(), u(l1_hits)),
            ("l1_misses".to_owned(), u(l1_misses)),
            ("l2_hits".to_owned(), u(l2_hits)),
            ("l2_misses".to_owned(), u(l2_misses)),
            ("stores".to_owned(), u(stores)),
            ("stack_transactions".to_owned(), u(stack_transactions)),
            ("stack_l1_hits".to_owned(), u(stack_l1_hits)),
            ("stack_l1_misses".to_owned(), u(stack_l1_misses)),
            ("data_transactions".to_owned(), u(data_transactions)),
            ("shared_accesses".to_owned(), u(shared_accesses)),
            ("bank_conflict_cycles".to_owned(), u(bank_conflict_cycles)),
        ]),
    ));
    Json::Obj(pairs)
}

/// Deserializes a counter set; `None` if any field is missing or mistyped.
pub fn stats_from_json(doc: &Json) -> Option<SimStats> {
    let mem = doc.get("mem")?;
    Some(SimStats {
        cycles: doc.u64_field("cycles")?,
        thread_instructions: doc.u64_field("thread_instructions")?,
        node_visits: doc.u64_field("node_visits")?,
        rays_traced: doc.u64_field("rays_traced")?,
        shadow_rays: doc.u64_field("shadow_rays")?,
        rb_spills: doc.u64_field("rb_spills")?,
        rb_reloads: doc.u64_field("rb_reloads")?,
        sh_spills: doc.u64_field("sh_spills")?,
        sh_reloads: doc.u64_field("sh_reloads")?,
        ra_flushes: doc.u64_field("ra_flushes")?,
        ra_borrows: doc.u64_field("ra_borrows")?,
        // Absent in entries written by non-predictor runs (and by older
        // simulator versions): absent means zero, not malformed.
        pred_hits: doc.u64_field("pred_hits").unwrap_or(0),
        pred_misses: doc.u64_field("pred_misses").unwrap_or(0),
        mem: MemStats {
            l1_hits: mem.u64_field("l1_hits")?,
            l1_misses: mem.u64_field("l1_misses")?,
            l2_hits: mem.u64_field("l2_hits")?,
            l2_misses: mem.u64_field("l2_misses")?,
            stores: mem.u64_field("stores")?,
            stack_transactions: mem.u64_field("stack_transactions")?,
            stack_l1_hits: mem.u64_field("stack_l1_hits")?,
            stack_l1_misses: mem.u64_field("stack_l1_misses")?,
            data_transactions: mem.u64_field("data_transactions")?,
            shared_accesses: mem.u64_field("shared_accesses")?,
            bank_conflict_cycles: mem.u64_field("bank_conflict_cycles")?,
        },
    })
}

/// Serializes a stall breakdown (journal `job_finished` / `batch_end`
/// payloads). Field-exhaustive like [`stats_to_json`]: a new bucket that
/// is not serialized is a compile error, not a silent omission.
pub fn breakdown_to_json(b: &StallBreakdown) -> Json {
    let StallBreakdown {
        compute,
        mem_wait,
        rt_admit,
        in_rt,
        warp_cycles,
        rt_sched_wait,
        fetch_wait_l1,
        fetch_wait_l2,
        fetch_wait_dram,
        op_wait,
        stack_wait_rb_sh,
        stack_wait_sh_global,
        stack_wait_flush,
        bank_conflict_replay,
        predictor_wait,
        rt_idle,
        rt_lane_cycles,
    } = *b;
    let u = |v: u64| Json::U64(v);
    Json::Obj(vec![
        ("compute".to_owned(), u(compute)),
        ("mem_wait".to_owned(), u(mem_wait)),
        ("rt_admit".to_owned(), u(rt_admit)),
        ("in_rt".to_owned(), u(in_rt)),
        ("warp_cycles".to_owned(), u(warp_cycles)),
        ("rt_sched_wait".to_owned(), u(rt_sched_wait)),
        ("fetch_wait_l1".to_owned(), u(fetch_wait_l1)),
        ("fetch_wait_l2".to_owned(), u(fetch_wait_l2)),
        ("fetch_wait_dram".to_owned(), u(fetch_wait_dram)),
        ("op_wait".to_owned(), u(op_wait)),
        ("stack_wait_rb_sh".to_owned(), u(stack_wait_rb_sh)),
        ("stack_wait_sh_global".to_owned(), u(stack_wait_sh_global)),
        ("stack_wait_flush".to_owned(), u(stack_wait_flush)),
        ("bank_conflict_replay".to_owned(), u(bank_conflict_replay)),
        ("predictor_wait".to_owned(), u(predictor_wait)),
        ("rt_idle".to_owned(), u(rt_idle)),
        ("rt_lane_cycles".to_owned(), u(rt_lane_cycles)),
    ])
}

/// Serializes a batch metrics digest (journal `batch_end` payload).
/// Field-exhaustive like [`breakdown_to_json`].
pub fn metrics_to_json(m: &crate::BatchMetrics) -> Json {
    let crate::BatchMetrics { stack_depth, ray_latency, spills, reloads } = *m;
    let hist = |s: sms_metrics::HistSummary| {
        let sms_metrics::HistSummary { count, sum, p50, p95, p99, max } = s;
        Json::Obj(vec![
            ("count".to_owned(), Json::U64(count)),
            ("sum".to_owned(), Json::U64(sum)),
            ("p50".to_owned(), Json::U64(p50)),
            ("p95".to_owned(), Json::U64(p95)),
            ("p99".to_owned(), Json::U64(p99)),
            ("max".to_owned(), Json::U64(max)),
        ])
    };
    Json::Obj(vec![
        ("stack_depth".to_owned(), hist(stack_depth)),
        ("ray_latency".to_owned(), hist(ray_latency)),
        ("spills".to_owned(), Json::U64(spills)),
        ("reloads".to_owned(), Json::U64(reloads)),
    ])
}

/// Deserializes a batch metrics digest; `None` if any field is missing or
/// mistyped.
pub fn metrics_from_json(doc: &Json) -> Option<crate::BatchMetrics> {
    let hist = |doc: &Json| {
        Some(sms_metrics::HistSummary {
            count: doc.u64_field("count")?,
            sum: doc.u64_field("sum")?,
            p50: doc.u64_field("p50")?,
            p95: doc.u64_field("p95")?,
            p99: doc.u64_field("p99")?,
            max: doc.u64_field("max")?,
        })
    };
    Some(crate::BatchMetrics {
        stack_depth: hist(doc.get("stack_depth")?)?,
        ray_latency: hist(doc.get("ray_latency")?)?,
        spills: doc.u64_field("spills")?,
        reloads: doc.u64_field("reloads")?,
    })
}

/// Serializes per-scene build records for the journal's `batch_end` line.
/// Field-exhaustive: destructuring [`crate::SceneBuild`] means a new field
/// fails compilation here until the codec learns it.
pub fn builds_to_json(builds: &[crate::SceneBuild]) -> Json {
    Json::Arr(
        builds
            .iter()
            .map(|b| {
                let crate::SceneBuild { scene, prims, build_us } = b;
                Json::Obj(vec![
                    ("scene".to_owned(), Json::Str(scene.clone())),
                    ("prims".to_owned(), Json::U64(*prims)),
                    ("build_us".to_owned(), Json::U64(*build_us)),
                ])
            })
            .collect(),
    )
}

/// Deserializes per-scene build records; `None` if the document is not an
/// array or any entry misses a field.
pub fn builds_from_json(doc: &Json) -> Option<Vec<crate::SceneBuild>> {
    let Json::Arr(items) = doc else {
        return None;
    };
    items
        .iter()
        .map(|item| {
            Some(crate::SceneBuild {
                scene: item.get("scene")?.as_str()?.to_owned(),
                prims: item.u64_field("prims")?,
                build_us: item.u64_field("build_us")?,
            })
        })
        .collect()
}

/// Deserializes a stall breakdown; `None` if any bucket is missing or
/// mistyped.
pub fn breakdown_from_json(doc: &Json) -> Option<StallBreakdown> {
    Some(StallBreakdown {
        compute: doc.u64_field("compute")?,
        mem_wait: doc.u64_field("mem_wait")?,
        rt_admit: doc.u64_field("rt_admit")?,
        in_rt: doc.u64_field("in_rt")?,
        warp_cycles: doc.u64_field("warp_cycles")?,
        rt_sched_wait: doc.u64_field("rt_sched_wait")?,
        fetch_wait_l1: doc.u64_field("fetch_wait_l1")?,
        fetch_wait_l2: doc.u64_field("fetch_wait_l2")?,
        fetch_wait_dram: doc.u64_field("fetch_wait_dram")?,
        op_wait: doc.u64_field("op_wait")?,
        stack_wait_rb_sh: doc.u64_field("stack_wait_rb_sh")?,
        stack_wait_sh_global: doc.u64_field("stack_wait_sh_global")?,
        stack_wait_flush: doc.u64_field("stack_wait_flush")?,
        bank_conflict_replay: doc.u64_field("bank_conflict_replay")?,
        predictor_wait: doc.u64_field("predictor_wait")?,
        rt_idle: doc.u64_field("rt_idle")?,
        rt_lane_cycles: doc.u64_field("rt_lane_cycles")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> SimStats {
        SimStats {
            cycles: 123_456,
            thread_instructions: 9_007_199_254_740_993, // > 2^53: u64 fidelity
            node_visits: 42,
            rb_spills: 7,
            mem: MemStats { l1_hits: 11, bank_conflict_cycles: 3, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn stats_roundtrip() {
        let s = sample_stats();
        assert_eq!(stats_from_json(&stats_to_json(&s)), Some(s));
    }

    #[test]
    fn pred_counters_are_conditional_and_roundtrip() {
        // No predictor activity: the keys are absent, so non-predictor
        // entries stay byte-identical to those written before the counters
        // existed — and absent parses as zero.
        let plain = stats_to_json(&sample_stats());
        assert!(!plain.to_string().contains("pred_hits"));
        assert_eq!(stats_from_json(&plain), Some(sample_stats()));
        let s = SimStats { pred_hits: 5, pred_misses: 2, ..sample_stats() };
        assert_eq!(stats_from_json(&stats_to_json(&s)), Some(s));
    }

    #[test]
    fn missing_field_is_rejected() {
        let Json::Obj(mut pairs) = stats_to_json(&sample_stats()) else { unreachable!() };
        pairs.retain(|(k, _)| k != "sh_spills");
        assert_eq!(stats_from_json(&Json::Obj(pairs)), None);
    }

    #[test]
    fn breakdown_roundtrip() {
        let b = StallBreakdown {
            compute: 9_007_199_254_740_995, // > 2^53: u64 fidelity
            stack_wait_rb_sh: 17,
            bank_conflict_replay: 3,
            ..Default::default()
        };
        assert_eq!(breakdown_from_json(&breakdown_to_json(&b)), Some(b));
    }

    #[test]
    fn breakdown_missing_bucket_is_rejected() {
        let Json::Obj(mut pairs) = breakdown_to_json(&StallBreakdown::default()) else {
            unreachable!()
        };
        pairs.retain(|(k, _)| k != "rt_idle");
        assert_eq!(breakdown_from_json(&Json::Obj(pairs)), None);
    }

    #[test]
    fn metrics_roundtrip() {
        let m = crate::BatchMetrics {
            stack_depth: sms_metrics::HistSummary {
                count: 10,
                sum: 55,
                p50: 5,
                p95: 9,
                p99: 10,
                max: 10,
            },
            spills: 9_007_199_254_740_997, // > 2^53: u64 fidelity
            ..Default::default()
        };
        assert_eq!(metrics_from_json(&metrics_to_json(&m)), Some(m));
    }

    #[test]
    fn metrics_missing_field_is_rejected() {
        let Json::Obj(mut pairs) = metrics_to_json(&crate::BatchMetrics::default()) else {
            unreachable!()
        };
        pairs.retain(|(k, _)| k != "ray_latency");
        assert_eq!(metrics_from_json(&Json::Obj(pairs)), None);
    }

    #[test]
    fn builds_roundtrip() {
        let builds = vec![
            crate::SceneBuild { scene: "SHIP".to_owned(), prims: 6_321, build_us: 480 },
            crate::SceneBuild {
                scene: "ROBOT".to_owned(),
                prims: 9_007_199_254_740_997, // > 2^53: u64 fidelity
                build_us: 1_250_000,
            },
        ];
        assert_eq!(builds_from_json(&builds_to_json(&builds)), Some(builds));
        assert_eq!(builds_from_json(&builds_to_json(&[])), Some(Vec::new()));
    }

    #[test]
    fn builds_missing_field_is_rejected() {
        let one = vec![crate::SceneBuild { scene: "CAR".to_owned(), prims: 9, build_us: 2 }];
        let Json::Arr(items) = builds_to_json(&one) else { unreachable!() };
        let Json::Obj(mut pairs) = items[0].clone() else { unreachable!() };
        pairs.retain(|(k, _)| k != "build_us");
        assert_eq!(builds_from_json(&Json::Arr(vec![Json::Obj(pairs)])), None);
        assert_eq!(builds_from_json(&Json::U64(3)), None);
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
