//! A minimal `std::thread` worker pool over an indexed job list.
//!
//! Jobs are claimed from a shared atomic counter (work stealing degenerates
//! to self-scheduling for uniform claim cost, which is all we need) and
//! results land in a slot array indexed by job id — callers therefore see
//! results in *submission order* no matter which worker finished when,
//! which is what keeps parallel batches byte-identical to serial ones.
//!
//! Panics are isolated per job: [`try_run_indexed`] catches a panicking
//! job at the pool boundary and returns it as a [`JobPanic`] in that job's
//! slot while every other job runs to completion — one poisoned run cannot
//! take down an hour-scale sweep.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// A job that panicked, caught at the pool boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Worker index that ran the job.
    pub worker: usize,
    /// The panic payload rendered to a string (`&str`/`String` payloads
    /// verbatim, anything else as a placeholder).
    pub message: String,
}

/// Renders a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `f(job_index, worker_index)` for every `job_index in 0..jobs` on up
/// to `workers` threads; returns the results indexed by job, with each
/// panicking job isolated into its own `Err(JobPanic)` slot.
pub fn try_run_indexed<T, F>(workers: usize, jobs: usize, f: F) -> Vec<Result<T, JobPanic>>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let run_one = |job: usize, worker: usize| {
        catch_unwind(AssertUnwindSafe(|| f(job, worker)))
            .map_err(|payload| JobPanic { worker, message: panic_message(payload) })
    };
    let threads = workers.max(1).min(jobs);
    if threads <= 1 {
        return (0..jobs).map(|i| run_one(i, 0)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<T, JobPanic>>>> =
        (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let run_one = &run_one;
            let next = &next;
            let slots = &slots;
            scope.spawn(move || loop {
                let job = next.fetch_add(1, Ordering::Relaxed);
                if job >= jobs {
                    break;
                }
                let result = run_one(job, worker);
                // The lock is only ever held for this assignment and the
                // job body runs outside it, so poisoning is impossible;
                // recover anyway rather than propagate a second panic.
                *slots[job].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
            Some(result) => result,
            // The claim counter hands out every index exactly once and the
            // scope joins all workers before we get here.
            None => unreachable!("pool job was claimed but never stored a result"),
        })
        .collect()
}

/// Runs `f(job_index, worker_index)` for every `job_index in 0..jobs` on up
/// to `workers` threads; returns the results indexed by job.
///
/// A panicking job propagates the panic to the caller after all other jobs
/// finished, like the serial loop it replaces would. Fault-tolerant callers
/// should use [`try_run_indexed`].
pub fn run_indexed<T, F>(workers: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    try_run_indexed(workers, jobs, f)
        .into_iter()
        .enumerate()
        .map(|(job, result)| match result {
            Ok(v) => v,
            Err(p) => panic!("pool job {job} panicked on worker {}: {}", p.worker, p.message),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn results_are_in_job_order() {
        let out = run_indexed(4, 100, |job, _| job * job);
        assert_eq!(out, (0..100).map(|j| j * j).collect::<Vec<_>>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let out = run_indexed(8, 37, |job, _| job);
        let distinct: HashSet<usize> = out.iter().copied().collect();
        assert_eq!(distinct.len(), 37);
    }

    #[test]
    fn zero_jobs_and_single_worker_edge_cases() {
        assert_eq!(run_indexed(4, 0, |_, _| 0u8), Vec::<u8>::new());
        assert_eq!(run_indexed(0, 3, |job, worker| (job, worker)), vec![(0, 0), (1, 0), (2, 0)]);
    }

    #[test]
    fn panicking_job_is_isolated() {
        for workers in [1, 4] {
            let out = try_run_indexed(workers, 5, |job, _| {
                if job == 2 {
                    panic!("injected failure in job {job}");
                }
                job * 10
            });
            for (job, result) in out.iter().enumerate() {
                if job == 2 {
                    let p = result.as_ref().unwrap_err();
                    assert!(p.message.contains("injected failure in job 2"));
                } else {
                    assert_eq!(*result.as_ref().unwrap(), job * 10);
                }
            }
        }
    }

    #[test]
    fn run_indexed_still_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            run_indexed(2, 3, |job, _| {
                if job == 1 {
                    panic!("boom");
                }
                job
            })
        });
        assert!(caught.is_err());
    }
}
