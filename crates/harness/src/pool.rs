//! A minimal `std::thread` worker pool over an indexed job list.
//!
//! Jobs are claimed from a shared atomic counter (work stealing degenerates
//! to self-scheduling for uniform claim cost, which is all we need) and
//! results land in a slot array indexed by job id — callers therefore see
//! results in *submission order* no matter which worker finished when,
//! which is what keeps parallel batches byte-identical to serial ones.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(job_index, worker_index)` for every `job_index in 0..jobs` on up
/// to `workers` threads; returns the results indexed by job.
///
/// A panicking job propagates the panic to the caller after the scope
/// joins, like the serial loop it replaces would.
pub fn run_indexed<T, F>(workers: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let threads = workers.max(1).min(jobs);
    if threads <= 1 {
        return (0..jobs).map(|i| f(i, 0)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let f = &f;
            let next = &next;
            let slots = &slots;
            scope.spawn(move || loop {
                let job = next.fetch_add(1, Ordering::Relaxed);
                if job >= jobs {
                    break;
                }
                let result = f(job, worker);
                *slots[job].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot poisoned").expect("job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn results_are_in_job_order() {
        let out = run_indexed(4, 100, |job, _| job * job);
        assert_eq!(out, (0..100).map(|j| j * j).collect::<Vec<_>>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let out = run_indexed(8, 37, |job, _| job);
        let distinct: HashSet<usize> = out.iter().copied().collect();
        assert_eq!(distinct.len(), 37);
    }

    #[test]
    fn zero_jobs_and_single_worker_edge_cases() {
        assert_eq!(run_indexed(4, 0, |_, _| 0u8), Vec::<u8>::new());
        assert_eq!(run_indexed(0, 3, |job, worker| (job, worker)), vec![(0, 0), (1, 0), (2, 0)]);
    }
}
