//! Distributed-tracing context: Dapper-style request correlation across
//! client → fleet → backend → simulator.
//!
//! A [`TraceContext`] names one node in a request's span tree: the
//! `trace_id` shared by every span the request ever touches, this node's
//! own `span_id`, and the `parent` span it hangs under. The context rides
//! the wire as the `x-sms-trace` request header (`<trace>-<span>`, two
//! 16-digit lowercase hex u64s); the receiver parses it and parents its
//! own spans under the sender's span id.
//!
//! Tracing is strictly opt-in: the client only attaches the header when
//! `SMS_TRACE_CTX` is set, and the fleet/backend only record span events
//! for requests that carry the header — so with tracing disarmed every
//! journal, stat, and cache entry is byte-identical to an untraced run.
//! IDs are generated from wall clock + PID + a process counter (never from
//! simulation state), so tracing cannot perturb determinism.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The request header that carries the context on the wire.
pub const TRACE_HEADER: &str = "x-sms-trace";

/// One node in a request's span tree. See the module docs for semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Shared by every span of one request, end to end.
    pub trace_id: u64,
    /// This node's own span id (never 0).
    pub span_id: u64,
    /// The span this node hangs under; `None` for a root.
    pub parent: Option<u64>,
}

/// A fresh, hard-to-collide id: wall clock, PID, and a process-wide
/// counter folded through SplitMix64. Not cryptographic — collision
/// resistance at fleet-smoke scale is all tracing needs.
fn fresh_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let seed = now
        ^ (u64::from(std::process::id()) << 32)
        ^ COUNTER.fetch_add(1, Ordering::Relaxed).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    // SplitMix64 finalizer.
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    let id = z ^ (z >> 31);
    // A span id of 0 is reserved as "absent" by the schema.
    if id == 0 {
        1
    } else {
        id
    }
}

impl TraceContext {
    /// A brand-new root context (fresh trace id, fresh span id, no
    /// parent).
    pub fn root() -> Self {
        TraceContext { trace_id: fresh_id(), span_id: fresh_id(), parent: None }
    }

    /// A child context under `self`: same trace, fresh span id, parented
    /// on this node's span.
    pub fn child(&self) -> Self {
        TraceContext { trace_id: self.trace_id, span_id: fresh_id(), parent: Some(self.span_id) }
    }

    /// The client-side arming knob. `SMS_TRACE_CTX=1` (or `auto`) mints a
    /// fresh root; an explicit `<trace>-<span>` value adopts that exact
    /// context (which is what lets a CI smoke pick a known id and find it
    /// again in the merged timeline). Unset or malformed → `None` (off).
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("SMS_TRACE_CTX").ok()?;
        let raw = raw.trim();
        if raw.is_empty() {
            return None;
        }
        if raw == "1" || raw.eq_ignore_ascii_case("auto") {
            return Some(TraceContext::root());
        }
        match TraceContext::parse(raw) {
            Some(ctx) => Some(ctx),
            None => {
                crate::log::warn(
                    "trace",
                    &format!(
                        "SMS_TRACE_CTX: expected `1`, `auto`, or `<trace>-<span>` \
                         (16 hex digits each), got `{raw}` — tracing stays off"
                    ),
                    &[],
                );
                None
            }
        }
    }

    /// Parses the wire form `<trace>-<span>`. The parsed context has no
    /// parent of its own — the receiver *is* the parent for whatever spans
    /// it opens underneath.
    pub fn parse(header: &str) -> Option<Self> {
        let (t, s) = header.trim().split_once('-')?;
        if t.len() != 16 || s.len() != 16 {
            return None;
        }
        let trace_id = u64::from_str_radix(t, 16).ok()?;
        let span_id = u64::from_str_radix(s, 16).ok()?;
        if span_id == 0 {
            return None;
        }
        Some(TraceContext { trace_id, span_id, parent: None })
    }

    /// The wire form for the `x-sms-trace` header.
    pub fn header_value(&self) -> String {
        format!("{:016x}-{:016x}", self.trace_id, self.span_id)
    }

    /// The trace id as 16 lowercase hex digits (the span-event field
    /// form).
    pub fn trace_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }

    /// The span id as 16 lowercase hex digits.
    pub fn span_hex(&self) -> String {
        format!("{:016x}", self.span_id)
    }

    /// The parent span id as 16 lowercase hex digits, if any.
    pub fn parent_hex(&self) -> Option<String> {
        self.parent.map(|p| format!("{p:016x}"))
    }
}

impl fmt::Display for TraceContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.header_value())
    }
}

/// Wall-clock microseconds since the Unix epoch — the timebase every span
/// event uses, so spans from different processes line up in one merged
/// timeline.
pub fn wall_us() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let ctx = TraceContext { trace_id: 0x00c0_ffee_5eed_1234, span_id: 0x1, parent: None };
        assert_eq!(ctx.header_value(), "00c0ffee5eed1234-0000000000000001");
        let parsed = TraceContext::parse(&ctx.header_value()).unwrap();
        assert_eq!(parsed.trace_id, ctx.trace_id);
        assert_eq!(parsed.span_id, ctx.span_id);
        assert_eq!(parsed.parent, None);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert_eq!(TraceContext::parse(""), None);
        assert_eq!(TraceContext::parse("deadbeef"), None);
        assert_eq!(TraceContext::parse("deadbeef-cafebabe"), None); // too short
        assert_eq!(TraceContext::parse("00c0ffee5eed1234-000000000000000g"), None);
        assert_eq!(TraceContext::parse("00c0ffee5eed1234-0000000000000000"), None);
        // span 0
    }

    #[test]
    fn child_shares_trace_and_parents_correctly() {
        let root = TraceContext::root();
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_ne!(child.span_id, root.span_id);
        assert_eq!(child.parent, Some(root.span_id));
        assert_ne!(child.span_id, 0);
    }

    #[test]
    fn ids_are_distinct_across_calls() {
        let a = TraceContext::root();
        let b = TraceContext::root();
        assert_ne!((a.trace_id, a.span_id), (b.trace_id, b.span_id));
    }
}
