//! Crash-safe sweep resume from a prior run's journal.
//!
//! `SMS_RESUME=<journal.jsonl>` points a new sweep at the JSONL journal a
//! killed (or partially failed) sweep left behind. [`ResumeState::load`]
//! replays it: `job_queued` lines map per-batch job ids to canonical cache
//! keys, and `job_finished` lines carrying a `stats` payload mark those
//! keys completed. A new batch then serves matching requests straight from
//! the resume state (journalled as `job_resumed`) and re-executes only the
//! unfinished ones — `run_failed` / `run_timeout` jobs never enter the
//! completed set, so they are retried.
//!
//! The parser is deliberately tolerant: a journal truncated mid-line by a
//! crash, foreign lines, or events from older schema versions are skipped,
//! never fatal. Keys embed the simulator version salt, so a resume file
//! from a different simulator version simply matches nothing.

use crate::cache::{stats_from_json, CacheKey};
use crate::json::parse;
use sms_sim::gpu::SimStats;
use std::collections::HashMap;
use std::path::Path;

/// Completed runs recovered from a previous journal, keyed by canonical
/// cache key.
#[derive(Debug, Default, Clone)]
pub struct ResumeState {
    completed: HashMap<String, SimStats>,
}

impl ResumeState {
    /// Parses a JSONL journal, collecting every finished run that carries
    /// a stats payload. Unreadable files yield an empty state (with a
    /// warning); malformed lines are skipped.
    pub fn load(path: &Path) -> Self {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                crate::log::warn(
                    "resume",
                    &format!("SMS_RESUME: cannot read {}: {e} — starting fresh", path.display()),
                    &[("var", "SMS_RESUME")],
                );
                return ResumeState::default();
            }
        };
        let mut completed = HashMap::new();
        // Job ids are scoped to one batch; keys are global.
        let mut key_of_job: HashMap<u64, String> = HashMap::new();
        for line in text.lines() {
            let Ok(doc) = parse(line) else { continue };
            match doc.get("event").and_then(|e| e.as_str()) {
                Some("batch_start") => key_of_job.clear(),
                Some("job_queued") => {
                    let (Some(job), Some(key)) =
                        (doc.u64_field("job"), doc.get("key").and_then(|k| k.as_str()))
                    else {
                        continue;
                    };
                    key_of_job.insert(job, key.to_owned());
                }
                Some("job_finished") => {
                    let Some(job) = doc.u64_field("job") else { continue };
                    let Some(key) = key_of_job.get(&job) else { continue };
                    let Some(stats) = doc.get("stats").and_then(stats_from_json) else { continue };
                    completed.insert(key.clone(), stats);
                }
                _ => {}
            }
        }
        ResumeState { completed }
    }

    /// The stats of a completed run with this key, if the journal has one.
    pub fn lookup(&self, key: &CacheKey) -> Option<SimStats> {
        self.completed.get(&key.canonical).copied()
    }

    /// Number of completed runs recovered.
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// `true` when the journal yielded nothing to resume from.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::fnv1a64;

    fn key(canonical: &str) -> CacheKey {
        CacheKey { canonical: canonical.to_owned(), hash: fnv1a64(canonical.as_bytes()) }
    }

    #[test]
    fn replays_finished_runs_and_skips_junk() {
        let dir = std::env::temp_dir().join(format!("sms-resume-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let journal = concat!(
            r#"{"event":"batch_start","jobs":3,"unique":3,"workers":2}"#,
            "\n",
            r#"{"event":"job_queued","job":0,"scene":"A","config":"c","workload":"w","key":"k0"}"#,
            "\n",
            r#"{"event":"job_queued","job":1,"scene":"B","config":"c","workload":"w","key":"k1"}"#,
            "\n",
            r#"{"event":"job_finished","job":0,"worker":0,"cache":"miss","cycles":5,"duration_us":1,"stats":{"cycles":5,"thread_instructions":0,"node_visits":0,"rays_traced":0,"shadow_rays":0,"rb_spills":0,"rb_reloads":0,"sh_spills":0,"sh_reloads":0,"ra_flushes":0,"ra_borrows":0,"mem":{"l1_hits":0,"l1_misses":0,"l2_hits":0,"l2_misses":0,"stores":0,"stack_transactions":0,"stack_l1_hits":0,"stack_l1_misses":0,"data_transactions":0,"shared_accesses":0,"bank_conflict_cycles":0}}}"#,
            "\n",
            r#"{"event":"run_failed","job":1,"worker":1,"kind":"panic","error":"x","duration_us":1}"#,
            "\n",
            "{\"event\":\"job_finished\",\"job\":2,\"worker\":0,\"cache\":\"mi", // truncated by a crash
        );
        std::fs::write(&path, journal).unwrap();
        let state = ResumeState::load(&path);
        assert_eq!(state.len(), 1);
        assert_eq!(state.lookup(&key("k0")).map(|s| s.cycles), Some(5));
        assert_eq!(state.lookup(&key("k1")), None, "failed jobs must re-execute");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_empty_state() {
        let state = ResumeState::load(Path::new("/nonexistent/journal.jsonl"));
        assert!(state.is_empty());
    }

    #[test]
    fn journal_written_through_sink_survives_truncated_tail() {
        // The durability contract end to end: events written through the
        // real `Journal` file sink (one flushed `write_all` per line), the
        // process is then "killed" mid-write — simulated by truncating the
        // file inside the final line — and the replayer must still recover
        // every fully-written event.
        use crate::journal::{Event, Journal};
        use sms_sim::gpu::SimStats;

        let dir = std::env::temp_dir().join(format!("sms-durab-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        {
            let j = Journal::new(Some(path.clone()));
            j.record(Event::BatchStart { jobs: 2, unique: 2, workers: 1 });
            for (job, key) in [(0usize, "k0"), (1, "k1")] {
                j.record(Event::JobQueued {
                    job,
                    scene: "A".to_owned(),
                    config: "c".to_owned(),
                    workload: "w".to_owned(),
                    key: key.to_owned(),
                });
                j.record(Event::JobFinished {
                    job,
                    worker: Some(0),
                    cache_hit: false,
                    cycles: 5,
                    duration_us: 1,
                    stats: Some(SimStats { cycles: 5, ..Default::default() }),
                    breakdown: None,
                });
            }
            j.flush();
        }
        // SIGKILL mid-line: chop the file 20 bytes into the last line.
        let text = std::fs::read_to_string(&path).unwrap();
        let last_line_start = text.trim_end().rfind('\n').unwrap() + 1;
        std::fs::write(&path, &text.as_bytes()[..last_line_start + 20]).unwrap();

        let state = ResumeState::load(&path);
        assert_eq!(state.len(), 1, "only the truncated line may be lost");
        assert_eq!(state.lookup(&key("k0")).map(|s| s.cycles), Some(5));
        assert_eq!(state.lookup(&key("k1")), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
