//! Structured run journal: one JSONL event per scheduler transition.
//!
//! Events are always collected in memory (so tests and callers can assert
//! on them); when `SMS_JOURNAL=<path>` is set — or a path is configured
//! explicitly — each event is also appended to that file as one JSON line,
//! giving the repo its first machine-readable observability stream:
//!
//! ```text
//! {"event":"batch_start","jobs":80,"unique":80,"workers":8}
//! {"event":"job_queued","job":0,"scene":"WKND","config":"RB_8","workload":"32x32x1","key":"sms-sim salt=1|..."}
//! {"event":"job_started","job":0,"worker":2}
//! {"event":"job_finished","job":0,"worker":2,"cache":"miss","cycles":184223,"duration_us":5120,"stats":{...}}
//! {"event":"run_failed","job":3,"worker":1,"kind":"panic","error":"...","duration_us":90}
//! {"event":"batch_end","jobs":80,"cache_hits":0,"cache_misses":80,"failed":1,"duration_us":412000}
//! ```
//!
//! `job_finished` lines carry the full counter set, which makes a journal
//! self-sufficient for crash-safe resume (`SMS_RESUME=<journal>`): a new
//! sweep replays completed runs from it and re-executes only the rest.

use crate::cache::{breakdown_to_json, builds_to_json, metrics_to_json, stats_to_json};
use crate::json::Json;
use crate::{BatchMetrics, SceneBuild};
use sms_sim::gpu::{SimStats, StallBreakdown};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Mutex, PoisonError};

/// One journal event. `job` ids index the batch's *deduplicated* job list;
/// `worker` is `None` for work the scheduler thread did itself (cache
/// probes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A batch was submitted.
    BatchStart {
        /// Requests in the batch, before deduplication.
        jobs: usize,
        /// Distinct jobs after deduplication.
        unique: usize,
        /// Worker threads the pool will use.
        workers: usize,
    },
    /// A deduplicated job entered the queue.
    JobQueued {
        /// Job id within the batch.
        job: usize,
        /// Scene name (paper spelling, e.g. `CHSNT`).
        scene: String,
        /// Stack-configuration label (e.g. `RB_8+SH_8+SK+RA`).
        config: String,
        /// Workload as `WxHxSPP`.
        workload: String,
        /// Canonical cache key — the job's stable identity, which is what
        /// `SMS_RESUME` matches completed runs against across processes.
        key: String,
    },
    /// A job was satisfied by a prior run's journal (`SMS_RESUME`).
    JobResumed {
        /// Job id within the batch.
        job: usize,
        /// Simulated cycles of the replayed result.
        cycles: u64,
    },
    /// A worker picked the job up.
    JobStarted {
        /// Job id within the batch.
        job: usize,
        /// Worker index.
        worker: usize,
    },
    /// The job's result is available.
    JobFinished {
        /// Job id within the batch.
        job: usize,
        /// Worker index; `None` when served from cache by the scheduler.
        worker: Option<usize>,
        /// Whether the result came from the on-disk cache.
        cache_hit: bool,
        /// Simulated cycles of the result.
        cycles: u64,
        /// Wall-clock microseconds spent on this job.
        duration_us: u64,
        /// The full counter set, when available. This is what makes the
        /// journal self-sufficient for `SMS_RESUME` even without a cache.
        stats: Option<SimStats>,
        /// Stall attribution, when the run was armed (`SMS_BREAKDOWN` /
        /// `SMS_TRACE`). Cache hits never carry one — the cache stores
        /// only `SimStats`, byte-identical with attribution on or off.
        breakdown: Option<StallBreakdown>,
    },
    /// The job was aborted by the per-run watchdog (budget or stall).
    RunTimeout {
        /// Job id within the batch.
        job: usize,
        /// Worker index that ran the job.
        worker: usize,
        /// Watchdog class: `cycle_budget` or `stalled`.
        kind: String,
        /// Full diagnostic rendering (includes the state snapshot).
        error: String,
        /// Wall-clock microseconds spent before the abort.
        duration_us: u64,
    },
    /// The job failed (panic, deadlock or invariant violation).
    RunFailed {
        /// Job id within the batch.
        job: usize,
        /// Worker index that ran the job.
        worker: usize,
        /// Failure class: `panic`, `deadlock` or `invariant`.
        kind: String,
        /// Full diagnostic rendering.
        error: String,
        /// Wall-clock microseconds spent before the failure.
        duration_us: u64,
    },
    /// One completed tracing span (client → fleet → backend request
    /// correlation). Only recorded for requests that carried an
    /// `x-sms-trace` header, so untraced journals are byte-identical to
    /// pre-tracing ones. Unknown to older readers, which skip it — the
    /// codec passes unrecognized event lines through.
    Span {
        /// Trace id, 16 lowercase hex digits; shared by every span of one
        /// request end to end.
        trace: String,
        /// This span's id, 16 lowercase hex digits, never all-zero.
        span: String,
        /// Parent span id (16 hex digits); `None` for a root span.
        parent: Option<String>,
        /// Span name from the fixed taxonomy (`sweep`, `cell`, `dispatch`,
        /// `job`, `client`).
        name: String,
        /// Role of this node: `client` (outbound request), `server`
        /// (inbound request), or `internal`.
        kind: String,
        /// Wall-clock start, microseconds since the Unix epoch — one
        /// timebase across processes so merged timelines line up.
        start_us: u64,
        /// Span duration in microseconds.
        dur_us: u64,
        /// Free-form string attributes (`cell`, `backend`, `attempt`,
        /// `hedge`, `cache`, `breaker_state`, `cancelled`, ...), rendered
        /// as a JSON object in insertion order.
        attrs: Vec<(String, String)>,
    },
    /// The batch completed; counters cover the deduplicated jobs.
    BatchEnd {
        /// Deduplicated jobs executed or served.
        jobs: usize,
        /// Jobs served from the cache.
        cache_hits: usize,
        /// Jobs that re-simulated.
        cache_misses: usize,
        /// Jobs that failed or timed out.
        failed: usize,
        /// Batch wall-clock microseconds.
        duration_us: u64,
        /// Total simulated cycles across the deduplicated jobs.
        sim_cycles: u64,
        /// Aggregated stall attribution over the jobs that produced one.
        breakdown: Option<StallBreakdown>,
        /// Batch-wide stack-telemetry digest over the metrics-armed jobs
        /// (`SMS_METRICS`): merged-histogram percentiles, not averages.
        metrics: Option<BatchMetrics>,
        /// Per-scene BVH build wall times for the scenes this batch
        /// prepared (cache-only batches prepare none, so this is empty).
        builds: Vec<SceneBuild>,
    },
}

impl Event {
    /// A span event from a [`TraceContext`](crate::TraceContext) — the
    /// hex rendering and parent plumbing in one place, so recording sites
    /// stay one call.
    pub fn span(
        ctx: &crate::TraceContext,
        name: &str,
        kind: &str,
        start_us: u64,
        dur_us: u64,
        attrs: Vec<(String, String)>,
    ) -> Event {
        Event::Span {
            trace: ctx.trace_hex(),
            span: ctx.span_hex(),
            parent: ctx.parent_hex(),
            name: name.to_owned(),
            kind: kind.to_owned(),
            start_us,
            dur_us,
            attrs,
        }
    }

    /// The event as one JSON object (the journal line, sans newline).
    pub fn to_json(&self) -> Json {
        let own = |s: &str| s.to_owned();
        match self {
            Event::BatchStart { jobs, unique, workers } => Json::Obj(vec![
                (own("event"), Json::Str(own("batch_start"))),
                (own("jobs"), Json::U64(*jobs as u64)),
                (own("unique"), Json::U64(*unique as u64)),
                (own("workers"), Json::U64(*workers as u64)),
            ]),
            Event::JobQueued { job, scene, config, workload, key } => Json::Obj(vec![
                (own("event"), Json::Str(own("job_queued"))),
                (own("job"), Json::U64(*job as u64)),
                (own("scene"), Json::Str(scene.clone())),
                (own("config"), Json::Str(config.clone())),
                (own("workload"), Json::Str(workload.clone())),
                (own("key"), Json::Str(key.clone())),
            ]),
            Event::JobResumed { job, cycles } => Json::Obj(vec![
                (own("event"), Json::Str(own("job_resumed"))),
                (own("job"), Json::U64(*job as u64)),
                (own("cycles"), Json::U64(*cycles)),
            ]),
            Event::JobStarted { job, worker } => Json::Obj(vec![
                (own("event"), Json::Str(own("job_started"))),
                (own("job"), Json::U64(*job as u64)),
                (own("worker"), Json::U64(*worker as u64)),
            ]),
            Event::JobFinished {
                job,
                worker,
                cache_hit,
                cycles,
                duration_us,
                stats,
                breakdown,
            } => Json::Obj(vec![
                (own("event"), Json::Str(own("job_finished"))),
                (own("job"), Json::U64(*job as u64)),
                (own("worker"), worker.map_or(Json::Null, |w| Json::U64(w as u64))),
                (own("cache"), Json::Str(own(if *cache_hit { "hit" } else { "miss" }))),
                (own("cycles"), Json::U64(*cycles)),
                (own("duration_us"), Json::U64(*duration_us)),
                (own("stats"), stats.as_ref().map_or(Json::Null, stats_to_json)),
                (own("breakdown"), breakdown.as_ref().map_or(Json::Null, breakdown_to_json)),
            ]),
            Event::RunTimeout { job, worker, kind, error, duration_us } => Json::Obj(vec![
                (own("event"), Json::Str(own("run_timeout"))),
                (own("job"), Json::U64(*job as u64)),
                (own("worker"), Json::U64(*worker as u64)),
                (own("kind"), Json::Str(kind.clone())),
                (own("error"), Json::Str(error.clone())),
                (own("duration_us"), Json::U64(*duration_us)),
            ]),
            Event::RunFailed { job, worker, kind, error, duration_us } => Json::Obj(vec![
                (own("event"), Json::Str(own("run_failed"))),
                (own("job"), Json::U64(*job as u64)),
                (own("worker"), Json::U64(*worker as u64)),
                (own("kind"), Json::Str(kind.clone())),
                (own("error"), Json::Str(error.clone())),
                (own("duration_us"), Json::U64(*duration_us)),
            ]),
            Event::Span { trace, span, parent, name, kind, start_us, dur_us, attrs } => {
                Json::Obj(vec![
                    (own("event"), Json::Str(own("span"))),
                    (own("trace"), Json::Str(trace.clone())),
                    (own("span"), Json::Str(span.clone())),
                    (own("parent"), parent.as_ref().map_or(Json::Null, |p| Json::Str(p.clone()))),
                    (own("name"), Json::Str(name.clone())),
                    (own("kind"), Json::Str(kind.clone())),
                    (own("start_us"), Json::U64(*start_us)),
                    (own("dur_us"), Json::U64(*dur_us)),
                    (
                        own("attrs"),
                        Json::Obj(
                            attrs.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect(),
                        ),
                    ),
                ])
            }
            Event::BatchEnd {
                jobs,
                cache_hits,
                cache_misses,
                failed,
                duration_us,
                sim_cycles,
                breakdown,
                metrics,
                builds,
            } => {
                // Aggregate throughput is derived at serialization time so
                // the event itself stays integral (and `Eq`).
                let secs = *duration_us as f64 / 1e6;
                let rate = |n: u64| if secs > 0.0 { n as f64 / secs } else { 0.0 };
                Json::Obj(vec![
                    (own("event"), Json::Str(own("batch_end"))),
                    (own("jobs"), Json::U64(*jobs as u64)),
                    (own("cache_hits"), Json::U64(*cache_hits as u64)),
                    (own("cache_misses"), Json::U64(*cache_misses as u64)),
                    (own("failed"), Json::U64(*failed as u64)),
                    (own("duration_us"), Json::U64(*duration_us)),
                    (own("sim_cycles"), Json::U64(*sim_cycles)),
                    (own("runs_per_sec"), Json::F64(rate(*jobs as u64))),
                    (own("sim_cycles_per_sec"), Json::F64(rate(*sim_cycles))),
                    (own("breakdown"), breakdown.as_ref().map_or(Json::Null, breakdown_to_json)),
                    (own("metrics"), metrics.as_ref().map_or(Json::Null, metrics_to_json)),
                    (own("builds"), builds_to_json(builds)),
                ])
            }
        }
    }
}

struct Inner {
    events: Vec<Event>,
    sink: Option<File>,
    /// `SMS_JOURNAL_SYNC=1`: fsync after every line (crash-safe against
    /// power loss, not just process death).
    sync: bool,
}

/// Thread-safe event collector; workers record through a shared reference.
pub struct Journal {
    inner: Mutex<Inner>,
}

impl Journal {
    /// A journal that optionally appends JSONL to `path`. An unopenable
    /// path disables the file sink (the in-memory journal still works).
    pub fn new(path: Option<PathBuf>) -> Self {
        let sink = path.and_then(|p| OpenOptions::new().create(true).append(true).open(p).ok());
        let sync = std::env::var("SMS_JOURNAL_SYNC").is_ok_and(|v| v == "1");
        Journal { inner: Mutex::new(Inner { events: Vec::new(), sink, sync }) }
    }

    /// Records one event (and writes its JSONL line, if a sink is set).
    ///
    /// The line is rendered first and written with a single `write_all`
    /// (one syscall on the happy path, line + newline together), so a
    /// process killed mid-sweep loses at most the line being written —
    /// never interleaved fragments of two lines, and never a line sitting
    /// in a userspace buffer. With `SMS_JOURNAL_SYNC=1` each line is also
    /// fsynced before `record` returns.
    pub fn record(&self, event: Event) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let sync = inner.sync;
        if let Some(f) = inner.sink.as_mut() {
            let line = format!("{}\n", event.to_json());
            let _ = f.write_all(line.as_bytes());
            let _ = f.flush();
            if sync {
                let _ = f.sync_data();
            }
        }
        inner.events.push(event);
    }

    /// Forces the sink to stable storage (drain/shutdown path). A no-op
    /// without a file sink.
    pub fn flush(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(f) = inner.sink.as_mut() {
            let _ = f.flush();
            let _ = f.sync_data();
        }
    }

    /// Snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).events.clone()
    }

    /// Events recorded since (and including) the most recent `BatchStart`.
    pub fn last_batch(&self) -> Vec<Event> {
        let events = self.events();
        let start = events.iter().rposition(|e| matches!(e, Event::BatchStart { .. })).unwrap_or(0);
        events[start..].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_to_one_object_each() {
        let e = Event::JobFinished {
            job: 3,
            worker: None,
            cache_hit: true,
            cycles: 99,
            duration_us: 12,
            stats: Some(SimStats { cycles: 99, ..Default::default() }),
            breakdown: Some(StallBreakdown { compute: 7, ..Default::default() }),
        };
        let line = e.to_json().to_string();
        let doc = crate::json::parse(&line).unwrap();
        assert_eq!(doc.get("event").unwrap().as_str(), Some("job_finished"));
        assert_eq!(doc.get("worker").unwrap(), &Json::Null);
        assert_eq!(doc.u64_field("cycles"), Some(99));
        let stats = crate::cache::stats_from_json(doc.get("stats").unwrap()).unwrap();
        assert_eq!(stats.cycles, 99);
        let b = crate::cache::breakdown_from_json(doc.get("breakdown").unwrap()).unwrap();
        assert_eq!(b.compute, 7);
    }

    #[test]
    fn failure_events_serialize() {
        let e = Event::RunFailed {
            job: 1,
            worker: 2,
            kind: "panic".to_owned(),
            error: "boom".to_owned(),
            duration_us: 7,
        };
        let doc = crate::json::parse(&e.to_json().to_string()).unwrap();
        assert_eq!(doc.get("event").unwrap().as_str(), Some("run_failed"));
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("panic"));
        let e = Event::RunTimeout {
            job: 1,
            worker: 2,
            kind: "stalled".to_owned(),
            error: "no progress".to_owned(),
            duration_us: 7,
        };
        let doc = crate::json::parse(&e.to_json().to_string()).unwrap();
        assert_eq!(doc.get("event").unwrap().as_str(), Some("run_timeout"));
    }

    #[test]
    fn zero_duration_batch_end_serializes_finite_rates() {
        // Regression guard: a batch served entirely from cache can finish
        // in 0µs at the journal's clock resolution; the derived throughput
        // fields must come out as 0, not NaN (which would render the line
        // unparseable if it ever slipped past the writer's null guard).
        let e = Event::BatchEnd {
            jobs: 5,
            cache_hits: 5,
            cache_misses: 0,
            failed: 0,
            duration_us: 0,
            sim_cycles: 1_000,
            breakdown: None,
            metrics: None,
            builds: vec![SceneBuild { scene: "SHIP".to_owned(), prims: 6321, build_us: 480 }],
        };
        let doc = crate::json::parse(&e.to_json().to_string()).unwrap();
        assert_eq!(doc.get("runs_per_sec").unwrap().as_f64(), Some(0.0));
        assert_eq!(doc.get("sim_cycles_per_sec").unwrap().as_f64(), Some(0.0));
        assert_eq!(doc.get("breakdown"), Some(&Json::Null));
        let builds = crate::cache::builds_from_json(doc.get("builds").unwrap()).unwrap();
        assert_eq!(builds.len(), 1);
        assert_eq!(builds[0].scene, "SHIP");
        assert_eq!(builds[0].build_us, 480);
    }

    #[test]
    fn last_batch_cuts_at_latest_start() {
        let j = Journal::new(None);
        j.record(Event::BatchStart { jobs: 1, unique: 1, workers: 1 });
        j.record(Event::BatchEnd {
            jobs: 1,
            cache_hits: 0,
            cache_misses: 1,
            failed: 0,
            duration_us: 5,
            sim_cycles: 42,
            breakdown: None,
            metrics: None,
            builds: Vec::new(),
        });
        j.record(Event::BatchStart { jobs: 2, unique: 2, workers: 1 });
        let last = j.last_batch();
        assert_eq!(last.len(), 1);
        assert!(matches!(last[0], Event::BatchStart { jobs: 2, .. }));
    }
}
