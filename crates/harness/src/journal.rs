//! Structured run journal: one JSONL event per scheduler transition.
//!
//! Events are always collected in memory (so tests and callers can assert
//! on them); when `SMS_JOURNAL=<path>` is set — or a path is configured
//! explicitly — each event is also appended to that file as one JSON line,
//! giving the repo its first machine-readable observability stream:
//!
//! ```text
//! {"event":"batch_start","jobs":80,"unique":80,"workers":8}
//! {"event":"job_queued","job":0,"scene":"WKND","config":"RB_8","workload":"32x32x1"}
//! {"event":"job_started","job":0,"worker":2}
//! {"event":"job_finished","job":0,"worker":2,"cache":"miss","cycles":184223,"duration_us":5120}
//! {"event":"batch_end","jobs":80,"cache_hits":0,"cache_misses":80,"duration_us":412000}
//! ```

use crate::json::Json;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Mutex;

/// One journal event. `job` ids index the batch's *deduplicated* job list;
/// `worker` is `None` for work the scheduler thread did itself (cache
/// probes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A batch was submitted.
    BatchStart {
        /// Requests in the batch, before deduplication.
        jobs: usize,
        /// Distinct jobs after deduplication.
        unique: usize,
        /// Worker threads the pool will use.
        workers: usize,
    },
    /// A deduplicated job entered the queue.
    JobQueued {
        /// Job id within the batch.
        job: usize,
        /// Scene name (paper spelling, e.g. `CHSNT`).
        scene: String,
        /// Stack-configuration label (e.g. `RB_8+SH_8+SK+RA`).
        config: String,
        /// Workload as `WxHxSPP`.
        workload: String,
    },
    /// A worker picked the job up.
    JobStarted {
        /// Job id within the batch.
        job: usize,
        /// Worker index.
        worker: usize,
    },
    /// The job's result is available.
    JobFinished {
        /// Job id within the batch.
        job: usize,
        /// Worker index; `None` when served from cache by the scheduler.
        worker: Option<usize>,
        /// Whether the result came from the on-disk cache.
        cache_hit: bool,
        /// Simulated cycles of the result.
        cycles: u64,
        /// Wall-clock microseconds spent on this job.
        duration_us: u64,
    },
    /// The batch completed; counters cover the deduplicated jobs.
    BatchEnd {
        /// Deduplicated jobs executed or served.
        jobs: usize,
        /// Jobs served from the cache.
        cache_hits: usize,
        /// Jobs that re-simulated.
        cache_misses: usize,
        /// Batch wall-clock microseconds.
        duration_us: u64,
        /// Total simulated cycles across the deduplicated jobs.
        sim_cycles: u64,
    },
}

impl Event {
    /// The event as one JSON object (the journal line, sans newline).
    pub fn to_json(&self) -> Json {
        let own = |s: &str| s.to_owned();
        match self {
            Event::BatchStart { jobs, unique, workers } => Json::Obj(vec![
                (own("event"), Json::Str(own("batch_start"))),
                (own("jobs"), Json::U64(*jobs as u64)),
                (own("unique"), Json::U64(*unique as u64)),
                (own("workers"), Json::U64(*workers as u64)),
            ]),
            Event::JobQueued { job, scene, config, workload } => Json::Obj(vec![
                (own("event"), Json::Str(own("job_queued"))),
                (own("job"), Json::U64(*job as u64)),
                (own("scene"), Json::Str(scene.clone())),
                (own("config"), Json::Str(config.clone())),
                (own("workload"), Json::Str(workload.clone())),
            ]),
            Event::JobStarted { job, worker } => Json::Obj(vec![
                (own("event"), Json::Str(own("job_started"))),
                (own("job"), Json::U64(*job as u64)),
                (own("worker"), Json::U64(*worker as u64)),
            ]),
            Event::JobFinished { job, worker, cache_hit, cycles, duration_us } => Json::Obj(vec![
                (own("event"), Json::Str(own("job_finished"))),
                (own("job"), Json::U64(*job as u64)),
                (own("worker"), worker.map_or(Json::Null, |w| Json::U64(w as u64))),
                (own("cache"), Json::Str(own(if *cache_hit { "hit" } else { "miss" }))),
                (own("cycles"), Json::U64(*cycles)),
                (own("duration_us"), Json::U64(*duration_us)),
            ]),
            Event::BatchEnd { jobs, cache_hits, cache_misses, duration_us, sim_cycles } => {
                // Aggregate throughput is derived at serialization time so
                // the event itself stays integral (and `Eq`).
                let secs = *duration_us as f64 / 1e6;
                let rate = |n: u64| if secs > 0.0 { n as f64 / secs } else { 0.0 };
                Json::Obj(vec![
                    (own("event"), Json::Str(own("batch_end"))),
                    (own("jobs"), Json::U64(*jobs as u64)),
                    (own("cache_hits"), Json::U64(*cache_hits as u64)),
                    (own("cache_misses"), Json::U64(*cache_misses as u64)),
                    (own("duration_us"), Json::U64(*duration_us)),
                    (own("sim_cycles"), Json::U64(*sim_cycles)),
                    (own("runs_per_sec"), Json::F64(rate(*jobs as u64))),
                    (own("sim_cycles_per_sec"), Json::F64(rate(*sim_cycles))),
                ])
            }
        }
    }
}

struct Inner {
    events: Vec<Event>,
    sink: Option<File>,
}

/// Thread-safe event collector; workers record through a shared reference.
pub struct Journal {
    inner: Mutex<Inner>,
}

impl Journal {
    /// A journal that optionally appends JSONL to `path`. An unopenable
    /// path disables the file sink (the in-memory journal still works).
    pub fn new(path: Option<PathBuf>) -> Self {
        let sink = path.and_then(|p| OpenOptions::new().create(true).append(true).open(p).ok());
        Journal { inner: Mutex::new(Inner { events: Vec::new(), sink }) }
    }

    /// Records one event (and writes its JSONL line, if a sink is set).
    pub fn record(&self, event: Event) {
        let mut inner = self.inner.lock().expect("journal poisoned");
        if let Some(f) = inner.sink.as_mut() {
            let _ = writeln!(f, "{}", event.to_json());
        }
        inner.events.push(event);
    }

    /// Snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().expect("journal poisoned").events.clone()
    }

    /// Events recorded since (and including) the most recent `BatchStart`.
    pub fn last_batch(&self) -> Vec<Event> {
        let events = self.events();
        let start = events.iter().rposition(|e| matches!(e, Event::BatchStart { .. })).unwrap_or(0);
        events[start..].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_to_one_object_each() {
        let e = Event::JobFinished {
            job: 3,
            worker: None,
            cache_hit: true,
            cycles: 99,
            duration_us: 12,
        };
        let line = e.to_json().to_string();
        let doc = crate::json::parse(&line).unwrap();
        assert_eq!(doc.get("event").unwrap().as_str(), Some("job_finished"));
        assert_eq!(doc.get("worker").unwrap(), &Json::Null);
        assert_eq!(doc.u64_field("cycles"), Some(99));
    }

    #[test]
    fn last_batch_cuts_at_latest_start() {
        let j = Journal::new(None);
        j.record(Event::BatchStart { jobs: 1, unique: 1, workers: 1 });
        j.record(Event::BatchEnd {
            jobs: 1,
            cache_hits: 0,
            cache_misses: 1,
            duration_us: 5,
            sim_cycles: 42,
        });
        j.record(Event::BatchStart { jobs: 2, unique: 2, workers: 1 });
        let last = j.last_batch();
        assert_eq!(last.len(), 1);
        assert!(matches!(last[0], Event::BatchStart { jobs: 2, .. }));
    }
}
