//! A minimal hand-rolled JSON value, writer, and parser.
//!
//! The build environment is offline, so the harness cannot pull `serde`;
//! the cache entries and journal events it needs are small, flat-ish
//! documents for which this ~200-line implementation suffices. Numbers are
//! kept in two flavours — [`Json::U64`] for counters (lossless beyond
//! 2^53, which `f64` could not represent) and [`Json::F64`] for the rest.

use std::fmt;

/// A parsed or to-be-written JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal (no `.`, `e`, or leading `-`).
    U64(u64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when writing.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a float (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Convenience: `get(key)` then [`Json::as_u64`].
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(v) => write!(f, "{v}"),
            Json::F64(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    f.write_str("null") // JSON has no Inf/NaN literals
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_owned(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let Some(c) = s.chars().next() else {
                        return Err(self.err("truncated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The scanned span is ASCII by construction.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("malformed number"))?;
        if integral && !text.starts_with('-') {
            text.parse::<u64>().map(Json::U64).map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<f64>().map(Json::F64).map_err(|_| self.err("malformed number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = Json::Obj(vec![
            ("cycles".to_owned(), Json::U64(u64::MAX)),
            ("label".to_owned(), Json::Str("RB_8+SH_8 \"quoted\"\n".to_owned())),
            ("nested".to_owned(), Json::Obj(vec![("hit".to_owned(), Json::Bool(true))])),
            ("arr".to_owned(), Json::Arr(vec![Json::U64(1), Json::F64(2.5), Json::Null])),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn u64_precision_is_preserved() {
        let text = Json::Obj(vec![("c".to_owned(), Json::U64(9_007_199_254_740_993))]).to_string();
        assert_eq!(parse(&text).unwrap().u64_field("c"), Some(9_007_199_254_740_993));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        // Regression guard: JSON has no NaN/Infinity literals, so a
        // non-finite F64 (e.g. a rate computed from a zero-duration batch
        // by code without its own guard) must degrade to `null` — emitting
        // `NaN` would make the whole journal line unparseable.
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Json::F64(v).to_string(), "null");
            let line = Json::Obj(vec![("rate".to_owned(), Json::F64(v))]).to_string();
            assert_eq!(line, "{\"rate\":null}");
            let doc = parse(&line).unwrap();
            assert_eq!(doc.get("rate"), Some(&Json::Null));
        }
        // Finite values are untouched by the guard.
        assert_eq!(Json::F64(2.5).to_string(), "2.5");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("\u{0}binary\u{1}").is_err());
        assert!(parse("{\"a\":1,}").is_err());
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\\u0041\" : [ true , null , -1.5e2 ] } ").unwrap();
        assert_eq!(
            v.get("aA").unwrap(),
            &Json::Arr(vec![Json::Bool(true), Json::Null, Json::F64(-150.0)])
        );
    }
}
