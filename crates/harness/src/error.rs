//! Structured per-run errors.
//!
//! A failed run is data, not a crash: the pool isolates panics, the
//! simulator's watchdog surfaces [`SimFault`]s, and both are folded into
//! one [`RunError`] value that the batch API returns in the failed
//! request's slot while every other run completes normally.

use sms_sim::sim::SimFault;
use std::fmt;

/// Why one run of a batch produced no result. `Clone + Eq` so tests can
/// assert on exact failure values and batches can share one error across
/// deduplicated requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The run panicked; the panic was caught at the pool boundary.
    Panicked {
        /// Worker that ran the job.
        worker: usize,
        /// The panic payload, rendered to a string.
        message: String,
    },
    /// Watchdog: the run exceeded its cycle budget.
    CycleBudget {
        /// The budget in effect.
        limit: u64,
        /// Cycle at which the breach was detected.
        at_cycle: u64,
        /// Warp/stack state dump taken at abort time.
        snapshot: String,
    },
    /// Watchdog: no warp retired work for the configured window.
    Stalled {
        /// The forward-progress window in effect.
        stall_cycles: u64,
        /// Cycle at which the detector fired.
        at_cycle: u64,
        /// Warp/stack state dump taken at abort time.
        snapshot: String,
    },
    /// The simulator wedged with nothing issuable and no event pending.
    Deadlock {
        /// Cycle at which the simulator wedged.
        at_cycle: u64,
        /// Warp/stack state dump taken at abort time.
        snapshot: String,
    },
    /// The stack validator latched an invariant violation.
    Invariant {
        /// The lane whose transition tripped the check.
        lane: usize,
        /// Invariant class (snake_case, e.g. `borrow_chain`).
        kind: String,
        /// Human-readable description with the offending values.
        detail: String,
    },
}

impl RunError {
    /// Folds a simulator fault into a run error.
    pub fn from_fault(fault: SimFault) -> Self {
        match fault {
            SimFault::CycleBudget { limit, at_cycle, snapshot } => {
                RunError::CycleBudget { limit, at_cycle, snapshot }
            }
            SimFault::Stalled { stall_cycles, at_cycle, snapshot } => {
                RunError::Stalled { stall_cycles, at_cycle, snapshot }
            }
            SimFault::Deadlock { at_cycle, snapshot } => RunError::Deadlock { at_cycle, snapshot },
            SimFault::Invariant { violation } => RunError::Invariant {
                lane: violation.lane,
                kind: violation.kind.name().to_owned(),
                detail: violation.detail,
            },
        }
    }

    /// Stable snake_case tag (used in journal events).
    pub fn kind(&self) -> &'static str {
        match self {
            RunError::Panicked { .. } => "panic",
            RunError::CycleBudget { .. } => "cycle_budget",
            RunError::Stalled { .. } => "stalled",
            RunError::Deadlock { .. } => "deadlock",
            RunError::Invariant { .. } => "invariant",
        }
    }

    /// `true` for the watchdog aborts (journalled as `run_timeout`;
    /// everything else is `run_failed`).
    pub fn is_timeout(&self) -> bool {
        matches!(self, RunError::CycleBudget { .. } | RunError::Stalled { .. })
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Panicked { worker, message } => {
                write!(f, "run panicked on worker {worker}: {message}")
            }
            RunError::CycleBudget { limit, at_cycle, snapshot } => {
                write!(f, "cycle budget of {limit} exceeded at cycle {at_cycle}\n{snapshot}")
            }
            RunError::Stalled { stall_cycles, at_cycle, snapshot } => {
                write!(
                    f,
                    "no warp retired work for {stall_cycles} cycles (detected at cycle \
                     {at_cycle})\n{snapshot}"
                )
            }
            RunError::Deadlock { at_cycle, snapshot } => {
                write!(f, "simulator deadlock at cycle {at_cycle}\n{snapshot}")
            }
            RunError::Invariant { lane, kind, detail } => {
                write!(f, "stack invariant `{kind}` violated on lane {lane}: {detail}")
            }
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_conversion_keeps_diagnostics() {
        let fault = SimFault::CycleBudget { limit: 100, at_cycle: 101, snapshot: "s".into() };
        let err = RunError::from_fault(fault);
        assert_eq!(err, RunError::CycleBudget { limit: 100, at_cycle: 101, snapshot: "s".into() });
        assert!(err.is_timeout());
        assert_eq!(err.kind(), "cycle_budget");
        let err = RunError::Panicked { worker: 3, message: "boom".into() };
        assert!(!err.is_timeout());
        assert!(err.to_string().contains("boom"));
    }
}
