//! Deterministic fault injection for chaos testing the serving stack.
//!
//! A [`FaultPlan`] is parsed from the `SMS_FAULT` environment variable (or an
//! explicit spec string in tests) and threaded by hand into the components it
//! torments: the serve accept/respond paths and the result cache. Decisions
//! are **counter-based, not random**: each fault site owns an atomic counter
//! and fires when `(count + seed) % every == 0`. That makes the *number* of
//! injected faults a pure function of the spec and the amount of traffic,
//! regardless of thread interleaving — seeded chaos tests reproduce.
//!
//! Spec grammar (clauses separated by `;`, arguments by `,`):
//!
//! ```text
//! seed=<n>                  offset every site counter by n (default 0)
//! kill:jobs=<k>             hard-kill the server after k finished jobs
//! delay:every=<n>,ms=<m>    stall every nth response by m milliseconds
//! drop_conn:every=<n>       drop every nth accepted connection unanswered
//! drop_stream:every=<n>     cut every nth streamed response mid-body
//! cache_truncate:every=<n>  truncate every nth cache entry as it is written
//! cache_corrupt:every=<n>   flip bytes in every nth cache entry written
//! journal_torn              when kill fires, also tear the journal tail
//! ```
//!
//! Example: `SMS_FAULT="seed=7;kill:jobs=2;delay:every=3,ms=50"`.
//!
//! The entire layer is behind `Option<Arc<FaultPlan>>`: a `None` plan means
//! no fault code executes at all, so behaviour with injection off is
//! byte-identical to a build that never heard of this module.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What to do to a cache entry that is about to be written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheFault {
    /// Write only a prefix of the entry (simulates a torn write).
    Truncate,
    /// Flip bytes in the middle of the entry (simulates bit rot).
    Corrupt,
}

/// A parsed, seeded fault-injection plan. All counters are per-plan; share
/// one plan (via `Arc`) across every component that should observe the same
/// fault schedule.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    kill_after_jobs: Option<u64>,
    delay_every: Option<u64>,
    delay_ms: u64,
    drop_conn_every: Option<u64>,
    drop_stream_every: Option<u64>,
    cache_truncate_every: Option<u64>,
    cache_corrupt_every: Option<u64>,
    journal_torn: bool,

    jobs_done: AtomicU64,
    responses: AtomicU64,
    conns: AtomicU64,
    streams: AtomicU64,
    cache_writes: AtomicU64,
    killed: AtomicBool,
}

impl FaultPlan {
    /// Parse a spec string. Returns a human-readable error for malformed
    /// specs; an empty spec is valid and injects nothing.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan {
            seed: 0,
            kill_after_jobs: None,
            delay_every: None,
            delay_ms: 0,
            drop_conn_every: None,
            drop_stream_every: None,
            cache_truncate_every: None,
            cache_corrupt_every: None,
            journal_torn: false,
            jobs_done: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            conns: AtomicU64::new(0),
            streams: AtomicU64::new(0),
            cache_writes: AtomicU64::new(0),
            killed: AtomicBool::new(false),
        };
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (name, args) = match clause.split_once(':') {
                Some((n, a)) => (n.trim(), a.trim()),
                None => (clause, ""),
            };
            match name {
                "seed" => {
                    // `seed=<n>` has no `:` so it arrives as the whole name.
                    return Err(format!("fault clause `{clause}`: expected seed=<n>"));
                }
                _ if name.starts_with("seed=") => {
                    plan.seed = parse_u64("seed", &name[5..])?;
                }
                "kill" => {
                    plan.kill_after_jobs = Some(require_arg(name, args, "jobs")?);
                }
                "delay" => {
                    plan.delay_every = Some(require_arg(name, args, "every")?);
                    plan.delay_ms = require_arg(name, args, "ms")?;
                }
                "drop_conn" => {
                    plan.drop_conn_every = Some(require_arg(name, args, "every")?);
                }
                "drop_stream" => {
                    plan.drop_stream_every = Some(require_arg(name, args, "every")?);
                }
                "cache_truncate" => {
                    plan.cache_truncate_every = Some(require_arg(name, args, "every")?);
                }
                "cache_corrupt" => {
                    plan.cache_corrupt_every = Some(require_arg(name, args, "every")?);
                }
                "journal_torn" => {
                    plan.journal_torn = true;
                }
                other => {
                    return Err(format!(
                        "unknown fault clause `{other}` (expected kill, delay, drop_conn, \
                         drop_stream, cache_truncate, cache_corrupt, journal_torn, seed=<n>)"
                    ));
                }
            }
        }
        Ok(plan)
    }

    /// Read `SMS_FAULT` from the environment. Unset or empty means no plan;
    /// a malformed spec warns once and is ignored (fail open: a bad chaos
    /// spec must never alter production behaviour).
    pub fn from_env() -> Option<Arc<FaultPlan>> {
        let spec = std::env::var("SMS_FAULT").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        match FaultPlan::parse(&spec) {
            Ok(plan) => Some(Arc::new(plan)),
            Err(err) => {
                crate::log::warn(
                    "faultinject",
                    &format!("ignoring SMS_FAULT={spec:?}: {err}"),
                    &[("var", "SMS_FAULT")],
                );
                None
            }
        }
    }

    fn fires(&self, counter: &AtomicU64, every: Option<u64>) -> bool {
        let every = match every {
            Some(e) if e > 0 => e,
            _ => return false,
        };
        let n = counter.fetch_add(1, Ordering::Relaxed) + 1;
        (n + self.seed).is_multiple_of(every)
    }

    /// Accept path: should this freshly accepted connection be dropped on
    /// the floor without a response?
    pub fn should_drop_conn(&self) -> bool {
        self.fires(&self.conns, self.drop_conn_every)
    }

    /// Respond path: how long should this response stall before being
    /// written, if at all? (Creates deterministic stragglers for hedging.)
    pub fn respond_delay(&self) -> Option<Duration> {
        if self.fires(&self.responses, self.delay_every) {
            Some(Duration::from_millis(self.delay_ms))
        } else {
            None
        }
    }

    /// Streaming path: should this streamed response be cut mid-body?
    pub fn should_drop_stream(&self) -> bool {
        self.fires(&self.streams, self.drop_stream_every)
    }

    /// Called once per finished job. Returns `true` when the kill budget is
    /// exhausted and the process should die *now* (also latches
    /// [`FaultPlan::killed`]).
    pub fn on_job_finished(&self) -> bool {
        let Some(k) = self.kill_after_jobs else {
            return false;
        };
        let n = self.jobs_done.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= k {
            self.killed.store(true, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    /// Has the kill fault fired?
    pub fn killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }

    /// Cache write path: what, if anything, to do to the entry bytes.
    /// Truncation takes precedence when both clauses fire on the same write.
    pub fn cache_write_fault(&self) -> Option<CacheFault> {
        if self.cache_truncate_every.is_none() && self.cache_corrupt_every.is_none() {
            return None;
        }
        let n = self.cache_writes.fetch_add(1, Ordering::Relaxed) + 1;
        let hits = |every: Option<u64>| match every {
            Some(e) if e > 0 => (n + self.seed).is_multiple_of(e),
            _ => false,
        };
        if hits(self.cache_truncate_every) {
            Some(CacheFault::Truncate)
        } else if hits(self.cache_corrupt_every) {
            Some(CacheFault::Corrupt)
        } else {
            None
        }
    }

    /// Should the journal tail be torn when the kill fault fires?
    pub fn journal_torn(&self) -> bool {
        self.journal_torn
    }
}

fn parse_u64(what: &str, value: &str) -> Result<u64, String> {
    value
        .trim()
        .parse::<u64>()
        .map_err(|_| format!("fault clause `{what}`: `{value}` is not a non-negative integer"))
}

fn require_arg(clause: &str, args: &str, key: &str) -> Result<u64, String> {
    for pair in args.split(',') {
        let pair = pair.trim();
        if let Some((k, v)) = pair.split_once('=') {
            if k.trim() == key {
                return parse_u64(clause, v);
            }
        }
    }
    Err(format!("fault clause `{clause}`: missing required argument `{key}=<n>`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_injects_nothing() {
        let plan = FaultPlan::parse("").unwrap();
        for _ in 0..64 {
            assert!(!plan.should_drop_conn());
            assert!(plan.respond_delay().is_none());
            assert!(!plan.should_drop_stream());
            assert!(!plan.on_job_finished());
            assert!(plan.cache_write_fault().is_none());
        }
        assert!(!plan.killed());
        assert!(!plan.journal_torn());
    }

    #[test]
    fn parse_full_spec() {
        let plan = FaultPlan::parse(
            "seed=7; kill:jobs=5; delay:every=3,ms=50; drop_conn:every=4; \
             drop_stream:every=3; cache_truncate:every=2; cache_corrupt:every=2; journal_torn",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.kill_after_jobs, Some(5));
        assert_eq!(plan.delay_every, Some(3));
        assert_eq!(plan.delay_ms, 50);
        assert_eq!(plan.drop_conn_every, Some(4));
        assert_eq!(plan.drop_stream_every, Some(3));
        assert_eq!(plan.cache_truncate_every, Some(2));
        assert_eq!(plan.cache_corrupt_every, Some(2));
        assert!(plan.journal_torn());
    }

    #[test]
    fn malformed_specs_error() {
        assert!(FaultPlan::parse("kill").is_err());
        assert!(FaultPlan::parse("kill:jobs=x").is_err());
        assert!(FaultPlan::parse("delay:every=3").is_err());
        assert!(FaultPlan::parse("seed").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("frobnicate:every=1").is_err());
    }

    #[test]
    fn counter_firing_is_deterministic() {
        let plan = FaultPlan::parse("drop_conn:every=3").unwrap();
        let fired: Vec<bool> = (0..9).map(|_| plan.should_drop_conn()).collect();
        // 1-based counter, seed 0: fires on counts 3, 6, 9.
        assert_eq!(fired, vec![false, false, true, false, false, true, false, false, true]);
    }

    #[test]
    fn seed_offsets_the_schedule() {
        let plan = FaultPlan::parse("seed=1;drop_conn:every=3").unwrap();
        let fired: Vec<bool> = (0..6).map(|_| plan.should_drop_conn()).collect();
        // counts 1..: fires when (n + 1) % 3 == 0 => n = 2, 5.
        assert_eq!(fired, vec![false, true, false, false, true, false]);
    }

    #[test]
    fn kill_fires_once_budget_exhausted_and_latches() {
        let plan = FaultPlan::parse("kill:jobs=2").unwrap();
        assert!(!plan.on_job_finished());
        assert!(!plan.killed());
        assert!(plan.on_job_finished());
        assert!(plan.killed());
        // Stays killed for any further jobs.
        assert!(plan.on_job_finished());
        assert!(plan.killed());
    }

    #[test]
    fn delay_returns_configured_duration() {
        let plan = FaultPlan::parse("delay:every=2,ms=40").unwrap();
        assert!(plan.respond_delay().is_none());
        assert_eq!(plan.respond_delay(), Some(Duration::from_millis(40)));
        assert!(plan.respond_delay().is_none());
        assert_eq!(plan.respond_delay(), Some(Duration::from_millis(40)));
    }

    #[test]
    fn cache_faults_share_one_counter_truncate_wins() {
        let plan = FaultPlan::parse("cache_truncate:every=2;cache_corrupt:every=3").unwrap();
        let faults: Vec<Option<CacheFault>> = (0..6).map(|_| plan.cache_write_fault()).collect();
        assert_eq!(
            faults,
            vec![
                None,
                Some(CacheFault::Truncate), // n=2
                Some(CacheFault::Corrupt),  // n=3
                Some(CacheFault::Truncate), // n=4
                None,
                Some(CacheFault::Truncate), // n=6 (both fire; truncate wins)
            ]
        );
    }
}
