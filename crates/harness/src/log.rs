//! Structured JSONL logging for the serving tier.
//!
//! Every diagnostic the harness and the serve crates used to `eprintln!`
//! now goes through this module, so operational output is one JSON object
//! per line — machine-greppable, level-filtered, and correlatable with the
//! distributed-tracing spans (a log line can carry the same `trace` id a
//! span carries).
//!
//! ```text
//! {"ts_us":1754650000123456,"level":"warn","component":"fleet","msg":"backend down","backend":"127.0.0.1:9001"}
//! ```
//!
//! Environment control:
//!
//! * `SMS_LOG=<path>` — append log lines to `<path>` instead of stderr.
//! * `SMS_LOG_LEVEL=error|warn|info|debug` — drop lines below the
//!   threshold (default `info`).
//!
//! The logger is pure observation: it never touches journals, stats, or
//! cache entries, so arming or silencing it cannot change simulation
//! results. It is process-global and initialized lazily on first use;
//! tests that need determinism pass fields explicitly rather than racing
//! on env vars.

use crate::json::Json;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::sync::{Mutex, OnceLock, PoisonError};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The process cannot do what was asked of it.
    Error,
    /// Degraded but continuing (the classic "warning:" lines).
    Warn,
    /// Operational milestones (listening, draining, exiting).
    Info,
    /// High-volume diagnostics, off by default.
    Debug,
}

impl Level {
    /// The lowercase name used in log lines and `SMS_LOG_LEVEL`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

struct Sink {
    level: Level,
    /// `Some` when `SMS_LOG` redirects to a file; `None` writes stderr.
    file: Option<Mutex<File>>,
    /// Keys already emitted through [`warn_once`].
    once: Mutex<HashSet<String>>,
}

fn sink() -> &'static Sink {
    static SINK: OnceLock<Sink> = OnceLock::new();
    SINK.get_or_init(|| {
        let level = std::env::var("SMS_LOG_LEVEL")
            .ok()
            .and_then(|s| Level::parse(&s))
            .unwrap_or(Level::Info);
        let file = std::env::var("SMS_LOG")
            .ok()
            .filter(|p| !p.trim().is_empty())
            .and_then(|p| OpenOptions::new().create(true).append(true).open(p).ok())
            .map(Mutex::new);
        Sink { level, file, once: Mutex::new(HashSet::new()) }
    })
}

/// Whether a line at `level` would be emitted (callers can skip building
/// expensive fields when it would not).
pub fn enabled(level: Level) -> bool {
    level <= sink().level
}

fn now_us() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Emits one structured log line. `fields` are appended to the object in
/// order after the fixed `ts_us`/`level`/`component`/`msg` prefix; use a
/// `("trace", <hex id>)` field to correlate a line with a span.
pub fn log(level: Level, component: &str, msg: &str, fields: &[(&str, &str)]) {
    let s = sink();
    if level > s.level {
        return;
    }
    let own = |v: &str| v.to_owned();
    let mut pairs = vec![
        (own("ts_us"), Json::U64(now_us())),
        (own("level"), Json::Str(own(level.as_str()))),
        (own("component"), Json::Str(own(component))),
        (own("msg"), Json::Str(own(msg))),
    ];
    for (k, v) in fields {
        pairs.push((own(k), Json::Str(own(v))));
    }
    let line = Json::Obj(pairs).to_string();
    match &s.file {
        Some(f) => {
            let mut f = f.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = writeln!(f, "{line}");
            let _ = f.flush();
        }
        None => eprintln!("{line}"),
    }
}

/// [`log`] at [`Level::Error`].
pub fn error(component: &str, msg: &str, fields: &[(&str, &str)]) {
    log(Level::Error, component, msg, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(component: &str, msg: &str, fields: &[(&str, &str)]) {
    log(Level::Warn, component, msg, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(component: &str, msg: &str, fields: &[(&str, &str)]) {
    log(Level::Info, component, msg, fields);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(component: &str, msg: &str, fields: &[(&str, &str)]) {
    log(Level::Debug, component, msg, fields);
}

/// Emits a warning at most once per process for a given `key` — the
/// pattern the cache's degrade/quarantine paths need so a hot loop cannot
/// flood the log with the same line.
pub fn warn_once(key: &str, component: &str, msg: &str, fields: &[(&str, &str)]) {
    let s = sink();
    {
        let mut once = s.once.lock().unwrap_or_else(PoisonError::into_inner);
        if !once.insert(key.to_owned()) {
            return;
        }
    }
    warn(component, msg, fields);
}

/// Parses a positive integer from an env var. A malformed value is logged
/// as a warning — naming the variable and the offending value — and
/// treated as unset, so one typo degrades to defaults instead of killing
/// an hour-scale sweep at startup. Shared by the harness, client, fleet,
/// and server configs (one helper, one message).
pub fn env_positive(var: &str) -> Option<usize> {
    let raw = std::env::var(var).ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => {
            warn(
                "env",
                &format!("{var}: expected a positive integer, got `{raw}` — ignoring"),
                &[("var", var)],
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse(" debug "), Some(Level::Debug));
        assert_eq!(Level::parse("loud"), None);
    }

    #[test]
    fn env_positive_accepts_and_rejects() {
        // Distinct var names: env is process-global and tests run in
        // parallel.
        std::env::set_var("SMS_LOG_TEST_OK", "12");
        assert_eq!(env_positive("SMS_LOG_TEST_OK"), Some(12));
        std::env::set_var("SMS_LOG_TEST_BAD", "zero");
        assert_eq!(env_positive("SMS_LOG_TEST_BAD"), None);
        std::env::set_var("SMS_LOG_TEST_ZERO", "0");
        assert_eq!(env_positive("SMS_LOG_TEST_ZERO"), None);
        assert_eq!(env_positive("SMS_LOG_TEST_UNSET_NEVER"), None);
    }

    #[test]
    fn log_lines_are_json_objects() {
        // Render through the same code path `log` uses, without racing on
        // the global sink's env-derived config.
        let own = |v: &str| v.to_owned();
        let pairs = vec![
            (own("ts_us"), Json::U64(now_us())),
            (own("level"), Json::Str(own("warn"))),
            (own("component"), Json::Str(own("test"))),
            (own("msg"), Json::Str(own("quoted \"msg\"\n"))),
            (own("trace"), Json::Str(own("00c0ffee5eed1234"))),
        ];
        let line = Json::Obj(pairs).to_string();
        let doc = crate::json::parse(&line).unwrap();
        assert_eq!(doc.get("level").unwrap().as_str(), Some("warn"));
        assert_eq!(doc.get("trace").unwrap().as_str(), Some("00c0ffee5eed1234"));
    }

    #[test]
    fn warn_once_dedupes_on_key() {
        // The global sink dedupes; at minimum the second call must return
        // without panicking and the key must stay recorded.
        warn_once("test-dedupe-key", "test", "only once", &[]);
        warn_once("test-dedupe-key", "test", "only once", &[]);
        let s = sink();
        let once = s.once.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(once.contains("test-dedupe-key"));
    }
}
