//! `sms-harness`: the experiment-execution subsystem.
//!
//! Every paper figure/table is a sweep of `(scene, stack config)` runs of
//! the deterministic cycle simulator. This crate turns those sweeps from
//! serial loops into scheduled batches:
//!
//! * **Deduplication** — identical requests in one batch run once (the
//!   `RB_8` baseline appears in nearly every figure's matrix).
//! * **Parallel execution** — a `std::thread` worker pool sized to the
//!   available cores (`SMS_JOBS=N` overrides), with each scene's
//!   [`PreparedScene`] built once and shared across workers via [`Arc`].
//! * **Result caching** — a content-addressed on-disk cache
//!   ([`ResultCache`]) makes re-running a figure harness a set of cache
//!   hits (`SMS_NO_CACHE=1` bypasses it).
//! * **Observability** — a structured JSONL run [`Journal`] plus an
//!   end-of-batch [`BatchSummary`].
//!
//! Results are merged in *request order* regardless of completion order,
//! and the simulator is deterministic, so a parallel batch is exactly equal
//! to the serial loop it replaces (`tests/parallel_vs_serial.rs` asserts
//! this).
//!
//! ```no_run
//! use sms_harness::{Harness, RunRequest};
//! use sms_sim::config::RenderConfig;
//! use sms_sim::rtunit::StackConfig;
//! use sms_sim::scene::SceneId;
//!
//! let harness = Harness::from_env();
//! let render = RenderConfig::fast();
//! let reqs = vec![
//!     RunRequest::new(SceneId::Ship, StackConfig::baseline8(), render),
//!     RunRequest::new(SceneId::Ship, StackConfig::sms_default(), render),
//! ];
//! let (results, summary) = harness.run_batch(&reqs);
//! eprintln!("{summary}");
//! assert_eq!(results[0].scene, SceneId::Ship);
//! ```

pub mod cache;
pub mod journal;
pub mod json;
pub mod pool;

pub use cache::{CacheKey, ResultCache, SIM_VERSION_SALT};
pub use journal::{Event, Journal};

use sms_sim::config::RenderConfig;
use sms_sim::experiments::{run_prepared, RunResult};
use sms_sim::gpu::GpuConfig;
use sms_sim::render::PreparedScene;
use sms_sim::rtunit::StackConfig;
use sms_sim::scene::SceneId;
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One `(scene, stack, gpu, render)` simulation job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunRequest {
    /// The scene to simulate.
    pub scene: SceneId,
    /// The traversal-stack architecture under test.
    pub stack: StackConfig,
    /// GPU parameters; the stack's shared-memory carveout is applied on
    /// top, exactly as in `experiments::run_prepared`.
    pub gpu: GpuConfig,
    /// Workload sizing.
    pub render: RenderConfig,
}

impl RunRequest {
    /// A request on the Table I GPU.
    pub fn new(scene: SceneId, stack: StackConfig, render: RenderConfig) -> Self {
        RunRequest { scene, stack, gpu: GpuConfig::default(), render }
    }

    /// The same request with an explicit GPU configuration (L1 sweeps etc.).
    pub fn with_gpu(mut self, gpu: GpuConfig) -> Self {
        self.gpu = gpu;
        self
    }

    fn workload_label(&self) -> String {
        let (w, h, spp) = self.render.workload(self.scene);
        format!("{w}x{h}x{spp}")
    }
}

/// Construction-time knobs for a [`Harness`].
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Worker threads for the pool. Defaults to the available parallelism.
    pub workers: usize,
    /// Result-cache directory; `None` disables caching entirely.
    pub cache_dir: Option<PathBuf>,
    /// JSONL journal sink; `None` keeps the journal in memory only.
    pub journal_path: Option<PathBuf>,
    /// Simulator version salt for cache keys.
    pub salt: u32,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            workers: default_workers(),
            cache_dir: Some(default_cache_dir()),
            journal_path: None,
            salt: SIM_VERSION_SALT,
        }
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The workspace-level `target/sms-cache`, anchored at compile time so
/// every binary (tests, benches, examples) shares one cache no matter
/// which package directory cargo runs it from.
fn default_cache_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/sms-cache"))
}

impl HarnessConfig {
    /// Reads the environment knobs:
    ///
    /// * `SMS_JOBS=N` — worker-thread count (default: available cores).
    /// * `SMS_NO_CACHE=1` — disable the result cache.
    /// * `SMS_CACHE_DIR=path` — cache directory (default `target/sms-cache`).
    /// * `SMS_JOURNAL=path` — append JSONL events to `path`.
    pub fn from_env() -> Self {
        let mut cfg = HarnessConfig::default();
        if let Ok(jobs) = std::env::var("SMS_JOBS") {
            cfg.workers = jobs
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("SMS_JOBS: expected a positive integer, got `{jobs}`"));
            assert!(cfg.workers > 0, "SMS_JOBS must be at least 1");
        }
        if std::env::var("SMS_NO_CACHE").is_ok_and(|v| v == "1") {
            cfg.cache_dir = None;
        } else if let Ok(dir) = std::env::var("SMS_CACHE_DIR") {
            cfg.cache_dir = Some(PathBuf::from(dir));
        }
        if let Ok(path) = std::env::var("SMS_JOURNAL") {
            cfg.journal_path = Some(PathBuf::from(path));
        }
        cfg
    }
}

/// End-of-batch accounting, also emitted as the journal's `batch_end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSummary {
    /// Requests submitted (before deduplication).
    pub jobs: usize,
    /// Distinct jobs after deduplication.
    pub unique_jobs: usize,
    /// Jobs served from the result cache.
    pub cache_hits: usize,
    /// Jobs that ran the simulator.
    pub cache_misses: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Batch wall-clock time.
    pub wall: Duration,
    /// Total simulated cycles across the deduplicated jobs.
    pub sim_cycles: u64,
}

impl BatchSummary {
    /// Aggregate throughput in deduplicated runs per wall-clock second.
    pub fn runs_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.unique_jobs as f64 / secs
        } else {
            0.0
        }
    }

    /// Aggregate throughput in simulated cycles per wall-clock second.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.sim_cycles as f64 / secs
        } else {
            0.0
        }
    }
}

impl fmt::Display for BatchSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} jobs ({} unique) on {} workers: {} cache hits, {} simulated, {:.2}s \
             ({:.1} runs/s, {:.2e} sim-cycles/s)",
            self.jobs,
            self.unique_jobs,
            self.workers,
            self.cache_hits,
            self.cache_misses,
            self.wall.as_secs_f64(),
            self.runs_per_sec(),
            self.sim_cycles_per_sec()
        )
    }
}

/// The experiment-execution engine. Cheap to construct; hold one per
/// process and feed it batches.
pub struct Harness {
    workers: usize,
    cache: Option<ResultCache>,
    journal: Journal,
}

impl Harness {
    /// A harness from explicit configuration.
    pub fn new(config: HarnessConfig) -> Self {
        Harness {
            workers: config.workers.max(1),
            cache: config.cache_dir.map(|dir| ResultCache::with_salt(dir, config.salt)),
            journal: Journal::new(config.journal_path),
        }
    }

    /// A harness honouring `SMS_JOBS`, `SMS_NO_CACHE`, `SMS_CACHE_DIR` and
    /// `SMS_JOURNAL` (see [`HarnessConfig::from_env`]).
    pub fn from_env() -> Self {
        Harness::new(HarnessConfig::from_env())
    }

    /// The run journal (in-memory event stream).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The result cache, if enabled.
    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_ref()
    }

    /// Executes a batch. Identical requests are deduplicated, scenes are
    /// prepared once each, cache hits skip simulation — and the returned
    /// results are positionally aligned with `requests`, with stats equal
    /// to what the serial `experiments` loops produce.
    pub fn run_batch(&self, requests: &[RunRequest]) -> (Vec<RunResult>, BatchSummary) {
        let t0 = Instant::now();

        // 1. Dedupe on the canonical cache key (also the identity used for
        //    the on-disk cache, so "same key" always means "same stats").
        let keyer = match &self.cache {
            Some(c) => c.clone(),
            None => ResultCache::new(PathBuf::new()), // keys only, no I/O
        };
        let mut job_of_request = Vec::with_capacity(requests.len());
        let mut jobs: Vec<(RunRequest, CacheKey)> = Vec::new();
        let mut seen: HashMap<String, usize> = HashMap::new();
        for req in requests {
            let key = keyer.key(req);
            let job = match seen.get(&key.canonical) {
                Some(&j) => j,
                None => {
                    jobs.push((*req, key.clone()));
                    seen.insert(key.canonical, jobs.len() - 1);
                    jobs.len() - 1
                }
            };
            job_of_request.push(job);
        }

        self.journal.record(Event::BatchStart {
            jobs: requests.len(),
            unique: jobs.len(),
            workers: self.workers,
        });
        for (j, (req, _)) in jobs.iter().enumerate() {
            self.journal.record(Event::JobQueued {
                job: j,
                scene: req.scene.name().to_owned(),
                config: req.stack.label(),
                workload: req.workload_label(),
            });
        }

        // 2. Probe the cache on the scheduler thread (tiny JSON reads).
        let mut slots: Vec<Option<sms_sim::gpu::SimStats>> = vec![None; jobs.len()];
        let mut hits = 0usize;
        if let Some(cache) = &self.cache {
            for (j, (_, key)) in jobs.iter().enumerate() {
                let probe_start = Instant::now();
                if let Some(stats) = cache.load(key) {
                    hits += 1;
                    self.journal.record(Event::JobFinished {
                        job: j,
                        worker: None,
                        cache_hit: true,
                        cycles: stats.cycles,
                        duration_us: probe_start.elapsed().as_micros() as u64,
                    });
                    slots[j] = Some(stats);
                }
            }
        }
        let misses: Vec<usize> = (0..jobs.len()).filter(|&j| slots[j].is_none()).collect();

        // 3. Prepare each distinct (scene, render) once, in parallel.
        let mut scene_keys: Vec<(SceneId, RenderConfig)> = Vec::new();
        let mut scene_of_miss = Vec::with_capacity(misses.len());
        for &j in &misses {
            let req = &jobs[j].0;
            let key = (req.scene, req.render);
            let idx = scene_keys.iter().position(|&k| k == key).unwrap_or_else(|| {
                scene_keys.push(key);
                scene_keys.len() - 1
            });
            scene_of_miss.push(idx);
        }
        let prepared: Vec<Arc<PreparedScene>> =
            pool::run_indexed(self.workers, scene_keys.len(), |i, _| {
                let (id, render) = scene_keys[i];
                Arc::new(PreparedScene::build(id, &render))
            });

        // 4. Simulate the misses on the pool; slot by job id, so merge
        //    order is deterministic regardless of completion order.
        let journal = &self.journal;
        let cache = &self.cache;
        let sim_stats = pool::run_indexed(self.workers, misses.len(), |i, worker| {
            let job = misses[i];
            let (req, key) = &jobs[job];
            journal.record(Event::JobStarted { job, worker });
            let job_start = Instant::now();
            let result = run_prepared(&prepared[scene_of_miss[i]], req.stack, req.gpu, &req.render);
            if let Some(cache) = cache {
                cache.store(key, &result.stats);
            }
            journal.record(Event::JobFinished {
                job,
                worker: Some(worker),
                cache_hit: false,
                cycles: result.stats.cycles,
                duration_us: job_start.elapsed().as_micros() as u64,
            });
            result.stats
        });
        for (&j, stats) in misses.iter().zip(sim_stats) {
            slots[j] = Some(stats);
        }

        let sim_cycles: u64 = slots.iter().flatten().map(|s| s.cycles).sum();
        let summary = BatchSummary {
            jobs: requests.len(),
            unique_jobs: jobs.len(),
            cache_hits: hits,
            cache_misses: misses.len(),
            workers: self.workers,
            wall: t0.elapsed(),
            sim_cycles,
        };
        self.journal.record(Event::BatchEnd {
            jobs: jobs.len(),
            cache_hits: hits,
            cache_misses: misses.len(),
            duration_us: summary.wall.as_micros() as u64,
            sim_cycles,
        });

        let results = requests
            .iter()
            .zip(&job_of_request)
            .map(|(req, &j)| RunResult {
                scene: req.scene,
                stack: req.stack,
                stats: slots[j].expect("every job resolved"),
            })
            .collect();
        (results, summary)
    }

    /// Runs every `(scene, config)` pair on the Table I GPU; results are
    /// grouped per scene in the order given — the parallel, cached
    /// equivalent of `sms_sim::experiments::run_suite`.
    pub fn run_suite(
        &self,
        scenes: &[SceneId],
        configs: &[StackConfig],
        render: &RenderConfig,
    ) -> (Vec<Vec<RunResult>>, BatchSummary) {
        let requests: Vec<RunRequest> = scenes
            .iter()
            .flat_map(|&id| configs.iter().map(move |&stack| RunRequest::new(id, stack, *render)))
            .collect();
        let (flat, summary) = self.run_batch(&requests);
        let grouped = flat.chunks(configs.len().max(1)).map(<[RunResult]>::to_vec).collect();
        (grouped, summary)
    }

    /// Builds the scenes (BVH included) on the worker pool, one build per
    /// distinct scene; duplicates share the same [`Arc`]. Returned in input
    /// order.
    pub fn prepare_scenes(
        &self,
        scenes: &[SceneId],
        render: &RenderConfig,
    ) -> Vec<Arc<PreparedScene>> {
        let mut distinct: Vec<SceneId> = Vec::new();
        for &id in scenes {
            if !distinct.contains(&id) {
                distinct.push(id);
            }
        }
        let built: Vec<Arc<PreparedScene>> =
            pool::run_indexed(self.workers, distinct.len(), |i, _| {
                Arc::new(PreparedScene::build(distinct[i], render))
            });
        scenes
            .iter()
            .map(|id| {
                let i = distinct.iter().position(|d| d == id).expect("collected above");
                Arc::clone(&built[i])
            })
            .collect()
    }
}
