//! `sms-harness`: the experiment-execution subsystem.
//!
//! Every paper figure/table is a sweep of `(scene, stack config)` runs of
//! the deterministic cycle simulator. This crate turns those sweeps from
//! serial loops into scheduled batches:
//!
//! * **Deduplication** — identical requests in one batch run once (the
//!   `RB_8` baseline appears in nearly every figure's matrix).
//! * **Parallel execution** — a `std::thread` worker pool sized to the
//!   available cores (`SMS_JOBS=N` overrides), with each scene's
//!   [`PreparedScene`] built once and shared across workers via [`Arc`].
//! * **Result caching** — a content-addressed on-disk cache
//!   ([`ResultCache`]) makes re-running a figure harness a set of cache
//!   hits (`SMS_NO_CACHE=1` bypasses it).
//! * **Observability** — a structured JSONL run [`Journal`] plus an
//!   end-of-batch [`BatchSummary`].
//!
//! Results are merged in *request order* regardless of completion order,
//! and the simulator is deterministic, so a parallel batch is exactly equal
//! to the serial loop it replaces (`tests/parallel_vs_serial.rs` asserts
//! this).
//!
//! ```no_run
//! use sms_harness::{Harness, RunRequest};
//! use sms_sim::config::RenderConfig;
//! use sms_sim::rtunit::StackConfig;
//! use sms_sim::scene::SceneId;
//!
//! let harness = Harness::from_env();
//! let render = RenderConfig::fast();
//! let reqs = vec![
//!     RunRequest::new(SceneId::Ship, StackConfig::baseline8(), render),
//!     RunRequest::new(SceneId::Ship, StackConfig::sms_default(), render),
//! ];
//! let (results, summary) = harness.run_batch(&reqs);
//! eprintln!("{summary}");
//! assert_eq!(results[0].scene, SceneId::Ship);
//! ```

// A failed sweep job must surface as a `RunError`, never abort the
// process: no unwrap/expect in library code (tests are exempt via
// clippy.toml).
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod cache;
pub mod error;
pub mod faultinject;
pub mod journal;
pub mod json;
pub mod log;
pub mod pool;
pub mod resume;
pub mod trace;

pub use cache::{CacheKey, ResultCache, SIM_VERSION_SALT};
pub use error::RunError;
pub use faultinject::{CacheFault, FaultPlan};
pub use journal::{Event, Journal};
pub use pool::JobPanic;
pub use resume::ResumeState;
pub use sms_sim::sim::{RunLimits, SimFault};
pub use trace::{TraceContext, TRACE_HEADER};

use sms_metrics::HistSummary;
use sms_sim::config::RenderConfig;
use sms_sim::experiments::{try_run_prepared, RunResult};
use sms_sim::gpu::{GpuConfig, StallBreakdown};
use sms_sim::render::PreparedScene;
use sms_sim::rtunit::StackConfig;
use sms_sim::rtunit::StackMetrics;
use sms_sim::scene::SceneId;
use sms_sim::trace::TraceSpec;
use sms_sim::MetricsReport;
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One `(scene, stack, gpu, render)` simulation job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunRequest {
    /// The scene to simulate.
    pub scene: SceneId,
    /// The traversal-stack architecture under test.
    pub stack: StackConfig,
    /// GPU parameters; the stack's shared-memory carveout is applied on
    /// top, exactly as in `experiments::run_prepared`.
    pub gpu: GpuConfig,
    /// Workload sizing.
    pub render: RenderConfig,
    /// Per-request watchdog limits and validation, layered over the
    /// harness-wide limits field by field. Deliberately *not* part of the
    /// cache key: limits and validation never change simulation results,
    /// only whether a run is allowed to finish.
    pub limits: RunLimits,
}

impl RunRequest {
    /// A request on the Table I GPU.
    pub fn new(scene: SceneId, stack: StackConfig, render: RenderConfig) -> Self {
        RunRequest { scene, stack, gpu: GpuConfig::default(), render, limits: RunLimits::none() }
    }

    /// The same request with an explicit GPU configuration (L1 sweeps etc.).
    pub fn with_gpu(mut self, gpu: GpuConfig) -> Self {
        self.gpu = gpu;
        self
    }

    /// The same request with per-run watchdog limits / validation.
    pub fn with_limits(mut self, limits: RunLimits) -> Self {
        self.limits = limits;
        self
    }

    fn workload_label(&self) -> String {
        let (w, h, spp) = self.render.workload(self.scene);
        format!("{w}x{h}x{spp}")
    }
}

/// Construction-time knobs for a [`Harness`].
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Worker threads for the pool. Defaults to the available parallelism.
    pub workers: usize,
    /// Result-cache directory; `None` disables caching entirely.
    pub cache_dir: Option<PathBuf>,
    /// JSONL journal sink; `None` keeps the journal in memory only.
    pub journal_path: Option<PathBuf>,
    /// Simulator version salt for cache keys.
    pub salt: u32,
    /// Harness-wide watchdog limits / validation, applied to every run
    /// (per-request limits take precedence field by field).
    pub limits: RunLimits,
    /// Bounded-retry count for transient cache I/O.
    pub retries: u32,
    /// A prior run's journal to resume from; its completed runs are served
    /// without re-execution.
    pub resume: Option<PathBuf>,
    /// Build scene BVHs with the parallel HLBVH builder (`SMS_HLBVH=1`)
    /// instead of the default median-split builder. HLBVH trees differ
    /// from the default trees, so HLBVH batches bypass the result cache
    /// and resume replay in both directions (no probe, no store) — cached
    /// default-path stats stay byte-identical.
    pub hlbvh: bool,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            workers: default_workers(),
            cache_dir: Some(default_cache_dir()),
            journal_path: None,
            salt: SIM_VERSION_SALT,
            limits: RunLimits::none(),
            retries: cache::DEFAULT_RETRIES,
            resume: None,
            hlbvh: false,
        }
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The workspace-level `target/sms-cache`, anchored at compile time so
/// every binary (tests, benches, examples) shares one cache no matter
/// which package directory cargo runs it from.
fn default_cache_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/sms-cache"))
}

// The positive-integer env parser lives in `log` (one shared helper for
// harness, client, fleet, and server; its warning goes through the
// structured logger).
use crate::log::env_positive;

impl HarnessConfig {
    /// Reads the environment knobs:
    ///
    /// * `SMS_JOBS=N` — worker-thread count (default: available cores).
    /// * `SMS_NO_CACHE=1` — disable the result cache.
    /// * `SMS_CACHE_DIR=path` — cache directory (default `target/sms-cache`).
    /// * `SMS_JOURNAL=path` — append JSONL events to `path`.
    /// * `SMS_MAX_CYCLES=N` / `SMS_STALL_CYCLES=N` — per-run watchdog.
    /// * `SMS_VALIDATE=1` — enable the stack invariant validator.
    /// * `SMS_BREAKDOWN=1` — arm stall attribution on every run (armed
    ///   jobs always simulate; see [`Harness::try_run_batch`]).
    /// * `SMS_METRICS=1` — arm histogram/time-series telemetry on every
    ///   run (armed jobs always simulate, like `SMS_BREAKDOWN`); with
    ///   `SMS_METRICS_OUT` / `SMS_METRICS_CSV` each job also writes its
    ///   Prometheus / CSV export.
    /// * `SMS_RETRIES=N` — bounded retries for transient cache I/O.
    /// * `SMS_RESUME=path` — resume completed runs from a prior journal.
    /// * `SMS_HLBVH=1` — build scene BVHs with the parallel HLBVH builder
    ///   (bypasses the cache; see [`HarnessConfig::hlbvh`]).
    ///
    /// Malformed numeric values warn (naming the variable and value) and
    /// fall back to the default instead of panicking.
    pub fn from_env() -> Self {
        let mut cfg = HarnessConfig::default();
        if let Some(jobs) = env_positive("SMS_JOBS") {
            cfg.workers = jobs;
        }
        if std::env::var("SMS_NO_CACHE").is_ok_and(|v| v == "1") {
            cfg.cache_dir = None;
        } else if let Ok(dir) = std::env::var("SMS_CACHE_DIR") {
            cfg.cache_dir = Some(PathBuf::from(dir));
        }
        if let Ok(path) = std::env::var("SMS_JOURNAL") {
            cfg.journal_path = Some(PathBuf::from(path));
        }
        cfg.limits = RunLimits::from_env();
        if let Ok(raw) = std::env::var("SMS_RETRIES") {
            match raw.trim().parse::<u32>() {
                Ok(n) => cfg.retries = n, // 0 = no retries, valid
                Err(_) => log::warn(
                    "env",
                    &format!(
                        "SMS_RETRIES: expected a non-negative integer, got `{raw}` — ignoring"
                    ),
                    &[("var", "SMS_RETRIES")],
                ),
            }
        }
        if let Ok(path) = std::env::var("SMS_RESUME") {
            if !path.trim().is_empty() {
                cfg.resume = Some(PathBuf::from(path));
            }
        }
        if std::env::var("SMS_HLBVH").is_ok_and(|v| v == "1") {
            cfg.hlbvh = true;
        }
        cfg
    }
}

/// Wall time spent building one scene's BVH during batch preparation —
/// the build-throughput counterpart to the runs/s plumbing, carried on
/// [`BatchSummary::builds`] and the journal's `batch_end` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SceneBuild {
    /// Scene name (paper spelling, e.g. `SHIP`).
    pub scene: String,
    /// Primitive count the builder consumed.
    pub prims: u64,
    /// BVH build wall time (binary build + collapse + flatten), µs.
    pub build_us: u64,
}

impl SceneBuild {
    /// Build throughput in primitives per second (0 for a 0µs build).
    pub fn prims_per_sec(&self) -> f64 {
        if self.build_us > 0 {
            self.prims as f64 / (self.build_us as f64 / 1e6)
        } else {
            0.0
        }
    }
}

/// End-of-batch accounting, also emitted as the journal's `batch_end`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSummary {
    /// Requests submitted (before deduplication).
    pub jobs: usize,
    /// Distinct jobs after deduplication.
    pub unique_jobs: usize,
    /// Jobs served from the result cache.
    pub cache_hits: usize,
    /// Jobs replayed from a resume journal (`SMS_RESUME`).
    pub resumed: usize,
    /// Jobs that ran the simulator.
    pub cache_misses: usize,
    /// Jobs that failed or were aborted by the watchdog.
    pub failed: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Batch wall-clock time.
    pub wall: Duration,
    /// Total simulated cycles across the deduplicated jobs.
    pub sim_cycles: u64,
    /// Aggregated stall attribution over the jobs that produced one
    /// (`SMS_BREAKDOWN` / `SMS_TRACE`, or per-request limits). `None` when
    /// no job was armed.
    pub breakdown: Option<StallBreakdown>,
    /// Aggregated stack-telemetry digest over the jobs that produced a
    /// metrics report (`SMS_METRICS`, or per-request limits). Per-job
    /// histograms are merged first, then summarized — so the percentiles
    /// are batch-wide, not averages of per-job percentiles. `None` when no
    /// job was armed.
    pub metrics: Option<BatchMetrics>,
    /// Per-scene BVH build wall times for the scenes this batch prepared
    /// (empty when every job was a cache hit or resume replay).
    pub builds: Vec<SceneBuild>,
}

/// Batch-wide digest of the merged [`StackMetrics`] histograms: the
/// distributional headlines (`p50`/`p95`/`p99`) that make a journal line
/// or summary printout useful without shipping full bucket vectors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchMetrics {
    /// Traversal-stack depth observed at every push.
    pub stack_depth: HistSummary,
    /// Per-ray RT-unit residency latency in cycles.
    pub ray_latency: HistSummary,
    /// Total stack entries spilled to the global backing stack.
    pub spills: u64,
    /// Total stack entries reloaded from the global backing stack.
    pub reloads: u64,
}

impl BatchMetrics {
    /// Digests merged per-job stack metrics into the batch summary form.
    pub fn from_stacks(stacks: &StackMetrics) -> Self {
        let total = |h: &sms_metrics::Histogram| u64::try_from(h.sum()).unwrap_or(u64::MAX);
        BatchMetrics {
            stack_depth: stacks.depth_at_push.summary(),
            ray_latency: stacks.ray_latency.summary(),
            spills: total(&stacks.ray_spills),
            reloads: total(&stacks.ray_reloads),
        }
    }
}

impl BatchSummary {
    /// Aggregate throughput in deduplicated runs per wall-clock second.
    pub fn runs_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.unique_jobs as f64 / secs
        } else {
            0.0
        }
    }

    /// Aggregate throughput in simulated cycles per wall-clock second.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.sim_cycles as f64 / secs
        } else {
            0.0
        }
    }
}

impl fmt::Display for BatchSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} jobs ({} unique) on {} workers: {} cache hits, {} resumed, {} simulated, \
             {} failed, {:.2}s ({:.1} runs/s, {:.2e} sim-cycles/s)",
            self.jobs,
            self.unique_jobs,
            self.workers,
            self.cache_hits,
            self.resumed,
            self.cache_misses,
            self.failed,
            self.wall.as_secs_f64(),
            self.runs_per_sec(),
            self.sim_cycles_per_sec()
        )
    }
}

/// The experiment-execution engine. Cheap to construct; hold one per
/// process and feed it batches.
pub struct Harness {
    workers: usize,
    cache: Option<ResultCache>,
    journal: Journal,
    limits: RunLimits,
    resume: Option<ResumeState>,
    hlbvh: bool,
}

impl Harness {
    /// A harness from explicit configuration.
    pub fn new(config: HarnessConfig) -> Self {
        Harness {
            workers: config.workers.max(1),
            cache: config
                .cache_dir
                .map(|dir| ResultCache::with_salt(dir, config.salt).with_retries(config.retries)),
            journal: Journal::new(config.journal_path),
            limits: config.limits,
            resume: config.resume.map(|p| ResumeState::load(&p)),
            hlbvh: config.hlbvh,
        }
    }

    /// A harness honouring `SMS_JOBS`, `SMS_NO_CACHE`, `SMS_CACHE_DIR`,
    /// `SMS_JOURNAL`, `SMS_MAX_CYCLES`, `SMS_STALL_CYCLES`, `SMS_VALIDATE`,
    /// `SMS_RETRIES` and `SMS_RESUME` (see [`HarnessConfig::from_env`]).
    pub fn from_env() -> Self {
        Harness::new(HarnessConfig::from_env())
    }

    /// The run journal (in-memory event stream).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The result cache, if enabled.
    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_ref()
    }

    /// Executes a batch. Identical requests are deduplicated, scenes are
    /// prepared once each, cache hits skip simulation — and the returned
    /// results are positionally aligned with `requests`, with stats equal
    /// to what the serial `experiments` loops produce.
    ///
    /// # Panics
    ///
    /// Panics on the first failed run, like the serial loop it replaces
    /// would. Sweeps that must survive individual failures use
    /// [`Harness::try_run_batch`].
    pub fn run_batch(&self, requests: &[RunRequest]) -> (Vec<RunResult>, BatchSummary) {
        let (results, summary) = self.try_run_batch(requests);
        let results = results
            .into_iter()
            .enumerate()
            .map(|(i, r)| match r {
                Ok(v) => v,
                Err(e) => panic!("batch request {i} failed: {e}"),
            })
            .collect();
        (results, summary)
    }

    /// Fault-tolerant batch execution: every request yields either its
    /// result or the [`RunError`] that stopped it, positionally aligned
    /// with `requests`. One panicking, livelocked or invariant-violating
    /// run cannot take down the rest of the batch — it is journalled as
    /// `run_failed` / `run_timeout` and isolated to its own slot.
    pub fn try_run_batch(
        &self,
        requests: &[RunRequest],
    ) -> (Vec<Result<RunResult, RunError>>, BatchSummary) {
        let t0 = Instant::now();

        // 1. Dedupe on the canonical cache key (also the identity used for
        //    the on-disk cache, so "same key" always means "same stats") —
        //    plus the limits, which are *not* in the cache key but can
        //    change how a job ends (aborted vs completed), so requests
        //    differing only in limits stay distinct jobs.
        let keyer = match &self.cache {
            Some(c) => c.clone(),
            None => ResultCache::new(PathBuf::new()), // keys only, no I/O
        };
        let mut job_of_request = Vec::with_capacity(requests.len());
        let mut jobs: Vec<(RunRequest, CacheKey)> = Vec::new();
        let mut seen: HashMap<String, usize> = HashMap::new();
        for req in requests {
            let key = keyer.key(req);
            let identity = format!("{:?}|{}", req.limits, key.canonical);
            let job = match seen.get(&identity) {
                Some(&j) => j,
                None => {
                    jobs.push((*req, key));
                    seen.insert(identity, jobs.len() - 1);
                    jobs.len() - 1
                }
            };
            job_of_request.push(job);
        }

        self.journal.record(Event::BatchStart {
            jobs: requests.len(),
            unique: jobs.len(),
            workers: self.workers,
        });
        for (j, (req, key)) in jobs.iter().enumerate() {
            self.journal.record(Event::JobQueued {
                job: j,
                scene: req.scene.name().to_owned(),
                config: req.stack.label(),
                workload: req.workload_label(),
                key: key.canonical.clone(),
            });
        }

        // Jobs whose effective limits (or a process-wide `SMS_TRACE`) arm
        // stall attribution or metrics telemetry must actually *run*: the
        // cache and resume state store only `SimStats` — byte-identical
        // with observation on or off — so a hit could not supply the
        // breakdown or metrics report (or write the trace file). Such jobs
        // skip the probe and the replay below; their stats still land in
        // the cache afterwards for unarmed future sweeps.
        let trace_armed = TraceSpec::from_env().is_some();
        // HLBVH batches traverse a different tree, so their stats must not
        // mix with the default-path cache/resume state in either direction:
        // no probe, no replay, and (below) no store.
        let hlbvh = self.hlbvh;
        let armed = |req: &RunRequest| {
            let limits = req.limits.or(self.limits);
            trace_armed || limits.breakdown || limits.metrics || hlbvh
        };

        // 2. Probe the cache on the scheduler thread (tiny JSON reads).
        type JobOutcome =
            (sms_sim::gpu::SimStats, Option<StallBreakdown>, Option<Box<MetricsReport>>);
        let mut slots: Vec<Option<Result<JobOutcome, RunError>>> = vec![None; jobs.len()];
        let mut hits = 0usize;
        if let Some(cache) = &self.cache {
            for (j, (req, key)) in jobs.iter().enumerate() {
                if armed(req) {
                    continue;
                }
                let probe_start = Instant::now();
                if let Some(stats) = cache.load(key) {
                    hits += 1;
                    self.journal.record(Event::JobFinished {
                        job: j,
                        worker: None,
                        cache_hit: true,
                        cycles: stats.cycles,
                        duration_us: probe_start.elapsed().as_micros() as u64,
                        stats: Some(stats),
                        breakdown: None,
                    });
                    slots[j] = Some(Ok((stats, None, None)));
                }
            }
        }

        // 2b. Replay completed runs from a prior journal (`SMS_RESUME`).
        // Failed/timed-out runs never entered the resume state, so they
        // re-execute below. Replayed results are written into the cache so
        // the *next* run hits without needing the resume file at all.
        let mut resumed = 0usize;
        if let Some(state) = &self.resume {
            for (j, (req, key)) in jobs.iter().enumerate() {
                if slots[j].is_none() && !armed(req) {
                    if let Some(stats) = state.lookup(key) {
                        resumed += 1;
                        self.journal.record(Event::JobResumed { job: j, cycles: stats.cycles });
                        if let Some(cache) = &self.cache {
                            cache.store(key, &stats);
                        }
                        slots[j] = Some(Ok((stats, None, None)));
                    }
                }
            }
        }
        let misses: Vec<usize> = (0..jobs.len()).filter(|&j| slots[j].is_none()).collect();

        // 3. Prepare each distinct (scene, render) once, in parallel. A
        //    panicking build is deferred: it fails only the jobs that
        //    needed that scene, when they reach step 4.
        let mut scene_keys: Vec<(SceneId, RenderConfig)> = Vec::new();
        let mut scene_of_miss = Vec::with_capacity(misses.len());
        for &j in &misses {
            let req = &jobs[j].0;
            let key = (req.scene, req.render);
            let idx = scene_keys.iter().position(|&k| k == key).unwrap_or_else(|| {
                scene_keys.push(key);
                scene_keys.len() - 1
            });
            scene_of_miss.push(idx);
        }
        let build_params = if self.hlbvh {
            sms_sim::bvh::BuildParams::hlbvh(self.workers)
        } else {
            sms_sim::bvh::BuildParams::default()
        };
        let prepared: Vec<Result<Arc<PreparedScene>, JobPanic>> =
            pool::try_run_indexed(self.workers, scene_keys.len(), |i, _| {
                let (id, render) = scene_keys[i];
                Arc::new(PreparedScene::build_with(id, &render, &build_params))
            });
        let builds: Vec<SceneBuild> = scene_keys
            .iter()
            .zip(&prepared)
            .filter_map(|(&(id, _), result)| {
                result.as_ref().ok().map(|p| SceneBuild {
                    scene: id.name().to_owned(),
                    prims: p.scene.prims.len() as u64,
                    build_us: p.build_us,
                })
            })
            .collect();

        // 4. Simulate the misses on the pool; slot by job id, so merge
        //    order is deterministic regardless of completion order. The
        //    closure maps simulator faults to `RunError`s itself; the
        //    pool's own `catch_unwind` additionally nets any panic that
        //    escapes the simulator.
        let journal = &self.journal;
        let cache = &self.cache;
        let sim_results = pool::try_run_indexed(self.workers, misses.len(), |i, worker| {
            let job = misses[i];
            let (req, key) = &jobs[job];
            journal.record(Event::JobStarted { job, worker });
            let job_start = Instant::now();
            let scene = match &prepared[scene_of_miss[i]] {
                Ok(scene) => scene,
                Err(p) => {
                    let err = RunError::Panicked {
                        worker: p.worker,
                        message: format!("scene preparation panicked: {}", p.message),
                    };
                    journal.record(Event::RunFailed {
                        job,
                        worker,
                        kind: err.kind().to_owned(),
                        error: err.to_string(),
                        duration_us: job_start.elapsed().as_micros() as u64,
                    });
                    return Err(err);
                }
            };
            let limits = req.limits.or(self.limits);
            match try_run_prepared(scene, req.stack, req.gpu, &req.render, &limits) {
                Ok(result) => {
                    // HLBVH stats would poison the default-path cache.
                    if let (Some(cache), false) = (cache, hlbvh) {
                        cache.store(key, &result.stats);
                    }
                    journal.record(Event::JobFinished {
                        job,
                        worker: Some(worker),
                        cache_hit: false,
                        cycles: result.stats.cycles,
                        duration_us: job_start.elapsed().as_micros() as u64,
                        stats: Some(result.stats),
                        breakdown: result.breakdown,
                    });
                    Ok((result.stats, result.breakdown, result.metrics))
                }
                Err(fault) => {
                    let err = RunError::from_fault(fault);
                    let duration_us = job_start.elapsed().as_micros() as u64;
                    if err.is_timeout() {
                        journal.record(Event::RunTimeout {
                            job,
                            worker,
                            kind: err.kind().to_owned(),
                            error: err.to_string(),
                            duration_us,
                        });
                    } else {
                        journal.record(Event::RunFailed {
                            job,
                            worker,
                            kind: err.kind().to_owned(),
                            error: err.to_string(),
                            duration_us,
                        });
                    }
                    Err(err)
                }
            }
        });
        for (&j, outcome) in misses.iter().zip(sim_results) {
            slots[j] = Some(match outcome {
                Ok(run) => run,
                // Panic that escaped the closure before it could journal —
                // journal it here so the record is complete.
                Err(p) => {
                    let worker = p.worker;
                    let err = RunError::Panicked { worker: p.worker, message: p.message };
                    self.journal.record(Event::RunFailed {
                        job: j,
                        worker,
                        kind: err.kind().to_owned(),
                        error: err.to_string(),
                        duration_us: 0,
                    });
                    Err(err)
                }
            });
        }

        let failed = slots.iter().flatten().filter(|r| r.is_err()).count();
        let sim_cycles: u64 =
            slots.iter().flatten().filter_map(|r| r.as_ref().ok()).map(|(s, _, _)| s.cycles).sum();
        let mut batch_breakdown: Option<StallBreakdown> = None;
        let mut batch_stacks: Option<StackMetrics> = None;
        for (_, b, m) in slots.iter().flatten().filter_map(|r| r.as_ref().ok()) {
            if let Some(b) = b {
                batch_breakdown.get_or_insert_with(StallBreakdown::default).merge(b);
            }
            if let Some(m) = m {
                batch_stacks.get_or_insert_with(StackMetrics::default).merge(&m.stacks);
            }
        }
        let batch_metrics = batch_stacks.as_ref().map(BatchMetrics::from_stacks);
        let summary = BatchSummary {
            jobs: requests.len(),
            unique_jobs: jobs.len(),
            cache_hits: hits,
            resumed,
            cache_misses: misses.len(),
            failed,
            workers: self.workers,
            wall: t0.elapsed(),
            sim_cycles,
            breakdown: batch_breakdown,
            metrics: batch_metrics,
            builds,
        };
        self.journal.record(Event::BatchEnd {
            jobs: jobs.len(),
            cache_hits: hits,
            cache_misses: misses.len(),
            failed,
            duration_us: summary.wall.as_micros() as u64,
            sim_cycles,
            breakdown: batch_breakdown,
            metrics: batch_metrics,
            builds: summary.builds.clone(),
        });

        let results = requests
            .iter()
            .zip(&job_of_request)
            .map(|(req, &j)| match &slots[j] {
                Some(Ok((stats, breakdown, metrics))) => Ok(RunResult {
                    scene: req.scene,
                    stack: req.stack,
                    stats: *stats,
                    breakdown: *breakdown,
                    metrics: metrics.clone(),
                }),
                Some(Err(e)) => Err(e.clone()),
                // Every job is a hit, a resumed replay, or a miss that step
                // 4 slotted.
                None => unreachable!("batch job was never resolved"),
            })
            .collect();
        (results, summary)
    }

    /// Runs every `(scene, config)` pair on the Table I GPU; results are
    /// grouped per scene in the order given — the parallel, cached
    /// equivalent of `sms_sim::experiments::run_suite`.
    pub fn run_suite(
        &self,
        scenes: &[SceneId],
        configs: &[StackConfig],
        render: &RenderConfig,
    ) -> (Vec<Vec<RunResult>>, BatchSummary) {
        let requests: Vec<RunRequest> = scenes
            .iter()
            .flat_map(|&id| configs.iter().map(move |&stack| RunRequest::new(id, stack, *render)))
            .collect();
        let (flat, summary) = self.run_batch(&requests);
        let grouped = flat.chunks(configs.len().max(1)).map(<[RunResult]>::to_vec).collect();
        (grouped, summary)
    }

    /// Fault-tolerant [`Harness::run_suite`]: each `(scene, config)` cell
    /// is its own `Result`, so one failed run leaves the rest of the matrix
    /// usable.
    pub fn try_run_suite(
        &self,
        scenes: &[SceneId],
        configs: &[StackConfig],
        render: &RenderConfig,
    ) -> (Vec<Vec<Result<RunResult, RunError>>>, BatchSummary) {
        let requests: Vec<RunRequest> = scenes
            .iter()
            .flat_map(|&id| configs.iter().map(move |&stack| RunRequest::new(id, stack, *render)))
            .collect();
        let (flat, summary) = self.try_run_batch(&requests);
        let mut grouped = Vec::with_capacity(scenes.len());
        let mut it = flat.into_iter();
        for _ in scenes {
            grouped.push(it.by_ref().take(configs.len()).collect());
        }
        (grouped, summary)
    }

    /// Builds the scenes (BVH included) on the worker pool, one build per
    /// distinct scene; duplicates share the same [`Arc`]. Returned in input
    /// order.
    pub fn prepare_scenes(
        &self,
        scenes: &[SceneId],
        render: &RenderConfig,
    ) -> Vec<Arc<PreparedScene>> {
        let mut distinct: Vec<SceneId> = Vec::new();
        for &id in scenes {
            if !distinct.contains(&id) {
                distinct.push(id);
            }
        }
        let built: Vec<Arc<PreparedScene>> =
            pool::run_indexed(self.workers, distinct.len(), |i, _| {
                Arc::new(PreparedScene::build(distinct[i], render))
            });
        scenes
            .iter()
            .map(|id| {
                let i = distinct
                    .iter()
                    .position(|d| d == id)
                    .unwrap_or_else(|| unreachable!("collected above"));
                Arc::clone(&built[i])
            })
            .collect()
    }
}
