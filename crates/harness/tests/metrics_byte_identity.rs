//! Telemetry never moves the science: over a Fig. 13 sweep slice, arming
//! `SMS_METRICS` leaves every serialized `SimStats` payload — the bytes
//! the cache stores and the journal replays — identical to the unarmed
//! sweep, and the cache keys themselves stay on `SIM_VERSION_SALT` 1 (the
//! metrics layer is pure observation, so no salt bump is warranted).

use sms_harness::{cache, Harness, HarnessConfig, RunLimits, RunRequest, SIM_VERSION_SALT};
use sms_sim::config::RenderConfig;
use sms_sim::rtunit::{SmsParams, StackConfig};
use sms_sim::scene::SceneId;

/// The Fig. 13 configuration matrix.
fn fig13_configs() -> Vec<StackConfig> {
    vec![
        StackConfig::baseline8(),
        StackConfig::Sms(SmsParams::default()),
        StackConfig::Sms(SmsParams::default().with_skewed(true)),
        StackConfig::sms_default(),
        StackConfig::FullOnChip,
    ]
}

#[test]
fn armed_sweep_stats_are_byte_identical_and_salt_is_stable() {
    assert_eq!(SIM_VERSION_SALT, 1, "pure observation must not bump the simulator version");

    let scenes = [SceneId::Ship, SceneId::Bunny, SceneId::Ref, SceneId::Chsnt];
    let configs = fig13_configs();
    let render = RenderConfig::tiny();
    let requests: Vec<RunRequest> = scenes
        .iter()
        .flat_map(|&id| configs.iter().map(move |&stack| RunRequest::new(id, stack, render)))
        .collect();
    assert!(requests.len() >= 16, "the slice must cover at least 16 sweep entries");

    let quiet =
        || Harness::new(HarnessConfig { workers: 4, cache_dir: None, ..HarnessConfig::default() });
    let (off, off_summary) = quiet().run_batch(&requests);
    let armed: Vec<RunRequest> = requests
        .iter()
        .map(|r| r.with_limits(RunLimits { metrics: true, ..RunLimits::none() }))
        .collect();
    let (on, on_summary) = quiet().run_batch(&armed);

    assert!(off_summary.metrics.is_none(), "unarmed batch must not aggregate metrics");
    let batch = on_summary.metrics.expect("armed batch must aggregate metrics");
    assert!(batch.stack_depth.count > 0 && batch.ray_latency.count > 0);

    for (a, b) in off.iter().zip(&on) {
        // Byte-for-byte over the serialized payload: this is exactly what
        // a cache entry or resume journal stores, so equality here means
        // armed and unarmed sweeps are interchangeable on disk.
        let off_bytes = cache::stats_to_json(&a.stats).to_string();
        let on_bytes = cache::stats_to_json(&b.stats).to_string();
        assert_eq!(off_bytes, on_bytes, "{} / {}", a.scene, a.stack.label());
        assert_eq!(cache::fnv1a64(off_bytes.as_bytes()), cache::fnv1a64(on_bytes.as_bytes()));
        assert!(a.metrics.is_none());
        assert!(b.metrics.is_some(), "{} / {}", b.scene, b.stack.label());
    }
}
