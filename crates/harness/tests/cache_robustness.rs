//! The result cache must never be able to make a run *wrong*: corrupt
//! entries fall back to re-simulation, and entries written under an older
//! simulator version salt are unreachable.

use sms_harness::{Harness, HarnessConfig, ResultCache, RunRequest, SIM_VERSION_SALT};
use sms_sim::config::RenderConfig;
use sms_sim::gpu::SimStats;
use sms_sim::rtunit::StackConfig;
use sms_sim::scene::SceneId;
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sms-cache-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_request() -> RunRequest {
    RunRequest::new(SceneId::Wknd, StackConfig::baseline8(), RenderConfig::tiny())
}

#[test]
fn roundtrip_store_load() {
    let dir = temp_dir("roundtrip");
    let cache = ResultCache::new(&dir);
    let key = cache.key(&sample_request());
    let stats = SimStats { cycles: 77, node_visits: 5, ..Default::default() };
    cache.store(&key, &stats);
    assert_eq!(cache.load(&key), Some(stats));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_and_truncated_entries_are_misses() {
    let dir = temp_dir("corrupt");
    let cache = ResultCache::new(&dir);
    let key = cache.key(&sample_request());
    let stats = SimStats { cycles: 77, ..Default::default() };
    cache.store(&key, &stats);
    let path = cache.entry_path(&key);

    // Truncated mid-document.
    let full = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &full[..full.len() / 2]).unwrap();
    assert_eq!(cache.load(&key), None, "truncated entry must miss, not panic");

    // Arbitrary binary garbage.
    std::fs::write(&path, [0u8, 159, 146, 150, b'{', b'}']).unwrap();
    assert_eq!(cache.load(&key), None, "binary garbage must miss, not panic");

    // Valid JSON, wrong schema.
    std::fs::write(&path, "{\"unexpected\":true}").unwrap();
    assert_eq!(cache.load(&key), None);

    // Valid envelope, missing stats fields.
    std::fs::write(
        &path,
        format!(
            "{{\"salt\":{SIM_VERSION_SALT},\"key\":{:?},\"stats\":{{\"cycles\":1}}}}",
            key.canonical
        ),
    )
    .unwrap();
    assert_eq!(cache.load(&key), None, "schema drift must miss, not mis-parse");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_entry_falls_back_to_resimulation_end_to_end() {
    let dir = temp_dir("fallback");
    let harness = Harness::new(HarnessConfig {
        workers: 2,
        cache_dir: Some(dir.clone()),
        ..HarnessConfig::default()
    });
    let req = sample_request();
    let (first, s1) = harness.run_batch(&[req]);
    assert_eq!(s1.cache_misses, 1);

    // Corrupt the entry on disk; the batch must silently re-simulate and
    // produce the same stats.
    let cache = harness.cache().unwrap();
    let path = cache.entry_path(&cache.key(&req));
    std::fs::write(&path, "not json at all").unwrap();
    let (second, s2) = harness.run_batch(&[req]);
    assert_eq!(s2.cache_hits, 0, "corrupt entry must not count as a hit");
    assert_eq!(s2.cache_misses, 1);
    assert_eq!(first[0].stats, second[0].stats);

    // And the re-simulation healed the entry: third run is a hit.
    let (third, s3) = harness.run_batch(&[req]);
    assert_eq!(s3.cache_hits, 1);
    assert_eq!(first[0].stats, third[0].stats);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_salt_bump_invalidates_stale_entries() {
    let dir = temp_dir("salt");
    let req = sample_request();
    let stale = SimStats { cycles: 999_999, ..Default::default() };

    // An entry written by a (simulated) older simulator version...
    let old_cache = ResultCache::with_salt(&dir, SIM_VERSION_SALT.wrapping_sub(1));
    let old_key = old_cache.key(&req);
    old_cache.store(&old_key, &stale);
    assert_eq!(old_cache.load(&old_key), Some(stale), "entry is valid under its own salt");

    // ...is a miss under the current salt: the canonical key (and with it
    // the entry path) changed.
    let new_cache = ResultCache::with_salt(&dir, SIM_VERSION_SALT);
    let new_key = new_cache.key(&req);
    assert_ne!(old_key.canonical, new_key.canonical);
    assert_ne!(old_key.hash, new_key.hash);
    assert_eq!(new_cache.load(&new_key), None, "salt bump must invalidate stale entries");

    // Even a forged stale entry *at the new path* is rejected by the salt
    // field check.
    std::fs::copy(old_cache.entry_path(&old_key), new_cache.entry_path(&new_key)).unwrap();
    assert_eq!(new_cache.load(&new_key), None, "salt mismatch inside the entry must miss");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_entries_are_deleted_on_load_so_they_self_heal() {
    let dir = temp_dir("selfheal");
    let cache = ResultCache::new(&dir);
    let key = cache.key(&sample_request());
    cache.store(&key, &SimStats { cycles: 42, ..Default::default() });
    let path = cache.entry_path(&key);

    std::fs::write(&path, "definitely not json").unwrap();
    assert_eq!(cache.load(&key), None);
    assert!(!path.exists(), "corrupt entry must be deleted so the next store heals it");

    // A plain miss (no file) stays a plain miss.
    assert_eq!(cache.load(&key), None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tampered_stats_fail_the_checksum_and_are_quarantined() {
    let dir = temp_dir("tamper");
    let cache = ResultCache::new(&dir);
    let key = cache.key(&sample_request());
    cache.store(&key, &SimStats { cycles: 123_456, ..Default::default() });
    let path = cache.entry_path(&key);

    // Flip one digit of the stats payload: still valid JSON, still the
    // right schema — only the checksum can catch it.
    let body = std::fs::read_to_string(&path).unwrap();
    let tampered = body.replace("123456", "123457");
    assert_ne!(body, tampered, "tamper target must exist in the entry");
    std::fs::write(&path, tampered).unwrap();

    assert_eq!(cache.load(&key), None, "bit rot that parses must still miss");
    assert!(!path.exists(), "checksum-failed entry must be deleted");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn legacy_entries_without_checksum_still_load() {
    let dir = temp_dir("legacy");
    let cache = ResultCache::new(&dir);
    let key = cache.key(&sample_request());
    let stats = SimStats { cycles: 99, node_visits: 3, ..Default::default() };

    // Forge a pre-checksum entry: same envelope, no `sum` field.
    let body = format!(
        "{{\"salt\":{SIM_VERSION_SALT},\"key\":{:?},\"stats\":{}}}",
        key.canonical,
        sms_harness::cache::stats_to_json(&stats)
    );
    std::fs::write(cache.entry_path(&key), body).unwrap();
    assert_eq!(cache.load(&key), Some(stats), "legacy entries must stay readable");
    assert!(cache.entry_path(&key).exists(), "a valid legacy entry must not be deleted");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn salt_mismatches_are_misses_not_corruption() {
    let dir = temp_dir("mismatch");
    let req = sample_request();

    // A stale-salt entry forged at the current path must miss but survive
    // on disk (it is not damaged, just from another simulator version).
    let old_cache = ResultCache::with_salt(&dir, SIM_VERSION_SALT.wrapping_sub(1));
    let old_key = old_cache.key(&req);
    old_cache.store(&old_key, &SimStats { cycles: 1, ..Default::default() });
    let new_cache = ResultCache::with_salt(&dir, SIM_VERSION_SALT);
    let new_key = new_cache.key(&req);
    let forged = new_cache.entry_path(&new_key);
    std::fs::copy(old_cache.entry_path(&old_key), &forged).unwrap();
    assert_eq!(new_cache.load(&new_key), None);
    assert!(forged.exists(), "salt mismatch is a miss, not corruption — no deletion");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_injected_cache_writes_self_heal_end_to_end() {
    use sms_harness::FaultPlan;
    use std::sync::Arc;

    let dir = temp_dir("faultwrites");
    // Every write is damaged: odd writes truncated, even writes corrupted.
    let plan = Arc::new(FaultPlan::parse("cache_truncate:every=2;cache_corrupt:every=1").unwrap());
    let faulty = ResultCache::new(&dir).with_faults(Some(plan));
    let clean = ResultCache::new(&dir);
    let key = clean.key(&sample_request());
    let stats = SimStats { cycles: 7_777, ..Default::default() };

    for _ in 0..4 {
        faulty.store(&key, &stats);
        assert_eq!(clean.load(&key), None, "damaged write must never read back as a hit");
        assert!(!clean.entry_path(&key).exists(), "damaged entry must be quarantined");
    }

    // A clean writer heals the slot.
    clean.store(&key, &stats);
    assert_eq!(clean.load(&key), Some(stats));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn distinct_requests_have_distinct_keys() {
    let cache = ResultCache::new("unused");
    let render = RenderConfig::tiny();
    let a = cache.key(&RunRequest::new(SceneId::Ship, StackConfig::baseline8(), render));
    let b = cache.key(&RunRequest::new(SceneId::Bunny, StackConfig::baseline8(), render));
    let c = cache.key(&RunRequest::new(SceneId::Ship, StackConfig::sms_default(), render));
    let d =
        cache.key(&RunRequest::new(SceneId::Ship, StackConfig::baseline8(), RenderConfig::fast()));
    let e = cache.key(
        &RunRequest::new(SceneId::Ship, StackConfig::baseline8(), render)
            .with_gpu(sms_sim::gpu::GpuConfig::default().with_l1_size(128 * 1024)),
    );
    let keys = [&a.canonical, &b.canonical, &c.canonical, &d.canonical, &e.canonical];
    for (i, x) in keys.iter().enumerate() {
        for y in &keys[i + 1..] {
            assert_ne!(x, y, "scene/stack/render/gpu must all be part of the key");
        }
    }
}
