//! The harness's core guarantee: a parallel, deduplicated, cached batch is
//! *exactly* the serial loop's result — same `SimStats`, bit for bit — and
//! a warm cache serves the whole batch without simulating.

use sms_harness::{Event, Harness, HarnessConfig, RunRequest};
use sms_sim::config::RenderConfig;
use sms_sim::experiments;
use sms_sim::rtunit::{SmsParams, StackConfig};
use sms_sim::scene::SceneId;
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sms-harness-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_harness(cache: &str) -> Harness {
    Harness::new(HarnessConfig {
        workers: 4,
        cache_dir: Some(temp_dir(cache)),
        ..HarnessConfig::default()
    })
}

/// The Fig. 13 configuration matrix.
fn fig13_configs() -> Vec<StackConfig> {
    vec![
        StackConfig::baseline8(),
        StackConfig::Sms(SmsParams::default()),
        StackConfig::Sms(SmsParams::default().with_skewed(true)),
        StackConfig::sms_default(),
        StackConfig::FullOnChip,
    ]
}

#[test]
fn parallel_equals_serial_and_second_run_is_all_hits() {
    let scenes = [SceneId::Ship, SceneId::Bunny, SceneId::Ref, SceneId::Chsnt];
    let configs = fig13_configs();
    let render = RenderConfig::tiny();

    let serial = experiments::run_suite(&scenes, &configs, &render);

    let harness = test_harness("fig13");
    let (parallel, first) = harness.run_suite(&scenes, &configs, &render);

    assert_eq!(parallel.len(), serial.len());
    for (scene_idx, (p_row, s_row)) in parallel.iter().zip(&serial).enumerate() {
        for (p, s) in p_row.iter().zip(s_row) {
            assert_eq!(p.scene, s.scene);
            assert_eq!(p.stack, s.stack);
            assert_eq!(
                p.stats, s.stats,
                "parallel vs serial stats diverged for {} / {}",
                scenes[scene_idx], p.stack
            );
        }
    }
    let total = scenes.len() * configs.len();
    assert_eq!(first.jobs, total);
    assert_eq!(first.unique_jobs, total);
    assert_eq!(first.cache_hits, 0, "cold cache must simulate everything");
    assert_eq!(first.cache_misses, total);
    assert_eq!(first.workers, 4);

    // Second invocation of the same batch: 100% cache hits, and faster
    // than actually simulating was.
    let (again, second) = harness.run_suite(&scenes, &configs, &render);
    for (p_row, a_row) in parallel.iter().zip(&again) {
        for (p, a) in p_row.iter().zip(a_row) {
            assert_eq!(p.stats, a.stats, "cached stats must equal simulated stats");
        }
    }
    assert_eq!(second.cache_hits, total, "warm cache must serve the whole batch");
    assert_eq!(second.cache_misses, 0);
    assert!(
        second.wall < first.wall,
        "cache hits ({:?}) must beat simulation ({:?})",
        second.wall,
        first.wall
    );

    // The journal agrees: the last batch finished every job from cache.
    let last = harness.journal().last_batch();
    let finishes: Vec<&Event> =
        last.iter().filter(|e| matches!(e, Event::JobFinished { .. })).collect();
    assert_eq!(finishes.len(), total);
    assert!(finishes
        .iter()
        .all(|e| matches!(e, Event::JobFinished { cache_hit: true, worker: None, .. })));

    if let Some(cache) = harness.cache() {
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}

#[test]
fn duplicate_requests_run_once() {
    let render = RenderConfig::tiny();
    let base = RunRequest::new(SceneId::Ship, StackConfig::baseline8(), render);
    let sms = RunRequest::new(SceneId::Ship, StackConfig::sms_default(), render);
    // RB_8 requested three times (as every figure's normalization column).
    let batch = [base, sms, base, base];

    let harness = test_harness("dedupe");
    let (results, summary) = harness.run_batch(&batch);

    assert_eq!(summary.jobs, 4);
    assert_eq!(summary.unique_jobs, 2, "three RB_8 requests dedupe to one job");
    assert_eq!(summary.cache_misses, 2);
    assert_eq!(results.len(), 4, "results stay positionally aligned with requests");
    assert_eq!(results[0].stats, results[2].stats);
    assert_eq!(results[0].stats, results[3].stats);
    assert_ne!(results[0].stats.cycles, results[1].stats.cycles);

    if let Some(cache) = harness.cache() {
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}

#[test]
fn journal_records_the_full_job_lifecycle() {
    let render = RenderConfig::tiny();
    let harness = test_harness("journal");
    let (_, _) =
        harness.run_batch(&[RunRequest::new(SceneId::Wknd, StackConfig::baseline8(), render)]);

    let events = harness.journal().events();
    assert!(matches!(events[0], Event::BatchStart { jobs: 1, unique: 1, workers: 4 }));
    assert!(events.iter().any(|e| matches!(
        e,
        Event::JobQueued { job: 0, scene, config, workload, key }
            if scene == "WKND" && config == "RB_8" && workload == "16x16x1" && !key.is_empty()
    )));
    assert!(events.iter().any(|e| matches!(e, Event::JobStarted { job: 0, .. })));
    assert!(events.iter().any(|e| matches!(
        e,
        Event::JobFinished { job: 0, cache_hit: false, cycles, .. } if *cycles > 0
    )));
    assert!(matches!(
        events.last(),
        Some(Event::BatchEnd { jobs: 1, cache_hits: 0, cache_misses: 1, .. })
    ));

    if let Some(cache) = harness.cache() {
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}

#[test]
fn journal_file_sink_writes_parseable_jsonl() {
    let dir = temp_dir("jsonl");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.jsonl");
    let harness = Harness::new(HarnessConfig {
        workers: 2,
        cache_dir: None,
        journal_path: Some(path.clone()),
        ..HarnessConfig::default()
    });
    let render = RenderConfig::tiny();
    harness.run_batch(&[RunRequest::new(SceneId::Wknd, StackConfig::baseline8(), render)]);

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), harness.journal().events().len());
    for line in lines {
        let doc = sms_harness::json::parse(line).expect("every journal line is valid JSON");
        assert!(doc.get("event").is_some());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
