//! The stack invariant validator over a full Fig. 13-style sweep: every
//! configuration class (baseline register stacks, SMS with and without
//! skewing/reallocation, full on-chip) runs under validation with zero
//! violations — and because the validator is pure observation, the stats
//! are bit-identical to the same sweep with validation off.

use sms_harness::{Harness, HarnessConfig, RunLimits, RunRequest};
use sms_sim::config::RenderConfig;
use sms_sim::rtunit::{SmsParams, StackConfig};
use sms_sim::scene::SceneId;

fn fig13_configs() -> Vec<StackConfig> {
    vec![
        StackConfig::baseline8(),
        StackConfig::Sms(SmsParams::default()),
        StackConfig::Sms(SmsParams::default().with_skewed(true)),
        StackConfig::sms_default(),
        StackConfig::FullOnChip,
    ]
}

#[test]
fn full_sweep_validates_clean_and_stats_match_unvalidated() {
    let scenes = [SceneId::Wknd, SceneId::Ship, SceneId::Bunny];
    let configs = fig13_configs();
    let render = RenderConfig::tiny();

    let plain = Harness::new(HarnessConfig {
        workers: 4,
        cache_dir: None,
        journal_path: None,
        ..HarnessConfig::default()
    });
    let watched = Harness::new(HarnessConfig {
        workers: 4,
        cache_dir: None,
        journal_path: None,
        limits: RunLimits {
            max_cycles: None,
            stall_cycles: None,
            validate: true,
            breakdown: false,
            metrics: false,
        },
        ..HarnessConfig::default()
    });

    let (baseline, _) = plain.try_run_suite(&scenes, &configs, &render);
    let (validated, summary) = watched.try_run_suite(&scenes, &configs, &render);

    assert_eq!(summary.failed, 0, "a violation would surface as a failed run");
    for (s, (b_row, v_row)) in baseline.iter().zip(&validated).enumerate() {
        for (b, v) in b_row.iter().zip(v_row) {
            let b = b.as_ref().expect("unvalidated run completes");
            let v = v
                .as_ref()
                .unwrap_or_else(|e| panic!("validator flagged {} / {}: {e}", scenes[s], b.stack));
            assert_eq!(
                b.stats, v.stats,
                "validator must be pure observation ({} / {})",
                scenes[s], b.stack
            );
        }
    }
}

#[test]
fn per_request_validation_composes_with_harness_limits() {
    // Validation via the per-request override instead of harness-wide
    // limits: same clean result.
    let harness = Harness::new(HarnessConfig {
        workers: 2,
        cache_dir: None,
        journal_path: None,
        ..HarnessConfig::default()
    });
    let limits = RunLimits {
        max_cycles: None,
        stall_cycles: None,
        validate: true,
        breakdown: false,
        metrics: false,
    };
    let req = RunRequest::new(SceneId::Wknd, StackConfig::sms_default(), RenderConfig::tiny())
        .with_limits(limits);
    let plain = RunRequest::new(SceneId::Wknd, StackConfig::sms_default(), RenderConfig::tiny());

    let (results, summary) = harness.try_run_batch(&[req, plain]);
    assert_eq!(summary.failed, 0);
    assert_eq!(
        results[0].as_ref().unwrap().stats,
        results[1].as_ref().unwrap().stats,
        "validated and unvalidated runs of the same request agree bit for bit"
    );
}
