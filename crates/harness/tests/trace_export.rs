//! End-to-end `SMS_TRACE` smoke: arm tracing through the environment (the
//! same path a user takes), run a sweep, and strictly parse the emitted
//! Chrome-trace JSON with our own parser. Substring checks live in
//! `sms-sim`'s tests; this one proves the whole file is well-formed and
//! that the embedded breakdown conserves (Σ buckets == cycles).
//!
//! Kept to a single `#[test]` on purpose: it mutates process-wide
//! environment variables, which would race against sibling tests in the
//! same binary.

use sms_harness::json::{parse, Json};
use sms_harness::{cache, Harness, HarnessConfig, RunRequest};
use sms_sim::config::RenderConfig;
use sms_sim::rtunit::StackConfig;
use sms_sim::scene::SceneId;

#[test]
fn sms_trace_emits_wellformed_conserving_json() {
    let dir = std::env::temp_dir().join(format!("sms-trace-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("SMS_TRACE", dir.join("run.json"));
    std::env::set_var("SMS_TRACE_PERIOD", "256");

    let harness = Harness::new(HarnessConfig {
        workers: 2,
        cache_dir: None,
        journal_path: None,
        ..HarnessConfig::default()
    });
    let reqs = [
        RunRequest::new(SceneId::Wknd, StackConfig::baseline8(), RenderConfig::tiny()),
        RunRequest::new(SceneId::Wknd, StackConfig::sms_default(), RenderConfig::tiny()),
    ];
    let (results, summary) = harness.try_run_batch(&reqs);
    std::env::remove_var("SMS_TRACE");
    std::env::remove_var("SMS_TRACE_PERIOD");
    assert_eq!(summary.failed, 0);
    assert!(summary.breakdown.is_some(), "tracing arms attribution batch-wide");

    for (req, result) in reqs.iter().zip(&results) {
        let run = result.as_ref().unwrap();
        let path =
            dir.join(format!("run.{}.{}.json", req.scene, req.stack.label().replace('+', "_")));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("trace file {} must exist: {e}", path.display()));
        let doc = parse(&text).expect("trace must be valid JSON end to end");

        // Chrome trace-event envelope.
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(evs)) => evs,
            other => panic!("traceEvents must be an array, got {other:?}"),
        };
        assert!(!events.is_empty());
        let mut phases = [0usize; 3]; // M, X, C
        for ev in events {
            let ph = match ev.get("ph") {
                Some(Json::Str(s)) => s.as_str(),
                other => panic!("every event needs a ph string, got {other:?}"),
            };
            assert!(ev.get("pid").is_some() && ev.get("name").is_some(), "pid/name required");
            match ph {
                "M" => phases[0] += 1,
                "X" => {
                    phases[1] += 1;
                    assert!(ev.get("ts").is_some() && ev.get("dur").is_some());
                }
                "C" => {
                    phases[2] += 1;
                    assert!(matches!(ev.get("args"), Some(Json::Obj(_))));
                }
                other => panic!("unexpected event phase {other:?}"),
            }
        }
        assert!(phases.iter().all(|&n| n > 0), "need M, X and C events, got {phases:?}");

        // Σ buckets == cycles, re-checked from the serialized form.
        assert_eq!(doc.u64_field("cycles"), Some(run.stats.cycles));
        let b = cache::breakdown_from_json(doc.get("stallBreakdown").unwrap())
            .expect("stallBreakdown must round-trip through the journal codec");
        assert!(b.is_conserved(), "serialized breakdown must conserve: {b:?}");
        assert_eq!(Some(&b), run.breakdown.as_ref(), "trace and RunResult must agree");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
