//! Journal schema stability: every event kind serializes to the exact
//! JSONL line downstream tooling (resume, `breakdown_stalls`, external
//! dashboards) parses.
//!
//! The golden strings below ARE the schema. If a change here is
//! intentional, it is a schema migration: confirm `resume.rs` still parses
//! old journals (new fields must be additive/optional) and update the
//! examples in `journal.rs`'s module docs.

use sms_harness::json::{parse, Json};
use sms_harness::{cache, BatchMetrics, Event, SceneBuild};
use sms_metrics::HistSummary;
use sms_sim::gpu::{SimStats, StallBreakdown};

/// Serializes, checks against the golden line, parses the line back, and
/// returns the parsed document for field-level spot checks.
fn golden(event: &Event, want: &str) -> Json {
    let line = event.to_json().to_string();
    assert_eq!(line, want, "schema drift for {event:?}");
    parse(&line).unwrap_or_else(|e| panic!("journal line must reparse: {e}\n{line}"))
}

#[test]
fn batch_start_line() {
    let doc = golden(
        &Event::BatchStart { jobs: 80, unique: 64, workers: 8 },
        r#"{"event":"batch_start","jobs":80,"unique":64,"workers":8}"#,
    );
    assert_eq!(doc.u64_field("unique"), Some(64));
}

#[test]
fn job_queued_line() {
    golden(
        &Event::JobQueued {
            job: 0,
            scene: "WKND".to_owned(),
            config: "RB_8+SH_8+SK+RA".to_owned(),
            workload: "32x32x1".to_owned(),
            key: "sms-sim salt=1|scene=WKND".to_owned(),
        },
        r#"{"event":"job_queued","job":0,"scene":"WKND","config":"RB_8+SH_8+SK+RA","workload":"32x32x1","key":"sms-sim salt=1|scene=WKND"}"#,
    );
}

#[test]
fn job_resumed_line() {
    golden(
        &Event::JobResumed { job: 2, cycles: 184_223 },
        r#"{"event":"job_resumed","job":2,"cycles":184223}"#,
    );
}

#[test]
fn job_started_line() {
    golden(
        &Event::JobStarted { job: 1, worker: 3 },
        r#"{"event":"job_started","job":1,"worker":3}"#,
    );
}

#[test]
fn job_finished_line_roundtrips_stats_and_breakdown() {
    let stats =
        SimStats { cycles: 42, thread_instructions: 9_007_199_254_740_993, ..Default::default() };
    let breakdown = StallBreakdown {
        compute: 30,
        in_rt: 12,
        warp_cycles: 42,
        rt_idle: 384,
        rt_lane_cycles: 384,
        ..Default::default()
    };
    let e = Event::JobFinished {
        job: 4,
        worker: Some(1),
        cache_hit: false,
        cycles: 42,
        duration_us: 1_234,
        stats: Some(stats),
        breakdown: Some(breakdown),
    };
    let doc = golden(
        &e,
        concat!(
            r#"{"event":"job_finished","job":4,"worker":1,"cache":"miss","cycles":42,"duration_us":1234,"#,
            r#""stats":{"cycles":42,"thread_instructions":9007199254740993,"node_visits":0,"rays_traced":0,"shadow_rays":0,"rb_spills":0,"rb_reloads":0,"sh_spills":0,"sh_reloads":0,"ra_flushes":0,"ra_borrows":0,"mem":{"l1_hits":0,"l1_misses":0,"l2_hits":0,"l2_misses":0,"stores":0,"stack_transactions":0,"stack_l1_hits":0,"stack_l1_misses":0,"data_transactions":0,"shared_accesses":0,"bank_conflict_cycles":0}},"#,
            r#""breakdown":{"compute":30,"mem_wait":0,"rt_admit":0,"in_rt":12,"warp_cycles":42,"rt_sched_wait":0,"fetch_wait_l1":0,"fetch_wait_l2":0,"fetch_wait_dram":0,"op_wait":0,"stack_wait_rb_sh":0,"stack_wait_sh_global":0,"stack_wait_flush":0,"bank_conflict_replay":0,"predictor_wait":0,"rt_idle":384,"rt_lane_cycles":384}}"#,
        ),
    );
    // The payloads round-trip through the same codecs resume/tools use —
    // u64 fidelity beyond 2^53 included.
    assert_eq!(cache::stats_from_json(doc.get("stats").unwrap()), Some(stats));
    assert_eq!(cache::breakdown_from_json(doc.get("breakdown").unwrap()), Some(breakdown));
    let b = cache::breakdown_from_json(doc.get("breakdown").unwrap()).unwrap();
    assert!(b.is_conserved());
}

#[test]
fn job_finished_cache_hit_has_null_worker_and_breakdown() {
    let e = Event::JobFinished {
        job: 0,
        worker: None,
        cache_hit: true,
        cycles: 7,
        duration_us: 0,
        stats: None,
        breakdown: None,
    };
    let doc = golden(
        &e,
        r#"{"event":"job_finished","job":0,"worker":null,"cache":"hit","cycles":7,"duration_us":0,"stats":null,"breakdown":null}"#,
    );
    assert_eq!(doc.get("worker"), Some(&Json::Null));
}

#[test]
fn run_timeout_line() {
    golden(
        &Event::RunTimeout {
            job: 3,
            worker: 0,
            kind: "stalled".to_owned(),
            error: "no progress\nSM0: ...".to_owned(),
            duration_us: 99,
        },
        r#"{"event":"run_timeout","job":3,"worker":0,"kind":"stalled","error":"no progress\nSM0: ...","duration_us":99}"#,
    );
}

#[test]
fn run_failed_line() {
    golden(
        &Event::RunFailed {
            job: 5,
            worker: 2,
            kind: "panic".to_owned(),
            error: "boom \"quoted\"".to_owned(),
            duration_us: 7,
        },
        r#"{"event":"run_failed","job":5,"worker":2,"kind":"panic","error":"boom \"quoted\"","duration_us":7}"#,
    );
}

#[test]
fn span_line() {
    golden(
        &Event::Span {
            trace: "00000000deadbeef".to_owned(),
            span: "0000000000000002".to_owned(),
            parent: Some("0000000000000001".to_owned()),
            name: "dispatch".to_owned(),
            kind: "client".to_owned(),
            start_us: 1_700_000_000_000_000,
            dur_us: 4_200,
            attrs: vec![
                ("backend".to_owned(), "127.0.0.1:7745".to_owned()),
                ("attempt".to_owned(), "1".to_owned()),
                ("hedge".to_owned(), "1".to_owned()),
                ("breaker_state".to_owned(), "closed".to_owned()),
                ("outcome".to_owned(), "cancelled".to_owned()),
            ],
        },
        concat!(
            r#"{"event":"span","trace":"00000000deadbeef","span":"0000000000000002","parent":"0000000000000001","#,
            r#""name":"dispatch","kind":"client","start_us":1700000000000000,"dur_us":4200,"#,
            r#""attrs":{"backend":"127.0.0.1:7745","attempt":"1","hedge":"1","breaker_state":"closed","outcome":"cancelled"}}"#,
        ),
    );
}

#[test]
fn span_line_root_has_null_parent_and_ctx_constructor_matches() {
    let ctx = sms_harness::TraceContext { trace_id: 0xdead_beef, span_id: 0x1, parent: None };
    let e = Event::span(&ctx, "sweep", "server", 10, 20, vec![("jobs".to_owned(), "2".to_owned())]);
    let doc = golden(
        &e,
        concat!(
            r#"{"event":"span","trace":"00000000deadbeef","span":"0000000000000001","parent":null,"#,
            r#""name":"sweep","kind":"server","start_us":10,"dur_us":20,"attrs":{"jobs":"2"}}"#,
        ),
    );
    assert_eq!(doc.get("parent"), Some(&Json::Null));
}

#[test]
fn batch_end_line_with_breakdown() {
    let breakdown = StallBreakdown { compute: 1, warp_cycles: 1, ..Default::default() };
    let e = Event::BatchEnd {
        jobs: 2,
        cache_hits: 1,
        cache_misses: 1,
        failed: 0,
        duration_us: 2_000_000,
        sim_cycles: 100,
        breakdown: Some(breakdown),
        metrics: None,
        builds: vec![SceneBuild { scene: "SHIP".to_owned(), prims: 6321, build_us: 480 }],
    };
    let doc = golden(
        &e,
        concat!(
            r#"{"event":"batch_end","jobs":2,"cache_hits":1,"cache_misses":1,"failed":0,"duration_us":2000000,"sim_cycles":100,"runs_per_sec":1,"sim_cycles_per_sec":50,"#,
            r#""breakdown":{"compute":1,"mem_wait":0,"rt_admit":0,"in_rt":0,"warp_cycles":1,"rt_sched_wait":0,"fetch_wait_l1":0,"fetch_wait_l2":0,"fetch_wait_dram":0,"op_wait":0,"stack_wait_rb_sh":0,"stack_wait_sh_global":0,"stack_wait_flush":0,"bank_conflict_replay":0,"predictor_wait":0,"rt_idle":0,"rt_lane_cycles":0},"#,
            r#""metrics":null,"builds":[{"scene":"SHIP","prims":6321,"build_us":480}]}"#,
        ),
    );
    assert_eq!(cache::breakdown_from_json(doc.get("breakdown").unwrap()), Some(breakdown));
    assert_eq!(
        cache::builds_from_json(doc.get("builds").unwrap()),
        Some(vec![SceneBuild { scene: "SHIP".to_owned(), prims: 6321, build_us: 480 }])
    );
}

#[test]
fn batch_end_line_with_metrics() {
    let metrics = BatchMetrics {
        stack_depth: HistSummary { count: 640, sum: 3200, p50: 5, p95: 11, p99: 14, max: 19 },
        ray_latency: HistSummary { count: 256, sum: 51200, p50: 180, p95: 420, p99: 504, max: 611 },
        spills: 12,
        reloads: 12,
    };
    let e = Event::BatchEnd {
        jobs: 1,
        cache_hits: 0,
        cache_misses: 1,
        failed: 0,
        duration_us: 1_000_000,
        sim_cycles: 50,
        breakdown: None,
        metrics: Some(metrics),
        builds: Vec::new(),
    };
    let doc = golden(
        &e,
        concat!(
            r#"{"event":"batch_end","jobs":1,"cache_hits":0,"cache_misses":1,"failed":0,"duration_us":1000000,"sim_cycles":50,"runs_per_sec":1,"sim_cycles_per_sec":50,"breakdown":null,"#,
            r#""metrics":{"stack_depth":{"count":640,"sum":3200,"p50":5,"p95":11,"p99":14,"max":19},"ray_latency":{"count":256,"sum":51200,"p50":180,"p95":420,"p99":504,"max":611},"spills":12,"reloads":12},"builds":[]}"#,
        ),
    );
    assert_eq!(cache::metrics_from_json(doc.get("metrics").unwrap()), Some(metrics));
}
