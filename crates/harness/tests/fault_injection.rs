//! Fault injection: one poisoned run must never take down a sweep.
//!
//! Each test injects a different failure class — a panicking run, a
//! watchdog abort (cycle budget / stall), a corrupt cache entry, a killed
//! sweep resumed from its journal — and asserts the exact batch-level
//! contract: every other job completes, results stay positionally aligned
//! with the requests, and the journal records the failure as a structured
//! `run_failed` / `run_timeout` event.

use sms_harness::{Event, Harness, HarnessConfig, RunError, RunLimits, RunRequest};
use sms_sim::config::RenderConfig;
use sms_sim::gpu::GpuConfig;
use sms_sim::rtunit::StackConfig;
use sms_sim::scene::SceneId;
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sms-fault-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quiet_harness(workers: usize, cache: Option<PathBuf>) -> Harness {
    Harness::new(HarnessConfig {
        workers,
        cache_dir: cache,
        journal_path: None,
        ..HarnessConfig::default()
    })
}

fn good(scene: SceneId, stack: StackConfig) -> RunRequest {
    RunRequest::new(scene, stack, RenderConfig::tiny())
}

/// A request whose simulation panics before retiring anything: zero SMs
/// makes the warp-distribution `wid % num_sms` divide by zero.
fn panicking() -> RunRequest {
    good(SceneId::Wknd, StackConfig::baseline8())
        .with_gpu(GpuConfig { num_sms: 0, ..GpuConfig::default() })
}

#[test]
fn injected_panic_is_isolated_and_journalled() {
    let reqs = [
        good(SceneId::Wknd, StackConfig::baseline8()),
        panicking(),
        good(SceneId::Wknd, StackConfig::sms_default()),
    ];
    for workers in [1, 4] {
        let harness = quiet_harness(workers, None);
        let (results, summary) = harness.try_run_batch(&reqs);

        // Partial results, in request order.
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap().scene, SceneId::Wknd);
        assert_eq!(results[0].as_ref().unwrap().stack, StackConfig::baseline8());
        assert_eq!(results[2].as_ref().unwrap().stack, StackConfig::sms_default());
        let err = results[1].as_ref().unwrap_err();
        assert_eq!(err.kind(), "panic");
        assert!(!err.is_timeout());
        assert!(
            matches!(err, RunError::Panicked { message, .. } if message.contains("divisor of zero")),
            "panic payload must survive to the caller: {err}"
        );

        assert_eq!(summary.failed, 1);
        assert_eq!(summary.cache_misses, 3, "the failed job still counted as scheduled");

        // Exactly one run_failed event, for the panicking job, kind=panic.
        let failures: Vec<Event> = harness
            .journal()
            .last_batch()
            .into_iter()
            .filter(|e| matches!(e, Event::RunFailed { .. }))
            .collect();
        assert_eq!(failures.len(), 1);
        assert!(matches!(
            &failures[0],
            Event::RunFailed { job: 1, kind, error, .. }
                if kind == "panic" && error.contains("divisor of zero")
        ));
        // And the healthy jobs finished normally.
        let finished = harness
            .journal()
            .last_batch()
            .iter()
            .filter(|e| matches!(e, Event::JobFinished { .. }))
            .count();
        assert_eq!(finished, 2);
    }
}

#[test]
fn cycle_budget_watchdog_aborts_with_snapshot() {
    let limits = RunLimits {
        max_cycles: Some(50),
        stall_cycles: None,
        validate: false,
        breakdown: false,
        metrics: false,
    };
    let reqs = [
        good(SceneId::Wknd, StackConfig::baseline8()).with_limits(limits),
        good(SceneId::Wknd, StackConfig::sms_default()),
    ];
    let harness = quiet_harness(2, None);
    let (results, summary) = harness.try_run_batch(&reqs);

    let err = results[0].as_ref().unwrap_err();
    assert_eq!(err.kind(), "cycle_budget");
    assert!(err.is_timeout());
    match err {
        RunError::CycleBudget { limit, at_cycle, snapshot } => {
            assert_eq!(*limit, 50);
            assert!(*at_cycle >= 50);
            assert!(snapshot.contains("SM"), "diagnostic snapshot must describe SM state");
        }
        other => panic!("expected CycleBudget, got {other}"),
    }
    assert!(results[1].is_ok(), "unlimited request must complete");
    assert_eq!(summary.failed, 1);

    let timeouts: Vec<Event> = harness
        .journal()
        .last_batch()
        .into_iter()
        .filter(|e| matches!(e, Event::RunTimeout { .. }))
        .collect();
    assert_eq!(timeouts.len(), 1);
    assert!(matches!(
        &timeouts[0],
        Event::RunTimeout { job: 0, kind, .. } if kind == "cycle_budget"
    ));
}

#[test]
fn stall_watchdog_aborts_livelocked_run() {
    // A 1-cycle stall tolerance treats the first memory-latency bubble as
    // a livelock — exactly the forward-progress detector firing.
    let limits = RunLimits {
        max_cycles: None,
        stall_cycles: Some(1),
        validate: false,
        breakdown: false,
        metrics: false,
    };
    let reqs = [
        good(SceneId::Wknd, StackConfig::baseline8()).with_limits(limits),
        good(SceneId::Wknd, StackConfig::baseline8()),
    ];
    let harness = quiet_harness(2, None);
    let (results, summary) = harness.try_run_batch(&reqs);

    let err = results[0].as_ref().unwrap_err();
    assert_eq!(err.kind(), "stalled");
    assert!(err.is_timeout());
    assert!(matches!(err, RunError::Stalled { stall_cycles: 1, .. }));
    assert!(results[1].is_ok(), "identical request without limits completes normally");
    assert_eq!(summary.failed, 1);
    assert_eq!(
        summary.unique_jobs, 2,
        "limits are not part of the dedupe key, but these differ in nothing else — \
         the watchdogged request and the free one must still be distinct jobs"
    );
}

#[test]
fn tight_stall_window_survives_long_but_live_run() {
    // Forward progress is counted in completed RT micro-events (fetch
    // responses, node-op commits, stack micro-ops), not just retired
    // traces: a stall window far below a single trace's duration — but
    // above the longest single memory round-trip (~400 cycles) — must let
    // a long-but-live run finish instead of flagging it as livelocked.
    // Two RB entries force constant spill traffic, stretching every trace.
    let limits = RunLimits {
        max_cycles: None,
        stall_cycles: Some(2_000),
        validate: false,
        breakdown: false,
        metrics: false,
    };
    let reqs = [good(SceneId::Ship, StackConfig::Baseline { rb_entries: 2 }).with_limits(limits)];
    let harness = quiet_harness(1, None);
    let (results, summary) = harness.try_run_batch(&reqs);

    let run = results[0].as_ref().expect("live run must survive the tight window");
    assert_eq!(summary.failed, 0);
    assert!(
        run.stats.cycles > 10 * 2_000,
        "run must be much longer than the stall window to prove the point (got {} cycles)",
        run.stats.cycles
    );
}

#[test]
fn corrupt_cache_entry_mid_sweep_heals_and_batch_completes() {
    let dir = temp_dir("corrupt");
    let reqs = [
        good(SceneId::Wknd, StackConfig::baseline8()),
        good(SceneId::Wknd, StackConfig::sms_default()),
        good(SceneId::Wknd, StackConfig::FullOnChip),
    ];
    let harness = quiet_harness(2, Some(dir.clone()));
    let (first, _) = harness.try_run_batch(&reqs);
    assert!(first.iter().all(Result::is_ok));

    // Corrupt one entry on disk, as a crashed writer or bad sector would.
    let cache = harness.cache().unwrap();
    let victim = cache.entry_path(&cache.key(&reqs[1]));
    std::fs::write(&victim, "\0\0not json").unwrap();

    let (second, summary) = harness.try_run_batch(&reqs);
    assert_eq!(summary.cache_hits, 2);
    assert_eq!(summary.cache_misses, 1, "only the corrupt entry re-simulates");
    assert_eq!(summary.failed, 0);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.as_ref().unwrap().stats, b.as_ref().unwrap().stats);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_sweep_resumes_from_journal_and_reruns_only_unfinished() {
    let dir = temp_dir("resume");
    std::fs::create_dir_all(&dir).unwrap();
    let journal_path = dir.join("journal.jsonl");

    // First sweep: two healthy runs and one injected failure, cache off —
    // the journal is the only survivor of the "crash".
    let first = Harness::new(HarnessConfig {
        workers: 2,
        cache_dir: None,
        journal_path: Some(journal_path.clone()),
        ..HarnessConfig::default()
    });
    let reqs = [
        good(SceneId::Wknd, StackConfig::baseline8()),
        panicking(),
        good(SceneId::Wknd, StackConfig::sms_default()),
    ];
    let (before, _) = first.try_run_batch(&reqs);
    assert!(before[0].is_ok() && before[2].is_ok() && before[1].is_err());

    // Second sweep resumes from the journal into a fresh cache. The two
    // finished runs replay without simulating; the failed one — now fixed
    // (a sane GPU config) — re-executes. A brand-new request also runs.
    let cache_dir = dir.join("cache");
    let resumed = Harness::new(HarnessConfig {
        workers: 2,
        cache_dir: Some(cache_dir.clone()),
        journal_path: None,
        resume: Some(journal_path),
        ..HarnessConfig::default()
    });
    let fixed = good(SceneId::Wknd, StackConfig::baseline8())
        .with_gpu(GpuConfig { num_sms: 4, ..GpuConfig::default() });
    let reqs2 = [reqs[0], fixed, reqs[2], good(SceneId::Wknd, StackConfig::FullOnChip)];
    let (after, summary) = resumed.try_run_batch(&reqs2);

    assert!(after.iter().all(Result::is_ok));
    assert_eq!(summary.resumed, 2, "both finished runs replay from the journal");
    assert_eq!(summary.cache_misses, 2, "only the fixed and the new request simulate");
    assert_eq!(summary.cache_hits, 0);
    assert_eq!(after[0].as_ref().unwrap().stats, before[0].as_ref().unwrap().stats);
    assert_eq!(after[2].as_ref().unwrap().stats, before[2].as_ref().unwrap().stats);

    let resumes = resumed
        .journal()
        .last_batch()
        .iter()
        .filter(|e| matches!(e, Event::JobResumed { .. }))
        .count();
    assert_eq!(resumes, 2);

    // Replayed results were backfilled into the cache: a third sweep of
    // the original requests is served without the resume file.
    let third = quiet_harness(2, Some(cache_dir));
    let (_, s3) = third.try_run_batch(&[reqs[0], reqs[2]]);
    assert_eq!(s3.cache_hits, 2);
    assert_eq!(s3.cache_misses, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_batch_still_panics_on_failure() {
    let caught = std::panic::catch_unwind(|| {
        let harness = quiet_harness(1, None);
        harness.run_batch(&[panicking()]);
    });
    assert!(caught.is_err(), "the strict API keeps fail-fast semantics");
}
