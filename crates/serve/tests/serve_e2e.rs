//! End-to-end contract of the sweep service over real sockets.
//!
//! Every test binds an ephemeral loopback port and drives a full server
//! through the public client (or a raw socket, for the fuzz cases):
//! lifecycle with graceful drain, stats byte-identity with the direct
//! simulation path, single-flight coalescing of concurrent identical
//! sweeps, structured per-job failures, malformed-request handling, and
//! two server processes sharing one cache directory.

use sms_serve::client::{Client, ClientConfig};
use sms_serve::server::{ServeConfig, Server};
use sms_sim::config::RenderConfig;
use sms_sim::experiments::try_run_prepared;
use sms_sim::gpu::GpuConfig;
use sms_sim::render::PreparedScene;
use sms_sim::rtunit::StackConfig;
use sms_sim::scene::SceneId;
use sms_sim::sim::RunLimits;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sms-serve-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn test_config(cache_dir: Option<PathBuf>) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        cache_dir,
        journal_path: None,
        ..ServeConfig::default()
    }
}

fn quick_client(addr: std::net::SocketAddr) -> Client {
    Client::with_config(ClientConfig {
        addr: addr.to_string(),
        retries: 2,
        base_backoff: Duration::from_millis(10),
        deadline: Duration::from_secs(120),
        ..ClientConfig::default()
    })
}

/// Full lifecycle: sweep → cache-probe → metrics → drain → clean exit,
/// with served stats byte-identical to a direct simulation, and the
/// journal left replayable.
#[test]
fn lifecycle_sweep_probe_metrics_drain() {
    let dir = temp_dir("lifecycle");
    let journal = dir.join("journal.jsonl");
    let config =
        ServeConfig { journal_path: Some(journal.clone()), ..test_config(Some(dir.join("cache"))) };
    let (handle, join) = Server::spawn(config).unwrap();
    let client = quick_client(handle.addr());

    assert_eq!(client.get("/healthz").unwrap().status, 200);

    let outcome = client.sweep(&["WKND", "SHIP"], &["RB_8", "RB_8+SH_8"], "tiny").unwrap();
    assert_eq!(outcome.records.len(), 4);
    for rec in &outcome.records {
        let stats = rec.outcome.as_ref().expect("all jobs must succeed");
        assert!(stats.cycles > 0);
        assert_eq!(rec.cache, "miss", "cold server must simulate");
    }
    let summary = outcome.summary.as_ref().expect("stream must close with batch_end");
    assert_eq!(summary.u64_field("jobs"), Some(4));
    assert_eq!(summary.u64_field("failed"), Some(0));

    // Byte identity: the served counters equal a direct in-process run.
    let render = RenderConfig::tiny();
    let prepared = PreparedScene::build(SceneId::Wknd, &render);
    let direct = try_run_prepared(
        &prepared,
        StackConfig::baseline8(),
        GpuConfig::default(),
        &render,
        &RunLimits::none(),
    )
    .unwrap();
    let served = *outcome
        .records
        .iter()
        .find(|r| r.scene == "WKND" && r.config == "RB_8")
        .unwrap()
        .outcome
        .as_ref()
        .unwrap();
    assert_eq!(served, direct.stats, "served stats must be byte-identical to a direct run");

    // Warm pass: every cell now comes from the shared cache.
    let warm = client.sweep(&["WKND", "SHIP"], &["RB_8", "RB_8+SH_8"], "tiny").unwrap();
    assert!(warm.records.iter().all(|r| r.cache == "hit"), "second sweep must be all cache hits");
    let warm_wknd = warm.records.iter().find(|r| r.scene == "WKND" && r.config == "RB_8");
    assert_eq!(*warm_wknd.unwrap().outcome.as_ref().unwrap(), direct.stats);

    // Cache probe answers without simulating; unknown cells 404.
    let probe = client.get("/v1/jobs/WKND/RB_8?render=tiny").unwrap();
    assert_eq!(probe.status, 200);
    assert!(probe.text().contains("\"stats\""));
    assert_eq!(client.get("/v1/jobs/WKND/RB_X?render=tiny").unwrap().status, 400);
    assert_eq!(client.get("/v1/jobs/WKND/RB_4?render=tiny").unwrap().status, 404);

    // Live metrics parse strictly and reflect the work done.
    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    sms_metrics::prom::validate(&text).expect("/metrics must parse strictly");
    assert!(text.contains("sms_serve_jobs_total 8"), "8 jobs served:\n{text}");
    assert!(text.contains("sms_serve_cache_hits_total 4"));
    assert!(text.contains("sms_serve_cache_misses_total 4"));

    // Graceful drain: 200, then the accept loop exits cleanly.
    assert_eq!(client.post("/v1/drain", &[]).unwrap().status, 200);
    join.join().unwrap().expect("drained server must exit cleanly");

    // The journal the server left behind is a valid resume source: all 4
    // unique cells are recoverable.
    let resumed = sms_harness::ResumeState::load(&journal);
    assert_eq!(resumed.len(), 4, "journal must replay every completed cell");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A drain requested while a sweep is in flight lets that sweep finish —
/// the response stream still closes with `batch_end` — before the process
/// exits.
#[test]
fn drain_finishes_in_flight_sweeps() {
    let dir = temp_dir("drain");
    let (handle, join) = Server::spawn(test_config(Some(dir.join("cache")))).unwrap();
    let addr = handle.addr();

    let sweeper = std::thread::spawn(move || {
        quick_client(addr).sweep(&["WKND"], &["RB_8", "RB_8+SH_8", "RB_FULL"], "tiny")
    });
    // Let the sweep get admitted, then drain mid-flight.
    std::thread::sleep(Duration::from_millis(30));
    let _ = quick_client(addr).post("/v1/drain", &[]);

    let outcome = sweeper.join().unwrap().expect("in-flight sweep must complete across a drain");
    assert_eq!(outcome.records.len(), 3);
    assert!(outcome.records.iter().all(|r| r.outcome.is_ok()));
    assert!(outcome.summary.is_some(), "stream must close with batch_end even while draining");
    join.join().unwrap().unwrap();

    // Once drained the listener is gone: connects fail or are reset.
    assert!(quick_client(addr).get("/healthz").is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Concurrent identical sweeps coalesce: with the disk cache off, N
/// clients asking for the same cell must not run N simulations.
#[test]
fn single_flight_coalesces_identical_in_flight_sweeps() {
    let (handle, join) = Server::spawn(test_config(None)).unwrap();
    let addr = handle.addr();
    const CLIENTS: usize = 4;

    let sweeps: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || quick_client(addr).sweep(&["SHIP"], &["RB_8+SH_8"], "tiny"))
        })
        .collect();
    let outcomes: Vec<_> =
        sweeps.into_iter().map(|t| t.join().unwrap().expect("sweep must succeed")).collect();

    let mut misses = 0usize;
    let mut shared = 0usize;
    let mut cycles = Vec::new();
    for outcome in &outcomes {
        assert_eq!(outcome.records.len(), 1);
        let rec = &outcome.records[0];
        match rec.cache.as_str() {
            "miss" => misses += 1,
            "shared" => shared += 1,
            other => panic!("cache-less server cannot serve `{other}`"),
        }
        cycles.push(rec.outcome.as_ref().unwrap().cycles);
    }
    assert_eq!(misses + shared, CLIENTS);
    assert!(misses >= 1, "someone must have simulated");
    assert!(shared >= 1, "concurrent identical sweeps must coalesce (got {misses} simulations)");
    cycles.dedup();
    assert_eq!(cycles.len(), 1, "every client must see the same result");

    // The metrics agree with the stream.
    let text = handle.render_metrics();
    assert!(text.contains(&format!("sms_serve_singleflight_shared_total {shared}")), "{text}");

    handle.request_drain();
    join.join().unwrap().unwrap();
}

/// A watchdog-aborted run comes back as a structured `run_timeout` stream
/// record — the connection survives, the other jobs finish, and the
/// server stays healthy.
#[test]
fn watchdog_abort_is_a_structured_stream_error() {
    let config = ServeConfig {
        run_limits: RunLimits { max_cycles: Some(50), ..RunLimits::none() },
        ..test_config(None)
    };
    let (handle, join) = Server::spawn(config).unwrap();
    let client = quick_client(handle.addr());

    let outcome = client.sweep(&["WKND"], &["RB_8"], "tiny").unwrap();
    assert_eq!(outcome.records.len(), 1);
    let err = outcome.records[0].outcome.as_ref().unwrap_err();
    assert!(err.contains("cycle budget"), "diagnostic must survive the wire: {err}");
    assert_eq!(outcome.summary.as_ref().unwrap().u64_field("failed"), Some(1));

    assert_eq!(client.get("/healthz").unwrap().status, 200, "server must survive job failures");
    let text = handle.render_metrics();
    assert!(text.contains("sms_serve_jobs_failed_total 1"), "{text}");

    handle.request_drain();
    join.join().unwrap().unwrap();
}

/// Raw-socket fuzz: malformed requests get 4xx responses, never a hang or
/// a dead server.
#[test]
fn malformed_requests_get_4xx_not_panic() {
    let (handle, join) = Server::spawn(test_config(None)).unwrap();
    let addr = handle.addr();

    let exchange = |payload: &[u8]| -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(payload).unwrap();
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        String::from_utf8_lossy(&out).into_owned()
    };
    let status = |resp: &str| -> u16 {
        resp.split(' ').nth(1).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
            panic!("no status line in response: {resp:?}");
        })
    };

    // (payload, expected status class or exact status)
    let cases: Vec<(Vec<u8>, u16)> = vec![
        (b"BLAH /v1/sweep HTTP/1.1\r\n\r\n".to_vec(), 400),
        (b"DELETE /v1/sweep HTTP/1.1\r\n\r\n".to_vec(), 405),
        (b"POST /v1/sweep HTTP/1.1\r\nContent-Length: nope\r\n\r\n".to_vec(), 400),
        (b"POST /v1/sweep HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n".to_vec(), 413),
        (b"POST /v1/sweep HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(), 501),
        (b"POST /v1/sweep HTTP/1.1\r\nContent-Length: 8\r\n\r\nnot json".to_vec(), 400),
        (
            {
                let body = br#"{"scenes":[],"configs":["RB_8"]}"#;
                let mut req =
                    format!("POST /v1/sweep HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len())
                        .into_bytes();
                req.extend_from_slice(body);
                req
            },
            400,
        ),
        (b"GET /v1/nope HTTP/1.1\r\n\r\n".to_vec(), 404),
        (b"GET /v1/jobs/NOPE/RB_8 HTTP/1.1\r\n\r\n".to_vec(), 400),
        (b"\xff\xfe\x00garbage\r\n\r\n".to_vec(), 400),
    ];
    for (payload, expected) in &cases {
        let resp = exchange(payload);
        assert_eq!(
            status(&resp),
            *expected,
            "payload {:?} must answer {expected}",
            String::from_utf8_lossy(payload)
        );
    }

    // An oversized sweep (beyond the per-request job cap) is a 400.
    let config =
        SceneId::ALL.iter().map(|s| format!("\"{}\"", s.name())).collect::<Vec<_>>().join(",");
    let configs: Vec<String> = (1..=64).map(|n| format!("\"RB_{n}\"")).collect();
    let body = format!("{{\"scenes\":[{config}],\"configs\":[{}]}}", configs.join(","));
    let oversized =
        format!("POST /v1/sweep HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len());
    let resp = exchange(oversized.as_bytes());
    assert_eq!(status(&resp), 400);
    assert!(resp.contains("exceeds"), "{resp}");

    // After all that abuse the server still works.
    assert_eq!(quick_client(addr).get("/healthz").unwrap().status, 200);
    let text = handle.render_metrics();
    assert!(text.contains("sms_serve_bad_requests_total"), "{text}");

    handle.request_drain();
    join.join().unwrap().unwrap();
}

/// Two server instances sharing one cache directory: a cell simulated by
/// the first is a disk hit for the second (the locked first-writer-wins
/// cache is the shared tier).
#[test]
fn two_servers_share_one_cache_dir() {
    let dir = temp_dir("shared-cache");
    let cache = dir.join("cache");

    let (handle_a, join_a) = Server::spawn(test_config(Some(cache.clone()))).unwrap();
    let cold = quick_client(handle_a.addr()).sweep(&["WKND"], &["RB_8"], "tiny").unwrap();
    assert_eq!(cold.records[0].cache, "miss");
    let stats_a = *cold.records[0].outcome.as_ref().unwrap();
    handle_a.request_drain();
    join_a.join().unwrap().unwrap();

    let (handle_b, join_b) = Server::spawn(test_config(Some(cache))).unwrap();
    let client_b = quick_client(handle_b.addr());
    let warm = client_b.sweep(&["WKND"], &["RB_8"], "tiny").unwrap();
    assert_eq!(warm.records[0].cache, "hit", "second instance must hit the shared cache");
    assert_eq!(*warm.records[0].outcome.as_ref().unwrap(), stats_a);
    // And its probe endpoint sees the other instance's work too.
    assert_eq!(client_b.get("/v1/jobs/WKND/RB_8?render=tiny").unwrap().status, 200);
    handle_b.request_drain();
    join_b.join().unwrap().unwrap();

    let _ = std::fs::remove_dir_all(&dir);
}
