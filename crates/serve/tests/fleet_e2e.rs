//! End-to-end contract of the fleet front tier over real sockets:
//! lifecycle with live backends, hedged dispatch past an injected
//! straggler, and strict `/metrics` output.

use sms_harness::FaultPlan;
use sms_metrics::prom;
use sms_serve::client::{Client, ClientConfig};
use sms_serve::fleet::{FleetConfig, FleetServer};
use sms_serve::server::{ServeConfig, Server};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sms-fleet-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn backend_config(cache_dir: PathBuf) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        cache_dir: Some(cache_dir),
        journal_path: None,
        ..ServeConfig::default()
    }
}

fn fleet_client(addr: std::net::SocketAddr) -> Client {
    Client::with_config(ClientConfig {
        addr: addr.to_string(),
        retries: 0,
        deadline: Duration::from_secs(300),
        ..ClientConfig::default()
    })
}

/// Two healthy backends behind one fleet: sweep cold then warm, probe the
/// cache through the fleet, scrape strict metrics, drain everything.
#[test]
fn lifecycle_sweep_probe_metrics_drain() {
    let dir = temp_dir("lifecycle");
    let cache = dir.join("cache");
    let (a, join_a) = Server::spawn(backend_config(cache.clone())).unwrap();
    let (b, join_b) = Server::spawn(backend_config(cache.clone())).unwrap();

    let config = FleetConfig {
        addr: "127.0.0.1:0".to_owned(),
        backends: vec![a.addr().to_string(), b.addr().to_string()],
        workers: 4,
        cache_dir: Some(cache),
        ..FleetConfig::default()
    };
    let (fleet, join_fleet) = FleetServer::spawn(config).unwrap();
    let client = fleet_client(fleet.addr());

    assert_eq!(client.get("/healthz").unwrap().status, 200);

    // Cold sweep: every cell simulated by some backend.
    let cold = client.sweep(&["WKND", "BUNNY"], &["RB_8", "RB_8+SH_8"], "tiny").unwrap();
    assert_eq!(cold.records.len(), 4);
    for rec in &cold.records {
        assert!(rec.outcome.is_ok(), "cold cell failed: {:?}", rec.outcome);
        assert_eq!(rec.cache, "miss", "cold fleet sweep must simulate");
    }
    assert!(cold.summary.is_some(), "stream must close with batch_end");

    // Warm sweep: pure cache hits via the backends' shared cache.
    let warm = client.sweep(&["WKND", "BUNNY"], &["RB_8", "RB_8+SH_8"], "tiny").unwrap();
    assert!(
        warm.records.iter().all(|r| r.cache == "hit"),
        "warm sweep must be pure hits: {:?}",
        warm.records.iter().map(|r| r.cache.clone()).collect::<Vec<_>>()
    );

    // Probe a swept cell through the fleet's own cache view.
    let probe = client.get("/v1/jobs/WKND/RB_8?render=tiny").unwrap();
    assert_eq!(probe.status, 200, "swept cell must probe as cached: {}", probe.text());

    // Metrics: strictly parseable, fleet families plus per-backend labels.
    let scrape = client.get("/metrics").unwrap();
    assert_eq!(scrape.status, 200);
    let text = scrape.text();
    prom::validate(&text).expect("fleet /metrics must parse strictly");
    assert!(text.contains("sms_fleet_cells_total 8"), "4 cold + 4 warm cells:\n{text}");
    assert!(text.contains("sms_fleet_cells_failed_total 0"));
    for backend in [a.addr(), b.addr()] {
        assert!(
            text.contains(&format!("sms_fleet_backend_up{{backend=\"{backend}\"}} 1")),
            "both backends must report up:\n{text}"
        );
    }

    // Drain the fleet over the wire, then the backends.
    assert_eq!(client.post("/v1/drain", b"").unwrap().status, 200);
    join_fleet.join().unwrap().unwrap();
    a.request_drain();
    b.request_drain();
    join_a.join().unwrap().unwrap();
    join_b.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Backend A answers every request with a long injected delay; with
/// hedging enabled the duplicate dispatch on backend B must win the cell
/// long before A wakes up.
#[test]
fn hedge_overtakes_an_injected_straggler() {
    let dir = temp_dir("hedge");
    let cache = dir.join("cache");
    let slow = ServeConfig {
        faults: Some(Arc::new(FaultPlan::parse("delay:every=1,ms=30000").unwrap())),
        ..backend_config(cache.clone())
    };
    // The straggler is deliberately never drained: its delayed in-flight
    // connection would hold a graceful drain hostage for the full
    // injected stall. The test harness exiting reaps the thread.
    let (a, _join_a) = Server::spawn(slow).unwrap();
    let (b, join_b) = Server::spawn(backend_config(cache.clone())).unwrap();

    let config = FleetConfig {
        addr: "127.0.0.1:0".to_owned(),
        // A first: least-loaded routing sends the primary dispatch to the
        // straggler, so only a hedge can save the cell's latency.
        backends: vec![a.addr().to_string(), b.addr().to_string()],
        workers: 2,
        breaker_threshold: 10,
        hedge_after: Some(Duration::from_millis(100)),
        cache_dir: Some(cache),
        ..FleetConfig::default()
    };
    let (fleet, join_fleet) = FleetServer::spawn(config).unwrap();

    let t0 = Instant::now();
    let outcome = fleet_client(fleet.addr()).sweep(&["WKND"], &["RB_8"], "tiny").unwrap();
    let elapsed = t0.elapsed();
    assert_eq!(outcome.records.len(), 1);
    assert!(outcome.records[0].outcome.is_ok(), "hedged cell must succeed");
    assert!(
        elapsed < Duration::from_secs(25),
        "hedge must beat the 30s injected stall (took {elapsed:?})"
    );

    let metrics = fleet.render_metrics();
    let count = |name: &str| -> u64 {
        metrics
            .lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing:\n{metrics}"))
    };
    assert!(count("sms_fleet_hedges_total") >= 1, "a hedge must have fired:\n{metrics}");
    assert!(count("sms_fleet_hedge_wins_total") >= 1, "the hedge must have won:\n{metrics}");

    fleet.request_drain();
    join_fleet.join().unwrap().unwrap();
    let _ = a; // see above: not drained
    b.request_drain();
    join_b.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
