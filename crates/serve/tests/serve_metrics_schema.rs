//! `/metrics` schema stability, in the style of
//! `crates/core/tests/metrics_schema.rs`: the exact Prometheus rendering
//! is the interface dashboards scrape, so it is pinned as a golden
//! string. If a change is intentional, it is a schema migration — update
//! the serving metric rows in `EXPERIMENTS.md` and any scrape configs.

use sms_serve::metrics::ServerMetrics;

/// A deterministic instrument state: every counter distinct (so a swapped
/// rendering cannot pass), both histograms populated, uptime pinned.
fn sample_metrics() -> ServerMetrics {
    let m = ServerMetrics::new();
    let bump = |c: &std::sync::atomic::AtomicU64, n: u64| {
        for _ in 0..n {
            ServerMetrics::inc(c);
        }
    };
    bump(&m.requests, 9);
    bump(&m.bad_requests, 2);
    bump(&m.shed, 1);
    bump(&m.jobs, 8);
    bump(&m.jobs_in_flight, 3);
    bump(&m.cache_hits, 4);
    bump(&m.cache_misses, 3);
    bump(&m.singleflight_shared, 1);
    bump(&m.jobs_failed, 1);
    m.observe_request(250);
    m.observe_request(900);
    m.observe_job(1000);
    m
}

const GOLDEN_PROM: &str = r#"# HELP sms_serve_uptime_seconds Seconds since the server started
# TYPE sms_serve_uptime_seconds gauge
sms_serve_uptime_seconds 12.5
# HELP sms_serve_requests_total HTTP requests accepted for processing
# TYPE sms_serve_requests_total counter
sms_serve_requests_total 9
# HELP sms_serve_bad_requests_total Requests refused with a 4xx status
# TYPE sms_serve_bad_requests_total counter
sms_serve_bad_requests_total 2
# HELP sms_serve_shed_total Connections shed with 503 at the admission gate
# TYPE sms_serve_shed_total counter
sms_serve_shed_total 1
# HELP sms_serve_jobs_total Sweep jobs admitted
# TYPE sms_serve_jobs_total counter
sms_serve_jobs_total 8
# HELP sms_serve_jobs_in_flight Jobs currently executing or queued
# TYPE sms_serve_jobs_in_flight gauge
sms_serve_jobs_in_flight 3
# HELP sms_serve_cache_hits_total Jobs served from the shared result cache
# TYPE sms_serve_cache_hits_total counter
sms_serve_cache_hits_total 4
# HELP sms_serve_cache_misses_total Jobs that ran the simulator
# TYPE sms_serve_cache_misses_total counter
sms_serve_cache_misses_total 3
# HELP sms_serve_singleflight_shared_total Jobs that attached to another request's in-flight execution
# TYPE sms_serve_singleflight_shared_total counter
sms_serve_singleflight_shared_total 1
# HELP sms_serve_jobs_failed_total Jobs that ended in a structured error
# TYPE sms_serve_jobs_failed_total counter
sms_serve_jobs_failed_total 1
# HELP sms_serve_request_latency_us Wall-clock per handled request, microseconds
# TYPE sms_serve_request_latency_us histogram
sms_serve_request_latency_us_bucket{le="255"} 1
sms_serve_request_latency_us_bucket{le="959"} 2
sms_serve_request_latency_us_bucket{le="+Inf"} 2
sms_serve_request_latency_us_sum 1150
sms_serve_request_latency_us_count 2
# HELP sms_serve_job_latency_us Wall-clock per finished job, microseconds
# TYPE sms_serve_job_latency_us histogram
sms_serve_job_latency_us_bucket{le="1023"} 1
sms_serve_job_latency_us_bucket{le="+Inf"} 1
sms_serve_job_latency_us_sum 1000
sms_serve_job_latency_us_count 1
"#;

#[test]
fn serve_metrics_match_golden() {
    let text = sample_metrics().registry(Some(12.5)).render_prometheus();
    if text != GOLDEN_PROM {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/serve_metrics_actual.prom");
        let _ = std::fs::write(path, &text);
        panic!("serve metrics schema drift — actual dump written to {path}");
    }
    // The golden parses under the strict promlint validator, like every
    // live scrape must.
    let samples = sms_metrics::prom::validate(GOLDEN_PROM).expect("golden must parse strictly");
    assert!(samples > 0);
}
