//! Distributed-tracing end to end: one client trace context must survive
//! hedged and retried dispatch across two backends, with every span the
//! fleet and the backends record sharing the client's trace id and
//! parenting into one tree — and with tracing disarmed, journals must
//! carry no span lines at all (byte-identity with the pre-tracing tier).
//!
//! The trace context is injected via `ClientConfig::trace` (never the
//! environment — tests run in parallel), and hedging/failure are made
//! deterministic structurally: a zero hedge threshold hedges every cell,
//! a bound-then-dropped port refuses every dispatch.

use sms_harness::json::{parse, Json};
use sms_harness::TraceContext;
use sms_serve::client::{Client, ClientConfig};
use sms_serve::fleet::{FleetConfig, FleetServer};
use sms_serve::server::{ServeConfig, Server};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sms-trace-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn backend_config(cache_dir: PathBuf, journal: Option<PathBuf>) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        cache_dir: Some(cache_dir),
        journal_path: journal,
        ..ServeConfig::default()
    }
}

fn traced_client(addr: std::net::SocketAddr, ctx: Option<TraceContext>) -> Client {
    Client::with_config(ClientConfig {
        addr: addr.to_string(),
        retries: 0,
        deadline: Duration::from_secs(300),
        trace: ctx,
        ..ClientConfig::default()
    })
}

/// All span documents in a journal, in write order.
fn spans(journal: &Path) -> Vec<Json> {
    std::fs::read_to_string(journal)
        .unwrap_or_default()
        .lines()
        .filter_map(|l| parse(l).ok())
        .filter(|d| d.get("event").and_then(|e| e.as_str()) == Some("span"))
        .collect()
}

fn field<'a>(doc: &'a Json, name: &str) -> &'a str {
    doc.get(name).and_then(|v| v.as_str()).unwrap_or_default()
}

fn attr<'a>(doc: &'a Json, name: &str) -> &'a str {
    doc.get("attrs").and_then(|a| a.get(name)).and_then(|v| v.as_str()).unwrap_or_default()
}

/// Hedged sweep: with a zero hedge threshold every cell fires a duplicate
/// dispatch, so the journal must show — under one trace id — the fleet
/// sweep parented on the client's span, cells parented on the sweep, and
/// per cell one winning dispatch plus one hedge loser recorded as
/// cancelled at the decision point.
#[test]
fn hedged_sweep_keeps_one_trace_and_cancels_the_loser() {
    let dir = temp_dir("hedge");
    let cache = dir.join("cache");
    let b_journal = dir.join("backend-b.jsonl");

    let (handle_a, join_a) = Server::spawn(backend_config(cache.clone(), None)).unwrap();
    let (handle_b, join_b) =
        Server::spawn(backend_config(cache.clone(), Some(b_journal.clone()))).unwrap();

    let journal = dir.join("fleet.jsonl");
    let config = FleetConfig {
        addr: "127.0.0.1:0".to_owned(),
        backends: vec![handle_a.addr().to_string(), handle_b.addr().to_string()],
        workers: 2,
        hedge_after: Some(Duration::ZERO),
        journal_path: Some(journal.clone()),
        cache_dir: Some(cache),
        ..FleetConfig::default()
    };
    let (fleet, join_fleet) = FleetServer::spawn(config).unwrap();

    let ctx = TraceContext::root();
    let outcome = traced_client(fleet.addr(), Some(ctx))
        .sweep(&["WKND"], &["RB_8", "RB_8+SH_8"], "tiny")
        .unwrap();
    assert_eq!(outcome.records.len(), 2);
    assert!(outcome.records.iter().all(|r| r.outcome.is_ok()));

    fleet.request_drain();
    join_fleet.join().unwrap().unwrap();
    handle_a.request_drain();
    join_a.join().unwrap().unwrap();
    handle_b.request_drain();
    join_b.join().unwrap().unwrap();

    let fleet_spans = spans(&journal);
    assert!(!fleet_spans.is_empty(), "traced sweep must record spans");
    for s in &fleet_spans {
        assert_eq!(field(s, "trace"), ctx.trace_hex(), "one trace id end to end: {s}");
    }

    let sweep: Vec<&Json> = fleet_spans.iter().filter(|s| field(s, "name") == "sweep").collect();
    assert_eq!(sweep.len(), 1, "exactly one fleet sweep span");
    assert_eq!(field(sweep[0], "parent"), ctx.span_hex(), "sweep parents on the client root");
    assert_eq!(field(sweep[0], "kind"), "server");

    let cells: Vec<&Json> = fleet_spans.iter().filter(|s| field(s, "name") == "cell").collect();
    assert_eq!(cells.len(), 2, "one cell span per deduped cell");
    for c in &cells {
        assert_eq!(field(c, "parent"), field(sweep[0], "span"), "cells parent on the sweep");
    }

    let dispatches: Vec<&Json> =
        fleet_spans.iter().filter(|s| field(s, "name") == "dispatch").collect();
    let hedged: Vec<&&Json> = dispatches.iter().filter(|d| attr(d, "hedge") == "1").collect();
    assert!(!hedged.is_empty(), "a zero hedge threshold must fire hedges");
    for h in &hedged {
        assert!(
            cells.iter().any(|c| field(c, "span") == field(h, "parent")),
            "hedge dispatch must parent on its cell span: {h}"
        );
    }
    let cancelled: Vec<&&Json> =
        dispatches.iter().filter(|d| attr(d, "outcome") == "cancelled").collect();
    assert!(!cancelled.is_empty(), "the hedge race's loser must be recorded as cancelled");
    // Per cell with both an ok and a cancelled dispatch, they must ride
    // different backends — that is the hedge.
    for c in &cells {
        let of_cell: Vec<&&Json> =
            dispatches.iter().filter(|d| field(d, "parent") == field(c, "span")).collect();
        let ok = of_cell.iter().find(|d| attr(d, "outcome") == "ok");
        let lost = of_cell.iter().find(|d| attr(d, "outcome") == "cancelled");
        if let (Some(ok), Some(lost)) = (ok, lost) {
            assert_ne!(attr(ok, "backend"), attr(lost, "backend"), "hedge must change backends");
        }
    }

    // Cross-process: backend B's spans continue the same trace, and its
    // sweep spans parent on fleet dispatch spans.
    let b_spans = spans(&b_journal);
    if !b_spans.is_empty() {
        for s in &b_spans {
            assert_eq!(field(s, "trace"), ctx.trace_hex(), "backend continues the trace: {s}");
        }
        for s in b_spans.iter().filter(|s| field(s, "name") == "sweep") {
            assert!(
                dispatches.iter().any(|d| field(d, "span") == field(s, "parent")),
                "backend sweep must parent on a fleet dispatch span: {s}"
            );
        }
        assert!(
            b_spans.iter().any(|s| field(s, "name") == "job" && !attr(s, "cell").is_empty()),
            "backend must record job spans with a cell attribute"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Retried sweep: the primary backend refuses every connection, so the
/// first dispatch errors and the retry steals the cell to the healthy
/// backend — two dispatch spans under one cell, attempts 1 and 2, on
/// different backends, still one trace id.
#[test]
fn retried_sweep_records_both_attempts_under_one_trace() {
    let dir = temp_dir("retry");
    let cache = dir.join("cache");

    // Bind-then-drop: a port that deterministically refuses.
    let dead = std::net::TcpListener::bind("127.0.0.1:0").unwrap().local_addr().unwrap();
    let (handle_b, join_b) = Server::spawn(backend_config(cache.clone(), None)).unwrap();

    let journal = dir.join("fleet.jsonl");
    let config = FleetConfig {
        addr: "127.0.0.1:0".to_owned(),
        backends: vec![dead.to_string(), handle_b.addr().to_string()],
        workers: 1,
        breaker_threshold: 1,
        breaker_cooldown: Duration::from_secs(10),
        cell_attempts: 4,
        journal_path: Some(journal.clone()),
        cache_dir: Some(cache),
        ..FleetConfig::default()
    };
    let (fleet, join_fleet) = FleetServer::spawn(config).unwrap();

    let ctx = TraceContext::root();
    let outcome =
        traced_client(fleet.addr(), Some(ctx)).sweep(&["WKND"], &["RB_8"], "tiny").unwrap();
    assert_eq!(outcome.records.len(), 1);
    assert!(outcome.records[0].outcome.is_ok(), "retry must rescue the cell");

    fleet.request_drain();
    join_fleet.join().unwrap().unwrap();
    handle_b.request_drain();
    join_b.join().unwrap().unwrap();

    let fleet_spans = spans(&journal);
    for s in &fleet_spans {
        assert_eq!(field(s, "trace"), ctx.trace_hex());
    }
    let dispatches: Vec<&Json> =
        fleet_spans.iter().filter(|s| field(s, "name") == "dispatch").collect();
    let first = dispatches.iter().find(|d| attr(d, "attempt") == "1").expect("attempt 1 span");
    let second = dispatches.iter().find(|d| attr(d, "attempt") == "2").expect("attempt 2 span");
    assert_eq!(attr(first, "outcome"), "error", "the dead backend must error");
    assert_eq!(attr(first, "backend"), dead.to_string());
    assert_eq!(attr(second, "outcome"), "ok");
    assert_eq!(attr(second, "backend"), handle_b.addr().to_string());
    assert_eq!(
        field(first, "parent"),
        field(second, "parent"),
        "both attempts belong to the same cell span"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Tracing disarmed (no `ClientConfig::trace`, no header): neither the
/// fleet nor the backend journal may contain a single span line — the
/// byte-identity contract with the pre-tracing tier.
#[test]
fn untraced_sweep_records_no_span_lines() {
    let dir = temp_dir("off");
    let cache = dir.join("cache");
    let b_journal = dir.join("backend.jsonl");

    let (handle, join) =
        Server::spawn(backend_config(cache.clone(), Some(b_journal.clone()))).unwrap();
    let journal = dir.join("fleet.jsonl");
    let config = FleetConfig {
        addr: "127.0.0.1:0".to_owned(),
        backends: vec![handle.addr().to_string()],
        workers: 2,
        journal_path: Some(journal.clone()),
        cache_dir: Some(cache),
        ..FleetConfig::default()
    };
    let (fleet, join_fleet) = FleetServer::spawn(config).unwrap();

    let outcome = traced_client(fleet.addr(), None).sweep(&["WKND"], &["RB_8"], "tiny").unwrap();
    assert!(outcome.records[0].outcome.is_ok());

    fleet.request_drain();
    join_fleet.join().unwrap().unwrap();
    handle.request_drain();
    join.join().unwrap().unwrap();

    assert!(spans(&journal).is_empty(), "untraced fleet journal must carry no span lines");
    assert!(spans(&b_journal).is_empty(), "untraced backend journal must carry no span lines");
    let _ = std::fs::remove_dir_all(&dir);
}
