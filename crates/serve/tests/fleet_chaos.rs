//! Seeded chaos: the fleet must lose zero cells when a backend dies
//! mid-sweep, recover torn journal tails, and degrade to cache-only
//! serving when every backend is down.
//!
//! Fault injection is the deterministic `FaultPlan` layer (`SMS_FAULT`),
//! configured directly on the backend `ServeConfig` so each test controls
//! exactly which backend misbehaves and how.

use sms_harness::cache::stats_to_json;
use sms_harness::{FaultPlan, Harness, HarnessConfig, ResultCache, ResumeState, RunRequest};
use sms_serve::client::{Client, ClientConfig};
use sms_serve::fleet::{FleetConfig, FleetServer};
use sms_serve::server::{ServeConfig, Server};
use sms_sim::config::RenderConfig;
use sms_sim::gpu::{GpuConfig, SimStats};
use sms_sim::rtunit::StackConfig;
use sms_sim::scene::SceneId;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const SCENES: [SceneId; 2] = [SceneId::Wknd, SceneId::Bunny];
const SCENE_NAMES: [&str; 2] = ["WKND", "BUNNY"];
const CONFIG_NAMES: [&str; 3] = ["RB_8", "RB_8+SH_8", "RB_8+SH_8+SK+RA"];

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sms-fleet-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn backend_config(cache_dir: PathBuf) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        cache_dir: Some(cache_dir),
        journal_path: None,
        ..ServeConfig::default()
    }
}

fn fleet_config(backends: Vec<String>, cache_dir: PathBuf) -> FleetConfig {
    FleetConfig {
        addr: "127.0.0.1:0".to_owned(),
        backends,
        workers: 2,
        breaker_threshold: 1,
        breaker_cooldown: Duration::from_secs(10),
        cell_attempts: 4,
        cache_dir: Some(cache_dir),
        ..FleetConfig::default()
    }
}

fn fleet_client(addr: std::net::SocketAddr) -> Client {
    Client::with_config(ClientConfig {
        addr: addr.to_string(),
        retries: 0,
        deadline: Duration::from_secs(300),
        ..ClientConfig::default()
    })
}

/// The grid's requests, built exactly the way the wire protocol builds
/// them, so cache keys and stats line up with the served cells.
fn grid_requests() -> Vec<RunRequest> {
    let render = RenderConfig::tiny();
    let mut requests = Vec::new();
    for &scene in &SCENES {
        for name in CONFIG_NAMES {
            let stack = parse_config(name);
            requests.push(RunRequest::new(scene, stack, render).with_gpu(GpuConfig::default()));
        }
    }
    requests
}

fn parse_config(label: &str) -> StackConfig {
    // Mirror of the wire labels used above; panics on a typo in the test.
    match label {
        "RB_8" => StackConfig::baseline8(),
        "RB_8+SH_8" => StackConfig::Sms(sms_sim::rtunit::SmsParams {
            rb_entries: 8,
            sh_entries: 8,
            ..sms_sim::rtunit::SmsParams::default()
        }),
        "RB_8+SH_8+SK+RA" => StackConfig::Sms(
            sms_sim::rtunit::SmsParams {
                rb_entries: 8,
                sh_entries: 8,
                ..sms_sim::rtunit::SmsParams::default()
            }
            .with_skewed(true)
            .with_realloc(true),
        ),
        other => panic!("unknown test config label `{other}`"),
    }
}

/// A backend is killed (deterministically, by fault injection) after its
/// first completed job, mid-sweep. The fleet must finish every cell via
/// the surviving backend, with stats byte-identical to a direct
/// simulation, and leave a resumable fleet journal.
#[test]
fn killed_backend_mid_sweep_loses_no_cells() {
    let dir = temp_dir("kill");
    let cache = dir.join("cache");

    // Backend A dies after 1 completed job; backend B is healthy.
    let faulty = ServeConfig {
        workers: 1,
        faults: Some(Arc::new(FaultPlan::parse("kill:jobs=1").unwrap())),
        ..backend_config(cache.clone())
    };
    let (handle_a, join_a) = Server::spawn(faulty).unwrap();
    let (handle_b, join_b) = Server::spawn(backend_config(cache.clone())).unwrap();

    let journal = dir.join("fleet-journal.jsonl");
    let config = FleetConfig {
        journal_path: Some(journal.clone()),
        ..fleet_config(vec![handle_a.addr().to_string(), handle_b.addr().to_string()], cache)
    };
    let (fleet, join_fleet) = FleetServer::spawn(config).unwrap();

    let outcome = fleet_client(fleet.addr()).sweep(&SCENE_NAMES, &CONFIG_NAMES, "tiny").unwrap();
    assert_eq!(outcome.records.len(), 6, "every cell must settle");
    let summary = outcome.summary.as_ref().expect("stream must close with batch_end");
    assert_eq!(summary.u64_field("failed"), Some(0), "zero lost cells");

    // Backend A must actually have died of the injected kill.
    let died = join_a.join().unwrap();
    assert!(died.is_err(), "backend A must crash, not drain: {died:?}");

    // Byte identity with the direct, fleet-less simulation path.
    let harness = Harness::new(HarnessConfig { workers: 1, cache_dir: None, ..Default::default() });
    let requests = grid_requests();
    let (direct, _) = harness.run_batch(&requests);
    for (req, direct_run) in requests.iter().zip(&direct) {
        let label = req.stack.label();
        let served = outcome
            .records
            .iter()
            .find(|r| r.scene == req.scene.name() && r.config == label)
            .unwrap_or_else(|| {
                panic!("cell {}/{label} missing from fleet stream", req.scene.name())
            });
        let served_stats = served.outcome.as_ref().expect("cell must succeed");
        assert_eq!(
            stats_to_json(served_stats).to_string(),
            stats_to_json(&direct_run.stats).to_string(),
            "fleet-served stats must be byte-identical to a direct run"
        );
    }

    // The fleet journal replays: every cell has a keyed finished record.
    let resume = ResumeState::load(&journal);
    assert_eq!(resume.len(), 6, "fleet journal must be resumable for all cells");

    fleet.request_drain();
    join_fleet.join().unwrap().unwrap();
    handle_b.request_drain();
    join_b.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A killed backend with `journal_torn` leaves a half-written journal
/// tail. The tear must be real (last line unparseable), the resume loader
/// must shrug it off, and the fleet sweep must still complete.
#[test]
fn torn_backend_journal_recovers_through_fleet() {
    let dir = temp_dir("torn");
    let cache = dir.join("cache");
    let a_journal = dir.join("backend-a-journal.jsonl");

    let faulty = ServeConfig {
        workers: 1,
        journal_path: Some(a_journal.clone()),
        faults: Some(Arc::new(FaultPlan::parse("kill:jobs=2;journal_torn").unwrap())),
        ..backend_config(cache.clone())
    };
    let (handle_a, join_a) = Server::spawn(faulty).unwrap();
    let (handle_b, join_b) = Server::spawn(backend_config(cache.clone())).unwrap();

    let config =
        fleet_config(vec![handle_a.addr().to_string(), handle_b.addr().to_string()], cache);
    let (fleet, join_fleet) = FleetServer::spawn(config).unwrap();

    let outcome = fleet_client(fleet.addr()).sweep(&SCENE_NAMES, &CONFIG_NAMES, "tiny").unwrap();
    assert_eq!(outcome.records.len(), 6);
    assert!(outcome.records.iter().all(|r| r.outcome.is_ok()), "no cell may be lost");
    assert!(join_a.join().unwrap().is_err(), "backend A must crash");
    drop(handle_a);

    // The tear is real: the journal's final line is half-written.
    let text = std::fs::read_to_string(&a_journal).unwrap();
    let last = text.lines().last().expect("journal must not be empty");
    assert!(
        sms_harness::json::parse(last).is_err(),
        "injected tear must leave an unparseable tail line, got `{last}`"
    );

    // And the resume loader recovers everything before the tear.
    let resume = ResumeState::load(&a_journal);
    assert!(!resume.is_empty(), "resume must recover the completed jobs ahead of the torn tail");

    fleet.request_drain();
    join_fleet.join().unwrap().unwrap();
    handle_b.request_drain();
    join_b.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// With every backend down, cached cells are still served (degraded
/// mode) and uncached sweeps are shed with a `Retry-After` matching the
/// breaker cooldown — never queued, never hung.
#[test]
fn all_backends_down_serves_cache_and_sheds_misses() {
    let dir = temp_dir("down");
    let cache_dir = dir.join("cache");
    std::fs::create_dir_all(&cache_dir).unwrap();

    // A dead backend: bind-then-drop guarantees a refusing port.
    let dead = std::net::TcpListener::bind("127.0.0.1:0").unwrap().local_addr().unwrap();

    // Pre-warm exactly one cell in the shared cache, with recognizable
    // stats so a cache-served response is provable.
    let warm_req = RunRequest::new(SceneId::Wknd, StackConfig::baseline8(), RenderConfig::tiny())
        .with_gpu(GpuConfig::default());
    let cache = ResultCache::new(&cache_dir);
    let warm_stats = SimStats { cycles: 424_242, node_visits: 7, ..Default::default() };
    cache.store(&cache.key(&warm_req), &warm_stats);

    let config = FleetConfig {
        breaker_cooldown: Duration::from_secs(5),
        cell_attempts: 2,
        ..fleet_config(vec![dead.to_string()], cache_dir)
    };
    let (fleet, join_fleet) = FleetServer::spawn(config).unwrap();
    let client = fleet_client(fleet.addr());

    // Sweep of the cached cell: first round opens the breaker (connect
    // refused), second round serves the cell from cache.
    let outcome = client.sweep(&["WKND"], &["RB_8"], "tiny").unwrap();
    assert_eq!(outcome.records.len(), 1);
    let rec = &outcome.records[0];
    assert_eq!(rec.cache, "hit", "degraded mode must serve from cache");
    assert_eq!(
        rec.outcome.as_ref().unwrap().cycles,
        424_242,
        "served stats must be the cached entry"
    );
    let metrics = fleet.render_metrics();
    assert!(
        !metrics.contains("sms_fleet_degraded_hits_total 0"),
        "degraded hit must be counted:\n{metrics}"
    );

    // An uncached sweep is shed before the stream starts, with the
    // cooldown-derived Retry-After (write_error's hardcoded 1s would be
    // wrong here). Raw socket, so the header is visible.
    let mut stream = TcpStream::connect(fleet.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let body = br#"{"scenes":["WKND"],"configs":["RB_8+SH_8"],"render":"tiny"}"#;
    write!(
        stream,
        "POST /v1/sweep HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .unwrap();
    stream.write_all(body).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 503"), "uncached sweep must shed: {response}");
    assert!(
        response.contains("Retry-After: 5"),
        "Retry-After must match the breaker cooldown: {response}"
    );

    fleet.request_drain();
    join_fleet.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
