//! The resident sweep server.
//!
//! One process holds the warm state a fleet of one-shot CLI sweeps keeps
//! rebuilding: prepared scenes (BVH included), the shared on-disk result
//! cache, the JSONL journal, and a live metrics registry. Requests are
//! split into `(scene, config, render)` jobs, deduplicated two ways —
//! within a request (like `Harness::try_run_batch`) and *across* requests
//! via a single-flight table, so two clients sweeping the same cell share
//! one execution — then run on the `sms-harness` worker pool with global
//! admission permits bounding concurrent simulations.
//!
//! Failure containment mirrors the harness: a panicking or
//! watchdog-aborted job becomes a structured `run_failed`/`run_timeout`
//! stream record, never a dropped connection; a stalled peer hits the
//! per-connection socket timeouts; an overloaded server sheds connections
//! and over-quota job batches with `503` + `Retry-After` instead of
//! queueing unboundedly.
//!
//! Shutdown is a drain: `POST /v1/drain` (or SIGTERM in the binary) stops
//! the accept loop, lets in-flight connections finish, flushes the
//! journal, and returns from [`Server::run`] — the process exits 0. An
//! abrupt kill instead leaves the journal replayable via `SMS_RESUME`
//! (each job's `job_queued`/`job_finished` lines are flushed as written).

use crate::http::{self, ChunkedWriter, HttpError, Limits, Request};
use crate::metrics::ServerMetrics;
use crate::protocol::{self, parse_render, parse_stack_config};
use sms_harness::json::Json;
use sms_harness::log::env_positive;
use sms_harness::trace::wall_us;
use sms_harness::{pool, CacheKey, Event, Journal, ResultCache, RunError, TraceContext};
use sms_sim::config::RenderConfig;
use sms_sim::experiments::try_run_prepared;
use sms_sim::gpu::SimStats;
use sms_sim::render::PreparedScene;
use sms_sim::sim::RunLimits;
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Process-wide drain request flag, for the binary's SIGTERM handler
/// (a signal handler cannot reach into an [`Arc`]). The accept loop polls
/// it alongside the server's own flag.
static SIGNAL_DRAIN: AtomicBool = AtomicBool::new(false);

/// The flag a signal handler may set to request a graceful drain.
pub fn signal_drain_flag() -> &'static AtomicBool {
    &SIGNAL_DRAIN
}

/// Construction-time server knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads per sweep request *and* the global cap on
    /// concurrently executing simulations across all requests.
    pub workers: usize,
    /// Active-connection bound; connections beyond it are shed with 503.
    pub max_conns: usize,
    /// Per-request job cap (`scenes × configs`); larger sweeps get a 400.
    pub max_jobs_per_request: usize,
    /// Global in-flight job bound; sweeps that would exceed it are shed
    /// with 503 + `Retry-After`.
    pub max_inflight_jobs: usize,
    /// HTTP parsing limits and socket timeouts.
    pub limits: Limits,
    /// Shared result-cache directory; `None` disables the warm disk tier.
    pub cache_dir: Option<PathBuf>,
    /// JSONL journal path; `None` keeps the journal in memory only.
    pub journal_path: Option<PathBuf>,
    /// Watchdog limits applied to every served run. The observation
    /// arms (`breakdown`/`metrics`) are ignored: served streams carry
    /// `SimStats` only, byte-identical either way.
    pub run_limits: RunLimits,
    /// Deterministic fault-injection plan (`SMS_FAULT`), threaded through
    /// the accept/respond paths and the cache. `None` (the default) means
    /// no fault code runs at all — behaviour is byte-identical to a build
    /// without the chaos layer.
    pub faults: Option<Arc<sms_harness::FaultPlan>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers,
            max_conns: 64,
            max_jobs_per_request: 256,
            max_inflight_jobs: (workers * 8).max(64),
            limits: Limits::default(),
            cache_dir: Some(default_cache_dir()),
            journal_path: None,
            run_limits: RunLimits::none(),
            faults: None,
        }
    }
}

fn default_cache_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/sms-cache"))
}

impl ServeConfig {
    /// Reads the environment knobs:
    ///
    /// * `SMS_SERVE_ADDR` — bind address (default `127.0.0.1:7745`).
    /// * `SMS_SERVE_WORKERS` — worker threads / concurrent simulations.
    /// * `SMS_SERVE_MAX_CONNS` — active-connection bound.
    /// * `SMS_SERVE_MAX_JOBS` — per-request job cap.
    /// * `SMS_SERVE_MAX_INFLIGHT` — global in-flight job bound.
    /// * `SMS_SERVE_TIMEOUT_MS` — socket read timeout.
    /// * `SMS_SERVE_MAX_BODY` — request-body byte cap.
    /// * `SMS_CACHE_DIR` / `SMS_NO_CACHE=1` — shared cache directory.
    /// * `SMS_SERVE_JOURNAL` (or `SMS_JOURNAL`) — journal path.
    /// * `SMS_MAX_CYCLES` / `SMS_STALL_CYCLES` / `SMS_VALIDATE` — per-run
    ///   watchdogs, exactly as in the CLI harness.
    /// * `SMS_FAULT` — seeded fault-injection spec (chaos testing only;
    ///   see [`sms_harness::FaultPlan`]).
    pub fn from_env() -> Self {
        let mut cfg = ServeConfig {
            addr: std::env::var("SMS_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7745".to_owned()),
            ..ServeConfig::default()
        };
        if let Some(n) = env_positive("SMS_SERVE_WORKERS") {
            cfg.workers = n;
        }
        if let Some(n) = env_positive("SMS_SERVE_MAX_CONNS") {
            cfg.max_conns = n;
        }
        if let Some(n) = env_positive("SMS_SERVE_MAX_JOBS") {
            cfg.max_jobs_per_request = n;
        }
        if let Some(n) = env_positive("SMS_SERVE_MAX_INFLIGHT") {
            cfg.max_inflight_jobs = n;
        }
        if let Some(ms) = env_positive("SMS_SERVE_TIMEOUT_MS") {
            cfg.limits.read_timeout = Duration::from_millis(ms as u64);
        }
        if let Some(n) = env_positive("SMS_SERVE_MAX_BODY") {
            cfg.limits.max_body = n;
        }
        if std::env::var("SMS_NO_CACHE").is_ok_and(|v| v == "1") {
            cfg.cache_dir = None;
        } else if let Ok(dir) = std::env::var("SMS_CACHE_DIR") {
            cfg.cache_dir = Some(PathBuf::from(dir));
        }
        if let Ok(path) =
            std::env::var("SMS_SERVE_JOURNAL").or_else(|_| std::env::var("SMS_JOURNAL"))
        {
            cfg.journal_path = Some(PathBuf::from(path));
        }
        let mut limits = RunLimits::from_env();
        limits.breakdown = false;
        limits.metrics = false;
        cfg.run_limits = limits;
        cfg.faults = sms_harness::FaultPlan::from_env();
        cfg
    }
}

/// How a job's result was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Served {
    /// Loaded from the shared on-disk cache.
    Hit,
    /// Simulated by this request.
    Miss,
    /// Attached to another request's in-flight execution (single-flight).
    Shared,
}

impl Served {
    fn label(self) -> &'static str {
        match self {
            Served::Hit => "hit",
            Served::Miss => "miss",
            Served::Shared => "shared",
        }
    }
}

/// A single-flight cell: the leader publishes exactly once, followers
/// block on the condvar.
#[derive(Default)]
struct JobCell {
    done: Mutex<Option<Result<SimStats, RunError>>>,
    cv: Condvar,
}

impl JobCell {
    fn publish(&self, result: Result<SimStats, RunError>) {
        let mut slot = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        *slot = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<SimStats, RunError> {
        let mut slot = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.cv.wait(slot).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Counting semaphore bounding concurrent simulations server-wide.
struct SimPermits {
    free: Mutex<usize>,
    cv: Condvar,
}

impl SimPermits {
    fn new(n: usize) -> Self {
        SimPermits { free: Mutex::new(n.max(1)), cv: Condvar::new() }
    }

    fn acquire(&self) {
        let mut free = self.free.lock().unwrap_or_else(PoisonError::into_inner);
        while *free == 0 {
            free = self.cv.wait(free).unwrap_or_else(PoisonError::into_inner);
        }
        *free -= 1;
    }

    fn release(&self) {
        *self.free.lock().unwrap_or_else(PoisonError::into_inner) += 1;
        self.cv.notify_one();
    }
}

/// Everything the handler threads share.
struct ServerState {
    config: ServeConfig,
    cache: Option<ResultCache>,
    /// Key computation even when the disk cache is off.
    keyer: ResultCache,
    journal: Journal,
    metrics: ServerMetrics,
    /// Warm prepared-scene tier, keyed by `(scene, render)` debug string.
    scenes: Mutex<HashMap<String, Arc<PreparedScene>>>,
    /// Single-flight table, keyed by canonical cache key.
    inflight: Mutex<HashMap<String, Arc<JobCell>>>,
    permits: SimPermits,
    /// Server-unique job ids for the journal (stream ids are per-request).
    job_seq: AtomicU64,
    jobs_in_flight: AtomicU64,
    draining: AtomicBool,
    active_conns: AtomicU64,
}

impl ServerState {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || SIGNAL_DRAIN.load(Ordering::SeqCst)
    }

    /// Fetches (building and retaining on first use) a prepared scene.
    /// Build panics surface as a structured error, and a failed build is
    /// *not* retained, so a later request retries it.
    fn prepared_scene(
        &self,
        scene: sms_sim::scene::SceneId,
        render: &RenderConfig,
    ) -> Result<Arc<PreparedScene>, RunError> {
        let key = format!("{scene:?}|{render:?}");
        if let Some(found) = self.scenes.lock().unwrap_or_else(PoisonError::into_inner).get(&key) {
            return Ok(Arc::clone(found));
        }
        let built =
            catch_unwind(AssertUnwindSafe(|| Arc::new(PreparedScene::build(scene, render))))
                .map_err(|payload| RunError::Panicked {
                    worker: 0,
                    message: format!("scene preparation panicked: {}", panic_text(payload)),
                })?;
        let mut table = self.scenes.lock().unwrap_or_else(PoisonError::into_inner);
        Ok(Arc::clone(table.entry(key).or_insert(built)))
    }

    /// Runs one job through cache, single-flight table and simulator.
    /// Never panics outward; always publishes to followers.
    fn execute(
        &self,
        req: &sms_harness::RunRequest,
        key: &CacheKey,
    ) -> (Result<SimStats, RunError>, Served) {
        // Cached cells never need coalescing: probe before touching the
        // single-flight table, so concurrent warm requests all report a
        // plain hit instead of racing one of them into a leader slot.
        if let Some(cache) = &self.cache {
            if let Some(stats) = cache.load(key) {
                return (Ok(stats), Served::Hit);
            }
        }
        // Single-flight: first requester of a key becomes the leader.
        let cell = {
            let mut table = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
            match table.get(&key.canonical) {
                Some(cell) => {
                    let cell = Arc::clone(cell);
                    drop(table);
                    ServerMetrics::inc(&self.metrics.singleflight_shared);
                    return (cell.wait(), Served::Shared);
                }
                None => {
                    let cell = Arc::new(JobCell::default());
                    table.insert(key.canonical.clone(), Arc::clone(&cell));
                    cell
                }
            }
        };

        // Leader path. The catch_unwind turns any panic below into a
        // structured error so followers can never be left waiting.
        let outcome = catch_unwind(AssertUnwindSafe(|| self.execute_leader(req, key)))
            .unwrap_or_else(|payload| {
                (Err(RunError::Panicked { worker: 0, message: panic_text(payload) }), Served::Miss)
            });
        cell.publish(outcome.0.clone());
        self.inflight.lock().unwrap_or_else(PoisonError::into_inner).remove(&key.canonical);
        outcome
    }

    fn execute_leader(
        &self,
        req: &sms_harness::RunRequest,
        key: &CacheKey,
    ) -> (Result<SimStats, RunError>, Served) {
        if let Some(cache) = &self.cache {
            if let Some(stats) = cache.load(key) {
                return (Ok(stats), Served::Hit);
            }
        }
        let scene = match self.prepared_scene(req.scene, &req.render) {
            Ok(scene) => scene,
            Err(e) => return (Err(e), Served::Miss),
        };
        self.permits.acquire();
        let limits = req.limits.or(self.config.run_limits);
        let result = try_run_prepared(&scene, req.stack, req.gpu, &req.render, &limits);
        self.permits.release();
        match result {
            Ok(run) => {
                if let Some(cache) = &self.cache {
                    cache.store(key, &run.stats);
                }
                (Ok(run.stats), Served::Miss)
            }
            Err(fault) => (Err(RunError::from_fault(fault)), Served::Miss),
        }
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A running (or ready-to-run) sweep server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// A cloneable remote control for a server: request a drain, read the
/// bound address, inspect metrics.
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
    addr: std::net::SocketAddr,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Requests a graceful drain: stop accepting, finish in-flight work.
    pub fn request_drain(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
    }

    /// `true` once a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.state.draining()
    }

    /// Renders the live Prometheus metrics (same payload as `/metrics`).
    pub fn render_metrics(&self) -> String {
        self.state.metrics.render()
    }
}

impl Server {
    /// Binds the listener and prepares the shared state. The server does
    /// not accept connections until [`Server::run`] is called.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let cache = config
            .cache_dir
            .clone()
            .map(|dir| ResultCache::new(dir).with_faults(config.faults.clone()));
        let keyer = ResultCache::new(PathBuf::new());
        let journal = Journal::new(config.journal_path.clone());
        let workers = config.workers.max(1);
        let state = Arc::new(ServerState {
            cache,
            keyer,
            journal,
            metrics: ServerMetrics::new(),
            scenes: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            permits: SimPermits::new(workers),
            job_seq: AtomicU64::new(0),
            jobs_in_flight: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            active_conns: AtomicU64::new(0),
            config,
        });
        // One batch_start at process scope: every later job_queued /
        // job_finished pair keys the journal for SMS_RESUME replay.
        state.journal.record(Event::BatchStart { jobs: 0, unique: 0, workers });
        Ok(Server { listener, state })
    }

    /// The bound address (useful with `addr = 127.0.0.1:0`).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A remote control handle for this server.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle { state: Arc::clone(&self.state), addr: self.local_addr()? })
    }

    /// Accepts connections until a drain is requested, then waits for all
    /// in-flight connections, flushes the journal, and returns. Each
    /// connection is handled on its own thread, one request per
    /// connection.
    pub fn run(self) -> std::io::Result<()> {
        loop {
            let injected_kill =
                self.state.config.faults.as_ref().filter(|f| f.killed()).map(|f| f.journal_torn());
            if let Some(tear_journal) = injected_kill {
                return self.die_of_injected_kill(tear_journal);
            }
            if self.state.draining() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if let Some(f) = &self.state.config.faults {
                        if f.should_drop_conn() {
                            drop(stream); // injected fault: connection reset, no reply
                            continue;
                        }
                    }
                    let active = self.state.active_conns.fetch_add(1, Ordering::SeqCst) + 1;
                    if active > self.state.config.max_conns as u64 {
                        // Load shed at the door: bounded accept queue.
                        ServerMetrics::inc(&self.state.metrics.shed);
                        let mut stream = stream;
                        http::write_error(
                            &mut stream,
                            &HttpError {
                                status: 503,
                                message: "server at connection capacity; retry".to_owned(),
                            },
                        );
                        self.state.active_conns.fetch_sub(1, Ordering::SeqCst);
                        continue;
                    }
                    let state = Arc::clone(&self.state);
                    std::thread::spawn(move || {
                        handle_connection(&state, stream);
                        state.active_conns.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
        // Drain: finish in-flight connections, then flush the journal.
        while self.state.active_conns.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.state.journal.record(Event::BatchEnd {
            jobs: self.state.job_seq.load(Ordering::SeqCst) as usize,
            cache_hits: self.state.metrics.cache_hits.load(Ordering::Relaxed) as usize,
            cache_misses: self.state.metrics.cache_misses.load(Ordering::Relaxed) as usize,
            failed: self.state.metrics.jobs_failed.load(Ordering::Relaxed) as usize,
            duration_us: 0,
            sim_cycles: 0,
            breakdown: None,
            metrics: None,
            builds: Vec::new(),
        });
        self.state.journal.flush();
        Ok(())
    }

    /// The injected-kill exit: no drain, no `batch_end`, no flush — the
    /// listener drops (further connects are refused) and, when configured,
    /// the journal's tail line is torn mid-write, exactly the wreckage a
    /// SIGKILL leaves behind. Returns an error so the binary exits nonzero
    /// like a crashed process.
    fn die_of_injected_kill(self, tear_journal: bool) -> std::io::Result<()> {
        if tear_journal {
            if let Some(path) = &self.state.config.journal_path {
                if let Ok(meta) = std::fs::metadata(path) {
                    // Rip the last few bytes off the flushed tail so the
                    // final line is half-written.
                    let torn = meta.len().saturating_sub(7);
                    if let Ok(f) = std::fs::OpenOptions::new().write(true).open(path) {
                        let _ = f.set_len(torn);
                    }
                }
            }
        }
        Err(std::io::Error::other("fault injection: killed after job budget"))
    }

    /// Binds, then runs the accept loop on a background thread. Returns
    /// the handle plus the join handle whose `Ok(())` is the drained exit.
    pub fn spawn(
        config: ServeConfig,
    ) -> std::io::Result<(ServerHandle, std::thread::JoinHandle<std::io::Result<()>>)> {
        let server = Server::bind(config)?;
        let handle = server.handle()?;
        let join = std::thread::spawn(move || server.run());
        Ok((handle, join))
    }
}

/// Routes one connection's single request.
fn handle_connection(state: &Arc<ServerState>, mut stream: TcpStream) {
    let t0 = Instant::now();
    let request = match http::read_request(&mut stream, &state.config.limits) {
        Ok(req) => req,
        Err(e) => {
            if (400..500).contains(&e.status) {
                ServerMetrics::inc(&state.metrics.bad_requests);
            }
            http::write_error(&mut stream, &e);
            return;
        }
    };
    ServerMetrics::inc(&state.metrics.requests);
    if let Some(f) = &state.config.faults {
        if let Some(delay) = f.respond_delay() {
            // Injected straggler: stall this response (hedge-bait).
            std::thread::sleep(delay);
        }
    }
    let outcome = route(state, &request, &mut stream);
    if let Err(e) = outcome {
        if (400..500).contains(&e.status) {
            ServerMetrics::inc(&state.metrics.bad_requests);
        }
        http::write_error(&mut stream, &e);
    }
    state.metrics.observe_request(t0.elapsed().as_micros() as u64);
}

fn route(
    state: &Arc<ServerState>,
    request: &Request,
    stream: &mut TcpStream,
) -> Result<(), HttpError> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            if state.draining() {
                Err(HttpError { status: 503, message: "draining".to_owned() })
            } else {
                write_ok(stream, "text/plain", b"ok\n")
            }
        }
        ("GET", "/metrics") => {
            let text = state.metrics.render();
            write_ok(stream, "text/plain; version=0.0.4", text.as_bytes())
        }
        ("POST", "/v1/drain") => {
            state.draining.store(true, Ordering::SeqCst);
            write_ok(stream, "text/plain", b"draining\n")
        }
        ("POST", "/v1/sweep") => handle_sweep(state, request, stream),
        ("GET", path) if path.starts_with("/v1/jobs/") => handle_probe(state, request, stream),
        _ => Err(HttpError {
            status: 404,
            message: format!("no route for {} {}", request.method, request.path),
        }),
    }
}

fn write_ok(stream: &mut TcpStream, content_type: &str, body: &[u8]) -> Result<(), HttpError> {
    http::write_response(stream, 200, content_type, &[], body)
        .map_err(|e| HttpError { status: 500, message: e.to_string() })
}

/// `GET /v1/jobs/<scene>/<config>[?render=<mode>]` — a pure cache probe:
/// never simulates, answers 200 with the cached stats or 404.
fn handle_probe(
    state: &Arc<ServerState>,
    request: &Request,
    stream: &mut TcpStream,
) -> Result<(), HttpError> {
    let bad = |message: String| HttpError { status: 400, message };
    let rest = request.path.trim_start_matches("/v1/jobs/");
    let (scene, config) = rest
        .split_once('/')
        .ok_or_else(|| bad("probe path must be /v1/jobs/<scene>/<config>".to_owned()))?;
    let scene = scene.parse::<sms_sim::scene::SceneId>().map_err(|e| bad(e.to_string()))?;
    let stack = parse_stack_config(config).map_err(bad)?;
    let mut render_name = "fast".to_owned();
    for pair in request.query.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some(("render", mode)) => render_name = mode.to_owned(),
            _ => return Err(bad(format!("unknown query parameter `{pair}`"))),
        }
    }
    let render = parse_render(&render_name).map_err(bad)?;
    let req = sms_harness::RunRequest::new(scene, stack, render);
    let key = state.keyer.key(&req);
    let cached = state.cache.as_ref().and_then(|c| c.load(&key));
    match cached {
        Some(stats) => {
            let doc = Json::Obj(vec![
                ("key".to_owned(), Json::Str(key.canonical.clone())),
                ("scene".to_owned(), Json::Str(scene.name().to_owned())),
                ("config".to_owned(), Json::Str(stack.label())),
                ("render".to_owned(), Json::Str(render_name)),
                ("stats".to_owned(), sms_harness::cache::stats_to_json(&stats)),
            ]);
            write_ok(stream, "application/json", format!("{doc}\n").as_bytes())
        }
        None => Err(HttpError { status: 404, message: format!("no cached result for {rest}") }),
    }
}

/// `POST /v1/sweep` — admit, dedupe, execute, stream.
fn handle_sweep(
    state: &Arc<ServerState>,
    request: &Request,
    stream: &mut TcpStream,
) -> Result<(), HttpError> {
    if state.draining() {
        ServerMetrics::inc(&state.metrics.shed);
        return Err(HttpError {
            status: 503,
            message: "draining; not accepting sweeps".to_owned(),
        });
    }
    let sweep = protocol::parse_sweep(&request.body, state.config.max_jobs_per_request)
        .map_err(|message| HttpError { status: 400, message })?;

    // Distributed tracing: only requests that carry an `x-sms-trace`
    // header get span events, so untraced journals stay byte-identical to
    // pre-tracing runs. The server's sweep span parents on the sender's
    // span id; each job span parents on the sweep span.
    let sweep_ctx = request
        .header(sms_harness::TRACE_HEADER)
        .and_then(TraceContext::parse)
        .map(|peer| peer.child());
    let sweep_start_us = wall_us();

    // Request-level dedup on the canonical key (same identity as the
    // cache and the single-flight table); duplicate cells coalesce into
    // one streamed job, exactly like `Harness::try_run_batch`.
    let mut jobs: Vec<(sms_harness::RunRequest, CacheKey)> = Vec::new();
    for req in &sweep.requests {
        let key = state.keyer.key(req);
        if !jobs.iter().any(|(_, k)| k.canonical == key.canonical) {
            jobs.push((*req, key));
        }
    }

    // Global admission: shed rather than queue unboundedly.
    let admitted = loop {
        let current = state.jobs_in_flight.load(Ordering::SeqCst);
        let next = current + jobs.len() as u64;
        if next > state.config.max_inflight_jobs as u64 {
            break false;
        }
        if state
            .jobs_in_flight
            .compare_exchange(current, next, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            break true;
        }
    };
    if !admitted {
        ServerMetrics::inc(&state.metrics.shed);
        return Err(HttpError {
            status: 503,
            message: format!(
                "{} jobs in flight; retry later",
                state.jobs_in_flight.load(Ordering::SeqCst)
            ),
        });
    }
    state
        .metrics
        .jobs_in_flight
        .store(state.jobs_in_flight.load(Ordering::SeqCst), Ordering::Relaxed);

    let t0 = Instant::now();
    let mut writer = ChunkedWriter::start(stream, 200, "application/jsonl")
        .map_err(|e| HttpError { status: 500, message: e.to_string() })?;

    // Announce every admitted job on the stream and in the journal. The
    // stream uses request-local ids (a self-contained journal fragment);
    // the process journal uses server-unique ids so concurrent requests
    // cannot collide in SMS_RESUME replay.
    let journal_base = state.job_seq.fetch_add(jobs.len() as u64, Ordering::SeqCst);
    for (local, (req, key)) in jobs.iter().enumerate() {
        ServerMetrics::inc(&state.metrics.jobs);
        let line = protocol::job_queued_event(local, req, &key.canonical).to_json().to_string();
        let _ = writer.chunk(format!("{line}\n").as_bytes());
        state.journal.record(protocol::job_queued_event(
            journal_base as usize + local,
            req,
            &key.canonical,
        ));
    }

    // Execute on the pool; stream each record the moment its job settles.
    // The sender sits behind a mutex because the pool shares the closure
    // across workers (`mpsc::Sender` is not `Sync` on older toolchains);
    // one uncontended lock per finished job is noise next to a simulation.
    // Injected mid-stream cut: when the per-sweep counter fires, this
    // response stops after its first finished-job line, leaving an
    // unterminated chunked body (the client sees an interrupted stream).
    // Execution continues regardless — the cells still land in the shared
    // cache, which is exactly what makes fleet retries and hedges cheap.
    let mut stream_cut_after =
        state.config.faults.as_ref().filter(|f| f.should_drop_stream()).map(|_| 1usize);
    let (tx, rx) = mpsc::channel::<(String, Served, bool)>();
    let runner = Arc::clone(state);
    let jobs_ref = &jobs;
    let counts = std::thread::scope(|scope| {
        scope.spawn(move || {
            let tx = Mutex::new(tx);
            pool::try_run_indexed(runner.config.workers, jobs_ref.len(), |i, worker| {
                // A killed worker does nothing more, like a dead process.
                if runner.config.faults.as_ref().is_some_and(|f| f.killed()) {
                    return;
                }
                let (req, key) = &jobs_ref[i];
                runner.journal.record(Event::JobStarted { job: journal_base as usize + i, worker });
                let job_start = Instant::now();
                let job_start_us = wall_us();
                let (outcome, served) = runner.execute(req, key);
                let duration_us = job_start.elapsed().as_micros() as u64;
                runner.metrics.observe_job(duration_us);
                if let Some(sweep_ctx) = &sweep_ctx {
                    let mut attrs = vec![(
                        "cell".to_owned(),
                        format!("{}/{}", req.scene.name(), req.stack.label()),
                    )];
                    match &outcome {
                        Ok(_) => attrs.push(("cache".to_owned(), served.label().to_owned())),
                        Err(e) => attrs.push(("error".to_owned(), e.kind().to_owned())),
                    }
                    attrs.push(("worker".to_owned(), worker.to_string()));
                    runner.journal.record(Event::span(
                        &sweep_ctx.child(),
                        "job",
                        "internal",
                        job_start_us,
                        duration_us,
                        attrs,
                    ));
                }
                let line = render_job_line(
                    &runner,
                    i,
                    journal_base as usize + i,
                    worker,
                    &outcome,
                    served,
                    duration_us,
                );
                // Kill budget: the K-th finished job takes the worker down
                // *with* its own result — the line is never streamed, just
                // as a crash between simulate and send would lose it.
                if let Some(f) = &runner.config.faults {
                    if f.on_job_finished() {
                        return;
                    }
                }
                let _ = tx.lock().unwrap_or_else(PoisonError::into_inner).send((
                    line,
                    served,
                    outcome.is_err(),
                ));
            })
            // The sender (inside `tx`) drops here, ending the rx loop.
        });
        // Stream lines in completion order; each is flushed as one chunk.
        let mut sim_cycles = 0u64;
        let mut hits = 0usize;
        let mut misses = 0usize;
        let mut failed = 0usize;
        for (line, served, is_err) in rx {
            let killed = state.config.faults.as_ref().is_some_and(|f| f.killed());
            if !killed && stream_cut_after != Some(0) {
                // A closed peer is not an error: keep executing so the
                // cache and journal still warm up for the next request.
                let _ = writer.chunk(line.as_bytes());
                if let Some(n) = &mut stream_cut_after {
                    *n -= 1;
                }
            }
            if is_err {
                failed += 1;
            } else if served == Served::Miss {
                misses += 1;
                sim_cycles += cycles_of(&line);
            } else {
                hits += 1;
            }
        }
        (hits, misses, failed, sim_cycles)
    });
    state.jobs_in_flight.fetch_sub(jobs.len() as u64, Ordering::SeqCst);
    state
        .metrics
        .jobs_in_flight
        .store(state.jobs_in_flight.load(Ordering::SeqCst), Ordering::Relaxed);

    if state.config.faults.as_ref().is_some_and(|f| f.killed()) || stream_cut_after == Some(0) {
        // Crashed or cut: no batch_end, no terminating chunk — the client
        // must see an interrupted stream, never a clean short sweep.
        return Ok(());
    }
    let (hits, misses, failed, sim_cycles) = counts;
    let summary = Event::BatchEnd {
        jobs: jobs.len(),
        cache_hits: hits,
        cache_misses: misses,
        failed,
        duration_us: t0.elapsed().as_micros() as u64,
        sim_cycles,
        breakdown: None,
        metrics: None,
        builds: Vec::new(),
    };
    state.journal.record(summary.clone());
    if let Some(ctx) = &sweep_ctx {
        state.journal.record(Event::span(
            ctx,
            "sweep",
            "server",
            sweep_start_us,
            t0.elapsed().as_micros() as u64,
            vec![
                ("jobs".to_owned(), jobs.len().to_string()),
                ("failed".to_owned(), failed.to_string()),
            ],
        ));
    }
    let _ = writer.chunk(format!("{}\n", summary.to_json()).as_bytes());
    let _ = writer.finish();
    Ok(())
}

/// Pulls the `cycles` field back out of a finished-job line (the line was
/// just rendered from a well-formed event, so a parse miss means 0).
fn cycles_of(line: &str) -> u64 {
    sms_harness::json::parse(line.trim()).ok().and_then(|doc| doc.u64_field("cycles")).unwrap_or(0)
}

/// Builds one stream line (journal codec, with the single-flight `shared`
/// marker patched into the `cache` field) and mirrors it into the process
/// journal under the server-unique job id.
fn render_job_line(
    state: &Arc<ServerState>,
    local_job: usize,
    journal_job: usize,
    worker: usize,
    outcome: &Result<SimStats, RunError>,
    served: Served,
    duration_us: u64,
) -> String {
    match outcome {
        Ok(stats) => {
            match served {
                Served::Hit => ServerMetrics::inc(&state.metrics.cache_hits),
                Served::Miss => ServerMetrics::inc(&state.metrics.cache_misses),
                Served::Shared => {}
            }
            let event = |job: usize| Event::JobFinished {
                job,
                worker: Some(worker),
                cache_hit: served != Served::Miss,
                cycles: stats.cycles,
                duration_us,
                stats: Some(*stats),
                breakdown: None,
            };
            state.journal.record(event(journal_job));
            let mut doc = event(local_job).to_json();
            if served == Served::Shared {
                if let Json::Obj(pairs) = &mut doc {
                    for (k, v) in pairs.iter_mut() {
                        if k == "cache" {
                            *v = Json::Str(Served::Shared.label().to_owned());
                        }
                    }
                }
            }
            format!("{doc}\n")
        }
        Err(e) => {
            ServerMetrics::inc(&state.metrics.jobs_failed);
            let event = |job: usize| {
                if e.is_timeout() {
                    Event::RunTimeout {
                        job,
                        worker,
                        kind: e.kind().to_owned(),
                        error: e.to_string(),
                        duration_us,
                    }
                } else {
                    Event::RunFailed {
                        job,
                        worker,
                        kind: e.kind().to_owned(),
                        error: e.to_string(),
                        duration_us,
                    }
                }
            };
            state.journal.record(event(journal_job));
            format!("{}\n", event(local_job).to_json())
        }
    }
}
