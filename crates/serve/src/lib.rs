//! `sms-serve`: the sweep harness as a resident service.
//!
//! Every figure in the paper is a sweep over `(scene, stack-config)`
//! cells, and the CLI harness pays the same startup tax for each one:
//! scene + BVH builds, a cold result cache, a fresh journal. This crate
//! keeps all of that warm in one long-lived process and puts a wire
//! protocol in front of it:
//!
//! * [`server`] — the HTTP/1.1 service: `POST /v1/sweep` streams one
//!   journal-codec JSONL record per job as it finishes; `GET
//!   /v1/jobs/<scene>/<config>` probes the cache without simulating;
//!   `GET /metrics` exposes the live Prometheus registry; `GET /healthz`
//!   and `POST /v1/drain` handle orchestration. Identical in-flight jobs
//!   from different clients are coalesced (single-flight), and overload
//!   is shed with `503` + `Retry-After` instead of queueing.
//! * [`client`] — the matching client with bounded, deadline-capped
//!   retries and backoff jitter.
//! * [`http`] — the strictly-parsed, dependency-free HTTP layer both
//!   sides share (the build environment is offline; no hyper).
//! * [`protocol`] — sweep-request parsing and the stream codec. The
//!   response stream *is* the harness journal format, so a saved response
//!   body works as an `SMS_RESUME` fragment unchanged.
//! * [`metrics`] — the server's instrument set (`sms_serve_*`).
//! * [`fleet`] — the fault-tolerant front tier: one `sms-fleet` process
//!   routing cells over N `sms-serve` backends with circuit breakers,
//!   work-stealing retries, hedged dispatch, and cache-only degraded
//!   serving when every backend is down.
//!
//! Results are byte-identical to the CLI harness: both funnel into
//! `sms_sim::experiments::try_run_prepared` and share one on-disk
//! [`sms_harness::ResultCache`], so a cell simulated by either path is a
//! cache hit for the other.

pub mod client;
pub mod fleet;
pub mod http;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientConfig, ClientError};
pub use fleet::{FleetConfig, FleetHandle, FleetServer};
pub use protocol::{JobRecord, SweepOutcome};
pub use server::{ServeConfig, Server, ServerHandle};
