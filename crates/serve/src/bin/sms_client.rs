//! Command-line client for `sms-serve`.
//!
//! ```text
//! sms-client [--addr HOST:PORT] <command> [args]
//!
//! commands:
//!   sweep --scenes A,B --configs C1,C2 [--render fast|tiny|paper] [--jsonl]
//!   probe <scene> <config> [--render MODE]
//!   health
//!   metrics
//!   drain
//! ```
//!
//! The address defaults to `SMS_SERVE_ADDR` (then `127.0.0.1:7745`).
//! Retries/backoff/deadline come from `SMS_CLIENT_*`; see
//! `ClientConfig::from_env`. `--trace` (or `SMS_TRACE_CTX`) arms
//! distributed tracing: a root trace context is generated here, rides
//! every request as `x-sms-trace`, and the trace id is reported on exit
//! so `sms-trace merge --trace <id>` can pull the request's spans out of
//! the server-side journals. Exit status: 0 on success, 1 on a server or
//! sweep failure (any failed job fails the sweep), 2 on usage errors.

use sms_harness::log;
use sms_harness::TraceContext;
use sms_serve::client::{Client, ClientConfig};

fn usage() -> ! {
    eprintln!(
        "usage: sms-client [--addr HOST:PORT] <command>\n\
         commands:\n  \
         sweep --scenes A,B --configs C1,C2 [--render fast|tiny|paper] [--jsonl]\n  \
         probe <scene> <config> [--render MODE]\n  \
         health\n  metrics\n  drain\n\
         options:\n  --addr HOST:PORT   server address\n  --trace            arm distributed tracing"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ClientConfig::from_env();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--addr") {
        if i + 1 >= args.len() {
            usage();
        }
        config.addr = args.remove(i + 1);
        args.remove(i);
    }
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        args.remove(i);
        if config.trace.is_none() {
            config.trace = Some(TraceContext::root());
        }
    }
    let trace = config.trace;
    if let Some(ctx) = &trace {
        log::info(
            "client",
            &format!("tracing armed: trace {}", ctx.trace_hex()),
            &[("trace_id", &ctx.trace_hex())],
        );
    }
    let client = Client::with_config(config);
    let Some(command) = args.first().cloned() else { usage() };
    let rest = &args[1..];
    match command.as_str() {
        "sweep" => sweep(&client, rest),
        "probe" => probe(&client, rest),
        "health" => simple_get(&client, "/healthz"),
        "metrics" => simple_get(&client, "/metrics"),
        "drain" => match client.post("/v1/drain", &[]) {
            Ok(resp) if resp.status == 200 => print!("{}", resp.text()),
            Ok(resp) => fail(format!("{} {}", resp.status, resp.text().trim())),
            Err(e) => fail(e.to_string()),
        },
        _ => usage(),
    }
}

fn fail(message: String) -> ! {
    log::error("client", &message, &[]);
    std::process::exit(1);
}

fn simple_get(client: &Client, path: &str) {
    match client.get(path) {
        Ok(resp) if resp.status == 200 => print!("{}", resp.text()),
        Ok(resp) => fail(format!("{path}: {} {}", resp.status, resp.text().trim())),
        Err(e) => fail(format!("{path}: {e}")),
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("sms-client: {flag} needs a value");
            std::process::exit(2);
        })
    })
}

fn sweep(client: &Client, args: &[String]) {
    let scenes = flag_value(args, "--scenes").unwrap_or_else(|| usage());
    let configs = flag_value(args, "--configs").unwrap_or_else(|| usage());
    let render = flag_value(args, "--render").unwrap_or_else(|| "fast".to_owned());
    let jsonl = args.iter().any(|a| a == "--jsonl");
    let scenes: Vec<&str> = scenes.split(',').filter(|s| !s.is_empty()).collect();
    let configs: Vec<&str> = configs.split(',').filter(|s| !s.is_empty()).collect();

    let outcome = match client.sweep(&scenes, &configs, &render) {
        Ok(outcome) => outcome,
        Err(e) => fail(format!("sweep: {e}")),
    };
    let mut failed = 0usize;
    for rec in &outcome.records {
        if jsonl {
            continue; // raw mode prints the summary table below instead
        }
        match &rec.outcome {
            Ok(stats) => println!(
                "{:<8} {:<20} {:>12} cycles  [{}]",
                rec.scene, rec.config, stats.cycles, rec.cache
            ),
            Err(error) => {
                failed += 1;
                println!("{:<8} {:<20} FAILED: {}", rec.scene, rec.config, one_line(error));
            }
        }
    }
    if jsonl {
        // Re-emit the stream verbatim shape: queued ids were consumed in
        // parsing, so print one object per record plus the summary.
        for rec in &outcome.records {
            match &rec.outcome {
                Ok(stats) => println!(
                    "{{\"scene\":\"{}\",\"config\":\"{}\",\"cache\":\"{}\",\"cycles\":{}}}",
                    rec.scene, rec.config, rec.cache, stats.cycles
                ),
                Err(_) => {
                    failed += 1;
                    println!(
                        "{{\"scene\":\"{}\",\"config\":\"{}\",\"failed\":true}}",
                        rec.scene, rec.config
                    );
                }
            }
        }
    }
    if let Some(summary) = &outcome.summary {
        log::info("client", &summary.to_string(), &[]);
    } else {
        fail("sweep stream ended without a batch_end summary".to_owned());
    }
    if failed > 0 {
        fail(format!("{failed} job(s) failed"));
    }
}

fn one_line(s: &str) -> &str {
    s.lines().next().unwrap_or(s)
}

fn probe(client: &Client, args: &[String]) {
    let positional: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && (*i == 0 || args[i - 1] != "--render"))
        .map(|(_, a)| a)
        .collect();
    let (Some(scene), Some(config)) = (positional.first(), positional.get(1)) else { usage() };
    let render = flag_value(args, "--render").unwrap_or_else(|| "fast".to_owned());
    let path = format!("/v1/jobs/{scene}/{config}?render={render}");
    match client.get(&path) {
        Ok(resp) if resp.status == 200 => print!("{}", resp.text()),
        Ok(resp) if resp.status == 404 => {
            eprintln!("sms-client: not cached: {scene}/{config} (render={render})");
            std::process::exit(1);
        }
        Ok(resp) => fail(format!("probe: {} {}", resp.status, resp.text().trim())),
        Err(e) => fail(format!("probe: {e}")),
    }
}
