//! The resident sweep server.
//!
//! ```text
//! sms-serve [--addr HOST:PORT] [--addr-file PATH] [--workers N]
//! ```
//!
//! Configuration comes from `SMS_SERVE_*` (and the usual `SMS_CACHE_DIR`
//! etc.; see `ServeConfig::from_env`); the flags override the
//! environment. `--addr-file` writes the actually-bound address to a file
//! once listening — the CI smoke test binds port 0 and discovers the
//! ephemeral port this way.
//!
//! SIGTERM (or `POST /v1/drain`) triggers a graceful drain: stop
//! accepting, finish in-flight requests, flush the journal, exit 0.

use sms_harness::log;
use sms_serve::server::{signal_drain_flag, ServeConfig, Server};
use std::sync::atomic::Ordering;

/// Registers a SIGTERM handler that flips the drain flag. Pure-libc FFI:
/// the handler only does an atomic store, which is async-signal-safe.
#[cfg(unix)]
fn install_sigterm() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_sigterm(_signum: i32) {
        signal_drain_flag().store(true, Ordering::SeqCst);
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm() {}

fn main() {
    let mut config = ServeConfig::from_env();
    let mut addr_file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("sms-serve: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--addr-file" => addr_file = Some(value("--addr-file")),
            "--workers" => {
                let raw = value("--workers");
                match raw.parse::<usize>() {
                    Ok(n) if n > 0 => config.workers = n,
                    _ => {
                        eprintln!("sms-serve: --workers needs a positive integer, got `{raw}`");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("usage: sms-serve [--addr HOST:PORT] [--addr-file PATH] [--workers N]");
                return;
            }
            other => {
                eprintln!("sms-serve: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    install_sigterm();
    let server = Server::bind(config.clone()).unwrap_or_else(|e| {
        log::error("serve", &format!("cannot bind {}: {e}", config.addr), &[]);
        std::process::exit(1);
    });
    let addr = server.local_addr().unwrap_or_else(|e| {
        log::error("serve", &format!("cannot read bound address: {e}"), &[]);
        std::process::exit(1);
    });
    if let Some(path) = &addr_file {
        if let Err(e) = std::fs::write(path, format!("{addr}\n")) {
            log::error("serve", &format!("cannot write {path}: {e}"), &[]);
            std::process::exit(1);
        }
    }
    log::info(
        "serve",
        &format!(
            "listening on {addr} ({} workers, cache {})",
            config.workers,
            config.cache_dir.as_deref().map_or("off".to_owned(), |p| p.display().to_string()),
        ),
        &[],
    );
    match server.run() {
        Ok(()) => log::info("serve", "drained, exiting", &[]),
        Err(e) => {
            log::error("serve", &format!("accept loop failed: {e}"), &[]);
            std::process::exit(1);
        }
    }
}
