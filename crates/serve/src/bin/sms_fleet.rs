//! The fault-tolerant fleet front tier.
//!
//! ```text
//! sms-fleet [--addr HOST:PORT] [--addr-file PATH]
//!           [--backends HOST:PORT,HOST:PORT] [--spawn N] [--workers N]
//! ```
//!
//! Configuration comes from `SMS_FLEET_*` (see `FleetConfig::from_env`);
//! the flags override the environment. `--backends` adopts already
//! running `sms-serve` processes; `--spawn N` launches N of them as
//! children (the `sms-serve` binary is looked up next to this one),
//! binding ephemeral ports discovered via `--addr-file`. The two
//! compose: spawned children are appended to the adopted list.
//!
//! Children inherit the environment, so `SMS_FAULT` set here injects
//! faults into every spawned backend — handy for one-command chaos
//! smokes, but for targeted chaos start backends by hand with distinct
//! specs and adopt them with `--backends`.
//!
//! SIGTERM (or `POST /v1/drain`) drains the front tier, then drains any
//! spawned children and waits for them to exit.

use sms_harness::log;
use sms_serve::fleet::{FleetConfig, FleetServer};
use sms_serve::server::signal_drain_flag;
use sms_serve::Client;
use std::sync::atomic::Ordering;

/// Registers a SIGTERM handler that flips the drain flag. Pure-libc FFI:
/// the handler only does an atomic store, which is async-signal-safe.
#[cfg(unix)]
fn install_sigterm() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_sigterm(_signum: i32) {
        signal_drain_flag().store(true, Ordering::SeqCst);
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm() {}

/// Launches one `sms-serve` child on an ephemeral port and returns it
/// with the address file it will announce itself in.
fn spawn_backend(index: usize) -> (std::process::Child, std::path::PathBuf) {
    let serve_bin = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("sms-serve")))
        .filter(|p| p.exists())
        .unwrap_or_else(|| std::path::PathBuf::from("sms-serve"));
    let addr_file =
        std::env::temp_dir().join(format!("sms-fleet-backend-{}-{index}.addr", std::process::id()));
    let _ = std::fs::remove_file(&addr_file);
    let child = std::process::Command::new(&serve_bin)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--addr-file")
        .arg(&addr_file)
        .spawn()
        .unwrap_or_else(|e| {
            log::error("fleet", &format!("cannot spawn {}: {e}", serve_bin.display()), &[]);
            std::process::exit(1);
        });
    (child, addr_file)
}

/// Polls a child's address file until it appears (or the child is given
/// up on after ~10s).
fn await_backend_addr(addr_file: &std::path::Path) -> String {
    for _ in 0..1000 {
        if let Ok(text) = std::fs::read_to_string(addr_file) {
            let addr = text.trim();
            if !addr.is_empty() {
                return addr.to_owned();
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    log::error(
        "fleet",
        &format!("backend never announced an address in {}", addr_file.display()),
        &[],
    );
    std::process::exit(1);
}

fn main() {
    let mut config = FleetConfig::from_env();
    let mut addr_file: Option<String> = None;
    let mut spawn_n = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("sms-fleet: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--addr-file" => addr_file = Some(value("--addr-file")),
            "--backends" => {
                config.backends.extend(
                    value("--backends")
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_owned),
                );
            }
            "--spawn" => {
                let raw = value("--spawn");
                match raw.parse::<usize>() {
                    Ok(n) if n > 0 => spawn_n = n,
                    _ => {
                        eprintln!("sms-fleet: --spawn needs a positive integer, got `{raw}`");
                        std::process::exit(2);
                    }
                }
            }
            "--workers" => {
                let raw = value("--workers");
                match raw.parse::<usize>() {
                    Ok(n) if n > 0 => config.workers = n,
                    _ => {
                        eprintln!("sms-fleet: --workers needs a positive integer, got `{raw}`");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: sms-fleet [--addr HOST:PORT] [--addr-file PATH] \
                     [--backends HOST:PORT,...] [--spawn N] [--workers N]"
                );
                return;
            }
            other => {
                eprintln!("sms-fleet: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let mut children = Vec::new();
    for i in 0..spawn_n {
        let (child, file) = spawn_backend(i);
        let addr = await_backend_addr(&file);
        log::info("fleet", &format!("spawned backend {i} at {addr}"), &[("backend", &addr)]);
        config.backends.push(addr);
        children.push(child);
        let _ = std::fs::remove_file(&file);
    }
    if config.backends.is_empty() {
        log::error("fleet", "no backends (use --backends, --spawn or SMS_FLEET_BACKENDS)", &[]);
        std::process::exit(2);
    }

    install_sigterm();
    let server = FleetServer::bind(config.clone()).unwrap_or_else(|e| {
        log::error("fleet", &format!("cannot bind {}: {e}", config.addr), &[]);
        std::process::exit(1);
    });
    let addr = server.local_addr().unwrap_or_else(|e| {
        log::error("fleet", &format!("cannot read bound address: {e}"), &[]);
        std::process::exit(1);
    });
    if let Some(path) = &addr_file {
        if let Err(e) = std::fs::write(path, format!("{addr}\n")) {
            log::error("fleet", &format!("cannot write {path}: {e}"), &[]);
            std::process::exit(1);
        }
    }
    log::info(
        "fleet",
        &format!(
            "listening on {addr}, routing over {} backend(s): {}",
            config.backends.len(),
            config.backends.join(", ")
        ),
        &[],
    );
    let backends = config.backends.clone();
    let outcome = server.run();

    // Drain spawned children (a dead child just fails the drain request,
    // which is fine — wait() below reaps it either way).
    for addr in backends.iter().skip(backends.len() - children.len()) {
        let _ = Client::new(addr.clone()).post("/v1/drain", b"");
    }
    for mut child in children {
        let _ = child.wait();
    }
    match outcome {
        Ok(()) => log::info("fleet", "drained, exiting", &[]),
        Err(e) => {
            log::error("fleet", &format!("accept loop failed: {e}"), &[]);
            std::process::exit(1);
        }
    }
}
