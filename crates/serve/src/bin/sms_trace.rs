//! `sms-trace`: merge and validate distributed-trace span events.
//!
//! ```text
//! sms-trace merge [--trace HEX] [--sim FILE]... [--out FILE] JOURNAL...
//! sms-trace validate JOURNAL...
//! ```
//!
//! `merge` reads span events (`{"event":"span",...}` lines) out of one or
//! more JSONL journals — typically the fleet journal plus each backend's —
//! and renders one Chrome-trace/Perfetto JSON timeline: one process track
//! per journal, one slice per span, and `ph:"s"`/`ph:"f"` flow arrows for
//! every parent→child edge so hedges and steals draw as arrows across
//! process tracks. Sim traces written by `SMS_TRACE`-armed jobs (which
//! embed a top-level `"traceId"`) are folded in with `--sim`, so a
//! request's spans link to its per-warp timeline. The merge is strict:
//! every span must pass the schema validator, span ids must be unique,
//! and unresolved parents are only tolerated in two shapes. At most one
//! per trace may have `server`-kind children — that is the client's root
//! span, which lives in no journal and is synthesized as a `client`
//! track so the flow arrows have a source. Two of those means two entry
//! points claim the same trace (usually a forgotten fleet journal, since
//! backend sweeps are `server` spans parenting on fleet dispatch ids).
//! Unresolved parents with only non-`server` children are crash orphans
//! — the recording process died before writing the parent span (the
//! fleet tier's injected-kill chaos produces exactly this) — and are
//! synthesized as `(lost span)` slices on their journal's own track.
//!
//! `validate` runs the span-schema checks alone, per file, without
//! requiring parents to resolve (a single journal only sees its own
//! side of each cross-process edge).
//!
//! Exit status: 0 on success, 1 on a validation or merge failure, 2 on
//! usage errors.

use sms_harness::json::{parse, Json};

const SPAN_KINDS: [&str; 5] = ["client", "server", "internal", "producer", "consumer"];

fn usage() -> ! {
    eprintln!(
        "usage: sms-trace <command>\n\
         commands:\n  \
         merge [--trace HEX] [--sim FILE]... [--out FILE] JOURNAL...\n  \
         validate JOURNAL..."
    );
    std::process::exit(2);
}

fn fail(message: String) -> ! {
    eprintln!("sms-trace: {message}");
    std::process::exit(1);
}

/// One span event, decoded and schema-checked.
#[derive(Debug, Clone)]
struct Span {
    trace: String,
    span: String,
    parent: Option<String>,
    name: String,
    kind: String,
    start_us: u64,
    dur_us: u64,
    attrs: Vec<(String, String)>,
    /// Index of the source journal (process track).
    source: usize,
}

fn is_hex16(s: &str) -> bool {
    s.len() == 16 && s.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

fn snake_case(s: &str) -> bool {
    !s.is_empty()
        && s.as_bytes()[0].is_ascii_lowercase()
        && s.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

/// Decodes and schema-checks one `event:"span"` document.
fn check_span(doc: &Json, source: usize) -> Result<Span, String> {
    let str_field = |name: &str| -> Result<String, String> {
        doc.get(name)
            .and_then(|v| v.as_str())
            .map(str::to_owned)
            .ok_or_else(|| format!("missing or non-string `{name}`"))
    };
    let trace = str_field("trace")?;
    if !is_hex16(&trace) {
        return Err(format!("`trace` must be 16 lowercase hex digits, got `{trace}`"));
    }
    let span = str_field("span")?;
    if !is_hex16(&span) || span == "0000000000000000" {
        return Err(format!("`span` must be 16 nonzero lowercase hex digits, got `{span}`"));
    }
    let parent = match doc.get("parent") {
        None => return Err("missing `parent` (use null for a root)".to_owned()),
        Some(Json::Null) => None,
        Some(Json::Str(p)) if is_hex16(p) && p != "0000000000000000" => Some(p.clone()),
        Some(other) => return Err(format!("`parent` must be null or 16 hex digits, got {other}")),
    };
    let name = str_field("name")?;
    if name.is_empty() {
        return Err("`name` must be nonempty".to_owned());
    }
    let kind = str_field("kind")?;
    if !SPAN_KINDS.contains(&kind.as_str()) {
        return Err(format!("unknown `kind` `{kind}` (expected one of {SPAN_KINDS:?})"));
    }
    let start_us =
        doc.u64_field("start_us").ok_or_else(|| "missing or non-u64 `start_us`".to_owned())?;
    let dur_us = doc.u64_field("dur_us").ok_or_else(|| "missing or non-u64 `dur_us`".to_owned())?;
    let mut attrs = Vec::new();
    match doc.get("attrs") {
        Some(Json::Obj(pairs)) => {
            for (k, v) in pairs {
                if !snake_case(k) {
                    return Err(format!("attr key `{k}` is not snake_case"));
                }
                let Json::Str(v) = v else {
                    return Err(format!("attr `{k}` must be a string value"));
                };
                attrs.push((k.clone(), v.clone()));
            }
        }
        Some(other) => return Err(format!("`attrs` must be an object, got {other}")),
        None => return Err("missing `attrs`".to_owned()),
    }
    Ok(Span { trace, span, parent, name, kind, start_us, dur_us, attrs, source })
}

/// Reads one journal, returning its schema-checked spans. Non-span lines
/// (the journal codec proper) pass through untouched; a malformed span
/// line is an error, never skipped.
fn load_spans(path: &str, source: usize) -> Result<Vec<Span>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read journal: {e}"))?;
    let mut spans = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(doc) = parse(line) else {
            // Foreign or crash-truncated lines are the resume parser's
            // problem; only well-formed span events concern us.
            continue;
        };
        if doc.get("event").and_then(|e| e.as_str()) != Some("span") {
            continue;
        }
        let span = check_span(&doc, source)
            .map_err(|e| format!("{path}:{}: invalid span event: {e}", lineno + 1))?;
        spans.push(span);
    }
    Ok(spans)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    match command.as_str() {
        "merge" => merge(&args[1..]),
        "validate" => validate(&args[1..]),
        _ => usage(),
    }
}

fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            match args.get(i + 1) {
                Some(v) => out.push(v.clone()),
                None => usage(),
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

fn positional(args: &[String], flags_with_value: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if flags_with_value.contains(&args[i].as_str()) {
            i += 2;
        } else if args[i].starts_with("--") {
            usage();
        } else {
            out.push(args[i].clone());
            i += 1;
        }
    }
    out
}

/// `validate JOURNAL...` — schema-check every span line, per file.
fn validate(args: &[String]) {
    let journals = positional(args, &[]);
    if journals.is_empty() {
        usage();
    }
    let mut bad = false;
    for (i, path) in journals.iter().enumerate() {
        match load_spans(path, i) {
            Ok(spans) => println!("ok {path}: {} span event(s)", spans.len()),
            Err(e) => {
                eprintln!("sms-trace: {e}");
                bad = true;
            }
        }
    }
    if bad {
        std::process::exit(1);
    }
}

/// `merge [--trace HEX] [--sim FILE]... [--out FILE] JOURNAL...`
fn merge(args: &[String]) {
    let sims = flag_values(args, "--sim");
    let out_path = flag_values(args, "--out").pop();
    let trace_filter = flag_values(args, "--trace").pop();
    let journals = positional(args, &["--sim", "--out", "--trace"]);
    if journals.is_empty() {
        usage();
    }
    if let Some(t) = &trace_filter {
        if !is_hex16(t) {
            fail(format!("--trace must be 16 lowercase hex digits, got `{t}`"));
        }
    }

    let mut spans: Vec<Span> = Vec::new();
    for (i, path) in journals.iter().enumerate() {
        match load_spans(path, i) {
            Ok(s) => spans.extend(s),
            Err(e) => fail(e),
        }
    }
    if let Some(t) = &trace_filter {
        spans.retain(|s| &s.trace == t);
    }
    if spans.is_empty() {
        fail("no span events matched (are the journals traced?)".to_owned());
    }

    // Merge-level strictness: span ids unique, every parent resolved —
    // except the client root (synthesized) and crash orphans (a process
    // died before writing the parent span; see the module docs).
    let mut ids = std::collections::HashSet::new();
    for s in &spans {
        if !ids.insert((s.trace.clone(), s.span.clone())) {
            fail(format!("duplicate span id {} in trace {}", s.span, s.trace));
        }
    }
    let mut orphans: Vec<(String, String)> = Vec::new(); // (trace, unresolved parent id)
    for s in &spans {
        let Some(parent) = &s.parent else { continue };
        if ids.contains(&(s.trace.clone(), parent.clone())) {
            continue;
        }
        if !orphans.iter().any(|(t, p)| t == &s.trace && p == parent) {
            orphans.push((s.trace.clone(), parent.clone()));
        }
    }
    // An orphan with a `server`-kind child is a request entering the
    // system — the client root. More than one per trace means two entry
    // points claim the trace (a forgotten fleet journal, typically).
    let has_server_child = |trace: &str, parent: &str| {
        spans
            .iter()
            .any(|s| s.trace == trace && s.parent.as_deref() == Some(parent) && s.kind == "server")
    };
    let (roots, lost): (Vec<_>, Vec<_>) =
        orphans.into_iter().partition(|(t, p)| has_server_child(t, p));
    for trace in spans.iter().map(|s| s.trace.clone()).collect::<std::collections::HashSet<_>>() {
        let entry_points = roots.iter().filter(|(t, _)| t == &trace).count();
        if entry_points > 1 {
            fail(format!(
                "trace {trace}: {entry_points} distinct unresolved parents with server-kind \
                 children (at most one client root may live outside the journals — is a fleet \
                 journal missing from the merge?)"
            ));
        }
    }
    for (trace, parent) in &lost {
        eprintln!(
            "sms-trace: note: trace {trace}: parent span {parent} was never recorded \
             (process crashed mid-span?); synthesizing a placeholder"
        );
    }

    let events = render_events(&spans, &journals, &roots, &lost);
    let mut doc = format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{events}");
    for (k, sim) in sims.iter().enumerate() {
        match fold_sim(sim, journals.len() + 1 + k, trace_filter.as_deref(), &spans) {
            Ok(Some(sim_events)) => {
                doc.push_str(",\n");
                doc.push_str(&sim_events);
            }
            Ok(None) => eprintln!("sms-trace: note: {sim}: trace id not in merge set; skipped"),
            Err(e) => fail(e),
        }
    }
    doc.push_str("\n]}\n");

    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &doc) {
                fail(format!("{path}: cannot write merged trace: {e}"));
            }
            eprintln!(
                "sms-trace: merged {} span(s), {} sim trace(s) -> {path}",
                spans.len(),
                sims.len()
            );
        }
        None => print!("{doc}"),
    }
}

/// Renders the span slices, track metadata, synthesized client roots,
/// crash-orphan placeholders and parent→child flow arrows as one
/// comma-joined Chrome-trace event list.
fn render_events(
    spans: &[Span],
    journals: &[String],
    roots: &[(String, String)],
    lost: &[(String, String)],
) -> String {
    let mut events: Vec<String> = Vec::new();
    let tid = |span_hex: &str| u64::from_str_radix(&span_hex[8..], 16).unwrap_or(1).max(1);

    for (i, path) in journals.iter().enumerate() {
        let name = Json::Str(path.clone());
        events.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{},"tid":0,"args":{{"name":{name}}}}}"#,
            i + 1
        ));
    }
    // Synthesized client-root slices: the root span exists only as the
    // orphan parent id its children point at; give it a track and a slice
    // spanning its children so cross-process flows have a source.
    if !roots.is_empty() {
        events.push(
            r#"{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"client (synthesized)"}}"#
                .to_owned(),
        );
    }
    for (trace, root) in roots {
        let children: Vec<&Span> =
            spans.iter().filter(|s| &s.trace == trace && s.parent.as_ref() == Some(root)).collect();
        let start = children.iter().map(|s| s.start_us).min().unwrap_or(0);
        let end = children.iter().map(|s| s.start_us + s.dur_us).max().unwrap_or(start);
        events.push(format!(
            r#"{{"name":"request","cat":"client","ph":"X","ts":{start},"dur":{},"pid":0,"tid":{},"args":{{"trace":"{trace}","span":"{root}"}}}}"#,
            (end - start).max(1),
            tid(root),
        ));
    }
    // Crash-orphan placeholders: the parent span record died with its
    // process, but its children name it — draw it on the children's own
    // journal track, spanning them.
    for (trace, parent) in lost {
        let children: Vec<&Span> = spans
            .iter()
            .filter(|s| &s.trace == trace && s.parent.as_ref() == Some(parent))
            .collect();
        let pid = children.iter().map(|s| s.source + 1).min().unwrap_or(0);
        let start = children.iter().map(|s| s.start_us).min().unwrap_or(0);
        let end = children.iter().map(|s| s.start_us + s.dur_us).max().unwrap_or(start);
        events.push(format!(
            r#"{{"name":"(lost span)","cat":"internal","ph":"X","ts":{start},"dur":{},"pid":{pid},"tid":{},"args":{{"trace":"{trace}","span":"{parent}","note":"parent record lost (crash?)"}}}}"#,
            (end - start).max(1),
            tid(parent),
        ));
    }

    // Where is each span drawn? (pid, tid, start) — flows bind here.
    let locate = |trace: &str, id: &str| -> Option<(usize, u64, u64)> {
        let synthesized = |pid_of_children: bool| {
            let children: Vec<&Span> = spans
                .iter()
                .filter(|s| s.trace == trace && s.parent.as_deref() == Some(id))
                .collect();
            let start = children.iter().map(|s| s.start_us).min()?;
            let pid = if pid_of_children {
                children.iter().map(|s| s.source + 1).min().unwrap_or(0)
            } else {
                0
            };
            Some((pid, tid(id), start))
        };
        if roots.iter().any(|(t, p)| t == trace && p == id) {
            return synthesized(false);
        }
        if lost.iter().any(|(t, p)| t == trace && p == id) {
            return synthesized(true);
        }
        spans
            .iter()
            .find(|s| s.trace == trace && s.span == id)
            .map(|s| (s.source + 1, tid(&s.span), s.start_us))
    };

    for s in spans {
        let mut args = vec![
            ("trace".to_owned(), Json::Str(s.trace.clone())),
            ("span".to_owned(), Json::Str(s.span.clone())),
        ];
        if let Some(p) = &s.parent {
            args.push(("parent".to_owned(), Json::Str(p.clone())));
        }
        for (k, v) in &s.attrs {
            args.push((k.clone(), Json::Str(v.clone())));
        }
        let name = Json::Str(s.name.clone());
        let kind = Json::Str(s.kind.clone());
        events.push(format!(
            r#"{{"name":{name},"cat":{kind},"ph":"X","ts":{},"dur":{},"pid":{},"tid":{},"args":{}}}"#,
            s.start_us,
            s.dur_us.max(1),
            s.source + 1,
            tid(&s.span),
            Json::Obj(args),
        ));
        // One flow arrow per parent edge; hedge and steal dispatches show
        // as arrows fanning out of the cell into different tracks.
        if let Some((ppid, ptid, pstart)) = s.parent.as_ref().and_then(|p| locate(&s.trace, p)) {
            let flow = format!("\"cat\":\"trace\",\"id\":\"0x{}\"", s.span);
            events.push(format!(
                r#"{{"name":"parent","ph":"s",{flow},"ts":{pstart},"pid":{ppid},"tid":{ptid}}}"#
            ));
            events.push(format!(
                r#"{{"name":"parent","ph":"f","bp":"e",{flow},"ts":{},"pid":{},"tid":{}}}"#,
                s.start_us.max(pstart),
                s.source + 1,
                tid(&s.span),
            ));
        }
    }
    events.join(",\n")
}

/// Folds one sim-trace file (Chrome JSON with a top-level `traceId`) into
/// the merge: its events keep their cycle timebase but move to a private
/// pid range so SM tracks never collide with journal tracks. Returns
/// `Ok(None)` when the sim's trace id is not part of the merge set.
fn fold_sim(
    path: &str,
    pid_base: usize,
    trace_filter: Option<&str>,
    spans: &[Span],
) -> Result<Option<String>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read sim trace: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: not valid JSON: {e}"))?;
    let trace_id = doc.get("traceId").and_then(|t| t.as_str());
    match trace_id {
        None => {
            return Err(format!(
                "{path}: sim trace has no `traceId` (was the job run with SMS_TRACE_CTX set?)"
            ))
        }
        Some(id) => {
            let in_set = trace_filter.is_some_and(|t| t == id)
                || (trace_filter.is_none() && spans.iter().any(|s| s.trace == id));
            if !in_set {
                return Ok(None);
            }
        }
    }
    let Some(Json::Arr(raw_events)) = doc.get("traceEvents") else {
        return Err(format!("{path}: sim trace has no `traceEvents` array"));
    };
    // The sim's pids are SM indices on a cycle timebase; shift them into
    // a disjoint range (64 tracks is far beyond any simulated GPU).
    let mut out = vec![format!(
        r#"{{"name":"process_name","ph":"M","pid":{},"tid":0,"args":{{"name":"sim {path} (ts=cycles, trace {})"}}}}"#,
        pid_base * 64,
        trace_id.unwrap_or_default(),
    )];
    for ev in raw_events {
        let Json::Obj(pairs) = ev else { continue };
        let mut pairs = pairs.clone();
        for (k, v) in pairs.iter_mut() {
            if k == "pid" {
                if let Some(pid) = v.as_u64() {
                    *v = Json::U64(pid_base as u64 * 64 + pid);
                }
            }
        }
        out.push(Json::Obj(pairs).to_string());
    }
    Ok(Some(out.join(",\n")))
}
