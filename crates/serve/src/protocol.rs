//! The wire protocol: sweep-request JSON in, journal-event JSONL out.
//!
//! A sweep request is the JSON cross-product form every figure harness
//! uses internally:
//!
//! ```json
//! {"scenes":["SHIP","WKND"],"configs":["RB_8","RB_8+SH_8+SK+RA"],"render":"tiny"}
//! ```
//!
//! The response stream deliberately *is* the journal codec: one
//! [`Event`]-shaped JSON line per record (`job_queued`, `job_finished`,
//! `run_failed`/`run_timeout`, then a closing `batch_end`), so a saved
//! response body is a valid `SMS_RESUME` journal fragment and every
//! existing journal tool parses it unchanged.
//!
//! Config labels are parsed by [`parse_stack_config`], the exact inverse
//! of [`StackConfig::label`] — `RB_8`, `RB_FULL`, `RB_8+SH_8+SK+RA` — so
//! the strings clients send are the strings every table already prints.

use sms_harness::json::{parse, Json};
use sms_harness::{Event, RunRequest};
use sms_sim::config::RenderConfig;
use sms_sim::gpu::GpuConfig;
use sms_sim::rtunit::{SmsParams, StackConfig};
use sms_sim::scene::SceneId;

/// Parses a `StackConfig` label: the inverse of [`StackConfig::label`].
///
/// Accepted forms: `RB_<n>`, `RB_FULL`, `RB_<n>+SH_<m>`, with optional
/// `+SK` and/or `+RA` suffixes (in that order, `+RA` may appear alone);
/// plus the traversal competitors `SL` (stackless) and `PRED_<bits>`
/// (ray-path predictor, `1..=20` table index bits).
pub fn parse_stack_config(label: &str) -> Result<StackConfig, String> {
    let err = || format!("unknown stack config `{label}` (expected e.g. RB_8, RB_8+SH_8+SK+RA)");
    if label == "SL" {
        return Ok(StackConfig::Stackless);
    }
    if let Some(bits) = label.strip_prefix("PRED_") {
        return bits
            .parse::<u32>()
            .ok()
            .filter(|&b| (1..=sms_sim::rtunit::predictor::MAX_TABLE_BITS).contains(&b))
            .map(|table_bits| StackConfig::Predictor { table_bits })
            .ok_or_else(err);
    }
    let mut parts = label.split('+');
    let rb = parts.next().ok_or_else(err)?;
    if rb == "RB_FULL" {
        return if parts.next().is_none() { Ok(StackConfig::FullOnChip) } else { Err(err()) };
    }
    let rb_entries = rb
        .strip_prefix("RB_")
        .and_then(|n| n.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .ok_or_else(err)?;
    let Some(sh) = parts.next() else {
        return Ok(StackConfig::Baseline { rb_entries });
    };
    let sh_entries = sh
        .strip_prefix("SH_")
        .and_then(|n| n.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .ok_or_else(err)?;
    let mut params = SmsParams { rb_entries, sh_entries, ..SmsParams::default() };
    let mut rest = parts.peekable();
    if rest.peek() == Some(&"SK") {
        params = params.with_skewed(true);
        rest.next();
    }
    if rest.peek() == Some(&"RA") {
        params = params.with_realloc(true);
        rest.next();
    }
    if rest.next().is_some() {
        return Err(err());
    }
    Ok(StackConfig::Sms(params))
}

/// Parses a render-mode name into the workload configuration.
pub fn parse_render(name: &str) -> Result<RenderConfig, String> {
    match name {
        "fast" => Ok(RenderConfig::fast()),
        "tiny" => Ok(RenderConfig::tiny()),
        "paper" => Ok(RenderConfig::paper()),
        other => Err(format!("unknown render mode `{other}` (expected fast, tiny or paper)")),
    }
}

/// A parsed `/v1/sweep` body: the deduplicatable request list plus the
/// render mode it was built with (echoed in probes and labels).
#[derive(Debug, Clone)]
pub struct SweepRequest {
    /// One request per `(scene, config)` cell, scene-major — the same
    /// order `Harness::run_suite` uses.
    pub requests: Vec<RunRequest>,
    /// The render mode name as sent (`fast`, `tiny`, `paper`).
    pub render_name: String,
}

/// Parses and validates a sweep body. Every scene and config label must
/// parse; the cross-product must be non-empty and at most `max_jobs`.
pub fn parse_sweep(body: &[u8], max_jobs: usize) -> Result<SweepRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let doc = parse(text).map_err(|e| format!("body is not valid JSON: {e}"))?;
    let strings = |field: &str| -> Result<Vec<String>, String> {
        match doc.get(field) {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| format!("`{field}` entries must be strings"))
                })
                .collect(),
            Some(_) => Err(format!("`{field}` must be an array of strings")),
            None => Err(format!("missing field `{field}`")),
        }
    };
    let scenes: Vec<SceneId> = strings("scenes")?
        .iter()
        .map(|s| s.parse::<SceneId>().map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let configs: Vec<StackConfig> =
        strings("configs")?.iter().map(|s| parse_stack_config(s)).collect::<Result<_, _>>()?;
    let render_name = match doc.get("render") {
        None => "fast".to_owned(),
        Some(v) => {
            v.as_str().map(str::to_owned).ok_or_else(|| "`render` must be a string".to_owned())?
        }
    };
    let render = parse_render(&render_name)?;
    if scenes.is_empty() || configs.is_empty() {
        return Err("sweep needs at least one scene and one config".to_owned());
    }
    let jobs = scenes.len() * configs.len();
    if jobs > max_jobs {
        return Err(format!("sweep of {jobs} jobs exceeds the per-request limit of {max_jobs}"));
    }
    let requests = scenes
        .iter()
        .flat_map(|&id| {
            configs.iter().map(move |&stack| {
                RunRequest::new(id, stack, render).with_gpu(GpuConfig::default())
            })
        })
        .collect();
    Ok(SweepRequest { requests, render_name })
}

/// One client-side record of a finished job, joined from the stream's
/// `job_queued` + `job_finished`/`run_failed`/`run_timeout` lines.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Server-side job id (unique within the response).
    pub job: u64,
    /// Scene name.
    pub scene: String,
    /// Stack-config label.
    pub config: String,
    /// `hit`, `miss` — or `shared` for a single-flight follower.
    pub cache: String,
    /// The run's stats, or the failure diagnostic.
    pub outcome: Result<sms_sim::gpu::SimStats, String>,
}

/// A fully parsed `/v1/sweep` response stream.
#[derive(Debug, Clone, Default)]
pub struct SweepOutcome {
    /// One record per job, in stream order.
    pub records: Vec<JobRecord>,
    /// The closing `batch_end` line, if the stream completed.
    pub summary: Option<Json>,
}

impl SweepOutcome {
    /// Parses a JSONL response body. Unknown or malformed lines are
    /// errors — the server promises a strict journal-codec stream.
    pub fn parse(text: &str) -> Result<SweepOutcome, String> {
        let mut out = SweepOutcome::default();
        let mut queued: Vec<(u64, String, String, String)> = Vec::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let doc = parse(line).map_err(|e| format!("bad stream line: {e} in `{line}`"))?;
            let event = doc
                .get("event")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("stream line without event tag: `{line}`"))?;
            let field = |name: &str| {
                doc.u64_field(name).ok_or_else(|| format!("`{event}` line missing `{name}`"))
            };
            let text_field = |name: &str| {
                doc.get(name)
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("`{event}` line missing `{name}`"))
            };
            match event {
                "job_queued" => queued.push((
                    field("job")?,
                    text_field("scene")?,
                    text_field("config")?,
                    text_field("key")?,
                )),
                "job_finished" | "run_failed" | "run_timeout" => {
                    let job = field("job")?;
                    let (scene, config) = queued
                        .iter()
                        .find(|(j, ..)| *j == job)
                        .map(|(_, s, c, _)| (s.clone(), c.clone()))
                        .ok_or_else(|| format!("job {job} finished but was never queued"))?;
                    let record = if event == "job_finished" {
                        let stats = doc
                            .get("stats")
                            .and_then(sms_harness::cache::stats_from_json)
                            .ok_or_else(|| format!("job {job} finished without stats"))?;
                        JobRecord {
                            job,
                            scene,
                            config,
                            cache: text_field("cache")?,
                            outcome: Ok(stats),
                        }
                    } else {
                        JobRecord {
                            job,
                            scene,
                            config,
                            cache: "miss".to_owned(),
                            outcome: Err(text_field("error")?),
                        }
                    };
                    out.records.push(record);
                }
                "batch_end" => out.summary = Some(doc),
                // Forward-compatible: informational lines pass through.
                _ => {}
            }
        }
        Ok(out)
    }
}

/// Renders the `job_queued` stream/journal line for one admitted job.
pub fn job_queued_event(job: usize, req: &RunRequest, key: &str) -> Event {
    let (w, h, spp) = req.render.workload(req.scene);
    Event::JobQueued {
        job,
        scene: req.scene.name().to_owned(),
        config: req.stack.label(),
        workload: format!("{w}x{h}x{spp}"),
        key: key.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_config_labels_roundtrip() {
        for config in [
            StackConfig::baseline8(),
            StackConfig::Baseline { rb_entries: 2 },
            StackConfig::FullOnChip,
            StackConfig::sms_default(),
            StackConfig::Sms(SmsParams::default()),
            StackConfig::Sms(SmsParams::default().with_skewed(true)),
            StackConfig::Sms(SmsParams::default().with_realloc(true)),
            StackConfig::Sms(SmsParams { rb_entries: 4, sh_entries: 16, ..SmsParams::default() }),
            StackConfig::Stackless,
            StackConfig::predictor_default(),
            StackConfig::Predictor { table_bits: 8 },
        ] {
            assert_eq!(parse_stack_config(&config.label()), Ok(config), "{}", config.label());
        }
    }

    #[test]
    fn malformed_labels_are_rejected() {
        for bad in [
            "",
            "RB_0",
            "RB_x",
            "SH_8",
            "RB_8+SK",
            "RB_8+SH_8+RA+SK",
            "RB_8+SH_8+XX",
            "RB_FULL+SK",
            "SL+SK",
            "PRED_0",
            "PRED_64",
            "PRED_x",
            "PRED_",
        ] {
            assert!(parse_stack_config(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn sweep_body_parses_cross_product_in_suite_order() {
        let body = br#"{"scenes":["SHIP","WKND"],"configs":["RB_8","RB_FULL"],"render":"tiny"}"#;
        let sweep = parse_sweep(body, 100).unwrap();
        assert_eq!(sweep.requests.len(), 4);
        let cell = |i: usize| (sweep.requests[i].scene.name(), sweep.requests[i].stack.label());
        assert_eq!(cell(0), ("SHIP", "RB_8".to_owned()));
        assert_eq!(cell(1), ("SHIP", "RB_FULL".to_owned()));
        assert_eq!(cell(2), ("WKND", "RB_8".to_owned()));
        assert_eq!(cell(3), ("WKND", "RB_FULL".to_owned()));
        assert_eq!(sweep.requests[0].render, RenderConfig::tiny());
        assert_eq!(sweep.render_name, "tiny");
    }

    #[test]
    fn sweep_body_rejections() {
        let over = br#"{"scenes":["SHIP","WKND"],"configs":["RB_8","RB_FULL"]}"#;
        assert!(parse_sweep(over, 3).unwrap_err().contains("exceeds"));
        assert!(parse_sweep(b"{}", 10).unwrap_err().contains("missing field"));
        assert!(parse_sweep(b"not json", 10).unwrap_err().contains("JSON"));
        assert!(parse_sweep(br#"{"scenes":["NOPE"],"configs":["RB_8"]}"#, 10).is_err());
        assert!(parse_sweep(br#"{"scenes":["SHIP"],"configs":["RB_nope"]}"#, 10).is_err());
        assert!(parse_sweep(br#"{"scenes":[],"configs":["RB_8"]}"#, 10).is_err());
        assert!(
            parse_sweep(br#"{"scenes":["SHIP"],"configs":["RB_8"],"render":"huge"}"#, 10).is_err()
        );
        assert!(parse_sweep(&[0xff, 0xfe], 10).unwrap_err().contains("UTF-8"));
    }

    #[test]
    fn stream_roundtrip_including_failures() {
        let stream = concat!(
            r#"{"event":"job_queued","job":0,"scene":"WKND","config":"RB_8","workload":"16x16x1","key":"k0"}"#,
            "\n",
            r#"{"event":"job_queued","job":1,"scene":"SHIP","config":"RB_8","workload":"16x16x1","key":"k1"}"#,
            "\n",
            r#"{"event":"job_finished","job":0,"worker":0,"cache":"hit","cycles":5,"duration_us":1,"stats":{"cycles":5,"thread_instructions":0,"node_visits":0,"rays_traced":0,"shadow_rays":0,"rb_spills":0,"rb_reloads":0,"sh_spills":0,"sh_reloads":0,"ra_flushes":0,"ra_borrows":0,"mem":{"l1_hits":0,"l1_misses":0,"l2_hits":0,"l2_misses":0,"stores":0,"stack_transactions":0,"stack_l1_hits":0,"stack_l1_misses":0,"data_transactions":0,"shared_accesses":0,"bank_conflict_cycles":0}},"breakdown":null}"#,
            "\n",
            r#"{"event":"run_failed","job":1,"worker":0,"kind":"panic","error":"boom","duration_us":2}"#,
            "\n",
            r#"{"event":"batch_end","jobs":2,"cache_hits":1,"cache_misses":1,"failed":1,"duration_us":3,"sim_cycles":5,"runs_per_sec":0,"sim_cycles_per_sec":0,"breakdown":null,"metrics":null}"#,
            "\n",
        );
        let outcome = SweepOutcome::parse(stream).unwrap();
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(outcome.records[0].scene, "WKND");
        assert_eq!(outcome.records[0].cache, "hit");
        assert_eq!(outcome.records[0].outcome.as_ref().unwrap().cycles, 5);
        assert_eq!(outcome.records[1].outcome.as_ref().unwrap_err(), "boom");
        let summary = outcome.summary.unwrap();
        assert_eq!(summary.u64_field("failed"), Some(1));
    }

    #[test]
    fn truncated_stream_is_an_error() {
        assert!(SweepOutcome::parse("{\"event\":\"job_que").is_err());
        assert!(SweepOutcome::parse("{\"event\":\"job_finished\",\"job\":9}").is_err());
    }
}
