//! The sweep client: one-connection-per-request HTTP with bounded,
//! deadline-capped retries.
//!
//! Transport errors and 5xx responses are retried with exponential
//! backoff plus jitter (a `Retry-After` header, as the server sends on
//! load shed, overrides the computed backoff). 4xx responses are the
//! caller's mistake and are returned immediately — retrying a malformed
//! sweep can never fix it. A hard per-request deadline caps the whole
//! retry loop, sleeps included, so a dead server costs a bounded wait.

use crate::http::{self, Limits, Response};
use crate::protocol::SweepOutcome;
use sms_harness::log::{self, env_positive};
use sms_harness::{TraceContext, TRACE_HEADER};
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Client-side knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Retries after the first attempt (on connect errors and 5xx only).
    pub retries: u32,
    /// First backoff; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Hard wall-clock budget for one request, attempts and sleeps
    /// included.
    pub deadline: Duration,
    /// Hedge threshold: when an attempt has not answered after this long,
    /// fire a duplicate attempt and take whichever answers first (the
    /// server's single-flight dedup and shared cache make the duplicate
    /// idempotent). `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// Socket limits (timeouts, response size caps).
    pub limits: Limits,
    /// Distributed-tracing context to attach as the `x-sms-trace` header
    /// on every attempt (retries and hedges carry the same context, so
    /// their server-side spans all land in one trace). `None` sends no
    /// header, which keeps the serving tier's journals byte-identical to
    /// an untraced run.
    pub trace: Option<TraceContext>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            addr: "127.0.0.1:7745".to_owned(),
            retries: 3,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(2),
            deadline: Duration::from_secs(600),
            hedge_after: None,
            limits: Limits::default(),
            trace: None,
        }
    }
}

impl ClientConfig {
    /// Reads `SMS_SERVE_ADDR`, `SMS_CLIENT_RETRIES`,
    /// `SMS_CLIENT_DEADLINE_MS`, `SMS_CLIENT_TIMEOUT_MS`,
    /// `SMS_CLIENT_HEDGE_MS` and `SMS_TRACE_CTX`.
    pub fn from_env() -> Self {
        let mut cfg = ClientConfig::default();
        if let Ok(addr) = std::env::var("SMS_SERVE_ADDR") {
            cfg.addr = addr;
        }
        if let Ok(raw) = std::env::var("SMS_CLIENT_RETRIES") {
            match raw.trim().parse::<u32>() {
                Ok(n) => cfg.retries = n, // 0 = single attempt, valid
                Err(_) => log::warn(
                    "env",
                    &format!(
                        "SMS_CLIENT_RETRIES: expected a non-negative integer, got `{raw}` — \
                         ignoring"
                    ),
                    &[("var", "SMS_CLIENT_RETRIES")],
                ),
            }
        }
        if let Some(ms) = env_positive("SMS_CLIENT_DEADLINE_MS") {
            cfg.deadline = Duration::from_millis(ms as u64);
        }
        if let Some(ms) = env_positive("SMS_CLIENT_TIMEOUT_MS") {
            cfg.limits.read_timeout = Duration::from_millis(ms as u64);
        }
        if let Some(ms) = env_positive("SMS_CLIENT_HEDGE_MS") {
            cfg.hedge_after = Some(Duration::from_millis(ms as u64));
        }
        cfg.trace = TraceContext::from_env();
        cfg
    }
}

/// A request that could not be satisfied within the retry budget.
#[derive(Debug, Clone)]
pub struct ClientError {
    /// Status of the last response, when one was received at all.
    pub status: Option<u16>,
    /// Diagnostic for the last failure.
    pub message: String,
    /// Attempts made before giving up.
    pub attempts: u32,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.status {
            Some(s) => write!(f, "{} after {} attempt(s): {}", s, self.attempts, self.message),
            None => write!(f, "after {} attempt(s): {}", self.attempts, self.message),
        }
    }
}

impl std::error::Error for ClientError {}

/// The sweep-service client.
#[derive(Debug, Clone)]
pub struct Client {
    config: ClientConfig,
}

impl Client {
    /// A client for `addr` with default retry policy.
    pub fn new(addr: impl Into<String>) -> Self {
        Client { config: ClientConfig { addr: addr.into(), ..ClientConfig::default() } }
    }

    /// A client with explicit knobs.
    pub fn with_config(config: ClientConfig) -> Self {
        Client { config }
    }

    /// The configured retry policy (for callers that report it).
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// `GET path`, with retries.
    pub fn get(&self, path: &str) -> Result<Response, ClientError> {
        self.request("GET", path, &[])
    }

    /// `POST path` with a body, with retries.
    pub fn post(&self, path: &str, body: &[u8]) -> Result<Response, ClientError> {
        self.request("POST", path, body)
    }

    /// Runs a sweep and parses the JSONL stream. A non-200 response or an
    /// interrupted/unparseable stream is an error.
    pub fn sweep(
        &self,
        scenes: &[&str],
        configs: &[&str],
        render: &str,
    ) -> Result<SweepOutcome, ClientError> {
        let quote_list =
            |xs: &[&str]| xs.iter().map(|x| format!("\"{x}\"")).collect::<Vec<_>>().join(",");
        let body = format!(
            "{{\"scenes\":[{}],\"configs\":[{}],\"render\":\"{render}\"}}",
            quote_list(scenes),
            quote_list(configs)
        );
        let resp = self.post("/v1/sweep", body.as_bytes())?;
        if resp.status != 200 {
            return Err(ClientError {
                status: Some(resp.status),
                message: resp.text().trim().to_owned(),
                attempts: 1,
            });
        }
        SweepOutcome::parse(&resp.text()).map_err(|message| ClientError {
            status: Some(200),
            message,
            attempts: 1,
        })
    }

    /// One request with the full retry loop. With hedging enabled, every
    /// loop iteration may fan out to a duplicate attempt; `Retry-After`
    /// from whichever attempt answered still drives the next backoff, and
    /// the overall deadline bounds hedge waits exactly like retry sleeps.
    fn request(&self, method: &str, path: &str, body: &[u8]) -> Result<Response, ClientError> {
        let start = Instant::now();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let outcome = match self.config.hedge_after {
                Some(hedge_after) => {
                    self.attempt_hedged(method, path, body, start, hedge_after, &mut attempts)
                }
                None => self.attempt(method, path, body, start),
            };
            let (mut err, retry_after) = match outcome {
                Ok(resp) if resp.status < 500 => return Ok(resp),
                Ok(resp) => {
                    let retry_after = resp
                        .header("retry-after")
                        .and_then(|v| v.trim().parse::<u64>().ok())
                        .map(Duration::from_secs);
                    let err = ClientError {
                        status: Some(resp.status),
                        message: resp.text().trim().to_owned(),
                        attempts,
                    };
                    (err, retry_after)
                }
                Err(message) => (ClientError { status: None, message, attempts }, None),
            };
            if attempts > self.config.retries {
                return Err(err);
            }
            if !self.sleep_backoff(attempts, retry_after, start) {
                err.message.push_str(" (deadline exhausted)");
                return Err(err);
            }
        }
    }

    /// One wire attempt; transport-level failures come back as `Err`.
    fn attempt(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        start: Instant,
    ) -> Result<Response, String> {
        let remaining = self
            .config
            .deadline
            .checked_sub(start.elapsed())
            .ok_or_else(|| "request deadline exhausted".to_owned())?;
        let addr = self
            .config
            .addr
            .to_socket_addrs()
            .map_err(|e| format!("cannot resolve `{}`: {e}", self.config.addr))?
            .next()
            .ok_or_else(|| format!("`{}` resolves to nothing", self.config.addr))?;
        let connect_budget = remaining.min(self.config.limits.read_timeout);
        let mut stream = TcpStream::connect_timeout(&addr, connect_budget)
            .map_err(|e| format!("connect to {addr}: {e}"))?;
        // Send and read must also land inside the request deadline, so the
        // socket timeouts are clipped to what is left of it after the
        // connect — not the full configured timeout, which would let a
        // hung response body overshoot the deadline by up to a whole
        // `read_timeout`. Zero means "no timeout" to the socket API (and
        // is rejected by `set_read_timeout`), so an exhausted budget turns
        // into an error rather than an unbounded read.
        let remaining = self
            .config
            .deadline
            .checked_sub(start.elapsed())
            .filter(|r| !r.is_zero())
            .ok_or_else(|| "request deadline exhausted".to_owned())?;
        stream
            .set_read_timeout(Some(self.config.limits.read_timeout.min(remaining)))
            .map_err(|e| format!("set read timeout: {e}"))?;
        stream
            .set_write_timeout(Some(self.config.limits.write_timeout.min(remaining)))
            .map_err(|e| format!("set write timeout: {e}"))?;
        let trace_header = match &self.config.trace {
            Some(ctx) => format!("{TRACE_HEADER}: {}\r\n", ctx.header_value()),
            None => String::new(),
        };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n{trace_header}Connection: close\r\n\r\n",
            self.config.addr,
            body.len()
        );
        stream.write_all(head.as_bytes()).map_err(|e| format!("send request head: {e}"))?;
        stream.write_all(body).map_err(|e| format!("send request body: {e}"))?;
        http::read_response(&mut stream, &self.config.limits).map_err(|e| e.to_string())
    }

    /// One wire attempt with straggler hedging: if the primary attempt has
    /// not answered after `hedge_after`, a duplicate attempt is fired and
    /// the first *acceptable* (non-5xx) response wins. A fast failure does
    /// not hedge — the outer retry loop already handles it. Every wait is
    /// clipped to the request deadline, so a hung server costs at most the
    /// remaining budget, not a full socket timeout. The losing attempt's
    /// thread is left to finish in the background (its socket timeouts
    /// bound it); its result is discarded.
    fn attempt_hedged(
        &self,
        method: &str,
        path: &str,
        body: &[u8],
        start: Instant,
        hedge_after: Duration,
        attempts: &mut u32,
    ) -> Result<Response, String> {
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel::<Result<Response, String>>();
        let spawn_attempt = |tx: mpsc::Sender<Result<Response, String>>| {
            let client = self.clone();
            let method = method.to_owned();
            let path = path.to_owned();
            let body = body.to_vec();
            std::thread::spawn(move || {
                let _ = tx.send(client.attempt(&method, &path, &body, start));
            });
        };
        let remaining = || self.config.deadline.checked_sub(start.elapsed());
        let Some(rem) = remaining() else {
            return Err("request deadline exhausted".to_owned());
        };
        spawn_attempt(tx.clone());
        let mut results: Vec<Result<Response, String>> = Vec::new();
        let mut outstanding = 1u32;
        match rx.recv_timeout(hedge_after.min(rem)) {
            Ok(res) => {
                outstanding -= 1;
                results.push(res);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // The primary is straggling: hedge a duplicate.
                *attempts += 1;
                spawn_attempt(tx.clone());
                outstanding += 1;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err("hedge attempt thread vanished".to_owned());
            }
        }
        drop(tx);
        loop {
            if let Some(i) = results.iter().position(|r| matches!(r, Ok(resp) if resp.status < 500))
            {
                return results.swap_remove(i); // first acceptable answer wins
            }
            if outstanding == 0 {
                break;
            }
            let Some(rem) = remaining() else { break };
            match rx.recv_timeout(rem) {
                Ok(res) => {
                    outstanding -= 1;
                    results.push(res);
                }
                Err(_) => break, // deadline ran out mid-wait
            }
        }
        // No acceptable response. Prefer a real (5xx) response over a
        // transport error so the caller still sees Retry-After.
        let mut fallback: Option<Result<Response, String>> = None;
        for res in results {
            if res.is_ok() || fallback.is_none() {
                fallback = Some(res);
            }
        }
        fallback.unwrap_or_else(|| {
            Err("request deadline exhausted awaiting hedged attempts".to_owned())
        })
    }

    /// Sleeps the backoff for this attempt (never past the deadline).
    /// Returns `false` when the deadline leaves no room to retry.
    fn sleep_backoff(&self, attempt: u32, retry_after: Option<Duration>, start: Instant) -> bool {
        let exp = self
            .config
            .base_backoff
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.config.max_backoff);
        let backoff = retry_after.unwrap_or_else(|| jittered(exp));
        let Some(remaining) = self.config.deadline.checked_sub(start.elapsed()) else {
            return false;
        };
        if backoff >= remaining {
            return false;
        }
        std::thread::sleep(backoff);
        true
    }
}

/// `d` plus up to 50% random jitter, so a fleet of shed clients does not
/// come back in lockstep. The randomness only decorrelates peers; a weak
/// clock-seeded LCG is plenty (no `rand` in the offline build).
fn jittered(d: Duration) -> Duration {
    let seed =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|t| t.subsec_nanos() as u64).unwrap_or(0)
            ^ (std::process::id() as u64) << 32;
    let lcg = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let frac = (lcg >> 33) as f64 / (1u64 << 31) as f64; // [0, 1)
    d + d.mul_f64(frac * 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn quick_client(addr: std::net::SocketAddr, retries: u32) -> Client {
        Client::with_config(ClientConfig {
            addr: addr.to_string(),
            retries,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            deadline: Duration::from_secs(5),
            ..ClientConfig::default()
        })
    }

    /// A server that 503s `fail` times, then answers 200. With
    /// `retry_after` the 503s carry `Retry-After: 0` (instant retries);
    /// without it the client's own backoff schedule applies.
    fn flaky_server(fail: u32, retry_after: bool) -> (std::net::SocketAddr, Arc<AtomicU32>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&hits);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut conn) = conn else { break };
                let mut buf = [0u8; 1024];
                let _ = conn.read(&mut buf);
                let n = seen.fetch_add(1, Ordering::SeqCst);
                let resp: &[u8] = if n < fail && retry_after {
                    b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 0\r\n\
                      Content-Length: 5\r\nConnection: close\r\n\r\nbusy\n"
                } else if n < fail {
                    b"HTTP/1.1 503 Service Unavailable\r\n\
                      Content-Length: 5\r\nConnection: close\r\n\r\nbusy\n"
                } else {
                    b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\nConnection: close\r\n\r\nok\n"
                };
                let _ = conn.write_all(resp);
            }
        });
        (addr, hits)
    }

    #[test]
    fn retries_5xx_until_success() {
        let (addr, hits) = flaky_server(2, true);
        let resp = quick_client(addr, 3).get("/healthz").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn bounded_retries_then_error() {
        let (addr, hits) = flaky_server(u32::MAX, true);
        let err = quick_client(addr, 2).get("/healthz").unwrap_err();
        assert_eq!(err.status, Some(503));
        assert_eq!(err.attempts, 3); // 1 initial + 2 retries
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn refused_connection_errors_without_server() {
        // Bind-then-drop guarantees an unused port.
        let addr = TcpListener::bind("127.0.0.1:0").unwrap().local_addr().unwrap();
        let err = quick_client(addr, 1).get("/healthz").unwrap_err();
        assert_eq!(err.status, None);
        assert_eq!(err.attempts, 2);
    }

    #[test]
    fn deadline_caps_the_retry_loop() {
        // No Retry-After from the server, so the client's own 50ms
        // backoff applies — a 120ms deadline admits only a couple of
        // attempts out of the 100 configured retries.
        let (addr, _) = flaky_server(u32::MAX, false);
        let client = Client::with_config(ClientConfig {
            addr: addr.to_string(),
            retries: 100,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(50),
            deadline: Duration::from_millis(120),
            ..ClientConfig::default()
        });
        let t0 = Instant::now();
        let err = client.get("/healthz").unwrap_err();
        assert!(t0.elapsed() < Duration::from_secs(2), "deadline must cut retries short");
        assert!(err.attempts < 100);
        assert!(err.message.contains("deadline"), "error should name the deadline: {err}");
    }

    #[test]
    fn deadline_caps_a_stalling_response_body() {
        // A server that accepts, reads the request, then never answers.
        // The read timeout must be clipped to the remaining request
        // deadline: with the default 10s socket timeout left unclipped, a
        // 250ms budget would overshoot 40x waiting on the silent body.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let mut parked = Vec::new();
            for conn in listener.incoming() {
                let Ok(mut conn) = conn else { break };
                let mut buf = [0u8; 1024];
                let _ = conn.read(&mut buf);
                parked.push(conn); // hold the connection open, never respond
            }
        });
        let client = Client::with_config(ClientConfig {
            addr: addr.to_string(),
            retries: 0,
            deadline: Duration::from_millis(250),
            ..ClientConfig::default()
        });
        let t0 = Instant::now();
        let err = client.get("/healthz").unwrap_err();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "stalled read must end near the 250ms deadline, not the 10s socket timeout"
        );
        assert_eq!(err.status, None, "a stalled body is a transport error: {err}");
    }

    #[test]
    fn hedged_request_overtakes_a_straggling_primary() {
        // First connection stalls 800ms before answering; later ones answer
        // immediately. With a 50ms hedge threshold the duplicate attempt
        // must win long before the primary wakes up.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&hits);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut conn) = conn else { break };
                let n = seen.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    let mut buf = [0u8; 1024];
                    let _ = conn.read(&mut buf);
                    let body: &[u8] = if n == 0 {
                        std::thread::sleep(Duration::from_millis(800));
                        b"slow"
                    } else {
                        b"fast"
                    };
                    let head = format!(
                        "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                        body.len()
                    );
                    let _ = conn.write_all(head.as_bytes());
                    let _ = conn.write_all(body);
                });
            }
        });
        let client = Client::with_config(ClientConfig {
            addr: addr.to_string(),
            retries: 0,
            hedge_after: Some(Duration::from_millis(50)),
            deadline: Duration::from_secs(5),
            ..ClientConfig::default()
        });
        let t0 = Instant::now();
        let resp = client.get("/healthz").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.text(), "fast", "the hedge, not the straggler, must win");
        assert!(t0.elapsed() < Duration::from_millis(700), "hedge must beat the stall");
        assert_eq!(hits.load(Ordering::SeqCst), 2, "exactly one hedge fired");
    }

    #[test]
    fn deadline_covers_hedge_waits_too() {
        // A server that accepts and then never answers: without the
        // deadline clipping hedge waits, the client would block for the
        // full 10s socket read timeout. Held connections are parked so the
        // client sees silence, not a reset.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let mut parked = Vec::new();
            for conn in listener.incoming() {
                let Ok(conn) = conn else { break };
                parked.push(conn);
            }
        });
        let client = Client::with_config(ClientConfig {
            addr: addr.to_string(),
            retries: 0,
            hedge_after: Some(Duration::from_millis(50)),
            deadline: Duration::from_millis(250),
            ..ClientConfig::default()
        });
        let t0 = Instant::now();
        let err = client.get("/healthz").unwrap_err();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "deadline must bound hedge waits, not the socket timeout"
        );
        assert!(err.message.contains("deadline"), "error should name the deadline: {err}");
        assert_eq!(err.attempts, 2, "primary + one hedge");
    }

    #[test]
    fn fast_failures_do_not_hedge() {
        // 5xx arrives instantly, well inside the hedge threshold: the
        // retry loop (not a hedge) must handle it, one connection per
        // attempt.
        let (addr, hits) = flaky_server(u32::MAX, true);
        let client = Client::with_config(ClientConfig {
            addr: addr.to_string(),
            retries: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            hedge_after: Some(Duration::from_secs(1)),
            deadline: Duration::from_secs(5),
            ..ClientConfig::default()
        });
        let err = client.get("/healthz").unwrap_err();
        assert_eq!(err.status, Some(503));
        assert_eq!(err.attempts, 3);
        assert_eq!(hits.load(Ordering::SeqCst), 3, "no hedge connections for fast failures");
    }

    #[test]
    fn jitter_stays_in_range() {
        for _ in 0..32 {
            let d = jittered(Duration::from_millis(100));
            assert!(d >= Duration::from_millis(100) && d <= Duration::from_millis(150));
        }
    }
}
