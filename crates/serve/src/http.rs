//! A minimal, strictly-parsed HTTP/1.1 layer over `std::net`.
//!
//! The build environment is offline, so the server cannot pull `hyper`;
//! this module implements exactly the subset the sweep service needs and
//! rejects everything else *before* any simulator state is touched:
//!
//! * request line `METHOD SP PATH SP HTTP/1.1`, `GET`/`POST` only;
//! * headers up to [`Limits::max_head`] bytes, bodies up to
//!   [`Limits::max_body`] bytes, announced by a single well-formed
//!   `Content-Length` (request bodies in `Transfer-Encoding` are refused);
//! * per-connection read/write timeouts, so one stalled peer can never
//!   wedge a handler thread forever;
//! * one request per connection — every response carries
//!   `Connection: close`, which keeps connection state trivial and load
//!   shedding exact.
//!
//! Responses are either fixed bodies ([`write_response`]) or chunked
//! streams ([`ChunkedWriter`]) — the `/v1/sweep` endpoint streams one JSONL
//! record per chunk so clients see results as jobs finish.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Hard per-connection parsing limits.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes for the request line + headers.
    pub max_head: usize,
    /// Maximum request-body bytes.
    pub max_body: usize,
    /// Socket read timeout.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head: 16 * 1024,
            max_body: 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(30),
        }
    }
}

/// A parse/IO failure mapped to the HTTP status the peer should see.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Status code to answer with (4xx for peer mistakes, 408 for
    /// timeouts, 500 for local I/O trouble).
    pub status: u16,
    /// One-line diagnostic (becomes the response body).
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError { status, message: message.into() }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

impl std::error::Error for HttpError {}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET` or `POST` (anything else is rejected while parsing).
    pub method: String,
    /// Path component, query string stripped.
    pub path: String,
    /// Raw query string (without the `?`), empty when absent.
    pub query: String,
    /// Header pairs in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty for bodyless requests).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }
}

/// The canonical reason phrase for the statuses this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn io_error(e: &std::io::Error) -> HttpError {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => HttpError::new(408, "read timed out"),
        _ => HttpError::new(400, format!("connection error: {e}")),
    }
}

/// Reads and strictly parses one request from the stream. Applies the
/// read/write timeouts to the socket as a side effect.
pub fn read_request(stream: &mut TcpStream, limits: &Limits) -> Result<Request, HttpError> {
    let _ = stream.set_read_timeout(Some(limits.read_timeout));
    let _ = stream.set_write_timeout(Some(limits.write_timeout));

    // Read until the blank line that ends the head, byte-capped.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() >= limits.max_head {
            return Err(HttpError::new(431, "request head too large"));
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk).map_err(|e| io_error(&e))?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::new(400, "request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();

    // `METHOD SP PATH SP HTTP/1.1`, nothing more, nothing less.
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::new(400, "malformed request line")),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::new(400, format!("unsupported version `{version}`")));
    }
    match method {
        "GET" | "POST" => {}
        "HEAD" | "PUT" | "DELETE" | "OPTIONS" | "PATCH" | "TRACE" | "CONNECT" => {
            return Err(HttpError::new(405, format!("method `{method}` not allowed")));
        }
        _ => return Err(HttpError::new(400, format!("unknown method `{method}`"))),
    }
    if !target.starts_with('/') {
        return Err(HttpError::new(400, "request target must be an absolute path"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, format!("malformed header line `{line}`")));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::new(400, format!("malformed header name `{name}`")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut req = Request { method: method.to_owned(), path, query, headers, body: Vec::new() };

    if req.header("transfer-encoding").is_some() {
        return Err(HttpError::new(501, "request bodies must use Content-Length"));
    }
    let content_length = match req.header("content-length") {
        None => 0usize,
        Some(raw) => raw
            .parse::<usize>()
            .map_err(|_| HttpError::new(400, format!("malformed Content-Length `{raw}`")))?,
    };
    if req.method == "GET" && content_length > 0 {
        return Err(HttpError::new(400, "GET requests must not carry a body"));
    }
    if content_length > limits.max_body {
        return Err(HttpError::new(
            413,
            format!("body of {content_length} bytes exceeds the {} limit", limits.max_body),
        ));
    }

    // Bytes past the head already read belong to the body.
    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(HttpError::new(400, "body longer than Content-Length"));
    }
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want]).map_err(|e| io_error(&e))?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    req.body = body;
    Ok(req)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes a complete response with a fixed body and closes the exchange
/// (`Connection: close`). `extra_headers` are emitted verbatim.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n",
        status_text(status),
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a plain-text error response; I/O failures are ignored (the peer
/// may already be gone).
pub fn write_error(stream: &mut TcpStream, err: &HttpError) {
    let body = format!("{}\n", err.message);
    let retry: &[(&str, &str)] = if err.status == 503 { &[("Retry-After", "1")] } else { &[] };
    let _ = write_response(stream, err.status, "text/plain", retry, body.as_bytes());
}

/// A chunked-transfer response in progress: one [`ChunkedWriter::chunk`]
/// call per JSONL record, then [`ChunkedWriter::finish`].
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the response head and returns the chunk writer.
    pub fn start(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
    ) -> std::io::Result<Self> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
             Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status_text(status)
        );
        stream.write_all(head.as_bytes())?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one chunk and flushes it, so the peer sees it immediately.
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the chunk stream.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// A parsed response (client side).
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Header pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The de-chunked body.
    pub body: Vec<u8>,
}

impl Response {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads a full response: status line, headers, then a body framed by
/// `Content-Length`, chunked encoding, or connection close.
pub fn read_response(stream: &mut TcpStream, limits: &Limits) -> Result<Response, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() >= limits.max_head {
            return Err(HttpError::new(431, "response head too large"));
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk).map_err(|e| io_error(&e))?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed mid-response"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::new(400, "response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| HttpError::new(400, format!("malformed status line `{status_line}`")))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    let mut rest = buf[head_end + 4..].to_vec();
    let response = Response { status, headers, body: Vec::new() };

    let chunked =
        response.header("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        read_chunked_body(stream, &mut rest)?
    } else if let Some(len) = response.header("content-length") {
        let len = len
            .parse::<usize>()
            .map_err(|_| HttpError::new(400, "malformed response Content-Length"))?;
        while rest.len() < len {
            let mut chunk = [0u8; 4096];
            let n = stream.read(&mut chunk).map_err(|e| io_error(&e))?;
            if n == 0 {
                return Err(HttpError::new(400, "connection closed mid-response-body"));
            }
            rest.extend_from_slice(&chunk[..n]);
        }
        rest.truncate(len);
        rest
    } else {
        // Framed by connection close.
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => rest.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(io_error(&e)),
            }
        }
        rest
    };
    Ok(Response { body, ..response })
}

/// Decodes a chunked body; `rest` holds bytes already read past the head.
fn read_chunked_body(stream: &mut TcpStream, rest: &mut Vec<u8>) -> Result<Vec<u8>, HttpError> {
    let mut body = Vec::new();
    loop {
        // Ensure a full size line is buffered.
        let line_end = loop {
            if let Some(pos) = rest.windows(2).position(|w| w == b"\r\n") {
                break pos;
            }
            let mut chunk = [0u8; 1024];
            let n = stream.read(&mut chunk).map_err(|e| io_error(&e))?;
            if n == 0 {
                return Err(HttpError::new(400, "connection closed mid-chunk-size"));
            }
            rest.extend_from_slice(&chunk[..n]);
        };
        let size_line = std::str::from_utf8(&rest[..line_end])
            .map_err(|_| HttpError::new(400, "chunk size is not UTF-8"))?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| HttpError::new(400, format!("malformed chunk size `{size_line}`")))?;
        rest.drain(..line_end + 2);
        // Buffer chunk data + trailing CRLF.
        while rest.len() < size + 2 {
            let mut chunk = [0u8; 4096];
            let n = stream.read(&mut chunk).map_err(|e| io_error(&e))?;
            if n == 0 {
                return Err(HttpError::new(400, "connection closed mid-chunk"));
            }
            rest.extend_from_slice(&chunk[..n]);
        }
        if size == 0 {
            return Ok(body);
        }
        body.extend_from_slice(&rest[..size]);
        rest.drain(..size + 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs `client` against a raw byte payload served as one connection.
    fn parse_bytes(payload: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload = payload.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&payload).unwrap();
            // Keep the socket open briefly so a short read sees a timeout
            // path only when the payload is truncated mid-head.
            s.shutdown(std::net::Shutdown::Write).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let limits = Limits { read_timeout: Duration::from_millis(500), ..Limits::default() };
        let out = read_request(&mut conn, &limits);
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = parse_bytes(
            b"POST /v1/sweep?dry=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/sweep");
        assert_eq!(req.query, "dry=1");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn rejects_garbage_cleanly() {
        assert_eq!(parse_bytes(b"BLAH /x HTTP/1.1\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse_bytes(b"DELETE /x HTTP/1.1\r\n\r\n").unwrap_err().status, 405);
        assert_eq!(parse_bytes(b"GET nopath HTTP/1.1\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse_bytes(b"GET /x HTTP/2\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse_bytes(b"POST /x HTTP/1.1\r\nContent-Length: zork\r\n\r\n").unwrap_err().status,
            400
        );
        assert_eq!(
            parse_bytes(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status,
            501
        );
        assert_eq!(parse_bytes(b"\x00\x01\x02\xff\r\n\r\n").unwrap_err().status, 400);
    }

    #[test]
    fn caps_oversized_bodies_and_heads() {
        let huge = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX / 2);
        assert_eq!(parse_bytes(huge.as_bytes()).unwrap_err().status, 413);
        let mut head = b"GET /x HTTP/1.1\r\n".to_vec();
        head.extend(std::iter::repeat_n(b'a', 64 * 1024));
        assert_eq!(parse_bytes(&head).unwrap_err().status, 431);
    }

    #[test]
    fn chunked_response_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut w = ChunkedWriter::start(&mut conn, 200, "application/jsonl").unwrap();
            w.chunk(b"{\"a\":1}\n").unwrap();
            w.chunk(b"{\"b\":2}\n").unwrap();
            w.finish().unwrap();
        });
        let mut s = TcpStream::connect(addr).unwrap();
        let resp = read_response(&mut s, &Limits::default()).unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.text(), "{\"a\":1}\n{\"b\":2}\n");
    }

    #[test]
    fn content_length_response_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            write_response(&mut conn, 503, "text/plain", &[("Retry-After", "1")], b"busy\n")
                .unwrap();
        });
        let mut s = TcpStream::connect(addr).unwrap();
        let resp = read_response(&mut s, &Limits::default()).unwrap();
        server.join().unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert_eq!(resp.text(), "busy\n");
    }
}
